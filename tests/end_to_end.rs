//! End-to-end integration tests: the full pipeline from scenario
//! construction through STI monitoring to SMC mitigation.

use iprism::prelude::*;

/// A ghost cut-in instance that reliably defeats the LBC baseline.
fn defeating_spec() -> ScenarioSpec {
    ScenarioSpec::new(Typology::GhostCutIn, vec![25.2, 5.6, 10.5], 0)
}

#[test]
fn lbc_crashes_then_iprism_saves_it() {
    let spec = defeating_spec();

    // 1. The baseline crashes.
    let mut world = spec.build_world();
    let mut lbc = LbcAgent::default();
    let baseline = run_episode(&mut world, &mut lbc, &spec.episode_config());
    assert!(baseline.outcome.is_collision(), "{:?}", baseline.outcome);

    // 2. Train an SMC on the same scenario (small config for test speed).
    let trained = train_smc(
        vec![(spec.build_world(), spec.episode_config())],
        LbcAgent::default(),
        &SmcTrainConfig {
            episodes: 25,
            ..SmcTrainConfig::default()
        },
    );

    // 3. The protected agent survives the same scenario.
    let iprism = Iprism::new(trained.smc);
    let mut world = spec.build_world();
    let mut protected = iprism.attach(LbcAgent::default());
    let mitigated = run_episode(&mut world, &mut protected, &spec.episode_config());
    assert!(
        !mitigated.outcome.is_collision(),
        "iPrism must prevent the accident: {:?}",
        mitigated.outcome
    );
    // And it actually mitigated (not a fluke): the SMC activated.
    assert!(protected.first_activation().is_some());
}

#[test]
fn sti_rises_before_the_baseline_accident() {
    let spec = defeating_spec();
    let mut world = spec.build_world();
    let mut lbc = LbcAgent::default();
    let result = run_episode(&mut world, &mut lbc, &spec.episode_config());
    let trace = result.trace;
    let accident = trace.first_collision_index().expect("baseline crashes");

    let evaluator = StiEvaluator::default();
    let horizon_steps = (evaluator.config.horizon.get() / trace.dt()).ceil() as usize;
    let sti_at = |i: usize| {
        let scene = SceneSnapshot::from_trace(&trace, i, horizon_steps).unwrap();
        evaluator.evaluate_combined(world.map(), &scene)
    };

    // Early in the episode the risk is low; just before the accident it is
    // high — the Fig. 4 shape.
    let early = sti_at(0);
    let late = sti_at(accident.saturating_sub(2));
    assert!(early < 0.35, "early STI {early}");
    assert!(late > 0.5, "late STI {late}");
    assert!(late > early + 0.3, "STI must climb: {early} -> {late}");
}

#[test]
fn sti_leads_ttc_on_the_cut_in() {
    use iprism::risk::{ltfma_seconds, time_to_collision, RiskIndicator};

    let spec = defeating_spec();
    let mut world = spec.build_world();
    let mut lbc = LbcAgent::default();
    let result = run_episode(&mut world, &mut lbc, &spec.episode_config());
    let trace = result.trace;
    let accident = trace.first_collision_index().expect("baseline crashes");

    let evaluator = StiEvaluator::default();
    let horizon_steps = (evaluator.config.horizon.get() / trace.dt()).ceil() as usize;

    let sti_ind = RiskIndicator::Sti { floor: 0.02 };
    let ttc_ind = RiskIndicator::Ttc { threshold: 3.0 };
    let mut sti_risky = Vec::new();
    let mut ttc_risky = Vec::new();
    for i in 0..=accident {
        let scene = SceneSnapshot::from_trace(&trace, i, horizon_steps).unwrap();
        sti_risky.push(sti_ind.is_risky(Some(evaluator.evaluate_combined(world.map(), &scene))));
        ttc_risky.push(ttc_ind.is_risky(time_to_collision(&scene)));
    }
    let sti_lead = ltfma_seconds(&sti_risky, accident, trace.dt());
    let ttc_lead = ltfma_seconds(&ttc_risky, accident, trace.dt());
    assert!(
        sti_lead > ttc_lead,
        "STI lead {sti_lead}s must beat TTC lead {ttc_lead}s (side threat)"
    );
}

#[test]
fn deterministic_full_pipeline() {
    let run = || {
        let spec = defeating_spec();
        let trained = train_smc(
            vec![(spec.build_world(), spec.episode_config())],
            LbcAgent::default(),
            &SmcTrainConfig {
                episodes: 5,
                ..SmcTrainConfig::default()
            },
        );
        let iprism = Iprism::new(trained.smc);
        let mut world = spec.build_world();
        let mut protected = iprism.attach(LbcAgent::default());
        let result = run_episode(&mut world, &mut protected, &spec.episode_config());
        (format!("{:?}", result.outcome), result.trace.len())
    };
    assert_eq!(run(), run());
}

#[test]
fn every_nhtsa_typology_runs_under_every_agent() {
    for typology in Typology::NHTSA {
        for spec in sample_instances(typology, 2, 5) {
            let cfg = spec.episode_config();

            let mut w = spec.build_world();
            let mut lbc = LbcAgent::default();
            let _ = run_episode(&mut w, &mut lbc, &cfg);

            let mut w = spec.build_world();
            let mut rip = RipAgent::default();
            let _ = run_episode(&mut w, &mut rip, &cfg);

            let mut w = spec.build_world();
            let mut aca = AcaController::new(LbcAgent::default(), 2.5);
            let _ = run_episode(&mut w, &mut aca, &cfg);
        }
    }
}

#[test]
fn rear_end_is_mitigable_by_acceleration() {
    // §V-C extension: braking cannot save the ego from a rear approach;
    // acceleration can. Train on a rear-end scenario and check the SMC
    // accelerates rather than brakes when the threat comes from behind.
    let spec = ScenarioSpec::new(Typology::RearEnd, vec![11.0, 7.98, 55.8], 0);
    let mut world = spec.build_world();
    let mut lbc = LbcAgent::default();
    let baseline = run_episode(&mut world, &mut lbc, &spec.episode_config());
    assert!(baseline.outcome.is_collision(), "{:?}", baseline.outcome);

    let trained = train_smc(
        vec![(spec.build_world(), spec.episode_config())],
        LbcAgent::default(),
        &SmcTrainConfig {
            episodes: 80,
            ..SmcTrainConfig::default()
        },
    );
    let iprism = Iprism::new(trained.smc);
    let mut world = spec.build_world();
    let mut protected = iprism.attach(LbcAgent::default());
    let mitigated = run_episode(&mut world, &mut protected, &spec.episode_config());
    assert!(
        !mitigated.outcome.is_collision(),
        "acceleration should escape the rear threat: {:?}",
        mitigated.outcome
    );
}
