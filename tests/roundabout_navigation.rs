//! The roundabout substrate: agents must be able to navigate the ring at
//! all (no NPC) before the RIP-vs-RIP+iPrism experiment is meaningful.

use iprism::prelude::*;
use iprism::scenarios::EGO_START_SPEED;

fn roundabout_world(ego_speed: f64) -> (World, EpisodeConfig) {
    let map = RoadMap::roundabout(Vec2::ZERO, 12.0, 19.0, 60.0);
    let world = World::new(map, VehicleState::new(-40.0, -15.5, 0.0, ego_speed), 0.1);
    let cfg = EpisodeConfig {
        max_time: 40.0,
        goal: Goal::Point {
            x: 15.5,
            y: 0.0,
            radius: 4.0,
        },
        stop_on_collision: true,
    };
    (world, cfg)
}

#[test]
fn lbc_navigates_empty_roundabout_to_exit() {
    let (mut world, cfg) = roundabout_world(EGO_START_SPEED);
    let mut agent = LbcAgent::default();
    let r = run_episode(&mut world, &mut agent, &cfg);
    assert!(
        matches!(r.outcome, EpisodeOutcome::ReachedGoal { .. }),
        "LBC must reach the exit mouth: {:?} (ego ended at {:?})",
        r.outcome,
        world.ego().position()
    );
    // It stayed on the drivable surface throughout.
    for step in r.trace.steps() {
        let fp = step.ego.footprint(Meters::new(4.6), Meters::new(2.0));
        assert!(
            world.map().is_obb_drivable(&fp.inflated(Meters::new(-0.5))),
            "off-road at t={:.1}: {:?}",
            step.time,
            step.ego.position()
        );
    }
}

#[test]
fn rip_navigates_empty_roundabout_without_crashing() {
    let (mut world, cfg) = roundabout_world(8.0);
    let mut agent = RipAgent::default();
    let r = run_episode(&mut world, &mut agent, &cfg);
    assert!(
        !r.outcome.is_collision(),
        "no actors, no collisions: {:?}",
        r.outcome
    );
}

#[test]
fn roundabout_scenario_instances_are_conflicting() {
    // With the timed ring vehicle, at least some instances defeat RIP (the
    // experiment's premise) while the scenario stays physically sound.
    let mut collisions = 0;
    let n = 12;
    for spec in sample_instances(Typology::RoundaboutGhostCutIn, n, 2024) {
        let mut world = spec.build_world();
        let mut agent = RipAgent::default();
        let r = run_episode(&mut world, &mut agent, &spec.episode_config());
        if r.outcome.is_collision() {
            collisions += 1;
        }
    }
    assert!(
        collisions > 0,
        "conflict vehicle never hits RIP in {n} tries"
    );
}
