//! Dataset recording: traces, scenario specs and trained policies all
//! round-trip through JSON, so sweeps can be archived and replayed — the
//! workflow behind the §V-D dataset study.

#![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
use iprism::prelude::*;
use iprism::sim::Trace;

#[test]
fn trace_roundtrips_through_json() {
    let spec = ScenarioSpec::new(Typology::GhostCutIn, vec![25.2, 5.6, 10.5], 0);
    let mut world = spec.build_world();
    let mut agent = LbcAgent::default();
    let result = run_episode(&mut world, &mut agent, &spec.episode_config());

    let json = serde_json::to_string(&result.trace).expect("trace serializes");
    let back: Trace = serde_json::from_str(&json).expect("trace deserializes");
    assert_eq!(back, result.trace);

    // The reloaded trace supports the same offline risk analysis.
    let scene_orig = SceneSnapshot::from_trace(&result.trace, 10, 20).unwrap();
    let scene_back = SceneSnapshot::from_trace(&back, 10, 20).unwrap();
    assert_eq!(scene_orig, scene_back);
    let evaluator = StiEvaluator::new(ReachConfig::fast());
    assert_eq!(
        evaluator.evaluate_combined(world.map(), &scene_orig),
        evaluator.evaluate_combined(world.map(), &scene_back),
    );
}

#[test]
fn scenario_specs_roundtrip_through_json() {
    let specs = sample_instances(Typology::RearEnd, 5, 99);
    let json = serde_json::to_string(&specs).unwrap();
    let back: Vec<ScenarioSpec> = serde_json::from_str(&json).unwrap();
    assert_eq!(back, specs);
    // Worlds built from reloaded specs are identical.
    for (a, b) in specs.iter().zip(&back) {
        assert_eq!(a.build_world().ego(), b.build_world().ego());
    }
}

#[test]
fn maps_roundtrip_through_json() {
    for map in [
        RoadMap::straight_road(3, 3.5, 400.0),
        RoadMap::roundabout(Vec2::ZERO, 12.0, 19.0, 60.0),
    ] {
        let json = serde_json::to_string(&map).unwrap();
        let back: RoadMap = serde_json::from_str(&json).unwrap();
        assert_eq!(back, map);
    }
}
