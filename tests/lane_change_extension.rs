//! The paper's future-work extension (§VII): lane-change mitigation
//! actions. The action space already defines LCL/LCR; these tests exercise
//! an SMC trained with the *full* action set on a scenario where braking
//! alone cannot help — only swerving into the free adjacent lane can.

use iprism::agents::MitigationAction;
use iprism::core::{EnvConfig, MitigationEnv, SmcTrainConfig};
use iprism::prelude::*;
use iprism::rl::Environment;

/// Ego approaches a stopped wall of cars too fast to brake; lane 1 is free.
fn brake_proof_trap() -> (World, EpisodeConfig) {
    let map = RoadMap::straight_road(2, 3.5, 500.0);
    let mut w = World::new(map, VehicleState::new(30.0, 1.75, 0.0, 17.0), 0.1);
    // Wall: two stopped cars nose-to-tail in the ego lane.
    w.spawn(Actor::vehicle(
        1,
        VehicleState::new(56.0, 1.75, 0.0, 0.0),
        Behavior::Idle,
    ));
    w.spawn(Actor::vehicle(
        2,
        VehicleState::new(62.0, 1.75, 0.0, 0.0),
        Behavior::Idle,
    ));
    (
        w,
        EpisodeConfig {
            max_time: 10.0,
            goal: Goal::XThreshold(150.0),
            stop_on_collision: true,
        },
    )
}

fn full_action_env_config() -> EnvConfig {
    EnvConfig {
        actions: MitigationAction::ALL.to_vec(),
        ..EnvConfig::default()
    }
}

#[test]
fn braking_alone_cannot_escape_the_trap() {
    // Even an agent that brakes maximally from t=0 hits the wall:
    // 17 m/s needs ~24 m to stop, the wall is ~21 m of clearance away.
    struct FullBrake;
    impl EgoController for FullBrake {
        fn control(&mut self, world: &World) -> ControlInput {
            ControlInput::new(world.vehicle_model().limits.accel_min, 0.0)
        }
    }
    let (mut w, cfg) = brake_proof_trap();
    let r = run_episode(&mut w, &mut FullBrake, &cfg);
    assert!(r.outcome.is_collision(), "{:?}", r.outcome);
}

#[test]
fn lane_change_action_escapes_the_trap() {
    // Scripted proof that the LCL action suffices: swerve left for 1.2 s,
    // then hold the new lane.
    struct SwerveLeft;
    impl EgoController for SwerveLeft {
        fn control(&mut self, world: &World) -> ControlInput {
            MitigationAction::LaneChangeLeft
                .to_control(world)
                .expect("LCL always yields a control")
        }
    }
    let (mut w, cfg) = brake_proof_trap();
    let r = run_episode(&mut w, &mut SwerveLeft, &cfg);
    assert!(!r.outcome.is_collision(), "{:?}", r.outcome);
}

#[test]
fn env_exposes_five_actions_and_they_all_run() {
    let mut env = MitigationEnv::new(
        vec![brake_proof_trap()],
        LbcAgent::default(),
        full_action_env_config(),
    );
    assert_eq!(env.num_actions(), 5);
    for action in 0..5 {
        env.reset();
        let out = env.step(action);
        assert!(out.reward.is_finite(), "action {action}");
    }
}

#[test]
fn smc_trained_with_lane_changes_escapes_the_trap() {
    let trained = iprism::core::train_smc(
        vec![brake_proof_trap()],
        LbcAgent::default(),
        &SmcTrainConfig {
            episodes: 80,
            env: full_action_env_config(),
            ..SmcTrainConfig::default()
        },
    );
    let iprism_fw = Iprism::new(trained.smc);
    let (mut w, cfg) = brake_proof_trap();
    let mut protected = iprism_fw.attach(LbcAgent::default());
    let r = run_episode(&mut w, &mut protected, &cfg);
    assert!(
        !r.outcome.is_collision(),
        "the extended action set should escape: {:?}",
        r.outcome
    );
    assert!(
        protected.first_activation().is_some(),
        "SMC must have acted"
    );
}
