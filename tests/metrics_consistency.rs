//! Cross-crate consistency tests for the risk metrics: STI behaves like the
//! paper claims relative to the baselines across whole scenario sweeps.

#![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
use iprism::prelude::*;
use iprism::risk::{dist_cipa, time_to_collision};

fn scene_at(trace: &iprism::sim::Trace, i: usize, horizon: f64) -> Option<SceneSnapshot> {
    let steps = (horizon / trace.dt()).ceil() as usize;
    SceneSnapshot::from_trace(trace, i, steps)
}

#[test]
fn sti_bounded_and_finite_across_typology_sweeps() {
    let evaluator = StiEvaluator::new(ReachConfig::fast());
    for typology in [
        Typology::GhostCutIn,
        Typology::LeadSlowdown,
        Typology::RearEnd,
    ] {
        for spec in sample_instances(typology, 3, 31) {
            let mut world = spec.build_world();
            let mut agent = LbcAgent::default();
            let result = run_episode(&mut world, &mut agent, &spec.episode_config());
            let trace = result.trace;
            for i in (0..trace.len()).step_by(10) {
                if let Some(scene) = scene_at(&trace, i, 2.4) {
                    let sti = evaluator.evaluate(world.map(), &scene);
                    assert!((0.0..=1.0).contains(&sti.combined), "{typology}");
                    for (_, v) in &sti.per_actor {
                        assert!((0.0..=1.0).contains(v), "{typology}");
                    }
                }
            }
        }
    }
}

#[test]
fn removing_the_threat_lowers_combined_sti() {
    // Counterfactual sanity on a live cut-in: combined STI with the cutting
    // actor removed must not exceed the factual combined STI.
    let spec = ScenarioSpec::new(Typology::GhostCutIn, vec![25.2, 5.6, 10.5], 0);
    let mut world = spec.build_world();
    let mut agent = LbcAgent::default();
    let result = run_episode(&mut world, &mut agent, &spec.episode_config());
    let trace = result.trace;
    let accident = trace.first_collision_index().expect("crashes");
    let evaluator = StiEvaluator::default();

    let scene = scene_at(&trace, accident.saturating_sub(5), 2.5).unwrap();
    let factual = evaluator.evaluate(world.map(), &scene);
    let mut emptied = scene.clone();
    emptied.actors.clear();
    let counterfactual = evaluator.evaluate(world.map(), &emptied);
    assert!(factual.combined > counterfactual.combined);
    assert_eq!(counterfactual.combined, 0.0);
}

#[test]
fn ttc_and_cipa_are_blind_where_sti_is_not() {
    // During the approach phase of a ghost cut-in (actor still in the
    // adjacent lane), TTC and Dist-CIPA see nothing while STI already
    // registers risk at some point before the metric baselines do.
    let spec = ScenarioSpec::new(Typology::GhostCutIn, vec![25.2, 5.6, 10.5], 0);
    let mut world = spec.build_world();
    let mut agent = LbcAgent::default();
    let result = run_episode(&mut world, &mut agent, &spec.episode_config());
    let trace = result.trace;
    let accident = trace.first_collision_index().expect("crashes");
    let evaluator = StiEvaluator::default();

    let mut sti_first_risky: Option<usize> = None;
    let mut ttc_first_risky: Option<usize> = None;
    let mut cipa_first_risky: Option<usize> = None;
    for i in 0..=accident {
        let scene = scene_at(&trace, i, 2.5).unwrap();
        if sti_first_risky.is_none() && evaluator.evaluate_combined(world.map(), &scene) > 0.05 {
            sti_first_risky = Some(i);
        }
        if ttc_first_risky.is_none() && time_to_collision(&scene).is_some_and(|t| t < 3.0) {
            ttc_first_risky = Some(i);
        }
        if cipa_first_risky.is_none() && dist_cipa(&scene).is_some_and(|d| d < 15.0) {
            cipa_first_risky = Some(i);
        }
    }
    let sti_i = sti_first_risky.expect("STI registers before the accident");
    if let Some(ttc_i) = ttc_first_risky {
        assert!(sti_i <= ttc_i, "STI at {sti_i}, TTC at {ttc_i}");
    }
    if let Some(cipa_i) = cipa_first_risky {
        assert!(sti_i <= cipa_i, "STI at {sti_i}, CIPA at {cipa_i}");
    }
}

#[test]
fn benign_traffic_sti_is_low_risk() {
    use iprism::scenarios::{generate_benign_episode, BenignTrafficConfig};

    let evaluator = StiEvaluator::new(ReachConfig::fast());
    let mut all_samples = Vec::new();
    for seed in 0..4 {
        let mut world = generate_benign_episode(&BenignTrafficConfig::default(), seed);
        let mut agent = LbcAgent::default();
        let cfg = EpisodeConfig {
            max_time: 8.0,
            goal: Goal::None,
            stop_on_collision: true,
        };
        let result = run_episode(&mut world, &mut agent, &cfg);
        for i in (0..result.trace.len()).step_by(20) {
            if let Some(scene) = scene_at(&result.trace, i, 2.4) {
                let sti = evaluator.evaluate(world.map(), &scene);
                all_samples.extend(sti.per_actor.iter().map(|(_, v)| *v));
            }
        }
    }
    assert!(!all_samples.is_empty());
    let median = {
        let mut s = all_samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s[s.len() / 2]
    };
    assert!(median < 0.1, "benign traffic median actor STI {median}");
}
