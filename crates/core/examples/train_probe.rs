//! End-to-end probe: train an SMC on one ghost cut-in scenario, then
//! compare LBC vs LBC+iPrism collision rates on a held-out sweep.

use iprism_agents::LbcAgent;
use iprism_core::{train_smc, Iprism, SmcTrainConfig};
use iprism_scenarios::{sample_instances, Typology};
use iprism_sim::run_episode;

fn main() {
    let episodes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let eval_n: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);

    // Training scenario: a known LBC-colliding ghost cut-in instance.
    let spec = iprism_scenarios::ScenarioSpec::new(Typology::GhostCutIn, vec![25.2, 5.6, 10.5], 0);
    let template = (spec.build_world(), spec.episode_config());

    let t0 = std::time::Instant::now();
    let trained = train_smc(
        vec![template],
        LbcAgent::default(),
        &SmcTrainConfig {
            episodes,
            ..SmcTrainConfig::default()
        },
    );
    println!("trained {episodes} episodes in {:?}", t0.elapsed());
    let n = trained.episode_returns.len();
    let early: f64 = trained.episode_returns[..(n / 5).max(1)]
        .iter()
        .sum::<f64>()
        / (n / 5).max(1) as f64;
    let late: f64 = trained.episode_returns[n - (n / 5).max(1)..]
        .iter()
        .sum::<f64>()
        / (n / 5).max(1) as f64;
    println!("avg return early {early:.2} late {late:.2}");

    let iprism = Iprism::new(trained.smc);
    let mut lbc_coll = 0;
    let mut smc_coll = 0;
    let mut lbc_goal = 0;
    let mut smc_goal = 0;
    let mut smc_timeout_x = Vec::new();
    for s in sample_instances(Typology::GhostCutIn, eval_n, 2024) {
        let mut w1 = s.build_world();
        let mut lbc = LbcAgent::default();
        match run_episode(&mut w1, &mut lbc, &s.episode_config()).outcome {
            iprism_sim::EpisodeOutcome::Collision { .. } => lbc_coll += 1,
            iprism_sim::EpisodeOutcome::ReachedGoal { .. } => lbc_goal += 1,
            _ => {}
        }
        let mut w2 = s.build_world();
        let mut protected = iprism.attach(LbcAgent::default());
        match run_episode(&mut w2, &mut protected, &s.episode_config()).outcome {
            iprism_sim::EpisodeOutcome::Collision { .. } => smc_coll += 1,
            iprism_sim::EpisodeOutcome::ReachedGoal { .. } => smc_goal += 1,
            _ => {
                smc_timeout_x.push(w2.ego().x);
            }
        }
    }
    println!("LBC        collisions {lbc_coll}/{eval_n} goals {lbc_goal}");
    println!("LBC+iPrism collisions {smc_coll}/{eval_n} goals {smc_goal}");
    if !smc_timeout_x.is_empty() {
        let avg: f64 = smc_timeout_x.iter().sum::<f64>() / smc_timeout_x.len() as f64;
        println!(
            "iPrism timeouts: {} (avg final x {avg:.0}, goal x 260)",
            smc_timeout_x.len()
        );
    }
}
