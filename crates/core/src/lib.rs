//! The iPrism framework — the paper's primary contribution, assembled.
//!
//! iPrism couples two components (Fig. 2 of the paper):
//!
//! 1. **Risk assessment** — the Safety-Threat Indicator (STI), computed by
//!    counterfactual reach-tube analysis (crates `iprism-reach` /
//!    `iprism-risk`), and
//! 2. **Risk mitigation** — the Safety-hazard Mitigation Controller
//!    ([`Smc`]), a Double-DQN policy over `{No-Op, Brake, Accelerate}`
//!    trained with the reward of Eq. (8):
//!    `r = α₀(1 − STI^combined) + α₁·r_pc + α₂·p_am`.
//!
//! The [`MitigationEnv`] adapts a simulated driving scenario (with any ADS
//! in the loop) into an RL environment; [`train_smc`] runs the paper's
//! training protocol; [`Iprism::attach`] wraps any ADS controller into an
//! iPrism-protected agent via the `⊗` arbiter.
//!
//! # Quick example
//!
//! ```
//! use iprism_agents::LbcAgent;
//! use iprism_core::{train_smc, Iprism, SmcTrainConfig};
//! use iprism_dynamics::VehicleState;
//! use iprism_map::RoadMap;
//! use iprism_sim::{Actor, Behavior, EpisodeConfig, Goal, World};
//!
//! // A hazard scenario: a stopped car ahead of a fast ego.
//! let map = RoadMap::straight_road(2, 3.5, 500.0);
//! let mut world = World::new(map, VehicleState::new(30.0, 1.75, 0.0, 10.0), 0.1);
//! world.spawn(Actor::vehicle(1, VehicleState::new(80.0, 1.75, 0.0, 0.0), Behavior::Idle));
//! let episode = EpisodeConfig { max_time: 12.0, goal: Goal::XThreshold(200.0), stop_on_collision: true };
//!
//! let trained = train_smc(
//!     vec![(world, episode)],
//!     LbcAgent::default(),
//!     &SmcTrainConfig::small_test(), // use ::default() for real training
//! );
//! let iprism = Iprism::new(trained.smc);
//! let mut protected = iprism.attach(LbcAgent::default());
//! // `protected` implements iprism_sim::EgoController.
//! # let _ = &mut protected;
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod env;
mod features;
mod iprism;
mod policy_cache;
mod reward;
mod smc;

pub use env::{EnvConfig, MitigationEnv};
pub use features::{FeatureExtractor, FEATURE_DIM};
pub use iprism::Iprism;
pub use policy_cache::{TrainedPolicyCache, POLICY_CACHE_ENV};
pub use reward::{RewardModel, RewardWeights};
pub use smc::{train_smc, Smc, SmcTrainConfig, TrainedSmc};

/// The numeric-invariant contracts enforced across the workspace
/// (re-export of [`iprism_contracts`]); see `docs/INVARIANTS.md`.
pub use iprism_contracts as invariants;
