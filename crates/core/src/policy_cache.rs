//! On-disk reuse of trained SMC policies across evaluation runs.
//!
//! `table3`, `fig5` and `roundabout` each train an SMC for the same
//! typologies with the same `SmcTrainConfig` — identical inputs, identical
//! (fully deterministic) outputs. [`TrainedPolicyCache`] stores serde weight
//! snapshots under a cache directory (`results/policies/` for the bench
//! binaries), keyed by a fingerprint of the full training configuration plus
//! a caller-supplied scenario key, so each distinct policy is trained once
//! and every later run loads it in milliseconds.
//!
//! Because training is bit-deterministic under a seed (see
//! `tests/golden_train.rs`), a cache hit is *exactly* the policy a fresh
//! training run would produce; the cache changes wall-clock time, never
//! results. Set `IPRISM_POLICY_CACHE=0` (or `off`/`false`) to force
//! retraining anyway, e.g. when timing training itself.

use std::path::PathBuf;

use crate::{Smc, SmcTrainConfig};

/// Environment variable that disables the policy cache when set to `"0"`,
/// `"off"` or `"false"` (case-insensitive).
pub const POLICY_CACHE_ENV: &str = "IPRISM_POLICY_CACHE";

/// A directory of serialized [`Smc`] policies keyed by training fingerprint.
#[derive(Debug, Clone)]
pub struct TrainedPolicyCache {
    dir: PathBuf,
    enabled: bool,
}

impl TrainedPolicyCache {
    /// A cache rooted at `dir` (created lazily on the first store), honoring
    /// the [`POLICY_CACHE_ENV`] opt-out.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        let enabled = match std::env::var(POLICY_CACHE_ENV) {
            Ok(v) => !matches!(v.to_lowercase().as_str(), "0" | "off" | "false"),
            Err(_) => true,
        };
        TrainedPolicyCache {
            dir: dir.into(),
            enabled,
        }
    }

    /// Whether lookups and stores are active (the env opt-out disables both).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The snapshot path for a `(config, scenario_key)` pair.
    #[must_use]
    pub fn path_for(&self, config: &SmcTrainConfig, scenario_key: &str) -> PathBuf {
        self.dir
            .join(format!("smc-{}.json", fingerprint(config, scenario_key)))
    }

    /// Returns the cached policy for `(config, scenario_key)`, or trains one
    /// with `train` and stores it. Cache I/O failures are non-fatal: a
    /// corrupt or unwritable snapshot degrades to plain training with a
    /// note on stderr.
    pub fn load_or_train(
        &self,
        config: &SmcTrainConfig,
        scenario_key: &str,
        train: impl FnOnce() -> Smc,
    ) -> Smc {
        let path = self.path_for(config, scenario_key);
        if self.enabled {
            if let Ok(smc) = Smc::load(&path) {
                return smc;
            }
        }
        let smc = train();
        if self.enabled {
            if let Err(e) = std::fs::create_dir_all(&self.dir).and_then(|()| smc.save(&path)) {
                eprintln!(
                    "note: policy cache store failed for {}: {e}",
                    path.display()
                );
            }
        }
        smc
    }
}

/// FNV-1a hex fingerprint of the serialized training configuration plus the
/// scenario key. Any change to a hyperparameter, the reward weights, the
/// reach preset or the training scenarios yields a different file name, so a
/// stale snapshot can never be served for a new configuration.
fn fingerprint(config: &SmcTrainConfig, scenario_key: &str) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    let mut fold = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    // Debug formatting prints every f64 in shortest round-trip form, so the
    // fingerprint is exact and needs no fallible serialization step.
    fold(format!("{config:?}").as_bytes());
    fold(b"|");
    fold(scenario_key.as_bytes());
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train_smc;
    use iprism_agents::LbcAgent;
    use iprism_dynamics::VehicleState;
    use iprism_map::RoadMap;
    use iprism_sim::{Actor, Behavior, EpisodeConfig, Goal, World};

    fn template() -> (World, EpisodeConfig) {
        let map = RoadMap::straight_road(2, 3.5, 500.0);
        let mut w = World::new(map, VehicleState::new(30.0, 1.75, 0.0, 10.0), 0.1);
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(80.0, 1.75, 0.0, 0.0),
            Behavior::Idle,
        ));
        (
            w,
            EpisodeConfig {
                max_time: 12.0,
                goal: Goal::XThreshold(200.0),
                stop_on_collision: true,
            },
        )
    }

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iprism-policy-cache-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn fingerprint_separates_configs_and_scenarios() {
        let base = SmcTrainConfig::small_test();
        let mut other = SmcTrainConfig::small_test();
        other.ddqn.seed += 1;
        assert_ne!(fingerprint(&base, "a"), fingerprint(&other, "a"));
        assert_ne!(fingerprint(&base, "a"), fingerprint(&base, "b"));
        assert_eq!(fingerprint(&base, "a"), fingerprint(&base, "a"));
    }

    #[test]
    fn second_lookup_is_a_cache_hit_with_identical_policy() {
        let dir = fresh_dir("hit");
        let cache = TrainedPolicyCache::new(&dir);
        let cfg = SmcTrainConfig::small_test();
        let mut trainings = 0;
        let mut train = || {
            trainings += 1;
            train_smc(vec![template()], LbcAgent::default(), &cfg).smc
        };
        let first = cache.load_or_train(&cfg, "tpl", &mut train);
        let second = cache.load_or_train(&cfg, "tpl", &mut train);
        assert_eq!(trainings, 1, "second lookup must not retrain");
        assert_eq!(
            serde_json::to_string(first.agent().network()).unwrap(),
            serde_json::to_string(second.agent().network()).unwrap()
        );
        assert!(cache.path_for(&cfg, "tpl").is_file());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn different_scenario_keys_do_not_share_snapshots() {
        let dir = fresh_dir("keys");
        let cache = TrainedPolicyCache::new(&dir);
        let cfg = SmcTrainConfig::small_test();
        let mut trainings = 0;
        let mut train = || {
            trainings += 1;
            train_smc(vec![template()], LbcAgent::default(), &cfg).smc
        };
        let _ = cache.load_or_train(&cfg, "one", &mut train);
        let _ = cache.load_or_train(&cfg, "two", &mut train);
        assert_eq!(trainings, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_degrades_to_training() {
        let dir = fresh_dir("corrupt");
        let cache = TrainedPolicyCache::new(&dir);
        let cfg = SmcTrainConfig::small_test();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(cache.path_for(&cfg, "tpl"), "not json").unwrap();
        let mut trainings = 0;
        let _ = cache.load_or_train(&cfg, "tpl", || {
            trainings += 1;
            train_smc(vec![template()], LbcAgent::default(), &cfg).smc
        });
        assert_eq!(trainings, 1, "corrupt snapshot must fall back to training");
        std::fs::remove_dir_all(&dir).ok();
    }
}
