//! The SMC reward model — Eq. (8) of the paper.

use iprism_agents::MitigationAction;
use serde::{Deserialize, Serialize};

/// The weights `α₀, α₁, α₂` of Eq. (8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardWeights {
    /// Weight of the risk term `(1 − STI^combined)`.
    pub alpha0: f64,
    /// Weight of the path-completion term `r_pc`.
    pub alpha1: f64,
    /// Weight of the mitigation-activation penalty `p_am` (applied
    /// negatively: a positive `alpha2` is subtracted per activation).
    pub alpha2: f64,
}

impl Default for RewardWeights {
    /// Defaults chosen so the risk term dominates, progress breaks ties and
    /// frivolous activations cost a little.
    fn default() -> Self {
        RewardWeights {
            alpha0: 1.0,
            alpha1: 0.5,
            alpha2: 0.1,
        }
    }
}

impl RewardWeights {
    /// The ablation of §V-C: STI removed from the reward formulation
    /// (LBC+SMC *w/o STI*).
    pub fn without_sti() -> Self {
        RewardWeights {
            alpha0: 0.0,
            ..RewardWeights::default()
        }
    }
}

/// Computes Eq. (8):
/// `r_t = α₀ (1 − STI^combined) + α₁ r_pc − α₂ 𝟙[a ≠ No-Op]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardModel {
    /// The trade-off weights.
    pub weights: RewardWeights,
}

impl RewardModel {
    /// Creates a reward model.
    pub fn new(weights: RewardWeights) -> Self {
        RewardModel { weights }
    }

    /// The reward for one decision step.
    ///
    /// * `sti_combined` — `STI^(combined)` after the step, in `[0, 1]`
    ///   (1 when the step ended in a collision: escape routes are gone);
    /// * `progress` — normalized path completion `r_pc` for the step,
    ///   nominally in `[0, 1]`;
    /// * `action` — the mitigation action taken (`p_am` indicator).
    pub fn reward(&self, sti_combined: f64, progress: f64, action: MitigationAction) -> f64 {
        debug_assert!((0.0..=1.0).contains(&sti_combined), "STI out of range");
        let w = self.weights;
        let p_am = if action == MitigationAction::NoOp {
            0.0
        } else {
            1.0
        };
        w.alpha0 * (1.0 - sti_combined) + w.alpha1 * progress - w.alpha2 * p_am
    }
}

impl Default for RewardModel {
    fn default() -> Self {
        RewardModel::new(RewardWeights::default())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;

    #[test]
    fn safe_progress_is_best() {
        let m = RewardModel::default();
        let safe = m.reward(0.0, 1.0, MitigationAction::NoOp);
        let risky = m.reward(0.9, 1.0, MitigationAction::NoOp);
        let stalled = m.reward(0.0, 0.0, MitigationAction::NoOp);
        assert!(safe > risky);
        assert!(safe > stalled);
    }

    #[test]
    fn activation_costs() {
        let m = RewardModel::default();
        let idle = m.reward(0.2, 0.5, MitigationAction::NoOp);
        let braking = m.reward(0.2, 0.5, MitigationAction::Brake);
        assert!((idle - braking - 0.1).abs() < 1e-12);
    }

    #[test]
    fn braking_pays_off_when_it_cuts_risk() {
        let m = RewardModel::default();
        // Braking that drops STI from 0.8 to 0.3 beats doing nothing.
        let mitigated = m.reward(0.3, 0.3, MitigationAction::Brake);
        let ignored = m.reward(0.8, 0.5, MitigationAction::NoOp);
        assert!(mitigated > ignored);
    }

    #[test]
    fn ablation_removes_risk_signal() {
        let m = RewardModel::new(RewardWeights::without_sti());
        let high_risk = m.reward(1.0, 0.5, MitigationAction::NoOp);
        let no_risk = m.reward(0.0, 0.5, MitigationAction::NoOp);
        assert_eq!(high_risk, no_risk);
    }

    #[test]
    fn collision_step_scores_minimum_risk_term() {
        let m = RewardModel::default();
        let r = m.reward(1.0, 0.0, MitigationAction::NoOp);
        assert_eq!(r, 0.0);
    }
}
