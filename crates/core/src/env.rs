//! The RL environment adapting simulated driving scenarios for D-DQN.

use std::sync::Arc;

use iprism_agents::MitigationAction;
use iprism_reach::ReachConfig;
use iprism_risk::{SceneSnapshot, StiEvaluator, TubeMemo};
use iprism_rl::{Environment, StepOutcome};
use iprism_sim::{EgoController, Episode, EpisodeConfig, Goal, World};
use serde::{Deserialize, Serialize};

use crate::{FeatureExtractor, RewardModel, RewardWeights, FEATURE_DIM};

/// Configuration of the [`MitigationEnv`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvConfig {
    /// The discrete mitigation action set (index = RL action id).
    pub actions: Vec<MitigationAction>,
    /// The Eq. (8) reward weights.
    pub weights: RewardWeights,
    /// Reach-tube configuration for the in-loop STI (use a fast preset).
    pub reach: ReachConfig,
    /// Simulation steps per SMC decision (the paper's planning period of
    /// 0.1–0.3 s; 2 × 0.1 s here).
    pub decision_period: usize,
    /// Reference speed used to normalize path-completion progress (m/s).
    pub progress_ref_speed: f64,
    /// Whether the combined STI appears in the observation vector. The
    /// paper's SMC state is camera frames (no STI); our geometric features
    /// carry STI as the substitute for learned risk cues. The w/o-STI
    /// ablation of §V-C removes STI from the reward *and* (here) from the
    /// observation, so the ablated policy is fully risk-signal-free.
    pub sti_in_observation: bool,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            actions: MitigationAction::BRAKE_ACCEL.to_vec(),
            weights: RewardWeights::default(),
            reach: ReachConfig::fast(),
            decision_period: 2,
            progress_ref_speed: 10.0,
            sti_in_observation: true,
        }
    }
}

/// An episodic RL environment: a scenario template (world + episode rules)
/// driven by the wrapped ADS, with the RL agent supplying mitigation
/// actions that may overwrite the ADS control (Fig. 2's `⊗`).
///
/// Multiple templates round-robin across episodes (the paper trains on one
/// scenario per typology; passing several enables multi-scenario training).
///
/// Stepping composes the [`Episode`] engine from `iprism-sim` (untraced —
/// training needs no trajectory history): the engine advances the world,
/// while the env layers its RL semantics on top of the returned step events
/// (always break on an ego collision, regardless of `stop_on_collision`;
/// time out on wall-clock `max_time` rather than the engine's step budget).
#[derive(Debug)]
pub struct MitigationEnv<A> {
    templates: Vec<(World, EpisodeConfig)>,
    ads: A,
    config: EnvConfig,
    extractor: FeatureExtractor,
    reward: RewardModel,
    sti: StiEvaluator,
    world: World,
    engine: Episode,
    next_template: usize,
    goal_distance: f64,
}

impl<A: EgoController> MitigationEnv<A> {
    /// Creates an environment from scenario templates and an ADS.
    ///
    /// # Panics
    ///
    /// Panics when `templates` is empty, the action set is empty, or the
    /// decision period is zero.
    pub fn new(templates: Vec<(World, EpisodeConfig)>, ads: A, config: EnvConfig) -> Self {
        assert!(!templates.is_empty(), "need at least one scenario template");
        assert!(!config.actions.is_empty(), "need at least one action");
        assert!(config.decision_period >= 1, "decision period must be >= 1");
        let world = templates[0].0.clone();
        let episode = templates[0].1;
        let sti = StiEvaluator::new(config.reach.clone());
        let reward = RewardModel::new(config.weights);
        let goal_distance = goal_distance(&episode.goal, &world);
        let engine = Episode::begin_untraced(&world, episode);
        MitigationEnv {
            templates,
            ads,
            config,
            extractor: FeatureExtractor::new(),
            reward,
            sti,
            world,
            engine,
            next_template: 0,
            goal_distance,
        }
    }

    /// The current world (for inspection in tests and tooling).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Enables counterfactual tube memoization on the internal STI
    /// evaluator and returns the (shared) memo handle for inspection.
    ///
    /// Along an SMC episode the ego revisits identical states whenever
    /// episodes replay a shared action prefix (and near-identical ones when
    /// stopped or cruising steadily); against a static hazard the obstacle
    /// footprints recur too, so both reach-tube computations of most
    /// [`MitigationEnv::current_sti`] calls become cache hits. The memo's
    /// key excludes the map (see [`TubeMemo`]), which is sound here because
    /// every scenario template is required to share one map.
    ///
    /// # Panics
    ///
    /// Panics when the scenario templates use different road maps — one memo
    /// must never serve two maps.
    pub fn enable_tube_memo(&mut self) -> Arc<TubeMemo> {
        assert!(
            self.templates_share_map(),
            "tube memoization needs all scenario templates on one map"
        );
        let memo = Arc::new(TubeMemo::new());
        self.sti = self.sti.clone().with_tube_memo(memo.clone());
        memo
    }

    /// Whether every scenario template uses the same road map — the
    /// soundness precondition of [`MitigationEnv::enable_tube_memo`].
    pub fn templates_share_map(&self) -> bool {
        let first = self.templates[0].0.map();
        self.templates.iter().all(|(w, _)| w.map() == first)
    }

    /// Combined STI of the current world via CVTR prediction (§IV-C).
    pub fn current_sti(&self) -> f64 {
        let scene = SceneSnapshot::from_world_cvtr(
            &self.world,
            self.config.reach.horizon,
            self.config.reach.dt,
        );
        self.sti.evaluate_combined(self.world.map(), &scene)
    }
}

fn goal_distance(goal: &Goal, world: &World) -> f64 {
    let ego = world.ego().position();
    match *goal {
        Goal::XThreshold(x) => (x - ego.x).max(0.0),
        Goal::Point { x, y, .. } => ego.distance(iprism_geom::Vec2::new(x, y)),
        Goal::None => -ego.x, // progress measured as raw +x movement
    }
}

impl<A: EgoController> Environment for MitigationEnv<A> {
    fn state_dim(&self) -> usize {
        FEATURE_DIM
    }

    fn num_actions(&self) -> usize {
        self.config.actions.len()
    }

    fn reset(&mut self) -> Vec<f64> {
        let (world, episode) = self.templates[self.next_template].clone();
        self.next_template = (self.next_template + 1) % self.templates.len();
        self.world = world;
        self.engine = Episode::begin_untraced(&self.world, episode);
        self.ads.reset();
        self.goal_distance = goal_distance(&self.engine.config().goal, &self.world);
        let sti = if self.config.sti_in_observation {
            self.current_sti()
        } else {
            0.0
        };
        self.extractor.features(&self.world, sti)
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        let action = self.config.actions[action];
        let mut collided = false;
        let mut reached_goal = false;
        for _ in 0..self.config.decision_period {
            let ads_control = self.ads.control(&self.world);
            let control = action.to_control(&self.world).unwrap_or(ads_control);
            let events = self.engine.step(&mut self.world, control);
            if events.ego_collided() {
                collided = true;
                break;
            }
            if self
                .engine
                .config()
                .goal
                .reached(self.world.ego().position())
            {
                reached_goal = true;
                break;
            }
        }

        // Risk term: a collision means the escape routes are gone (STI 1).
        let sti = if collided { 1.0 } else { self.current_sti() };
        let observed_sti = if self.config.sti_in_observation {
            sti
        } else {
            0.0
        };

        // Path completion: normalized goal-distance decrease per decision.
        let new_distance = goal_distance(&self.engine.config().goal, &self.world);
        let step_time = self.config.decision_period as f64 * self.world.dt();
        let progress = ((self.goal_distance - new_distance)
            / (self.config.progress_ref_speed * step_time))
            .clamp(-1.0, 1.0);
        self.goal_distance = new_distance;

        let reward = self.reward.reward(sti, progress, action);
        let done = collided || reached_goal || self.world.time() >= self.engine.config().max_time;
        StepOutcome {
            state: self.extractor.features(&self.world, observed_sti),
            reward,
            done,
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use iprism_agents::LbcAgent;
    use iprism_dynamics::VehicleState;
    use iprism_map::RoadMap;
    use iprism_sim::{Actor, Behavior};

    fn lead_hazard_template() -> (World, EpisodeConfig) {
        let map = RoadMap::straight_road(2, 3.5, 500.0);
        let mut w = World::new(map, VehicleState::new(30.0, 1.75, 0.0, 10.0), 0.1);
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(75.0, 1.75, 0.0, 0.0),
            Behavior::Idle,
        ));
        let cfg = EpisodeConfig {
            max_time: 20.0,
            goal: Goal::XThreshold(200.0),
            stop_on_collision: true,
        };
        (w, cfg)
    }

    fn env() -> MitigationEnv<LbcAgent> {
        MitigationEnv::new(
            vec![lead_hazard_template()],
            LbcAgent::default(),
            EnvConfig::default(),
        )
    }

    #[test]
    fn dimensions() {
        let e = env();
        assert_eq!(e.state_dim(), FEATURE_DIM);
        assert_eq!(e.num_actions(), 3);
    }

    #[test]
    fn reset_restores_template() {
        let mut e = env();
        let s0 = e.reset();
        assert_eq!(s0.len(), FEATURE_DIM);
        // drive a while, then reset back to the template state
        for _ in 0..5 {
            e.step(0);
        }
        let moved_x = e.world().ego().x;
        let s1 = e.reset();
        assert_eq!(s0, s1);
        assert!(e.world().ego().x < moved_x);
    }

    #[test]
    fn rewards_are_finite_and_episode_terminates() {
        let mut e = env();
        let mut s = e.reset();
        let mut steps = 0;
        loop {
            let out = e.step(0); // always No-Op: LBC drives
            assert!(out.reward.is_finite());
            assert_eq!(out.state.len(), s.len());
            s = out.state;
            steps += 1;
            if out.done {
                break;
            }
            assert!(steps < 200, "episode must terminate");
        }
    }

    #[test]
    fn brake_action_overrides_ads() {
        let mut e = env();
        e.reset();
        let v0 = e.world().ego().v;
        e.step(1); // Brake
        assert!(e.world().ego().v < v0 - 0.5);
    }

    #[test]
    fn accelerate_action_overrides_ads() {
        let mut e = env();
        e.reset();
        let v0 = e.world().ego().v;
        e.step(2); // Accelerate
        assert!(e.world().ego().v > v0 + 0.3);
    }

    #[test]
    fn risk_term_rises_near_hazard() {
        let mut e = env();
        e.reset();
        let early = e.current_sti();
        // Accelerate toward the stopped car to raise the risk.
        let mut last = 0.0;
        for _ in 0..15 {
            let out = e.step(2);
            last = out.state[2]; // the STI feature
            if out.done {
                break;
            }
        }
        assert!(
            last > early,
            "STI should rise approaching hazard: {early} -> {last}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut e = env();
            e.reset();
            let mut rs = Vec::new();
            for i in 0..20 {
                let out = e.step(i % 3);
                rs.push(out.reward);
                if out.done {
                    break;
                }
            }
            rs
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn templates_round_robin() {
        let t1 = lead_hazard_template();
        let mut t2 = lead_hazard_template();
        t2.0.set_ego(VehicleState::new(10.0, 1.75, 0.0, 5.0));
        let mut e = MitigationEnv::new(vec![t1, t2], LbcAgent::default(), EnvConfig::default());
        e.reset();
        let x_first = e.world().ego().x;
        e.reset();
        let x_second = e.world().ego().x;
        assert_ne!(x_first, x_second);
        e.reset();
        assert_eq!(e.world().ego().x, x_first);
    }

    #[test]
    #[should_panic(expected = "template")]
    fn empty_templates_panic() {
        let _ = MitigationEnv::new(vec![], LbcAgent::default(), EnvConfig::default());
    }

    #[test]
    fn empty_tube_memo_speeds_repeats_without_changing_sti() {
        let mut plain = env();
        let mut memoized = env();
        let memo = memoized.enable_tube_memo();
        assert!(memo.is_empty());

        plain.reset();
        memoized.reset();
        let expect = plain.current_sti();
        assert_eq!(memoized.current_sti(), expect);
        let cached = memo.len();
        assert!(cached >= 1, "first evaluation must populate the memo");
        // A repeat query from the same state is a pure cache hit.
        assert_eq!(memoized.current_sti(), expect);
        assert_eq!(memo.len(), cached);
    }

    #[test]
    #[should_panic(expected = "one map")]
    fn memo_rejects_mixed_map_templates() {
        let t1 = lead_hazard_template();
        let mut t2 = lead_hazard_template();
        t2.0 = World::new(
            RoadMap::straight_road(3, 3.5, 400.0),
            VehicleState::new(30.0, 1.75, 0.0, 10.0),
            0.1,
        );
        let mut e = MitigationEnv::new(vec![t1, t2], LbcAgent::default(), EnvConfig::default());
        let _ = e.enable_tube_memo();
    }
}
