//! The SMC's state observation `S_t`.
//!
//! The paper feeds three camera frames through a CNN backbone; this
//! reproduction provides the geometric content of those frames directly
//! (DESIGN.md §2): ego kinematics, the current combined STI, and an
//! 8-sector radial scan of the surrounding actors (range + closing speed
//! per sector).

use iprism_geom::wrap_to_pi;
use iprism_sim::World;
use serde::{Deserialize, Serialize};

/// Number of radial sectors in the scan.
pub const SECTORS: usize = 8;
/// Total observation dimensionality.
pub const FEATURE_DIM: usize = 3 + 2 * SECTORS;

/// Maximum range of the radial scan (m).
const SCAN_RANGE: f64 = 60.0;

/// Builds observation vectors from a world state plus the externally
/// computed combined STI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FeatureExtractor;

impl FeatureExtractor {
    /// Creates an extractor.
    pub fn new() -> Self {
        FeatureExtractor
    }

    /// The observation for the current world state.
    ///
    /// Layout: `[v/30, lateral_offset/2, STI, (range, closing)×8]` where
    /// sector 0 is dead ahead and sectors proceed counter-clockwise.
    /// Ranges are `1 − d/60` (1 = touching, 0 = nothing within 60 m);
    /// closing speeds are clipped to `[-1, 1]` at 20 m/s.
    pub fn features(&self, world: &World, sti_combined: f64) -> Vec<f64> {
        let ego = world.ego();
        let mut out = Vec::with_capacity(FEATURE_DIM);
        out.push(ego.v / 30.0);
        let lane = world.map().nearest_lane(ego.position());
        out.push((lane.project(ego.position()).lateral / 2.0).clamp(-2.0, 2.0));
        out.push(sti_combined);

        let mut nearest = [f64::INFINITY; SECTORS];
        let mut closing = [0.0f64; SECTORS];
        for actor in world.actors() {
            let offset = actor.state.position() - ego.position();
            let dist = offset.norm();
            if dist > SCAN_RANGE || dist <= f64::EPSILON {
                continue;
            }
            let bearing = wrap_to_pi(offset.angle().get() - ego.theta);
            let sector = sector_of(bearing);
            if dist < nearest[sector] {
                nearest[sector] = dist;
                // d/dt of the separation, negated: positive when the
                // bodies are closing, for any sector (front leader the ego
                // gains on, rear chaser gaining on the ego, side threats).
                let rel_v = ego.velocity() - actor.state.velocity();
                closing[sector] = rel_v.dot(offset.normalize_or_zero());
            }
        }
        for s in 0..SECTORS {
            let range_feat = if nearest[s].is_finite() {
                1.0 - nearest[s] / SCAN_RANGE
            } else {
                0.0
            };
            out.push(range_feat);
            out.push((closing[s] / 20.0).clamp(-1.0, 1.0));
        }
        debug_assert_eq!(out.len(), FEATURE_DIM);
        out
    }
}

/// Maps a bearing in `(-π, π]` to one of eight 45° sectors; sector 0 is
/// centred dead ahead.
fn sector_of(bearing: f64) -> usize {
    let step = std::f64::consts::TAU / SECTORS as f64;
    let shifted = iprism_geom::normalize_angle(bearing + step * 0.5);
    ((shifted / step) as usize).min(SECTORS - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iprism_dynamics::VehicleState;
    use iprism_map::RoadMap;
    use iprism_sim::{Actor, Behavior};
    use std::f64::consts::{FRAC_PI_2, PI};

    fn world() -> World {
        let map = RoadMap::straight_road(2, 3.5, 400.0);
        World::new(map, VehicleState::new(100.0, 1.75, 0.0, 9.0), 0.1)
    }

    #[test]
    fn sector_mapping() {
        assert_eq!(sector_of(0.0), 0);
        assert_eq!(sector_of(FRAC_PI_2), 2);
        assert_eq!(sector_of(PI), 4);
        assert_eq!(sector_of(-FRAC_PI_2), 6);
        assert_eq!(sector_of(0.3), 0); // within the ±22.5° front sector
        assert_eq!(sector_of(0.5), 1);
    }

    #[test]
    fn empty_world_features() {
        let f = FeatureExtractor::new().features(&world(), 0.2);
        assert_eq!(f.len(), FEATURE_DIM);
        assert!((f[0] - 0.3).abs() < 1e-9); // 9/30
        assert!(f[1].abs() < 1e-9); // lane-centred
        assert!((f[2] - 0.2).abs() < 1e-12); // STI passes through
        assert!(f[3..].iter().all(|&x| x.abs() < 1e-12)); // no actors
    }

    #[test]
    fn front_actor_lands_in_sector_zero() {
        let mut w = world();
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(130.0, 1.75, 0.0, 0.0),
            Behavior::Idle,
        ));
        let f = FeatureExtractor::new().features(&w, 0.0);
        let range0 = f[3];
        assert!((range0 - 0.5).abs() < 1e-9, "30 m of 60: {range0}");
        let closing0 = f[4];
        assert!(closing0 > 0.0, "ego closing on stopped car: {closing0}");
        // other sectors untouched
        assert!(f[5..].iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn rear_threat_closing_positive() {
        let mut w = world();
        // Faster car right behind the ego, same lane: rear sector 4.
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(70.0, 1.75, 0.0, 15.0),
            Behavior::RearApproach { target_speed: 15.0 },
        ));
        let f = FeatureExtractor::new().features(&w, 0.0);
        let range4 = f[3 + 2 * 4];
        let closing4 = f[3 + 2 * 4 + 1];
        assert!(range4 > 0.4);
        assert!(
            closing4 > 0.0,
            "rear car gaining must read as closing: {closing4}"
        );
    }

    #[test]
    fn nearest_actor_wins_sector() {
        let mut w = world();
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(150.0, 1.75, 0.0, 0.0),
            Behavior::Idle,
        ));
        w.spawn(Actor::vehicle(
            2,
            VehicleState::new(120.0, 1.75, 0.0, 0.0),
            Behavior::Idle,
        ));
        let f = FeatureExtractor::new().features(&w, 0.0);
        assert!((f[3] - (1.0 - 20.0 / 60.0)).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_ignored() {
        let mut w = world();
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(300.0, 1.75, 0.0, 0.0),
            Behavior::Idle,
        ));
        let f = FeatureExtractor::new().features(&w, 0.0);
        assert!(f[3..].iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn features_are_finite_and_bounded() {
        let mut w = world();
        for i in 0..6 {
            w.spawn(Actor::vehicle(
                i + 1,
                VehicleState::new(
                    80.0 + 10.0 * i as f64,
                    (i % 2) as f64 * 3.5 + 1.75,
                    0.3,
                    20.0,
                ),
                Behavior::Idle,
            ));
        }
        let f = FeatureExtractor::new().features(&w, 0.9);
        for v in &f {
            assert!(v.is_finite());
            assert!(v.abs() <= 2.0, "feature out of range: {v}");
        }
    }
}
