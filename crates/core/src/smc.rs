//! The Safety-hazard Mitigation Controller: training and inference.

use std::path::Path;

use iprism_agents::{MitigationAction, MitigationPolicy};
use iprism_risk::{SceneSnapshot, StiEvaluator};
use iprism_rl::{train, DdqnAgent, DdqnConfig};
use iprism_sim::{EgoController, EpisodeConfig, World};
use serde::{Deserialize, Serialize};

use crate::{EnvConfig, FeatureExtractor, MitigationEnv};

/// Training configuration for [`train_smc`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmcTrainConfig {
    /// D-DQN hyperparameters.
    pub ddqn: DdqnConfig,
    /// Environment configuration (action set, reward weights, STI preset).
    pub env: EnvConfig,
    /// Training episodes (the paper trains 100 per typology).
    pub episodes: usize,
    /// Memoize the empty-world tube `|T^∅|` across the training run (on by
    /// default; silently skipped when the scenario templates use different
    /// maps, where one shared memo would be unsound). Episodes reset to
    /// bit-identical template worlds, so the memo's repeat hits are exact
    /// and trained weights are unchanged — see the regression test.
    #[serde(default = "default_true")]
    pub empty_tube_memo: bool,
}

fn default_true() -> bool {
    true
}

impl Default for SmcTrainConfig {
    fn default() -> Self {
        let ddqn = DdqnConfig {
            hidden: vec![64, 64],
            epsilon: iprism_rl::EpsilonSchedule::new(1.0, 0.05, 1_500),
            max_steps_per_episode: 0, // the env terminates episodes itself
            ..DdqnConfig::default()
        };
        SmcTrainConfig {
            ddqn,
            env: EnvConfig::default(),
            episodes: 100,
            empty_tube_memo: default_true(),
        }
    }
}

impl SmcTrainConfig {
    /// A tiny configuration for unit tests.
    pub fn small_test() -> Self {
        let mut cfg = SmcTrainConfig {
            ddqn: DdqnConfig::small_test(),
            episodes: 3,
            ..SmcTrainConfig::default()
        };
        cfg.ddqn.max_steps_per_episode = 0;
        cfg
    }
}

/// The trained SMC policy (Fig. 2 inference path): extract the state
/// observation (including the CVTR-predicted combined STI), evaluate the
/// Q-network, take the argmax action (Eq. 10).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Smc {
    agent: DdqnAgent,
    actions: Vec<MitigationAction>,
    #[serde(skip, default = "FeatureExtractor::new")]
    extractor: FeatureExtractor,
    env_config: EnvConfig,
}

impl Smc {
    /// Wraps a trained agent as a mitigation policy.
    pub fn new(agent: DdqnAgent, env_config: EnvConfig) -> Self {
        Smc {
            agent,
            actions: env_config.actions.clone(),
            extractor: FeatureExtractor::new(),
            env_config,
        }
    }

    /// The underlying Q-network agent.
    pub fn agent(&self) -> &DdqnAgent {
        &self.agent
    }

    /// The action set (index order matches Q-network outputs).
    pub fn actions(&self) -> &[MitigationAction] {
        &self.actions
    }

    /// Saves the policy (weights + config) as JSON.
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialization error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a policy saved with [`Smc::save`].
    ///
    /// # Errors
    ///
    /// Returns any I/O or deserialization error.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(std::io::Error::other)
    }
}

impl MitigationPolicy for Smc {
    fn decide(&mut self, world: &World) -> MitigationAction {
        let sti = if self.env_config.sti_in_observation {
            let scene = SceneSnapshot::from_world_cvtr(
                world,
                self.env_config.reach.horizon,
                self.env_config.reach.dt,
            );
            StiEvaluator::new(self.env_config.reach.clone()).evaluate_combined(world.map(), &scene)
        } else {
            0.0
        };
        let features = self.extractor.features(world, sti);
        let idx = self.agent.act_greedy(&features);
        self.actions[idx]
    }
}

/// A trained SMC plus its training history.
#[derive(Debug, Clone)]
pub struct TrainedSmc {
    /// The trained policy.
    pub smc: Smc,
    /// Undiscounted return per training episode.
    pub episode_returns: Vec<f64>,
    /// Steps per training episode.
    pub episode_lengths: Vec<usize>,
}

/// Trains an SMC with D-DQN on the given scenario templates, with `ads`
/// driving the ego whenever the SMC outputs No-Op — the paper's training
/// protocol (§III-B / §IV-B1: 100 episodes on the selected scenario of each
/// typology).
pub fn train_smc<A: EgoController>(
    templates: Vec<(World, EpisodeConfig)>,
    ads: A,
    config: &SmcTrainConfig,
) -> TrainedSmc {
    let mut env = MitigationEnv::new(templates, ads, config.env.clone());
    if config.empty_tube_memo && env.templates_share_map() {
        let _memo = env.enable_tube_memo();
    }
    let trained = train(&mut env, &config.ddqn, config.episodes);
    TrainedSmc {
        smc: Smc::new(trained.agent, config.env.clone()),
        episode_returns: trained.episode_returns,
        episode_lengths: trained.episode_lengths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iprism_agents::LbcAgent;
    use iprism_dynamics::VehicleState;
    use iprism_map::RoadMap;
    use iprism_sim::{Actor, Behavior, Goal};

    fn template() -> (World, EpisodeConfig) {
        let map = RoadMap::straight_road(2, 3.5, 500.0);
        let mut w = World::new(map, VehicleState::new(30.0, 1.75, 0.0, 10.0), 0.1);
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(80.0, 1.75, 0.0, 0.0),
            Behavior::Idle,
        ));
        (
            w,
            EpisodeConfig {
                max_time: 12.0,
                goal: Goal::XThreshold(200.0),
                stop_on_collision: true,
            },
        )
    }

    #[test]
    fn training_produces_working_policy() {
        let trained = train_smc(
            vec![template()],
            LbcAgent::default(),
            &SmcTrainConfig::small_test(),
        );
        assert_eq!(trained.episode_returns.len(), 3);
        // Policy is callable on a fresh world.
        let (w, _) = template();
        let mut smc = trained.smc;
        let action = smc.decide(&w);
        assert!(MitigationAction::BRAKE_ACCEL.contains(&action));
    }

    #[test]
    fn training_is_deterministic() {
        let run = || {
            train_smc(
                vec![template()],
                LbcAgent::default(),
                &SmcTrainConfig::small_test(),
            )
            .episode_returns
        };
        assert_eq!(run(), run());
    }

    /// The default-on empty-tube memo must not change training: episodes
    /// reset to bit-identical template worlds, so every memo hit replays an
    /// exact earlier computation and the trained weights are byte-identical
    /// to a memo-free run.
    #[test]
    fn empty_tube_memo_leaves_trained_weights_unchanged() {
        let run = |memo: bool| {
            let mut cfg = SmcTrainConfig::small_test();
            cfg.empty_tube_memo = memo;
            let trained = train_smc(vec![template()], LbcAgent::default(), &cfg);
            let weights = serde_json::to_string(trained.smc.agent().network()).unwrap();
            (weights, trained.episode_returns)
        };
        let (memo_weights, memo_returns) = run(true);
        let (plain_weights, plain_returns) = run(false);
        assert_eq!(memo_returns, plain_returns);
        assert_eq!(memo_weights, plain_weights);
    }

    #[test]
    fn save_load_roundtrip() {
        let trained = train_smc(
            vec![template()],
            LbcAgent::default(),
            &SmcTrainConfig::small_test(),
        );
        let dir = std::env::temp_dir().join("iprism-smc-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("smc.json");
        trained.smc.save(&path).unwrap();
        let mut loaded = Smc::load(&path).unwrap();
        let (w, _) = template();
        let mut original = trained.smc.clone();
        assert_eq!(original.decide(&w), loaded.decide(&w));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(Smc::load(Path::new("/nonexistent/smc.json")).is_err());
    }
}
