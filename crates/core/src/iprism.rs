//! The top-level iPrism framework type.

use iprism_agents::MitigatedAgent;
use iprism_reach::ReachConfig;
use iprism_risk::StiEvaluator;
use iprism_sim::EgoController;

use crate::Smc;

/// The assembled iPrism framework: a risk monitor (STI) plus a trained
/// safety-hazard mitigation controller.
///
/// iPrism is ADS-agnostic (§V-C "generalizable and compatible with other
/// agents"): [`Iprism::attach`] wraps *any* [`EgoController`] — the LBC
/// surrogate, the RIP surrogate, or a custom agent — into a protected agent
/// whose actions the SMC overrides whenever mitigation is needed.
#[derive(Debug, Clone)]
pub struct Iprism {
    smc: Smc,
    monitor: ReachConfig,
}

impl Iprism {
    /// Creates the framework around a trained SMC, using the default
    /// (offline-quality) reach configuration for standalone monitoring.
    pub fn new(smc: Smc) -> Self {
        Iprism {
            smc,
            monitor: ReachConfig::default(),
        }
    }

    /// Overrides the monitoring reach configuration.
    pub fn with_monitor_config(mut self, config: ReachConfig) -> Self {
        self.monitor = config;
        self
    }

    /// The trained mitigation controller.
    pub fn smc(&self) -> &Smc {
        &self.smc
    }

    /// A standalone STI evaluator configured for offline risk monitoring
    /// and dataset characterization (§V-D).
    pub fn monitor(&self) -> StiEvaluator {
        StiEvaluator::new(self.monitor.clone())
    }

    /// Wraps an ADS controller into an iPrism-protected agent
    /// (`ADS ⊗ SMC`, Fig. 2).
    pub fn attach<A: EgoController>(&self, ads: A) -> MitigatedAgent<A, Smc> {
        MitigatedAgent::new(ads, self.smc.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{train_smc, SmcTrainConfig};
    use iprism_agents::LbcAgent;
    use iprism_dynamics::VehicleState;
    use iprism_map::RoadMap;
    use iprism_sim::{run_episode, Actor, Behavior, EpisodeConfig, Goal, World};

    fn template() -> (World, EpisodeConfig) {
        let map = RoadMap::straight_road(2, 3.5, 500.0);
        let mut w = World::new(map, VehicleState::new(30.0, 1.75, 0.0, 10.0), 0.1);
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(90.0, 1.75, 0.0, 0.0),
            Behavior::Idle,
        ));
        (
            w,
            EpisodeConfig {
                max_time: 12.0,
                goal: Goal::XThreshold(200.0),
                stop_on_collision: true,
            },
        )
    }

    #[test]
    fn attach_produces_runnable_agent() {
        let trained = train_smc(
            vec![template()],
            LbcAgent::default(),
            &SmcTrainConfig::small_test(),
        );
        let iprism = Iprism::new(trained.smc);
        let mut protected = iprism.attach(LbcAgent::default());
        let (mut w, cfg) = template();
        let r = run_episode(&mut w, &mut protected, &cfg);
        // The episode runs to a definite outcome either way; the protected
        // agent is a valid EgoController.
        let _ = r.outcome;
        assert!(r.trace.len() > 1);
    }

    #[test]
    fn monitor_evaluates_sti() {
        let trained = train_smc(
            vec![template()],
            LbcAgent::default(),
            &SmcTrainConfig::small_test(),
        );
        let iprism = Iprism::new(trained.smc).with_monitor_config(ReachConfig::fast());
        let (w, _) = template();
        let scene = iprism_risk::SceneSnapshot::from_world_cvtr(
            &w,
            iprism_units::Seconds::new(2.4),
            iprism_units::Seconds::new(0.3),
        );
        let sti = iprism.monitor().evaluate(w.map(), &scene);
        assert!((0.0..=1.0).contains(&sti.combined));
        assert_eq!(sti.per_actor.len(), 1);
    }
}
