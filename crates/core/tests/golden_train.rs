//! Golden bit-identity test for the batched training engine: a seeded
//! `train_smc` run through the batched GEMM path must produce **byte-
//! identical** serialized weights to the retained per-sample reference
//! implementation, at STI thread count 1 and at the automatic default —
//! the training-side counterpart of `scenarios/tests/determinism.rs`.
//!
//! This file holds a single `#[test]` so its `std::env::set_var` of
//! `IPRISM_STI_THREADS` cannot race a sibling test in the same process.

// Integration-test helpers sit outside `#[cfg(test)]`, where clippy.toml's
// test waiver for expect/unwrap does not reach.
#![allow(clippy::expect_used)]

use iprism_agents::LbcAgent;
use iprism_core::{train_smc, SmcTrainConfig};
use iprism_dynamics::VehicleState;
use iprism_map::RoadMap;
use iprism_risk::STI_THREADS_ENV;
use iprism_sim::{Actor, Behavior, EpisodeConfig, Goal, World};

fn template() -> (World, EpisodeConfig) {
    let map = RoadMap::straight_road(2, 3.5, 500.0);
    let mut w = World::new(map, VehicleState::new(30.0, 1.75, 0.0, 10.0), 0.1);
    w.spawn(Actor::vehicle(
        1,
        VehicleState::new(80.0, 1.75, 0.0, 0.0),
        Behavior::Idle,
    ));
    (
        w,
        EpisodeConfig {
            max_time: 12.0,
            goal: Goal::XThreshold(200.0),
            stop_on_collision: true,
        },
    )
}

/// Serialized online-network weights of a seeded `train_smc` run. `Debug`/
/// JSON formatting prints every `f64` in shortest round-trip form, so equal
/// strings mean bit-equal weights.
fn trained_weights(reference_engine: bool) -> String {
    let mut cfg = SmcTrainConfig::small_test();
    cfg.ddqn.reference_engine = reference_engine;
    let trained = train_smc(vec![template()], LbcAgent::default(), &cfg);
    serde_json::to_string(trained.smc.agent().network()).expect("network weights serialize")
}

#[test]
fn batched_train_smc_matches_per_sample_reference_at_1_and_auto_threads() {
    // Auto thread count first (whatever the host/env provides)...
    let batched_auto = trained_weights(false);
    let reference_auto = trained_weights(true);
    assert_eq!(
        batched_auto, reference_auto,
        "batched engine diverged from the per-sample reference (auto threads)"
    );

    // ...then pinned to a single STI worker thread.
    std::env::set_var(STI_THREADS_ENV, "1");
    let batched_serial = trained_weights(false);
    let reference_serial = trained_weights(true);
    std::env::remove_var(STI_THREADS_ENV);
    assert_eq!(
        batched_serial, reference_serial,
        "batched engine diverged from the per-sample reference (1 thread)"
    );

    // The STI fan-out itself is thread-count byte-identical (PR 3), so the
    // two regimes must agree with each other too.
    assert_eq!(batched_auto, batched_serial);
}
