//! §V-C's roundabout experiment: RIP vs. RIP+iPrism on the ghost-cut-in ×
//! roundabout typology.

use iprism_agents::{EpisodeAgent, MitigatedAgent, RipAgent, RipConfig};
use iprism_core::Smc;
use iprism_scenarios::{sample_instances, Typology};
use serde::{Deserialize, Serialize};

use crate::suite::ScenarioSuite;
use crate::{render_table, EvalConfig};

/// The roundabout comparison (paper: RIP collides in 84.3%, RIP+iPrism in
/// 68.6% — iPrism mitigates 18.6% of RIP's accidents).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundaboutStudy {
    /// Instances evaluated.
    pub instances: usize,
    /// RIP-alone collisions.
    pub rip_accidents: usize,
    /// RIP+iPrism collisions.
    pub rip_iprism_accidents: usize,
}

impl RoundaboutStudy {
    /// RIP total collision rate (%).
    pub fn rip_tcr(&self) -> f64 {
        self.rip_accidents as f64 / self.instances.max(1) as f64 * 100.0
    }

    /// RIP+iPrism total collision rate (%).
    pub fn rip_iprism_tcr(&self) -> f64 {
        self.rip_iprism_accidents as f64 / self.instances.max(1) as f64 * 100.0
    }

    /// Fraction of RIP's accidents that iPrism mitigated (%).
    pub fn mitigated_pct(&self) -> f64 {
        if self.rip_accidents == 0 {
            return 0.0;
        }
        (self.rip_accidents.saturating_sub(self.rip_iprism_accidents)) as f64
            / self.rip_accidents as f64
            * 100.0
    }
}

impl std::fmt::Display for RoundaboutStudy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = vec![
            "Agent".to_string(),
            "Collisions".to_string(),
            "TCR".to_string(),
        ];
        let rows = vec![
            vec![
                "RIP".to_string(),
                format!("{}/{}", self.rip_accidents, self.instances),
                format!("{:.1}%", self.rip_tcr()),
            ],
            vec![
                "RIP+iPrism".to_string(),
                format!("{}/{}", self.rip_iprism_accidents, self.instances),
                format!("{:.1}%", self.rip_iprism_tcr()),
            ],
        ];
        writeln!(f, "{}", render_table(&header, &rows))?;
        write!(
            f,
            "iPrism mitigates {:.1}% of RIP's accidents",
            self.mitigated_pct()
        )
    }
}

/// Runs the roundabout sweep with RIP and RIP+iPrism (the SMC trained on
/// LBC straight-road scenarios, per the paper's generalization claim).
pub fn roundabout_study(smc: &Smc, config: &EvalConfig) -> RoundaboutStudy {
    let suite = ScenarioSuite::new(config);
    let specs = sample_instances(
        Typology::RoundaboutGhostCutIn,
        config.instances,
        config.seed,
    );

    let rip_cfg = RipConfig::default();
    let rip = suite.sweep_map(
        specs.clone(),
        |_| Box::new(RipAgent::new(rip_cfg.clone())) as Box<dyn EpisodeAgent>,
        |_, run| run.collided(),
    );
    let rip_iprism = suite.sweep_map(
        specs,
        |_| {
            Box::new(MitigatedAgent::new(
                RipAgent::new(rip_cfg.clone()),
                smc.clone(),
            )) as Box<dyn EpisodeAgent>
        },
        |_, run| run.collided(),
    );

    RoundaboutStudy {
        instances: rip.len(),
        rip_accidents: rip.iter().filter(|&&c| c).count(),
        rip_iprism_accidents: rip_iprism.iter().filter(|&&c| c).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mitigation::select_training_scenario;
    use iprism_agents::LbcAgent;
    use iprism_core::{train_smc, SmcTrainConfig};

    #[test]
    fn smoke_roundabout() {
        let mut cfg = EvalConfig::smoke();
        cfg.instances = 5;
        // A minimally trained SMC suffices for the smoke test.
        let spec = select_training_scenario(Typology::GhostCutIn, &cfg, 8)
            .expect("ghost cut-in accidents exist");
        let trained = train_smc(
            vec![(spec.build_world(), spec.episode_config())],
            LbcAgent::default(),
            &SmcTrainConfig::small_test(),
        );
        let study = roundabout_study(&trained.smc, &cfg);
        assert_eq!(study.instances, 5);
        assert!(study.rip_accidents <= 5);
        assert!((0.0..=100.0).contains(&study.rip_tcr()));
        assert!((0.0..=100.0).contains(&study.mitigated_pct()));
        let text = study.to_string();
        assert!(text.contains("RIP+iPrism"));
    }
}
