//! Plain-text table rendering for study reports.

/// Renders rows as a fixed-width text table with a header rule, e.g.
///
/// ```text
/// Metric      Ghost Cut-In   All
/// --------------------------------
/// STI (ours)  2.94 (0.33)    3.69
/// ```
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(cell);
            line.extend(std::iter::repeat_n(' ', w - cell.len()));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(header, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn renders_aligned_columns() {
        let t = render_table(
            &s(&["Metric", "Value"]),
            &[s(&["STI", "3.69"]), s(&["TTC", "0.83"])],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Metric"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("STI"));
        // Columns aligned: "3.69" starts at the same index as "Value"
        let col = lines[0].find("Value").unwrap();
        assert_eq!(&lines[2][col..col + 4], "3.69");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let _ = render_table(&s(&["A", "B"]), &[s(&["only one"])]);
    }
}
