//! Tables III & IV: mitigation efficacy of iPrism vs. the baseline agents,
//! including the rear-end acceleration extension (§V-C).

use iprism_agents::{AcaController, EpisodeAgent, LbcAgent, MitigatedAgent, RipAgent};
use iprism_core::{train_smc, RewardWeights, Smc, SmcTrainConfig, TrainedPolicyCache};
use iprism_risk::{SceneSnapshot, StiEvaluator};
use iprism_scenarios::{sample_instances, ScenarioSpec, Typology};
use serde::{Deserialize, Serialize};

use crate::suite::{lbc, ScenarioSuite};
use crate::{parallel_map, render_table, stats, EvalConfig};

/// The agent configurations compared in Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AgentKind {
    /// LBC + SMC with STI in the reward — LBC+iPrism.
    LbcIprism,
    /// LBC + SMC trained *without* STI in the reward (the ablation).
    LbcSmcNoSti,
    /// LBC + TTC-based automatic collision avoidance.
    LbcAca,
    /// RIP + the SMC trained on LBC — RIP+iPrism (generalization row).
    RipIprism,
}

impl AgentKind {
    /// All Table-III rows in paper order.
    pub const ALL: [AgentKind; 4] = [
        AgentKind::LbcIprism,
        AgentKind::LbcSmcNoSti,
        AgentKind::LbcAca,
        AgentKind::RipIprism,
    ];

    /// Row label matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            AgentKind::LbcIprism => "LBC+SMC w/ STI (LBC+iPrism)",
            AgentKind::LbcSmcNoSti => "LBC+SMC w/o STI",
            AgentKind::LbcAca => "LBC+TTC-based ACA",
            AgentKind::RipIprism => "RIP+SMC w/ STI (RIP+iPrism)",
        }
    }

    /// Whether the baseline (TAS reference) is RIP rather than LBC.
    pub fn baseline_is_rip(self) -> bool {
        matches!(self, AgentKind::RipIprism)
    }
}

/// One Table-III cell group: an agent's performance on one typology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MitigationRow {
    /// The evaluated agent.
    pub agent: AgentKind,
    /// The typology.
    pub typology: Typology,
    /// Valid instances evaluated.
    pub instances: usize,
    /// Total accident scenarios of the *baseline* agent (TAS).
    pub tas: usize,
    /// Collisions avoided: baseline-accident scenarios the agent survived.
    pub ca: usize,
    /// Accidents of the evaluated agent (its own collision count).
    pub accidents: usize,
}

impl MitigationRow {
    /// `CA(%) = CA(#) / TAS(#) × 100`.
    pub fn ca_pct(&self) -> f64 {
        if self.tas == 0 {
            0.0
        } else {
            self.ca as f64 / self.tas as f64 * 100.0
        }
    }

    /// `TCR(%) = accidents / instances × 100` (lower is better).
    pub fn tcr_pct(&self) -> f64 {
        if self.instances == 0 {
            0.0
        } else {
            self.accidents as f64 / self.instances as f64 * 100.0
        }
    }
}

/// One Table-IV row: average first-mitigation-activation time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingRow {
    /// The typology.
    pub typology: Typology,
    /// Average activation time of LBC+iPrism (s into the scenario).
    pub iprism_avg: f64,
    /// Average activation time of LBC+TTC-based ACA (s).
    pub aca_avg: f64,
}

impl TimingRow {
    /// The paper's "lead time in mitigation": ACA minus iPrism (positive
    /// when iPrism acts earlier).
    pub fn lead_time(&self) -> f64 {
        self.aca_avg - self.iprism_avg
    }
}

/// The full Table-III/IV reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MitigationStudy {
    /// Agent × typology cells.
    pub rows: Vec<MitigationRow>,
    /// Activation-timing rows (Table IV).
    pub timings: Vec<TimingRow>,
    /// The per-typology training scenario chosen by the max-average-STI
    /// criterion (§IV-B1).
    pub training_scenarios: Vec<(Typology, ScenarioSpec)>,
}

impl MitigationStudy {
    /// Looks up an agent × typology cell.
    pub fn cell(&self, agent: AgentKind, typology: Typology) -> Option<&MitigationRow> {
        self.rows
            .iter()
            .find(|r| r.agent == agent && r.typology == typology)
    }
}

impl std::fmt::Display for MitigationStudy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let typologies: Vec<Typology> = {
            let mut ts: Vec<Typology> = self.rows.iter().map(|r| r.typology).collect();
            ts.dedup();
            ts
        };
        let mut header = vec!["Agent".to_string()];
        for t in &typologies {
            header.push(format!("{} CA%", t.name()));
            header.push(format!("{} TCR%", t.name()));
            header.push(format!("{} CA#/TAS", t.name()));
        }
        let mut rows = Vec::new();
        for &agent in &AgentKind::ALL {
            let mut row = vec![agent.name().to_string()];
            for &t in &typologies {
                match self.cell(agent, t) {
                    Some(c) => {
                        row.push(format!("{:.0}%", c.ca_pct()));
                        row.push(format!("{:.1}%", c.tcr_pct()));
                        row.push(format!("{}/{}", c.ca, c.tas));
                    }
                    None => {
                        row.extend(["-".to_string(), "-".to_string(), "-".to_string()]);
                    }
                }
            }
            rows.push(row);
        }
        writeln!(f, "{}", render_table(&header, &rows))?;
        writeln!(f, "Activation timing (Table IV):")?;
        let t_header = vec![
            "Typology".to_string(),
            "LBC+iPrism avg t (s)".to_string(),
            "LBC+ACA avg t (s)".to_string(),
            "Lead time (s)".to_string(),
        ];
        let t_rows: Vec<Vec<String>> = self
            .timings
            .iter()
            .map(|t| {
                vec![
                    t.typology.name().to_string(),
                    format!("{:.2}", t.iprism_avg),
                    format!("{:.2}", t.aca_avg),
                    format!("{:.2}", t.lead_time()),
                ]
            })
            .collect();
        write!(f, "{}", render_table(&t_header, &t_rows))
    }
}

/// Selects the `k` highest-risk training scenarios for a typology: among
/// the LBC-accident instances, those with the highest average combined STI
/// before the accident (§IV-B1's criterion), best first.
///
/// One reproduction-specific refinement (see DESIGN.md §2): the study
/// trains on the top **three** scenarios instead of the single top one —
/// a lone deterministic scenario overfits our low-dimensional observation.
pub fn select_training_scenarios(
    typology: Typology,
    config: &EvalConfig,
    pool: usize,
    k: usize,
) -> Vec<ScenarioSpec> {
    let suite = ScenarioSuite::new(config);
    let specs = sample_instances(typology, pool.min(config.instances), config.seed);
    let evaluator = StiEvaluator::new(iprism_reach::ReachConfig::fast());
    let scored = suite.sweep_map(
        specs,
        |_| lbc(),
        |spec, run| {
            if !run.collided() {
                return None;
            }
            let trace = run.trace;
            let accident = trace.first_collision_index()?;
            let horizon_steps = (evaluator.config.horizon.get() / trace.dt()).ceil() as usize;
            let mut values = Vec::new();
            for i in (0..=accident).step_by(config.stride.max(1) * 2) {
                let scene = SceneSnapshot::from_trace(&trace, i, horizon_steps)?;
                values.push(evaluator.evaluate_combined(&run.map, &scene));
            }
            Some((spec.clone(), stats::mean(&values)))
        },
    );
    let mut scored: Vec<(ScenarioSpec, f64)> = scored.into_iter().flatten().collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    scored.into_iter().take(k).map(|(spec, _)| spec).collect()
}

/// The single highest-risk training scenario (the paper's literal
/// criterion). Returns `None` when no pool instance ends in an accident.
pub fn select_training_scenario(
    typology: Typology,
    config: &EvalConfig,
    pool: usize,
) -> Option<ScenarioSpec> {
    select_training_scenarios(typology, config, pool, 1)
        .into_iter()
        .next()
}

fn smc_train_config(episodes: usize, with_sti: bool) -> SmcTrainConfig {
    let mut cfg = SmcTrainConfig {
        episodes,
        ..SmcTrainConfig::default()
    };
    if !with_sti {
        // Full ablation: STI leaves both the reward (Eq. 8 with α₀ = 0)
        // and the observation vector.
        cfg.env.weights = RewardWeights::without_sti();
        cfg.env.sti_in_observation = false;
    }
    cfg
}

/// Reproduces Tables III and IV over the given typologies (defaults:
/// ghost cut-in, lead cut-in, lead slowdown, rear-end — the last being the
/// §V-C acceleration extension).
pub fn mitigation_study(
    config: &EvalConfig,
    typologies: &[Typology],
    smc_episodes: usize,
) -> MitigationStudy {
    let suite = ScenarioSuite::new(config);
    let mut rows = Vec::new();
    let mut timings = Vec::new();
    let mut training_scenarios = Vec::new();

    for &typology in typologies {
        // 1. Pick the top-3 training scenarios and train both SMC variants.
        let mut train_specs = select_training_scenarios(typology, config, 60, 3);
        if train_specs.is_empty() {
            train_specs = sample_instances(typology, 1, config.seed);
        }
        training_scenarios.push((typology, train_specs[0].clone()));
        let templates: Vec<_> = train_specs
            .iter()
            .map(|s| (s.build_world(), s.episode_config()))
            .collect();
        let workers = config.resolved_workers();

        // Both SMC variants (with/without STI) train concurrently on the
        // shared pool; ordered collection keeps [with-STI, without-STI].
        // With a policy directory configured, each variant is trained once
        // ever and reused across studies (training is bit-deterministic, so
        // a cache hit is exactly the policy a fresh run would produce).
        let cache = config.policy_dir.as_ref().map(TrainedPolicyCache::new);
        let scenario_key = format!("{train_specs:?}:lbc");
        let smcs: Vec<Smc> = parallel_map(vec![true, false], workers.min(2), |with_sti| {
            let cfg = smc_train_config(smc_episodes, with_sti);
            let fresh = || train_smc(templates.clone(), LbcAgent::default(), &cfg).smc;
            match &cache {
                Some(c) => c.load_or_train(&cfg, &scenario_key, fresh),
                None => fresh(),
            }
        });
        let smc_sti = smcs[0].clone();
        let smc_nosti = smcs[1].clone();

        // 2. Evaluate every agent over the sweep through the suite runner;
        // activation timing surfaces uniformly via `EpisodeAgent`.
        let specs = suite.specs(typology);

        let lbc_outcomes = suite.sweep_map(
            specs.clone(),
            |_| lbc(),
            |_, run| (run.valid, run.collided()),
        );
        let rip_outcomes = suite.sweep_map(
            specs.clone(),
            |_| Box::new(RipAgent::default()) as Box<dyn EpisodeAgent>,
            |_, run| run.collided(),
        );

        let eval_agent = |kind: AgentKind| -> Vec<(bool, Option<f64>)> {
            let smc_sti = &smc_sti;
            let smc_nosti = &smc_nosti;
            let make_agent = move |_: &ScenarioSpec| -> Box<dyn EpisodeAgent> {
                match kind {
                    AgentKind::LbcIprism => {
                        Box::new(MitigatedAgent::new(LbcAgent::default(), smc_sti.clone()))
                    }
                    AgentKind::LbcSmcNoSti => {
                        Box::new(MitigatedAgent::new(LbcAgent::default(), smc_nosti.clone()))
                    }
                    AgentKind::LbcAca => Box::new(AcaController::new(LbcAgent::default(), 1.8)),
                    AgentKind::RipIprism => {
                        Box::new(MitigatedAgent::new(RipAgent::default(), smc_sti.clone()))
                    }
                }
            };
            suite.sweep_map(specs.clone(), make_agent, |_, run| {
                (run.collided(), run.first_activation)
            })
        };

        let mut iprism_times = Vec::new();
        let mut aca_times = Vec::new();
        for &agent in &AgentKind::ALL {
            let outcomes = eval_agent(agent);
            let baseline: Vec<bool> = if agent.baseline_is_rip() {
                rip_outcomes.clone()
            } else {
                lbc_outcomes.iter().map(|&(_, c)| c).collect()
            };
            let valid_mask: Vec<bool> = lbc_outcomes.iter().map(|&(v, _)| v).collect();

            let mut tas = 0;
            let mut ca = 0;
            let mut accidents = 0;
            let mut valid_count = 0;
            for i in 0..outcomes.len() {
                if !valid_mask[i] {
                    continue;
                }
                valid_count += 1;
                let (collided, activation) = &outcomes[i];
                if baseline[i] {
                    tas += 1;
                    if !collided {
                        ca += 1;
                    }
                }
                if *collided {
                    accidents += 1;
                }
                if let Some(t) = activation {
                    match agent {
                        AgentKind::LbcIprism => iprism_times.push(*t),
                        AgentKind::LbcAca => aca_times.push(*t),
                        _ => {}
                    }
                }
            }
            rows.push(MitigationRow {
                agent,
                typology,
                instances: valid_count,
                tas,
                ca,
                accidents,
            });
        }
        timings.push(TimingRow {
            typology,
            iprism_avg: stats::mean(&iprism_times),
            aca_avg: stats::mean(&aca_times),
        });
    }

    MitigationStudy {
        rows,
        timings,
        training_scenarios,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_prefers_accident_scenarios() {
        let cfg = EvalConfig::smoke();
        let spec = select_training_scenario(Typology::GhostCutIn, &cfg, 8).unwrap();
        // the selected scenario must actually defeat LBC
        let run = ScenarioSuite::run_spec(&spec, lbc());
        assert!(run.collided());
    }

    #[test]
    fn smoke_mitigation_single_typology() {
        let mut cfg = EvalConfig::smoke();
        cfg.instances = 6;
        let study = mitigation_study(&cfg, &[Typology::GhostCutIn], 4);
        assert_eq!(study.rows.len(), 4);
        assert_eq!(study.timings.len(), 1);
        assert_eq!(study.training_scenarios.len(), 1);
        for row in &study.rows {
            assert!(row.ca <= row.tas);
            assert!(row.accidents <= row.instances);
            assert!((0.0..=100.0).contains(&row.ca_pct()));
            assert!((0.0..=100.0).contains(&row.tcr_pct()));
        }
        let text = study.to_string();
        assert!(text.contains("LBC+iPrism"));
        assert!(text.contains("Activation timing"));
    }
}
