//! Table I: scenario counts and LBC baseline accidents per typology.

use iprism_scenarios::Typology;
use serde::{Deserialize, Serialize};

use crate::suite::{lbc, ScenarioSuite};
use crate::{render_table, EvalConfig};

/// One Table-I row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineRow {
    /// The typology.
    pub typology: Typology,
    /// Scenario instances executed.
    pub instances: usize,
    /// Valid instances (front-accident instances require the NPC-NPC crash).
    pub valid: usize,
    /// LBC baseline accidents (the paper's TAS column).
    pub accidents: usize,
    /// Hyperparameter names (Table I's "List of Hyperparameters").
    pub hyperparameters: Vec<String>,
}

/// The full Table-I reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineStudy {
    /// One row per NHTSA typology.
    pub rows: Vec<BaselineRow>,
}

impl BaselineStudy {
    /// Total valid scenarios (the paper's 4810).
    pub fn total_valid(&self) -> usize {
        self.rows.iter().map(|r| r.valid).sum()
    }
}

impl std::fmt::Display for BaselineStudy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = vec![
            "Scenario Typology".to_string(),
            "# Instances".to_string(),
            "# Valid".to_string(),
            "Hyperparameters".to_string(),
            "# Accidents of Baseline (LBC)".to_string(),
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.typology.name().to_string(),
                    r.instances.to_string(),
                    r.valid.to_string(),
                    r.hyperparameters.join(", "),
                    r.accidents.to_string(),
                ]
            })
            .collect();
        write!(f, "{}", render_table(&header, &rows))
    }
}

/// Reproduces Table I: runs the LBC baseline over every typology sweep and
/// counts accidents.
pub fn baseline_study(config: &EvalConfig) -> BaselineStudy {
    let suite = ScenarioSuite::new(config);
    let rows = Typology::NHTSA
        .iter()
        .map(|&typology| {
            let outcomes = suite.sweep_map(
                suite.specs(typology),
                |_| lbc(),
                |_, run| (run.valid, run.collided()),
            );
            let valid = outcomes.iter().filter(|(v, _)| *v).count();
            let accidents = outcomes.iter().filter(|(v, c)| *v && *c).count();
            BaselineRow {
                typology,
                instances: config.instances,
                valid,
                accidents,
                hyperparameters: typology
                    .hyperparameters()
                    .iter()
                    .map(std::string::ToString::to_string)
                    .collect(),
            }
        })
        .collect();
    BaselineStudy { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_study_has_expected_shape() {
        let study = baseline_study(&EvalConfig::smoke());
        assert_eq!(study.rows.len(), 5);
        for row in &study.rows {
            assert_eq!(row.instances, 8);
            assert!(row.valid <= row.instances);
            assert!(row.accidents <= row.valid);
            assert_eq!(row.hyperparameters.len(), 3);
        }
        // rear-end must be the worst for LBC, front accident harmless
        let get = |t: Typology| study.rows.iter().find(|r| r.typology == t).unwrap();
        assert_eq!(get(Typology::FrontAccident).accidents, 0);
        assert!(get(Typology::RearEnd).accidents >= get(Typology::LeadSlowdown).accidents);
        // display renders
        let text = study.to_string();
        assert!(text.contains("Ghost Cut-in"));
        assert!(study.total_valid() <= 40);
    }

    #[test]
    fn deterministic() {
        let a = baseline_study(&EvalConfig::smoke());
        let b = baseline_study(&EvalConfig::smoke());
        assert_eq!(a, b);
    }
}
