//! The scenario-suite runner: every table and figure fans out through here.
//!
//! All of §V's studies share one shape — sample scenario instances, drive an
//! [`EpisodeAgent`] through each on the shared worker pool, and project the
//! resulting [`EpisodeRun`]s into study-specific rows. [`ScenarioSuite`]
//! owns that shape so the studies contain only their projections; the
//! episode stepping itself lives in `iprism-sim`'s engine and nowhere else.
//!
//! The fan-out preserves input order and is bit-identical to a sequential
//! sweep for any worker count (see [`parallel_map`]), which is what lets the
//! golden byte-identity suite pin every study's serialized output.

use iprism_agents::{EpisodeAgent, LbcAgent};
use iprism_map::RoadMap;
use iprism_scenarios::{sample_instances, ScenarioSpec, Typology};
use iprism_sim::{run_episode, EpisodeConfig, EpisodeOutcome, MotionModel, Trace, World};

use crate::{parallel_map, EvalConfig};

/// The record of one finished episode: everything a study projection needs,
/// produced in a single pass over the sim loop.
#[derive(Debug, Clone)]
pub struct EpisodeRun {
    /// How the episode ended.
    pub outcome: EpisodeOutcome,
    /// The full recorded trajectory history.
    pub trace: Trace,
    /// The road map the episode ran on.
    pub map: RoadMap,
    /// Whether the instance counts for the study (front-accident instances
    /// require the scripted NPC-NPC crash; everything else is always valid).
    pub valid: bool,
    /// When the agent's safety layer first intervened, if it has one and it
    /// fired ([`EpisodeAgent::first_activation`]).
    pub first_activation: Option<f64>,
}

impl EpisodeRun {
    /// Whether the episode ended in an ego collision.
    pub fn collided(&self) -> bool {
        self.outcome.is_collision()
    }
}

/// A front-accident instance is valid only when the scripted NPC-NPC crash
/// actually happened (the paper discarded 190 of 1000).
pub(crate) fn is_valid(spec: &ScenarioSpec, final_world: &World) -> bool {
    if spec.typology != Typology::FrontAccident {
        return true;
    }
    final_world
        .actors()
        .iter()
        .any(|a| a.motion == MotionModel::Static)
}

/// A fresh boxed LBC baseline agent — the default driver of every sweep.
pub(crate) fn lbc() -> Box<dyn EpisodeAgent> {
    Box::new(LbcAgent::default())
}

/// The suite runner: scenario sampling + the one worker-pool episode
/// fan-out, parameterized by the shared [`EvalConfig`].
#[derive(Debug, Clone, Copy)]
pub struct ScenarioSuite<'a> {
    config: &'a EvalConfig,
}

impl<'a> ScenarioSuite<'a> {
    /// Creates a runner over the given configuration.
    pub fn new(config: &'a EvalConfig) -> Self {
        ScenarioSuite { config }
    }

    /// The configuration the suite runs under.
    pub fn config(&self) -> &EvalConfig {
        self.config
    }

    /// The resolved worker count of the shared pool.
    pub fn workers(&self) -> usize {
        self.config.resolved_workers()
    }

    /// The configured instance sweep for one typology.
    pub fn specs(&self, typology: Typology) -> Vec<ScenarioSpec> {
        sample_instances(typology, self.config.instances, self.config.seed)
    }

    /// Maps `f` over arbitrary items on the shared pool, preserving order.
    /// Use this for fan-outs that are not spec sweeps (seeded benign
    /// episodes, case-study scenes); spec sweeps go through
    /// [`ScenarioSuite::sweep_map`].
    pub fn fan_out<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        parallel_map(items, self.workers(), f)
    }

    /// Runs one episode on a prepared world and harvests the run record.
    /// The caller keeps the final world (for map-free inspection); validity
    /// defaults to `true` — spec-driven entry points overwrite it.
    pub fn run_world(
        world: &mut World,
        episode: &EpisodeConfig,
        mut agent: Box<dyn EpisodeAgent>,
    ) -> EpisodeRun {
        let result = run_episode(world, &mut agent, episode);
        EpisodeRun {
            outcome: result.outcome,
            trace: result.trace,
            map: world.map().clone(),
            valid: true,
            first_activation: agent.first_activation(),
        }
    }

    /// Runs one scenario instance with the given agent.
    pub fn run_spec(spec: &ScenarioSpec, agent: Box<dyn EpisodeAgent>) -> EpisodeRun {
        let mut world = spec.build_world();
        let mut run = Self::run_world(&mut world, &spec.episode_config(), agent);
        run.valid = is_valid(spec, &world);
        run
    }

    /// The core sweep: every spec runs with its own freshly built agent on
    /// the shared pool, and `project` reduces each run *inside* the worker
    /// (so full traces are dropped in place unless the projection keeps
    /// them). Results are in spec order, bit-identical for any worker count.
    pub fn sweep_map<R, F, P>(&self, specs: Vec<ScenarioSpec>, make_agent: F, project: P) -> Vec<R>
    where
        R: Send,
        F: Fn(&ScenarioSpec) -> Box<dyn EpisodeAgent> + Sync,
        P: Fn(&ScenarioSpec, EpisodeRun) -> R + Sync,
    {
        self.fan_out(specs, |spec| {
            let run = Self::run_spec(&spec, make_agent(&spec));
            project(&spec, run)
        })
    }

    /// [`ScenarioSuite::sweep_map`] keeping the full run records.
    pub fn sweep<F>(&self, specs: Vec<ScenarioSpec>, make_agent: F) -> Vec<EpisodeRun>
    where
        F: Fn(&ScenarioSpec) -> Box<dyn EpisodeAgent> + Sync,
    {
        self.sweep_map(specs, make_agent, |_, run| run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iprism_agents::AcaController;

    #[test]
    fn sweep_matches_direct_episode_runs() {
        let cfg = EvalConfig::smoke();
        let suite = ScenarioSuite::new(&cfg);
        let specs = suite.specs(Typology::GhostCutIn);
        assert_eq!(specs.len(), cfg.instances);

        let runs = suite.sweep(specs.clone(), |_| lbc());
        assert_eq!(runs.len(), specs.len());
        for (spec, run) in specs.iter().zip(&runs) {
            let mut world = spec.build_world();
            let mut agent = LbcAgent::default();
            let direct = run_episode(&mut world, &mut agent, &spec.episode_config());
            assert_eq!(run.outcome, direct.outcome);
            assert_eq!(
                format!("{:?}", run.trace),
                format!("{:?}", direct.trace),
                "suite trace diverged from a direct run"
            );
            assert!(run.valid, "ghost cut-in instances are always valid");
            assert_eq!(run.first_activation, None);
        }
    }

    #[test]
    fn sweep_is_worker_count_invariant() {
        let mut cfg = EvalConfig::smoke();
        cfg.instances = 4;
        cfg.workers = 1;
        let serial = ScenarioSuite::new(&cfg).sweep_map(
            ScenarioSuite::new(&cfg).specs(Typology::LeadCutIn),
            |_| lbc(),
            |_, run| (run.collided(), format!("{:?}", run.trace)),
        );
        cfg.workers = 4;
        let parallel = ScenarioSuite::new(&cfg).sweep_map(
            ScenarioSuite::new(&cfg).specs(Typology::LeadCutIn),
            |_| lbc(),
            |_, run| (run.collided(), format!("{:?}", run.trace)),
        );
        assert_eq!(serial, parallel);
    }

    #[test]
    fn activation_surfaces_through_the_run_record() {
        let mut cfg = EvalConfig::smoke();
        cfg.instances = 3;
        let suite = ScenarioSuite::new(&cfg);
        let runs = suite.sweep(suite.specs(Typology::LeadSlowdown), |_| {
            Box::new(AcaController::new(LbcAgent::default(), 1.8))
        });
        assert!(
            runs.iter().any(|r| r.first_activation.is_some()),
            "ACA never activated across lead-slowdown instances"
        );
    }
}
