//! Figures 4 and 5: risk-metric time series, safe vs. accident scenarios.

use iprism_agents::{EpisodeAgent, LbcAgent, MitigatedAgent};
use iprism_core::Smc;
use iprism_map::RoadMap;
use iprism_risk::{PklModel, RiskMetric, SceneSnapshot, StiEvaluator};
use iprism_scenarios::Typology;
use iprism_sim::Trace;
use serde::{Deserialize, Serialize};

use crate::ltfma::MetricSuite;
use crate::suite::{lbc, ScenarioSuite};
use crate::{stats, EvalConfig, RiskMetricKind};

/// One time-series point: mean ± SD of a metric at a time step, with the
/// number of scenarios still alive at that step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Time since scenario start (s).
    pub time: f64,
    /// Mean metric value over scenarios alive at `time`.
    pub mean: f64,
    /// Standard deviation.
    pub sd: f64,
    /// Number of contributing scenarios.
    pub n: usize,
}

/// A labelled metric time series (one line of a Fig. 4 subplot).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RiskSeries {
    /// The typology.
    pub typology: Typology,
    /// The metric.
    pub metric: RiskMetricKind,
    /// `true` for the accident population, `false` for the safe one.
    pub accident_population: bool,
    /// The series points in time order.
    pub points: Vec<SeriesPoint>,
}

/// Computes one metric's per-step values along a trace (None where the
/// metric is undefined, e.g. TTC with no in-path actor). Dispatches through
/// the [`RiskMetric`] trait, so any implementation can be charted.
fn metric_series(
    metric: &dyn RiskMetric,
    map: &RoadMap,
    trace: &Trace,
    horizon_steps: usize,
    stride: usize,
) -> Vec<(f64, Option<f64>)> {
    let mut out = Vec::new();
    for i in (0..trace.len()).step_by(stride.max(1)) {
        let scene = match SceneSnapshot::from_trace(trace, i, horizon_steps) {
            Some(s) => s,
            None => break,
        };
        out.push((trace.steps()[i].time, metric.combined(map, &scene)));
    }
    out
}

/// Reproduces the Fig. 4 data for one typology: the mean ± SD series of
/// STI, PKL and TTC, separately for scenarios that stayed safe and those
/// that ended in an accident.
pub fn risk_characterization(
    typology: Typology,
    config: &EvalConfig,
    metrics: &[RiskMetricKind],
) -> Vec<RiskSeries> {
    let runner = ScenarioSuite::new(config);
    // Fig. 4 charts raw metric behaviour, so the PKL bank is the untrained
    // unit-τ model rather than Table II's fitted ones.
    let pkl = PklModel::with_tau(1.0, iprism_risk::PklPlannerConfig::default());
    let suite = MetricSuite {
        sti: StiEvaluator::new(config.reach.clone()),
        pkl_all: pkl.clone(),
        pkl_holdout: pkl,
    };

    // Run the LBC baseline, splitting traces by outcome.
    let runs: Vec<(bool, Trace, RoadMap)> = runner.sweep_map(
        runner.specs(typology),
        |_| lbc(),
        |_, run| (run.collided(), run.trace, run.map),
    );

    let horizon = suite.sti.config.horizon.get();
    let mut out = Vec::new();
    for &metric in metrics {
        for accident_population in [false, true] {
            let series: Vec<Vec<(f64, Option<f64>)>> = runs
                .iter()
                .filter(|(collided, ..)| *collided == accident_population)
                .map(|(_, trace, map)| {
                    let horizon_steps = (horizon / trace.dt()).ceil() as usize;
                    metric_series(
                        suite.metric(metric),
                        map,
                        trace,
                        horizon_steps,
                        config.stride,
                    )
                })
                .collect();
            out.push(RiskSeries {
                typology,
                metric,
                accident_population,
                points: aggregate(&series),
            });
        }
    }
    out
}

/// Aggregates per-trace series into mean ± SD points per time step.
fn aggregate(series: &[Vec<(f64, Option<f64>)>]) -> Vec<SeriesPoint> {
    let max_len = series.iter().map(Vec::len).max().unwrap_or(0);
    let mut points = Vec::with_capacity(max_len);
    for step in 0..max_len {
        let mut values = Vec::new();
        let mut time = 0.0;
        for s in series {
            if let Some((t, v)) = s.get(step) {
                time = *t;
                if let Some(v) = v {
                    values.push(*v);
                }
            }
        }
        if values.is_empty() {
            continue;
        }
        points.push(SeriesPoint {
            time,
            mean: stats::mean(&values),
            sd: stats::std_dev(&values),
            n: values.len(),
        });
    }
    points
}

/// Reproduces Fig. 5: the combined-STI series on ghost cut-in scenarios for
/// the plain LBC agent vs. LBC+iPrism. Returns `(lbc, iprism)` series
/// aggregated over the sweep.
pub fn iprism_sti_series(smc: &Smc, config: &EvalConfig) -> (Vec<SeriesPoint>, Vec<SeriesPoint>) {
    let runner = ScenarioSuite::new(config);
    let specs = runner.specs(Typology::GhostCutIn);
    let sti = StiEvaluator::new(config.reach.clone());

    // The mitigated and plain sweeps differ only in the agent factory: the
    // episode running, STI charting and aggregation are one code path.
    let collect = |with_smc: bool| -> Vec<SeriesPoint> {
        let make_agent = |_: &_| -> Box<dyn EpisodeAgent> {
            if with_smc {
                Box::new(MitigatedAgent::new(LbcAgent::default(), smc.clone()))
            } else {
                Box::new(LbcAgent::default())
            }
        };
        let runs: Vec<Vec<(f64, Option<f64>)>> =
            runner.sweep_map(specs.clone(), make_agent, |_, run| {
                let trace = &run.trace;
                let horizon_steps = (sti.config.horizon.get() / trace.dt()).ceil() as usize;
                let mut out = Vec::new();
                for i in (0..trace.len()).step_by(config.stride.max(1)) {
                    if let Some(scene) = SceneSnapshot::from_trace(trace, i, horizon_steps) {
                        out.push((
                            trace.steps()[i].time,
                            Some(sti.evaluate_combined(&run.map, &scene)),
                        ));
                    }
                }
                out
            });
        aggregate(&runs)
    };

    (collect(false), collect(true))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;

    #[test]
    fn characterization_shapes_and_sti_separation() {
        let mut cfg = EvalConfig::smoke();
        cfg.instances = 10;
        let series = risk_characterization(
            Typology::GhostCutIn,
            &cfg,
            &[RiskMetricKind::Sti, RiskMetricKind::Ttc],
        );
        assert_eq!(series.len(), 4); // 2 metrics × {safe, accident}
        let sti_accident = series
            .iter()
            .find(|s| s.metric == RiskMetricKind::Sti && s.accident_population)
            .unwrap();
        assert!(!sti_accident.points.is_empty());
        // STI rises toward the accident: the last point beats the first.
        let first = sti_accident.points.first().unwrap().mean;
        let last = sti_accident.points.last().unwrap().mean;
        assert!(
            last > first + 0.1,
            "accident STI should climb: {first} -> {last}"
        );
        for s in &series {
            for p in &s.points {
                assert!(p.mean.is_finite() && p.sd.is_finite() && p.n > 0);
            }
        }
    }

    #[test]
    fn aggregate_handles_ragged_series() {
        let a = vec![(0.0, Some(1.0)), (0.1, Some(2.0))];
        let b = vec![(0.0, Some(3.0))];
        let agg = aggregate(&[a, b]);
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].n, 2);
        assert_eq!(agg[0].mean, 2.0);
        assert_eq!(agg[1].n, 1);
    }

    #[test]
    fn aggregate_skips_all_none_steps() {
        let a: Vec<(f64, Option<f64>)> = vec![(0.0, None), (0.1, Some(1.0))];
        let agg = aggregate(&[a]);
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[0].mean, 1.0);
    }
}
