//! Figure 7: per-actor STI on the four real-world-style case studies.

use iprism_risk::{SceneSnapshot, StiEvaluator};
use iprism_scenarios::{case_study, CaseStudy};
use iprism_sim::ActorId;
use serde::{Deserialize, Serialize};

use crate::suite::ScenarioSuite;
use crate::{render_table, EvalConfig};

/// Per-actor STI in one case-study scene.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseStudyResult {
    /// Which Fig. 7 scene.
    pub case: CaseStudy,
    /// Per-actor STI in scene order.
    pub per_actor: Vec<(ActorId, f64)>,
    /// Combined STI of the scene.
    pub combined: f64,
    /// The actor dominating the risk, if any actor has STI > 0.
    pub riskiest: Option<(ActorId, f64)>,
}

/// All four Fig. 7 scenes evaluated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseStudyReport {
    /// Results in Fig. 7 order (a)–(d).
    pub results: Vec<CaseStudyResult>,
}

impl std::fmt::Display for CaseStudyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = vec![
            "Case".to_string(),
            "Combined STI".to_string(),
            "Riskiest actor".to_string(),
            "Per-actor STI".to_string(),
        ];
        let rows: Vec<Vec<String>> = self
            .results
            .iter()
            .map(|r| {
                vec![
                    r.case.name().to_string(),
                    format!("{:.2}", r.combined),
                    match r.riskiest {
                        Some((id, v)) => format!("#{} ({v:.2})", id.0),
                        None => "-".to_string(),
                    },
                    r.per_actor
                        .iter()
                        .map(|(id, v)| format!("#{}:{v:.2}", id.0))
                        .collect::<Vec<_>>()
                        .join(" "),
                ]
            })
            .collect();
        write!(f, "{}", render_table(&header, &rows))
    }
}

/// Evaluates per-actor STI on the four Fig. 7 scenes using CVTR-predicted
/// actor trajectories (the scenes depict single moments, not episodes).
pub fn case_study_report(config: &EvalConfig) -> CaseStudyReport {
    let suite = ScenarioSuite::new(config);
    let evaluator = StiEvaluator::new(config.reach.clone());
    let results = suite.fan_out(CaseStudy::ALL.to_vec(), |case| {
        let world = case_study(case);
        let scene = SceneSnapshot::from_world_cvtr(&world, config.reach.horizon, config.reach.dt);
        let sti = evaluator.evaluate(world.map(), &scene);
        CaseStudyResult {
            case,
            riskiest: sti.riskiest_actor(),
            per_actor: sti.per_actor,
            combined: sti.combined,
        }
    });
    CaseStudyReport { results }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualitative_findings_match_paper() {
        let report = case_study_report(&EvalConfig::default());
        assert_eq!(report.results.len(), 4);

        let get = |c: CaseStudy| report.results.iter().find(|r| r.case == c).unwrap();

        // (a) The crossing pedestrian is the most safety-threatening actor.
        let ped = get(CaseStudy::PedestrianCrossing);
        assert_eq!(ped.riskiest.expect("pedestrian risk > 0").0, ActorId(1));
        assert!(
            ped.per_actor[0].1 > 0.1,
            "pedestrian STI {}",
            ped.per_actor[0].1
        );

        // (b) The encroaching oversized actor dominates despite never being
        // in the ego's path.
        let truck = get(CaseStudy::OversizedActor);
        assert_eq!(truck.riskiest.expect("truck risk > 0").0, ActorId(1));

        // (c) Cluttered: the exiting actor behind poses (near-)zero risk,
        // the entering one poses more.
        let clutter = get(CaseStudy::ClutteredStreet);
        let exiting = clutter.per_actor[0].1;
        let entering = clutter.per_actor[1].1;
        assert!(exiting < 0.05, "exiting actor STI {exiting}");
        assert!(
            entering > exiting,
            "entering {entering} vs exiting {exiting}"
        );

        // (d) The pull-out scene has nonzero combined risk from multiple
        // actors (top-lane blockers + the puller).
        let pullout = get(CaseStudy::ActorPullingOut);
        assert!(pullout.combined > 0.05);
        let nonzero = pullout.per_actor.iter().filter(|(_, v)| *v > 0.01).count();
        assert!(
            nonzero >= 2,
            "multiple actors contribute: {:?}",
            pullout.per_actor
        );

        // The report renders.
        let text = report.to_string();
        assert!(text.contains("pedestrian crossing"));
    }
}
