//! Table II: Lead-Time-for-Mitigating-Accident across risk metrics.

use iprism_map::RoadMap;
use iprism_risk::{
    ltfma_steps, DistCipaMetric, LtfmaMetric, PklModel, PklPlannerConfig, RiskIndicator,
    RiskMetric, SceneSnapshot, StiEvaluator, TtcMetric,
};
use iprism_scenarios::{sample_instances, Typology};
use iprism_sim::Trace;
use serde::{Deserialize, Serialize};

use crate::suite::{lbc, ScenarioSuite};
use crate::{render_table, stats, EvalConfig};

/// The risk metrics compared in Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RiskMetricKind {
    /// Time-to-collision.
    Ttc,
    /// Distance to closest in-path actor.
    DistCipa,
    /// Planner KL-divergence trained on all typologies.
    PklAll,
    /// PKL trained with both cut-in typologies held out.
    PklHoldout,
    /// The paper's Safety-Threat Indicator.
    Sti,
}

impl RiskMetricKind {
    /// All metrics in Table II row order.
    pub const ALL: [RiskMetricKind; 5] = [
        RiskMetricKind::Ttc,
        RiskMetricKind::DistCipa,
        RiskMetricKind::PklAll,
        RiskMetricKind::PklHoldout,
        RiskMetricKind::Sti,
    ];

    /// Row label matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            RiskMetricKind::Ttc => "TTC",
            RiskMetricKind::DistCipa => "Dist. CIPA",
            RiskMetricKind::PklAll => "PKL-All",
            RiskMetricKind::PklHoldout => "PKL-Holdout",
            RiskMetricKind::Sti => "STI (ours)",
        }
    }
}

/// Typologies evaluated in Table II (front accident is excluded: the LBC
/// baseline never collides there, so there is no LTFMA to report).
pub const LTFMA_TYPOLOGIES: [Typology; 4] = [
    Typology::GhostCutIn,
    Typology::LeadCutIn,
    Typology::LeadSlowdown,
    Typology::RearEnd,
];

/// Mean ± SD LTFMA for one metric on one typology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LtfmaRow {
    /// The risk metric.
    pub metric: RiskMetricKind,
    /// The typology.
    pub typology: Typology,
    /// Mean lead time (s) over accident scenarios.
    pub mean: f64,
    /// Standard deviation (s).
    pub sd: f64,
    /// Number of accident scenarios measured.
    pub n: usize,
}

/// The full Table-II reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LtfmaStudy {
    /// All `(metric × typology)` cells.
    pub rows: Vec<LtfmaRow>,
}

impl LtfmaStudy {
    /// Mean LTFMA of a metric on one typology.
    pub fn cell(&self, metric: RiskMetricKind, typology: Typology) -> Option<&LtfmaRow> {
        self.rows
            .iter()
            .find(|r| r.metric == metric && r.typology == typology)
    }

    /// The "All Scenarios Average" column: mean of the typology means.
    pub fn overall(&self, metric: RiskMetricKind) -> f64 {
        let means: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.metric == metric)
            .map(|r| r.mean)
            .collect();
        stats::mean(&means)
    }
}

impl std::fmt::Display for LtfmaStudy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut header = vec!["Metric".to_string()];
        header.extend(LTFMA_TYPOLOGIES.iter().map(|t| t.name().to_string()));
        header.push("All Scenarios Avg".to_string());
        let rows: Vec<Vec<String>> = RiskMetricKind::ALL
            .iter()
            .map(|&m| {
                let mut row = vec![m.name().to_string()];
                for &t in &LTFMA_TYPOLOGIES {
                    match self.cell(m, t) {
                        Some(c) => row.push(format!("{:.2} ({:.2})", c.mean, c.sd)),
                        None => row.push("-".to_string()),
                    }
                }
                row.push(format!("{:.2}", self.overall(m)));
                row
            })
            .collect();
        write!(f, "{}", render_table(&header, &rows))
    }
}

/// The Table-II metric bank: one [`RiskMetric`] implementation per
/// [`RiskMetricKind`], resolved by kind for trait-object dispatch.
pub(crate) struct MetricSuite {
    pub(crate) sti: StiEvaluator,
    pub(crate) pkl_all: PklModel,
    pub(crate) pkl_holdout: PklModel,
}

impl MetricSuite {
    /// The metric implementation behind a kind.
    pub(crate) fn metric(&self, kind: RiskMetricKind) -> &dyn RiskMetric {
        match kind {
            RiskMetricKind::Ttc => &TtcMetric,
            RiskMetricKind::DistCipa => &DistCipaMetric,
            RiskMetricKind::PklAll => &self.pkl_all,
            RiskMetricKind::PklHoldout => &self.pkl_holdout,
            RiskMetricKind::Sti => &self.sti,
        }
    }

    /// The indicator binarizing a kind's combined score for LTFMA.
    pub(crate) fn indicator(&self, kind: RiskMetricKind) -> RiskIndicator {
        match kind {
            RiskMetricKind::Ttc => RiskIndicator::Ttc {
                threshold: iprism_risk::TTC_RISK_SECONDS,
            },
            RiskMetricKind::DistCipa => RiskIndicator::DistCipa {
                threshold: iprism_risk::CIPA_RISK_DISTANCE,
            },
            RiskMetricKind::PklAll | RiskMetricKind::PklHoldout => {
                RiskIndicator::Pkl { threshold: 0.5 }
            }
            RiskMetricKind::Sti => RiskIndicator::Sti { floor: 0.02 },
        }
    }
}

/// The LTFMA (s) of one metric on one accident trace: consecutive risky
/// samples immediately before the collision, at the configured stride.
fn trace_ltfma(
    suite: &MetricSuite,
    kind: RiskMetricKind,
    map: &RoadMap,
    trace: &Trace,
    config: &EvalConfig,
) -> Option<f64> {
    let accident = trace.first_collision_index()?;
    let horizon_steps = (suite.sti.config.horizon.get() / trace.dt()).ceil() as usize;
    let mut idxs: Vec<usize> = (0..=accident).step_by(config.stride.max(1)).collect();
    if *idxs.last()? != accident {
        idxs.push(accident);
    }
    let ltfma = LtfmaMetric::new(suite.metric(kind), suite.indicator(kind));
    let risky: Vec<bool> = idxs
        .iter()
        .map(|&i| {
            SceneSnapshot::from_trace(trace, i, horizon_steps)
                .is_some_and(|scene| ltfma.is_risky(map, &scene))
        })
        .collect();
    let steps = ltfma_steps(&risky, risky.len() - 1);
    Some(steps as f64 * config.stride as f64 * trace.dt())
}

/// Fits a PKL model on scenes sampled from LBC runs of the given training
/// typologies (3 instances each, 5 scenes per trace).
fn fit_pkl(typologies: &[Typology], config: &EvalConfig) -> PklModel {
    let suite = ScenarioSuite::new(config);
    let mut scenes = Vec::new();
    let mut map: Option<RoadMap> = None;
    for &t in typologies {
        let specs = sample_instances(t, 3.min(config.instances), config.seed ^ 0x51ED);
        // Sample five evenly spaced scenes from each trace, inside the
        // worker; only the scenes and the map survive the fan-out.
        let sampled = suite.sweep_map(
            specs,
            |_| lbc(),
            |_, run| {
                let trace = run.trace;
                let horizon_steps = (config.reach.horizon.get() / trace.dt()).ceil() as usize;
                let n = trace.len();
                let scenes: Vec<SceneSnapshot> = (1..=5)
                    .filter_map(|k| {
                        let idx = (n - 1) * k / 6;
                        SceneSnapshot::from_trace(&trace, idx, horizon_steps)
                    })
                    .collect();
                (scenes, run.map)
            },
        );
        for (s, m) in sampled {
            scenes.extend(s);
            map.get_or_insert(m);
        }
    }
    let map = map.unwrap_or_else(|| RoadMap::straight_road(3, 3.5, 400.0));
    PklModel::fit(PklPlannerConfig::default(), &map, scenes.iter())
}

/// Reproduces Table II.
pub fn ltfma_study(config: &EvalConfig) -> LtfmaStudy {
    let suite = MetricSuite {
        sti: StiEvaluator::new(config.reach.clone()),
        pkl_all: fit_pkl(&Typology::NHTSA, config),
        pkl_holdout: fit_pkl(
            &[
                Typology::LeadSlowdown,
                Typology::FrontAccident,
                Typology::RearEnd,
            ],
            config,
        ),
    };

    let runner = ScenarioSuite::new(config);
    let mut rows = Vec::new();
    for &typology in &LTFMA_TYPOLOGIES {
        // Collect accident traces (with their maps) under the LBC baseline.
        let traces: Vec<(Trace, RoadMap)> = runner
            .sweep_map(
                runner.specs(typology),
                |_| lbc(),
                |_, run| run.collided().then_some((run.trace, run.map)),
            )
            .into_iter()
            .flatten()
            .collect();

        for &metric in &RiskMetricKind::ALL {
            let values: Vec<f64> = runner
                .fan_out(traces.iter().collect::<Vec<_>>(), |(trace, map)| {
                    trace_ltfma(&suite, metric, map, trace, config)
                })
                .into_iter()
                .flatten()
                .collect();
            rows.push(LtfmaRow {
                metric,
                typology,
                mean: stats::mean(&values),
                sd: stats::std_dev(&values),
                n: values.len(),
            });
        }
    }
    LtfmaStudy { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_study_shape_and_sti_dominance() {
        let mut cfg = EvalConfig::smoke();
        cfg.instances = 6;
        let study = ltfma_study(&cfg);
        assert_eq!(study.rows.len(), 4 * 5);
        for row in &study.rows {
            assert!(row.mean >= 0.0);
            assert!(row.sd >= 0.0);
        }
        // STI leads overall — the paper's headline Table-II result.
        let sti = study.overall(RiskMetricKind::Sti);
        let ttc = study.overall(RiskMetricKind::Ttc);
        assert!(sti > ttc, "STI {sti} must beat TTC {ttc}");
        // TTC is blind on ghost cut-ins (threat from the side).
        let ttc_ghost = study
            .cell(RiskMetricKind::Ttc, Typology::GhostCutIn)
            .unwrap();
        let sti_ghost = study
            .cell(RiskMetricKind::Sti, Typology::GhostCutIn)
            .unwrap();
        assert!(sti_ghost.mean > ttc_ghost.mean);
        // Display renders every metric row.
        let text = study.to_string();
        for m in RiskMetricKind::ALL {
            assert!(text.contains(m.name()), "{}", m.name());
        }
    }
}
