//! Small statistics helpers used across the studies.

/// Mean of a sample (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation (0 for fewer than two samples).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// The `p`-th percentile (0–100) by linear interpolation between order
/// statistics. Returns 0 for an empty slice.
///
/// # Panics
///
/// Panics when `p` is outside `[0, 100]` or any value is NaN.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] + (sorted[hi] - sorted[lo]) * frac
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 25.0), 2.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        // interpolation
        assert!((percentile(&[1.0, 2.0], 50.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn bad_percentile_panics() {
        let _ = percentile(&[1.0], 150.0);
    }

    proptest! {
        #[test]
        fn prop_percentile_monotone(
            mut xs in proptest::collection::vec(-100.0..100.0f64, 1..50),
            a in 0.0..100.0f64, b in 0.0..100.0f64,
        ) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(percentile(&xs, lo) <= percentile(&xs, hi) + 1e-12);
            xs.sort_by(f64::total_cmp);
            prop_assert!(percentile(&xs, 0.0) >= xs[0] - 1e-12);
            prop_assert!(percentile(&xs, 100.0) <= xs[xs.len() - 1] + 1e-12);
        }

        #[test]
        fn prop_mean_within_range(xs in proptest::collection::vec(-100.0..100.0f64, 1..50)) {
            let m = mean(&xs);
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }
    }
}
