//! Figure 6: STI characterization of the real-world (Argoverse stand-in)
//! dataset — §V-D's long-tail analysis.

use iprism_risk::{SceneSnapshot, StiEvaluator};
use iprism_scenarios::{generate_benign_episode, BenignTrafficConfig};
use iprism_sim::{EpisodeConfig, Goal};
use serde::{Deserialize, Serialize};

use crate::suite::{lbc, ScenarioSuite};
use crate::{render_table, stats, EvalConfig};

/// The Fig. 6 reproduction: percentiles of per-actor and combined STI over
/// benign real-world-like driving.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStudy {
    /// Per-actor STI samples (every actor at every sampled step).
    pub actor_percentiles: Percentiles,
    /// Combined STI samples (every sampled step).
    pub combined_percentiles: Percentiles,
    /// Number of episodes analysed.
    pub episodes: usize,
    /// Total per-actor samples collected.
    pub actor_samples: usize,
    /// Fraction of per-actor samples that are exactly risk-free (≤ 0.001).
    pub actor_zero_fraction: f64,
    /// Fraction of combined samples that are risk-free.
    pub combined_zero_fraction: f64,
}

/// The percentile summary reported in §V-D (50ᵗʰ/75ᵗʰ/90ᵗʰ/99ᵗʰ).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 75ᵗʰ percentile.
    pub p75: f64,
    /// 90ᵗʰ percentile.
    pub p90: f64,
    /// 99ᵗʰ percentile.
    pub p99: f64,
}

impl Percentiles {
    fn from_samples(xs: &[f64]) -> Self {
        Percentiles {
            p50: stats::percentile(xs, 50.0),
            p75: stats::percentile(xs, 75.0),
            p90: stats::percentile(xs, 90.0),
            p99: stats::percentile(xs, 99.0),
        }
    }
}

impl std::fmt::Display for DatasetStudy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = vec![
            "STI".to_string(),
            "p50".to_string(),
            "p75".to_string(),
            "p90".to_string(),
            "p99".to_string(),
            "zero fraction".to_string(),
        ];
        let fmt_row = |name: &str, p: &Percentiles, zf: f64| {
            vec![
                name.to_string(),
                format!("{:.3}", p.p50),
                format!("{:.3}", p.p75),
                format!("{:.3}", p.p90),
                format!("{:.3}", p.p99),
                format!("{:.0}%", zf * 100.0),
            ]
        };
        let rows = vec![
            fmt_row(
                "per-actor",
                &self.actor_percentiles,
                self.actor_zero_fraction,
            ),
            fmt_row(
                "combined",
                &self.combined_percentiles,
                self.combined_zero_fraction,
            ),
        ];
        write!(f, "{}", render_table(&header, &rows))
    }
}

/// Reproduces Fig. 6: generates `config.instances` benign episodes, runs a
/// lawful ego through each, and measures STI (per-actor and combined) at
/// every strided step.
pub fn dataset_study(config: &EvalConfig, traffic: &BenignTrafficConfig) -> DatasetStudy {
    let suite = ScenarioSuite::new(config);
    let evaluator = StiEvaluator::new(config.reach.clone());
    let seeds: Vec<u64> = (0..config.instances as u64)
        .map(|i| config.seed ^ i)
        .collect();

    let samples: Vec<(Vec<f64>, Vec<f64>)> = suite.fan_out(seeds, |seed| {
        let mut world = generate_benign_episode(traffic, seed);
        let episode = EpisodeConfig {
            max_time: 15.0,
            goal: Goal::None,
            stop_on_collision: true,
        };
        let run = ScenarioSuite::run_world(&mut world, &episode, lbc());
        let trace = run.trace;
        let horizon_steps = (evaluator.config.horizon.get() / trace.dt()).ceil() as usize;
        let mut actor_samples = Vec::new();
        let mut combined_samples = Vec::new();
        // Sample sparsely: benign episodes are long and homogeneous.
        for i in (0..trace.len()).step_by((config.stride * 5).max(1)) {
            if let Some(scene) = SceneSnapshot::from_trace(&trace, i, horizon_steps) {
                let sti = evaluator.evaluate(&run.map, &scene);
                combined_samples.push(sti.combined);
                actor_samples.extend(sti.per_actor.iter().map(|(_, v)| *v));
            }
        }
        (actor_samples, combined_samples)
    });

    let mut actor_samples = Vec::new();
    let mut combined_samples = Vec::new();
    for (a, c) in samples {
        actor_samples.extend(a);
        combined_samples.extend(c);
    }

    let zero_fraction = |xs: &[f64]| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().filter(|&&x| x <= 1e-3).count() as f64 / xs.len() as f64
        }
    };

    DatasetStudy {
        actor_percentiles: Percentiles::from_samples(&actor_samples),
        combined_percentiles: Percentiles::from_samples(&combined_samples),
        episodes: config.instances,
        actor_samples: actor_samples.len(),
        actor_zero_fraction: zero_fraction(&actor_samples),
        combined_zero_fraction: zero_fraction(&combined_samples),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_data_is_long_tailed() {
        let mut cfg = EvalConfig::smoke();
        cfg.instances = 5;
        let study = dataset_study(&cfg, &BenignTrafficConfig::default());
        assert!(study.actor_samples > 0);
        // Long tail: the median actor poses (almost) no risk, and
        // percentiles are monotone.
        let a = &study.actor_percentiles;
        assert!(a.p50 <= 0.1, "median actor STI {}", a.p50);
        assert!(a.p50 <= a.p75 && a.p75 <= a.p90 && a.p90 <= a.p99);
        let c = &study.combined_percentiles;
        assert!(c.p50 <= c.p75 && c.p75 <= c.p90 && c.p90 <= c.p99);
        // Combined risk dominates per-actor risk.
        assert!(c.p90 >= a.p90 - 1e-9);
        let text = study.to_string();
        assert!(text.contains("per-actor"));
    }
}
