//! The iPrism experiment harness: regenerates every table and figure of the
//! paper's evaluation (§V) on the simulated substrate.
//!
//! | Paper artifact | Entry point |
//! |---|---|
//! | Table I  (scenarios + LBC baseline accidents)   | [`baseline_study`] |
//! | Table II (LTFMA per risk metric)                | [`ltfma_study`] |
//! | Table III (accident-prevention rates)           | [`mitigation_study`] |
//! | Table IV (mitigation activation timing)         | [`mitigation_study`] (timing rows) |
//! | Figure 4 (risk-metric time series)              | [`risk_characterization`] |
//! | Figure 5 (STI with vs without iPrism)           | [`iprism_sti_series`] |
//! | Figure 6 (STI percentiles on real-world data)   | [`dataset_study`] |
//! | Figure 7 (case studies)                         | [`case_study_report`] |
//! | §V-C roundabout (RIP vs RIP+iPrism)             | [`roundabout_study`] |
//!
//! All studies are deterministic under their configured seeds and return
//! serde-serializable result structs with `Display` implementations that
//! print paper-style tables.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod baseline;
mod case_studies;
mod dataset;
mod ltfma;
mod mitigation;
mod risk_series;
mod roundabout;
pub mod stats;
mod suite;
mod table;

pub use baseline::{baseline_study, BaselineRow, BaselineStudy};
pub use case_studies::{case_study_report, CaseStudyReport, CaseStudyResult};
pub use dataset::{dataset_study, DatasetStudy};
pub use ltfma::{ltfma_study, LtfmaRow, LtfmaStudy, RiskMetricKind};
pub use mitigation::{
    mitigation_study, select_training_scenario, select_training_scenarios, AgentKind,
    MitigationRow, MitigationStudy, TimingRow,
};
pub use risk_series::{iprism_sti_series, risk_characterization, RiskSeries, SeriesPoint};
pub use roundabout::{roundabout_study, RoundaboutStudy};
pub use suite::{EpisodeRun, ScenarioSuite};
pub use table::render_table;

use serde::{Deserialize, Serialize};

/// Shared sizing/seeding knobs for every study.
///
/// Defaults are sized for a single-core machine (the paper's full 1000
/// instances per typology remain available via `instances`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Scenario instances per typology.
    pub instances: usize,
    /// Base RNG seed for scenario sampling.
    pub seed: u64,
    /// Steps between risk-metric samples along a trace (trace dt = 0.1 s).
    pub stride: usize,
    /// Reach configuration used for offline STI (default-quality).
    pub reach: iprism_reach::ReachConfig,
    /// Worker threads for scenario sweeps (0 = automatic: the
    /// `IPRISM_STI_THREADS` environment variable when set, else the number
    /// of CPUs — the same resolution the STI evaluator uses, so one knob
    /// governs every thread pool).
    pub workers: usize,
    /// Directory for cached trained SMC policies
    /// ([`iprism_core::TrainedPolicyCache`]); `None` disables cross-run
    /// policy reuse.
    #[serde(default = "no_policy_dir")]
    pub policy_dir: Option<String>,
}

fn no_policy_dir() -> Option<String> {
    None
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            instances: 150,
            seed: 2024,
            stride: 2,
            reach: iprism_reach::ReachConfig::default(),
            workers: 0,
            policy_dir: no_policy_dir(),
        }
    }
}

impl EvalConfig {
    /// The paper-scale configuration: 1000 instances per typology.
    pub fn paper_scale() -> Self {
        EvalConfig {
            instances: 1000,
            ..EvalConfig::default()
        }
    }

    /// A tiny configuration for unit tests.
    pub fn smoke() -> Self {
        EvalConfig {
            instances: 8,
            stride: 5,
            reach: iprism_reach::ReachConfig::fast(),
            ..EvalConfig::default()
        }
    }

    pub(crate) fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        // Mirror StiEvaluator's automatic resolution so `workers` and
        // `IPRISM_STI_THREADS` are one worker-count mechanism, not two.
        if let Ok(value) = std::env::var(iprism_risk::STI_THREADS_ENV) {
            if let Ok(n) = value.parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    }
}

/// Maps `f` over `items` on a `workers`-sized thread pool (the shared rayon
/// pool machinery the STI evaluator fans out on), preserving input order —
/// results are bit-identical to the sequential map for any worker count.
/// Falls back to a plain sequential map for one worker or one item.
pub fn parallel_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = workers.min(items.len());
    match rayon::ThreadPoolBuilder::new().num_threads(workers).build() {
        Ok(pool) => pool.install(|| {
            use rayon::prelude::*;
            items.into_par_iter().map(f).collect()
        }),
        Err(_) => items.into_iter().map(f).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let v: Vec<usize> = (0..50).collect();
        let seq = parallel_map(v.clone(), 1, |x| x * 2);
        let par = parallel_map(v, 4, |x| x * 2);
        assert_eq!(seq, par);
        assert_eq!(seq[10], 20);
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn config_presets() {
        EvalConfig::default();
        assert_eq!(EvalConfig::paper_scale().instances, 1000);
        assert!(EvalConfig::smoke().instances < 20);
        assert!(EvalConfig::default().resolved_workers() >= 1);
    }
}
