//! Golden byte-identity suite: every study's serialized output is pinned to
//! an FNV-1a fingerprint captured before the trait-based episode engine
//! refactor. The engine (RiskMetric / EpisodeAgent / EpisodeObserver /
//! ScenarioSuite) must reproduce the pre-refactor pipeline byte for byte —
//! `Debug`/JSON formatting prints every `f64` in shortest round-trip form,
//! so an equal fingerprint means an identical numeric history.
//!
//! When a hash moves, the change is NOT a refactor: either revert it or
//! consciously re-pin with a CHANGES.md entry explaining the semantic change.

#![allow(clippy::expect_used)] // a serialization failure should abort the test

use iprism_agents::LbcAgent;
use iprism_core::{train_smc, SmcTrainConfig};
use iprism_eval::{
    baseline_study, case_study_report, dataset_study, iprism_sti_series, ltfma_study,
    mitigation_study, risk_characterization, roundabout_study, select_training_scenario,
    EvalConfig, RiskMetricKind,
};
use iprism_scenarios::{BenignTrafficConfig, Typology};

/// FNV-1a 64-bit over the serialized study — stable across platforms for
/// identical bytes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

fn fingerprint<T: serde::Serialize>(value: &T) -> u64 {
    let json = serde_json::to_string(value).expect("study serializes");
    fnv1a(json.as_bytes())
}

fn check(name: &str, actual: u64, expected: u64) {
    assert_eq!(
        actual, expected,
        "golden fingerprint `{name}` moved: got {actual:#018x}, pinned \
         {expected:#018x} — the pipeline output is no longer byte-identical"
    );
}

#[test]
fn golden_baseline_study() {
    let study = baseline_study(&EvalConfig::smoke());
    check("baseline", fingerprint(&study), 0x15df_9b96_4204_72f1);
}

#[test]
fn golden_ltfma_study() {
    let mut cfg = EvalConfig::smoke();
    cfg.instances = 6;
    let study = ltfma_study(&cfg);
    check("ltfma", fingerprint(&study), 0xb17d_abb5_7a6f_70e3);
}

#[test]
fn golden_risk_characterization() {
    let mut cfg = EvalConfig::smoke();
    cfg.instances = 10;
    let series = risk_characterization(
        Typology::GhostCutIn,
        &cfg,
        &[RiskMetricKind::Sti, RiskMetricKind::Ttc],
    );
    check(
        "risk-characterization",
        fingerprint(&series),
        0x1026_0c1e_7d17_9c44,
    );
}

#[test]
fn golden_case_studies() {
    let report = case_study_report(&EvalConfig::default());
    check("case-studies", fingerprint(&report), 0x9264_4539_7ef4_de48);
}

#[test]
fn golden_dataset_study() {
    let mut cfg = EvalConfig::smoke();
    cfg.instances = 5;
    let study = dataset_study(&cfg, &BenignTrafficConfig::default());
    check("dataset", fingerprint(&study), 0xb126_fa55_e7b7_c75f);
}

#[test]
fn golden_mitigation_study() {
    let mut cfg = EvalConfig::smoke();
    cfg.instances = 6;
    let study = mitigation_study(&cfg, &[Typology::GhostCutIn], 4);
    check("mitigation", fingerprint(&study), 0x0548_c82e_1b2c_ea0d);
}

#[test]
fn golden_roundabout_and_fig5() {
    let mut cfg = EvalConfig::smoke();
    cfg.instances = 5;
    // The same minimally trained SMC drives both downstream studies, so one
    // training run pins the roundabout sweep and the Fig. 5 series together.
    let spec = select_training_scenario(Typology::GhostCutIn, &cfg, 8)
        .expect("ghost cut-in accidents exist");
    let trained = train_smc(
        vec![(spec.build_world(), spec.episode_config())],
        LbcAgent::default(),
        &SmcTrainConfig::small_test(),
    );
    let roundabout = roundabout_study(&trained.smc, &cfg);
    check(
        "roundabout",
        fingerprint(&roundabout),
        0xd580_0423_7c39_74fa,
    );
    let fig5 = iprism_sti_series(&trained.smc, &cfg);
    check("fig5-sti-series", fingerprint(&fig5), 0x349c_35a9_f0ea_15c2);
}
