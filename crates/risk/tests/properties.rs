//! Property tests for the paper's numeric invariants (Eq. 4–5):
//!
//! * STI values — combined and per-actor — always lie in `[0, 1]`.
//! * Reach-tube volumes are monotone in the obstacle set:
//!   `|T| ≤ |T^{/i}| ≤ |T^∅|` up to the documented ε-dedup tolerance
//!   (`iprism_contracts::TUBE_MONOTONE_REL_TOL` / `_ABS_TOL`).
//!
//! These run the full reach-tube pipeline on randomized scenes, so the
//! `validate`-feature contract checks inside `StiEvaluator::evaluate` are
//! exercised on every case as well.

use iprism_dynamics::{Trajectory, VehicleState};
use iprism_map::RoadMap;
use iprism_reach::{compute_reach_tube, ReachConfig};
use iprism_risk::{SceneActor, SceneSnapshot, StiEvaluator};
use iprism_sim::ActorId;
use iprism_units::Seconds;
use proptest::prelude::*;

fn parked(id: u32, x: f64, y: f64) -> SceneActor {
    SceneActor::new(
        ActorId(id),
        Trajectory::from_states(
            Seconds::new(0.0),
            Seconds::new(2.5),
            vec![VehicleState::new(x, y, 0.0, 0.0); 2],
        ),
        4.6,
        2.0,
    )
}

fn scene(ego_v: f64, ax: f64, ay: f64, bx: f64, by: f64) -> (RoadMap, SceneSnapshot) {
    let map = RoadMap::straight_road(3, 3.5, 600.0);
    let ego = VehicleState::new(100.0, 5.25, 0.0, ego_v);
    let snapshot = SceneSnapshot::new(0.0, ego, (4.6, 2.0))
        .with_actor(parked(1, ax, ay))
        .with_actor(parked(2, bx, by));
    (map, snapshot)
}

proptest! {
    #[test]
    fn sti_always_in_unit_interval(
        ego_v in 0.0..15.0f64,
        ax in 90.0..140.0f64, ay in 0.5..10.0f64,
        bx in 90.0..140.0f64, by in 0.5..10.0f64,
    ) {
        let (map, snapshot) = scene(ego_v, ax, ay, bx, by);
        let sti = StiEvaluator::new(ReachConfig::fast()).evaluate(&map, &snapshot);
        prop_assert!(
            (0.0..=1.0).contains(&sti.combined),
            "combined STI out of bounds: {}",
            sti.combined
        );
        for (id, v) in &sti.per_actor {
            prop_assert!(
                (0.0..=1.0).contains(v),
                "per-actor STI out of bounds for {id:?}: {v}"
            );
        }
        prop_assert!(sti.volume_all >= 0.0 && sti.volume_empty >= 0.0);
    }

    #[test]
    fn tube_volume_monotone_in_obstacle_set(
        ego_v in 0.0..15.0f64,
        ax in 90.0..140.0f64, ay in 0.5..10.0f64,
        bx in 90.0..140.0f64, by in 0.5..10.0f64,
    ) {
        let (map, snapshot) = scene(ego_v, ax, ay, bx, by);
        let cfg = {
            let mut c = ReachConfig::fast();
            c.ego_dims = (
                iprism_units::Meters::new(snapshot.ego_dims.0),
                iprism_units::Meters::new(snapshot.ego_dims.1),
            );
            c
        };
        let v_all = compute_reach_tube(&map, snapshot.ego, &snapshot.obstacles(), &cfg).volume();
        let v_empty = compute_reach_tube(&map, snapshot.ego, &[], &cfg).volume();
        let tol = |v: f64| v * (1.0 + iprism_contracts::TUBE_MONOTONE_REL_TOL)
            + iprism_contracts::TUBE_MONOTONE_ABS_TOL;
        for actor in &snapshot.actors {
            let v_without = compute_reach_tube(
                &map,
                snapshot.ego,
                &snapshot.obstacles_without(actor.id),
                &cfg,
            )
            .volume();
            prop_assert!(
                v_all <= tol(v_without),
                "removing {:?} shrank the tube: |T|={v_all} vs |T^/i|={v_without}",
                actor.id
            );
            prop_assert!(
                v_without <= tol(v_empty),
                "counterfactual exceeds empty world: |T^/i|={v_without} vs |T^∅|={v_empty}"
            );
        }
    }
}
