//! Scene snapshots: what every risk metric evaluates.

use iprism_dynamics::{CvtrModel, Trajectory, VehicleState};
use iprism_reach::Obstacle;
use iprism_sim::{ActorId, Trace, World};
use iprism_units::{Meters, Radians, Seconds};
use serde::{Deserialize, Serialize};

/// One actor in a scene: its identity, footprint and trajectory over the
/// analysis horizon (ground-truth or predicted).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneActor {
    /// Actor identity (stable across the episode).
    pub id: ActorId,
    /// Trajectory over at least `[t, t+k]`.
    pub trajectory: Trajectory,
    /// Footprint length (m).
    pub length: f64,
    /// Footprint width (m).
    pub width: f64,
}

impl SceneActor {
    /// Creates a scene actor.
    pub fn new(id: ActorId, trajectory: Trajectory, length: f64, width: f64) -> Self {
        SceneActor {
            id,
            trajectory,
            length,
            width,
        }
    }

    /// The actor's state at the scene time (first trajectory sample).
    pub fn current_state(&self) -> VehicleState {
        self.trajectory.states()[0]
    }

    /// Converts to a reach-tube obstacle.
    pub fn to_obstacle(&self) -> Obstacle {
        Obstacle::new(
            self.trajectory.clone(),
            Meters::new(self.length),
            Meters::new(self.width),
        )
    }
}

/// A snapshot of the driving situation at time `t`: the ego state plus every
/// other actor's trajectory over the analysis horizon.
///
/// This carries exactly the inputs of the paper's Eq. (6):
/// `f_STI(M, X^{/i}, X, x^ego)` — the map `M` is passed separately to the
/// evaluators so snapshots stay cheap to clone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneSnapshot {
    /// Scene time `t` (s); actor trajectories start here.
    pub time: f64,
    /// Ego state at `t`.
    pub ego: VehicleState,
    /// Ego footprint `(length, width)`.
    pub ego_dims: (f64, f64),
    /// All other actors.
    pub actors: Vec<SceneActor>,
}

impl SceneSnapshot {
    /// Creates an empty scene (no actors).
    pub fn new(time: f64, ego: VehicleState, ego_dims: (f64, f64)) -> Self {
        SceneSnapshot {
            time,
            ego,
            ego_dims,
            actors: Vec::new(),
        }
    }

    /// Builder-style actor addition.
    pub fn with_actor(mut self, actor: SceneActor) -> Self {
        self.actors.push(actor);
        self
    }

    /// Builds a snapshot at step `index` of a recorded trace, using the
    /// **ground-truth** future trajectories of every actor over
    /// `horizon_steps` recorded steps — the offline evaluation mode of
    /// §V-A/B/D.
    ///
    /// Returns `None` when `index` is out of range.
    pub fn from_trace(trace: &Trace, index: usize, horizon_steps: usize) -> Option<Self> {
        let step = trace.steps().get(index)?;
        let mut scene = SceneSnapshot::new(step.time, step.ego, (4.6, 2.0));
        for &(id, _, _, length, width) in &step.actors {
            if let Some(traj) = trace.actor_trajectory(id, index, horizon_steps) {
                scene.actors.push(SceneActor::new(id, traj, length, width));
            }
        }
        Some(scene)
    }

    /// Builds a snapshot from a live world, **predicting** every actor's
    /// trajectory with the CVTR model over `horizon` seconds at period `dt`
    /// — the online mode used during SMC training and inference (§IV-C).
    pub fn from_world_cvtr(world: &World, horizon: Seconds, dt: Seconds) -> Self {
        let steps = (horizon / dt).ceil() as usize;
        let cvtr = CvtrModel::new();
        let mut scene = SceneSnapshot::new(world.time(), world.ego(), world.ego_dims());
        for actor in world.actors() {
            let traj = cvtr.predict(
                actor.state,
                actor.yaw_rate,
                Seconds::new(world.time()),
                dt,
                steps,
            );
            scene
                .actors
                .push(SceneActor::new(actor.id, traj, actor.length, actor.width));
        }
        scene
    }

    /// A copy of the obstacle list with actor `id` removed — the
    /// counterfactual `X^{/i}` of Eq. (2).
    pub fn obstacles_without(&self, id: ActorId) -> Vec<Obstacle> {
        self.actors
            .iter()
            .filter(|a| a.id != id)
            .map(SceneActor::to_obstacle)
            .collect()
    }

    /// All obstacles (the factual `X` of Eq. (1)).
    pub fn obstacles(&self) -> Vec<Obstacle> {
        self.actors.iter().map(SceneActor::to_obstacle).collect()
    }

    /// Returns `true` when the actor is *in path* (the paper's footnote 6:
    /// its trajectory intersects the ego's).
    ///
    /// Implemented as a forward path-corridor test: the ego's path is the
    /// ray along its heading (at least 60 m, or further at speed); an actor
    /// is in path when any sample of its trajectory comes laterally within
    /// the combined half-widths of that path, ahead of the ego. The test is
    /// deliberately *not* time-synchronized — a stopped vehicle dead ahead
    /// is in path no matter how slowly the ego approaches.
    pub fn is_in_path(&self, actor: &SceneActor) -> bool {
        let ego_pos = self.ego.position();
        let dir = iprism_geom::Vec2::from_angle(Radians::raw(self.ego.theta));
        let reach = (self.ego.v * 4.0).max(60.0);
        let path = iprism_geom::Segment::new(ego_pos, ego_pos + dir * reach);
        let threshold = (self.ego_dims.1 + actor.width) * 0.5 + 0.4;
        actor.trajectory.states().iter().any(|s| {
            let p = s.position();
            (p - ego_pos).dot(dir) > 0.0 && path.distance_to_point(p) <= threshold
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use iprism_dynamics::ControlInput;
    use iprism_map::RoadMap;
    use iprism_sim::{Actor, Behavior};

    fn recorded_trace() -> Trace {
        let map = RoadMap::straight_road(2, 3.5, 500.0);
        let mut w = World::new(map, VehicleState::new(10.0, 1.75, 0.0, 10.0), 0.1);
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(60.0, 5.25, 0.0, 8.0),
            Behavior::lane_keep(8.0),
        ));
        w.spawn(Actor::vehicle(
            2,
            VehicleState::new(90.0, 1.75, 0.0, 9.0),
            Behavior::lane_keep(9.0),
        ));
        let mut t = Trace::new(w.dt());
        t.record(&w);
        for _ in 0..60 {
            w.step(ControlInput::COAST);
            t.record(&w);
        }
        t
    }

    #[test]
    fn from_trace_uses_ground_truth() {
        let trace = recorded_trace();
        let scene = SceneSnapshot::from_trace(&trace, 10, 25).unwrap();
        assert_eq!(scene.actors.len(), 2);
        assert!((scene.time - 1.0).abs() < 1e-9);
        // Trajectories are the actual recorded futures.
        let a1 = &scene.actors[0];
        assert_eq!(a1.trajectory.len(), 26);
        let recorded = trace.steps()[20].actors[0].1;
        let from_scene = a1.trajectory.states()[10];
        assert_eq!(recorded, from_scene);
        // out of range
        assert!(SceneSnapshot::from_trace(&trace, 1000, 10).is_none());
    }

    #[test]
    fn from_world_predicts_with_cvtr() {
        let map = RoadMap::straight_road(2, 3.5, 500.0);
        let mut w = World::new(map, VehicleState::new(10.0, 1.75, 0.0, 10.0), 0.1);
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(60.0, 5.25, 0.0, 8.0),
            Behavior::lane_keep(8.0),
        ));
        w.step(ControlInput::COAST);
        let scene = SceneSnapshot::from_world_cvtr(&w, Seconds::new(2.5), Seconds::new(0.25));
        assert_eq!(scene.actors.len(), 1);
        let traj = &scene.actors[0].trajectory;
        assert_eq!(traj.len(), 11);
        // Constant-velocity prediction moves the actor forward.
        assert!(traj.states()[10].x > traj.states()[0].x + 15.0);
    }

    #[test]
    fn counterfactual_obstacle_sets() {
        let trace = recorded_trace();
        let scene = SceneSnapshot::from_trace(&trace, 0, 10).unwrap();
        assert_eq!(scene.obstacles().len(), 2);
        assert_eq!(scene.obstacles_without(ActorId(1)).len(), 1);
        assert_eq!(scene.obstacles_without(ActorId(99)).len(), 2);
    }

    #[test]
    fn scene_actor_accessors() {
        let traj = Trajectory::from_states(
            Seconds::new(0.0),
            Seconds::new(0.1),
            vec![VehicleState::new(1.0, 2.0, 0.0, 3.0)],
        );
        let a = SceneActor::new(ActorId(7), traj, 4.6, 2.0);
        assert_eq!(a.current_state().x, 1.0);
        let o = a.to_obstacle();
        assert_eq!(o.length, 4.6);
    }
}
