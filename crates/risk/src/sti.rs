//! The Safety-Threat Indicator (Eq. 4–6 of the paper).

use std::sync::Arc;

use iprism_dynamics::VehicleState;
use iprism_map::RoadMap;
use iprism_reach::{compute_reach_tube_cached, ReachConfig, SliceCache};
use iprism_sim::ActorId;
use iprism_units::{Meters, Seconds};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::memo::memo_key;
use crate::{SceneSnapshot, TubeMemo};

/// Result of an STI evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sti {
    /// `STI^(combined)` (Eq. 5): risk from all actors collectively, in
    /// `[0, 1]`. 0 = no impact on escape routes, 1 = escape routes fully
    /// eliminated.
    pub combined: f64,
    /// `STI^(i)` per actor (Eq. 4), in `[0, 1]`, in scene actor order.
    pub per_actor: Vec<(ActorId, f64)>,
    /// `|T|`: escape-route volume with every actor present (m²).
    pub volume_all: f64,
    /// `|T^∅|`: escape-route volume with no actors (m²).
    pub volume_empty: f64,
}

impl Sti {
    /// The most safety-threatening actor, if any actor has STI > 0.
    ///
    /// Uses `total_cmp`, so the result is well-defined for every input
    /// (NaN values sort below all finite STI values and are filtered out
    /// by the `> 0.0` guard anyway).
    pub fn riskiest_actor(&self) -> Option<(ActorId, f64)> {
        self.per_actor
            .iter()
            .copied()
            .filter(|(_, v)| *v > 0.0)
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// One counterfactual reach-tube of an STI evaluation.
#[derive(Debug, Clone, Copy)]
enum Tube {
    /// `T`: every actor present.
    All,
    /// `T^∅`: no actors.
    Empty,
    /// `T^{/i}`: actor at obstacle index `i` removed.
    Without(usize),
}

/// Name of the environment variable overriding the automatic STI thread
/// count (`StiEvaluator` with `threads = 0`). Must parse as a positive
/// integer; `1` forces serial evaluation.
pub const STI_THREADS_ENV: &str = "IPRISM_STI_THREADS";

/// Evaluates STI via counterfactual reach-tube queries.
///
/// Three (plus one per actor) reach-tubes are computed per evaluation:
/// `T` with all actors, `T^∅` with none, and `T^{/i}` with actor *i*
/// removed. The ratios of their volumes give the paper's Eq. (4) and (5).
///
/// The evaluator is configured by a [`ReachConfig`]; its `start_time` and
/// `ego_dims` are overridden per scene.
///
/// # Performance and determinism
///
/// All tubes of one evaluation share a single precomputed
/// [`SliceCache`] (obstacle footprints are interpolated once, not once per
/// counterfactual) and are fanned out over a rayon thread pool sized by
/// [`StiEvaluator::with_threads`]. Results are collected in deterministic
/// order and each tube computation is pure, so the output is **byte-for-byte
/// identical** for every thread count, including fully serial. Actors whose
/// swept extent the ego provably cannot reach are skipped outright — their
/// counterfactual tube is bit-identical to the factual tube, so their STI
/// is exactly `0` either way.
#[derive(Debug, Clone, Default)]
pub struct StiEvaluator {
    /// Reach-tube parameters.
    pub config: ReachConfig,
    /// Worker threads for the counterfactual fan-out. `0` = automatic
    /// (the [`STI_THREADS_ENV`] environment variable when set, otherwise the
    /// host's available parallelism); `1` = serial.
    threads: usize,
    /// Opt-in shared cache of counterfactual tube volumes.
    tube_memo: Option<Arc<TubeMemo>>,
}

impl StiEvaluator {
    /// Creates an evaluator with the given reach configuration, automatic
    /// thread count and no memoization.
    pub fn new(config: ReachConfig) -> Self {
        StiEvaluator {
            config,
            threads: 0,
            tube_memo: None,
        }
    }

    /// Sets the number of worker threads used to fan out counterfactual
    /// tubes. `0` restores the automatic default ([`STI_THREADS_ENV`] when
    /// set, otherwise host parallelism); `1` forces serial evaluation.
    /// Results do not depend on the choice.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Opts in to counterfactual tube memoization through a shared
    /// [`TubeMemo`] (see the memo's documentation for the exactness
    /// trade-off — within one ego quantization cell the cached volume
    /// stands in for recomputation). All tube kinds are cached: the
    /// obstacle-footprint fingerprint in the key separates the factual,
    /// empty and per-actor counterfactual volumes. The memo must only be
    /// shared between evaluators operating on the same map.
    #[must_use]
    pub fn with_tube_memo(mut self, memo: Arc<TubeMemo>) -> Self {
        self.tube_memo = Some(memo);
        self
    }

    /// Alias of [`StiEvaluator::with_tube_memo`] under the memo's
    /// historical name.
    #[must_use]
    pub fn with_empty_tube_memo(self, memo: Arc<TubeMemo>) -> Self {
        self.with_tube_memo(memo)
    }

    /// The configured thread count (`0` = automatic).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Full evaluation: combined STI plus per-actor STI (Eq. 4 and 5).
    // iprism: hot-path(deterministic)
    pub fn evaluate(&self, map: &RoadMap, scene: &SceneSnapshot) -> Sti {
        let cfg = self.scene_config(scene);
        let obstacles = scene.obstacles();
        let cache = SliceCache::new(&obstacles, &cfg);
        let n = obstacles.len();
        let all_idx: Vec<usize> = (0..n).collect();

        // Job list: factual and empty tubes, then one counterfactual per
        // *reachable* actor. Unreachable actors (broadphase-proven) reuse
        // the factual volume — their tube would be bit-identical anyway.
        let mut jobs: Vec<Tube> = Vec::with_capacity(n + 2);
        jobs.push(Tube::All);
        jobs.push(Tube::Empty);
        let mut job_of_actor: Vec<Option<usize>> = Vec::with_capacity(n);
        for i in 0..n {
            if cache.interacts(i, &scene.ego) {
                job_of_actor.push(Some(jobs.len()));
                jobs.push(Tube::Without(i));
            } else {
                job_of_actor.push(None);
            }
        }

        let volumes = self.run_jobs(&jobs, |tube| {
            self.tube_volume(map, scene.ego, &cache, &all_idx, *tube, &cfg)
        });
        let v_all = volumes[0];
        let v_empty = volumes[1];

        let per_actor: Vec<(ActorId, f64)> = scene
            .actors
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let v_without = job_of_actor
                    .get(i)
                    .copied()
                    .flatten()
                    .map_or(v_all, |j| volumes[j]);
                iprism_contracts::check_tube_monotone(
                    "StiEvaluator::evaluate",
                    v_all,
                    v_without,
                    v_empty,
                );
                let sti = sti_ratio(v_without - v_all, v_empty);
                iprism_contracts::check_sti("StiEvaluator::evaluate per-actor", sti);
                (a.id, sti)
            })
            .collect();

        let combined = sti_ratio(v_empty - v_all, v_empty);
        iprism_contracts::check_sti("StiEvaluator::evaluate combined", combined);

        Sti {
            combined,
            per_actor,
            volume_all: v_all,
            volume_empty: v_empty,
        }
    }

    /// Cheap evaluation of only `STI^(combined)` (two reach-tubes instead of
    /// `N + 2`) — what the SMC reward needs at every RL step. Shares the
    /// slice cache between both tubes and honours the empty-tube memo.
    // iprism: hot-path(deterministic)
    pub fn evaluate_combined(&self, map: &RoadMap, scene: &SceneSnapshot) -> f64 {
        let cfg = self.scene_config(scene);
        let obstacles = scene.obstacles();
        let cache = SliceCache::new(&obstacles, &cfg);
        let all_idx: Vec<usize> = (0..obstacles.len()).collect();
        let jobs = [Tube::All, Tube::Empty];
        let volumes = self.run_jobs(&jobs, |tube| {
            self.tube_volume(map, scene.ego, &cache, &all_idx, *tube, &cfg)
        });
        let sti = sti_ratio(volumes[1] - volumes[0], volumes[1]);
        iprism_contracts::check_sti("StiEvaluator::evaluate_combined", sti);
        sti
    }

    /// Computes one counterfactual tube's volume (memo-aware for every
    /// tube kind — the active set enters the memo key via the fingerprint
    /// of its interpolated footprints).
    fn tube_volume(
        &self,
        map: &RoadMap,
        ego: VehicleState,
        cache: &SliceCache,
        all_idx: &[usize],
        tube: Tube,
        cfg: &ReachConfig,
    ) -> f64 {
        match tube {
            Tube::All => self.memoized_volume(map, ego, cache, all_idx, cfg),
            Tube::Empty => self.memoized_volume(map, ego, cache, &[], cfg),
            Tube::Without(skip) => {
                let active: Vec<usize> = all_idx.iter().copied().filter(|&j| j != skip).collect();
                self.memoized_volume(map, ego, cache, &active, cfg)
            }
        }
    }

    /// `compute_reach_tube_cached(...).volume()` through the tube memo when
    /// one is attached.
    fn memoized_volume(
        &self,
        map: &RoadMap,
        ego: VehicleState,
        cache: &SliceCache,
        active: &[usize],
        cfg: &ReachConfig,
    ) -> f64 {
        match &self.tube_memo {
            Some(memo) => memo
                .get_or_compute(memo_key(&ego, cfg, cache.fingerprint(active)), || {
                    compute_reach_tube_cached(map, ego, cache, active, cfg).volume()
                }),
            None => compute_reach_tube_cached(map, ego, cache, active, cfg).volume(),
        }
    }

    /// Runs the tube jobs — serially, or fanned out over a rayon pool —
    /// always returning volumes in job order so the evaluation result is
    /// independent of the thread count.
    fn run_jobs(&self, jobs: &[Tube], run: impl Fn(&Tube) -> f64 + Sync) -> Vec<f64> {
        let threads = self.effective_threads();
        if threads <= 1 || jobs.len() <= 1 {
            return jobs.iter().map(&run).collect();
        }
        match rayon::ThreadPoolBuilder::new().num_threads(threads).build() {
            Ok(pool) => pool.install(|| jobs.par_iter().map(&run).collect()),
            Err(_) => jobs.iter().map(&run).collect(),
        }
    }

    /// Resolves the effective thread count: explicit setting, else the
    /// [`STI_THREADS_ENV`] environment variable, else host parallelism.
    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Ok(value) = std::env::var(STI_THREADS_ENV) {
            if let Ok(n) = value.parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    }

    fn scene_config(&self, scene: &SceneSnapshot) -> ReachConfig {
        let mut cfg = self.config.at_time(Seconds::new(scene.time));
        cfg.ego_dims = (Meters::new(scene.ego_dims.0), Meters::new(scene.ego_dims.1));
        cfg
    }
}

/// `numerator / |T^∅|`, clamped into `[0, 1]`; 0 when there are no escape
/// routes even in the empty world (the ego is trapped regardless of actors,
/// so no actor-attributable risk exists).
fn sti_ratio(numerator: f64, v_empty: f64) -> f64 {
    if v_empty <= 0.0 {
        return 0.0;
    }
    (numerator / v_empty).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests

    use super::*;
    use crate::SceneActor;
    use iprism_dynamics::{Trajectory, VehicleState};

    fn map3() -> RoadMap {
        RoadMap::straight_road(3, 3.5, 600.0)
    }

    fn ego() -> VehicleState {
        VehicleState::new(100.0, 5.25, 0.0, 10.0)
    }

    fn parked(id: u32, x: f64, y: f64) -> SceneActor {
        SceneActor::new(
            ActorId(id),
            Trajectory::from_states(
                Seconds::new(0.0),
                Seconds::new(2.5),
                vec![VehicleState::new(x, y, 0.0, 0.0); 2],
            ),
            4.6,
            2.0,
        )
    }

    #[test]
    fn empty_scene_zero_risk() {
        let scene = SceneSnapshot::new(0.0, ego(), (4.6, 2.0));
        let sti = StiEvaluator::default().evaluate(&map3(), &scene);
        assert_eq!(sti.combined, 0.0);
        assert!(sti.per_actor.is_empty());
        assert!(sti.riskiest_actor().is_none());
        assert!((sti.volume_all - sti.volume_empty).abs() < 1e-9);
    }

    #[test]
    fn harmless_distant_actor_near_zero() {
        let scene = SceneSnapshot::new(0.0, ego(), (4.6, 2.0)).with_actor(parked(1, 500.0, 5.25));
        let sti = StiEvaluator::default().evaluate(&map3(), &scene);
        assert!(sti.combined < 0.02, "combined {}", sti.combined);
        assert!(sti.per_actor[0].1 < 0.02);
    }

    #[test]
    fn blocking_actor_raises_risk() {
        let scene = SceneSnapshot::new(0.0, ego(), (4.6, 2.0)).with_actor(parked(1, 114.0, 5.25));
        let sti = StiEvaluator::default().evaluate(&map3(), &scene);
        assert!(sti.combined > 0.1, "combined {}", sti.combined);
        assert_eq!(sti.riskiest_actor().unwrap().0, ActorId(1));
        // With one actor, per-actor STI equals combined STI.
        assert!((sti.per_actor[0].1 - sti.combined).abs() < 1e-9);
    }

    #[test]
    fn surrounded_ego_risk_near_one() {
        let mut scene = SceneSnapshot::new(0.0, ego(), (4.6, 2.0));
        // Wall of cars directly ahead across all three lanes, plus flankers.
        for (i, (x, y)) in [
            (108.0, 1.75),
            (108.0, 5.25),
            (108.0, 8.75),
            (100.0, 1.75),
            (100.0, 8.75),
            (94.0, 5.25),
        ]
        .iter()
        .enumerate()
        {
            scene = scene.with_actor(parked(i as u32 + 1, *x, *y));
        }
        let sti = StiEvaluator::default().evaluate(&map3(), &scene);
        assert!(sti.combined > 0.8, "combined {}", sti.combined);
    }

    #[test]
    fn sti_within_bounds_and_attribution_sane() {
        let scene = SceneSnapshot::new(0.0, ego(), (4.6, 2.0))
            .with_actor(parked(1, 112.0, 5.25))
            .with_actor(parked(2, 112.0, 8.75));
        let sti = StiEvaluator::default().evaluate(&map3(), &scene);
        assert!((0.0..=1.0).contains(&sti.combined));
        for (_, v) in &sti.per_actor {
            assert!((0.0..=1.0).contains(v));
        }
        // The in-lane blocker threatens more than the adjacent-lane one.
        assert!(sti.per_actor[0].1 >= sti.per_actor[1].1);
    }

    #[test]
    fn combined_fast_path_matches_full() {
        let scene = SceneSnapshot::new(0.0, ego(), (4.6, 2.0)).with_actor(parked(1, 114.0, 5.25));
        let ev = StiEvaluator::default();
        let full = ev.evaluate(&map3(), &scene);
        let fast = ev.evaluate_combined(&map3(), &scene);
        assert!((full.combined - fast).abs() < 1e-9);
    }

    #[test]
    fn ratio_guards() {
        assert_eq!(sti_ratio(5.0, 0.0), 0.0);
        assert_eq!(sti_ratio(-3.0, 10.0), 0.0);
        assert_eq!(sti_ratio(15.0, 10.0), 1.0);
        assert!((sti_ratio(5.0, 10.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parallel_evaluation_is_byte_identical_to_serial() {
        let scene = SceneSnapshot::new(0.0, ego(), (4.6, 2.0))
            .with_actor(parked(1, 112.0, 5.25))
            .with_actor(parked(2, 112.0, 8.75))
            .with_actor(parked(3, 120.0, 1.75))
            .with_actor(parked(4, 500.0, 5.25)); // unreachable: skipped tube
        let serial = StiEvaluator::default().with_threads(1);
        let reference = serial.evaluate(&map3(), &scene);
        for threads in [2, 4, 8] {
            let parallel = StiEvaluator::default().with_threads(threads);
            assert_eq!(
                parallel.evaluate(&map3(), &scene),
                reference,
                "thread count {threads} changed the result"
            );
            assert_eq!(parallel.threads(), threads);
        }
    }

    #[test]
    fn memoized_tubes_match_direct() {
        let memo = std::sync::Arc::new(crate::TubeMemo::new());
        let plain = StiEvaluator::default();
        let memoized = StiEvaluator::default().with_tube_memo(memo.clone());
        let scene = SceneSnapshot::new(0.0, ego(), (4.6, 2.0)).with_actor(parked(1, 114.0, 5.25));

        let direct = plain.evaluate(&map3(), &scene);
        let first = memoized.evaluate(&map3(), &scene);
        // Two distinct volumes get cached: the factual tube, and the empty
        // tube (whose key the single actor's counterfactual tube shares —
        // both have an empty active set).
        assert_eq!(memo.len(), 2);
        let second = memoized.evaluate(&map3(), &scene);
        assert_eq!(memo.len(), 2, "repeat query must hit the cache");
        assert_eq!(direct, first);
        assert_eq!(first, second);
        assert!(
            (memoized.evaluate_combined(&map3(), &scene) - direct.combined).abs() < 1e-12,
            "combined fast path must agree through the memo"
        );
    }

    #[test]
    fn out_of_path_actor_still_contributes() {
        // §V-D case (b): an actor in the adjacent lane encroaching on the
        // ego lane poses risk although it never crosses the ego's path.
        let encroaching = SceneActor::new(
            ActorId(1),
            Trajectory::from_states(
                Seconds::new(0.0),
                Seconds::new(2.5),
                vec![VehicleState::new(110.0, 7.3, 0.0, 0.0); 2],
            ),
            8.0,
            2.6, // oversized
        );
        let scene = SceneSnapshot::new(0.0, ego(), (4.6, 2.0)).with_actor(encroaching);
        let sti = StiEvaluator::default().evaluate(&map3(), &scene);
        assert!(sti.combined > 0.03, "combined {}", sti.combined);
    }
}
