//! The Safety-Threat Indicator (Eq. 4–6 of the paper).

use iprism_map::RoadMap;
use iprism_reach::{compute_reach_tube, ReachConfig};
use iprism_sim::ActorId;
use iprism_units::{Meters, Seconds};
use serde::{Deserialize, Serialize};

use crate::SceneSnapshot;

/// Result of an STI evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sti {
    /// `STI^(combined)` (Eq. 5): risk from all actors collectively, in
    /// `[0, 1]`. 0 = no impact on escape routes, 1 = escape routes fully
    /// eliminated.
    pub combined: f64,
    /// `STI^(i)` per actor (Eq. 4), in `[0, 1]`, in scene actor order.
    pub per_actor: Vec<(ActorId, f64)>,
    /// `|T|`: escape-route volume with every actor present (m²).
    pub volume_all: f64,
    /// `|T^∅|`: escape-route volume with no actors (m²).
    pub volume_empty: f64,
}

impl Sti {
    /// The most safety-threatening actor, if any actor has STI > 0.
    ///
    /// Uses `total_cmp`, so the result is well-defined for every input
    /// (NaN values sort below all finite STI values and are filtered out
    /// by the `> 0.0` guard anyway).
    pub fn riskiest_actor(&self) -> Option<(ActorId, f64)> {
        self.per_actor
            .iter()
            .copied()
            .filter(|(_, v)| *v > 0.0)
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// Evaluates STI via counterfactual reach-tube queries.
///
/// Three (plus one per actor) reach-tubes are computed per evaluation:
/// `T` with all actors, `T^∅` with none, and `T^{/i}` with actor *i*
/// removed. The ratios of their volumes give the paper's Eq. (4) and (5).
///
/// The evaluator is configured by a [`ReachConfig`]; its `start_time` and
/// `ego_dims` are overridden per scene.
#[derive(Debug, Clone, Default)]
pub struct StiEvaluator {
    /// Reach-tube parameters.
    pub config: ReachConfig,
}

impl StiEvaluator {
    /// Creates an evaluator with the given reach configuration.
    pub fn new(config: ReachConfig) -> Self {
        StiEvaluator { config }
    }

    /// Full evaluation: combined STI plus per-actor STI (Eq. 4 and 5).
    pub fn evaluate(&self, map: &RoadMap, scene: &SceneSnapshot) -> Sti {
        let cfg = self.scene_config(scene);
        let all = compute_reach_tube(map, scene.ego, &scene.obstacles(), &cfg);
        let empty = compute_reach_tube(map, scene.ego, &[], &cfg);
        let v_all = all.volume();
        let v_empty = empty.volume();

        let per_actor: Vec<(ActorId, f64)> = scene
            .actors
            .iter()
            .map(|a| {
                let without =
                    compute_reach_tube(map, scene.ego, &scene.obstacles_without(a.id), &cfg);
                let v_without = without.volume();
                iprism_contracts::check_tube_monotone(
                    "StiEvaluator::evaluate",
                    v_all,
                    v_without,
                    v_empty,
                );
                let sti = sti_ratio(v_without - v_all, v_empty);
                iprism_contracts::check_sti("StiEvaluator::evaluate per-actor", sti);
                (a.id, sti)
            })
            .collect();

        let combined = sti_ratio(v_empty - v_all, v_empty);
        iprism_contracts::check_sti("StiEvaluator::evaluate combined", combined);

        Sti {
            combined,
            per_actor,
            volume_all: v_all,
            volume_empty: v_empty,
        }
    }

    /// Cheap evaluation of only `STI^(combined)` (two reach-tubes instead of
    /// `N + 2`) — what the SMC reward needs at every RL step.
    pub fn evaluate_combined(&self, map: &RoadMap, scene: &SceneSnapshot) -> f64 {
        let cfg = self.scene_config(scene);
        let all = compute_reach_tube(map, scene.ego, &scene.obstacles(), &cfg);
        let empty = compute_reach_tube(map, scene.ego, &[], &cfg);
        let sti = sti_ratio(empty.volume() - all.volume(), empty.volume());
        iprism_contracts::check_sti("StiEvaluator::evaluate_combined", sti);
        sti
    }

    fn scene_config(&self, scene: &SceneSnapshot) -> ReachConfig {
        let mut cfg = self.config.at_time(Seconds::new(scene.time));
        cfg.ego_dims = (Meters::new(scene.ego_dims.0), Meters::new(scene.ego_dims.1));
        cfg
    }
}

/// `numerator / |T^∅|`, clamped into `[0, 1]`; 0 when there are no escape
/// routes even in the empty world (the ego is trapped regardless of actors,
/// so no actor-attributable risk exists).
fn sti_ratio(numerator: f64, v_empty: f64) -> f64 {
    if v_empty <= 0.0 {
        return 0.0;
    }
    (numerator / v_empty).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests

    use super::*;
    use crate::SceneActor;
    use iprism_dynamics::{Trajectory, VehicleState};

    fn map3() -> RoadMap {
        RoadMap::straight_road(3, 3.5, 600.0)
    }

    fn ego() -> VehicleState {
        VehicleState::new(100.0, 5.25, 0.0, 10.0)
    }

    fn parked(id: u32, x: f64, y: f64) -> SceneActor {
        SceneActor::new(
            ActorId(id),
            Trajectory::from_states(
                Seconds::new(0.0),
                Seconds::new(2.5),
                vec![VehicleState::new(x, y, 0.0, 0.0); 2],
            ),
            4.6,
            2.0,
        )
    }

    #[test]
    fn empty_scene_zero_risk() {
        let scene = SceneSnapshot::new(0.0, ego(), (4.6, 2.0));
        let sti = StiEvaluator::default().evaluate(&map3(), &scene);
        assert_eq!(sti.combined, 0.0);
        assert!(sti.per_actor.is_empty());
        assert!(sti.riskiest_actor().is_none());
        assert!((sti.volume_all - sti.volume_empty).abs() < 1e-9);
    }

    #[test]
    fn harmless_distant_actor_near_zero() {
        let scene = SceneSnapshot::new(0.0, ego(), (4.6, 2.0)).with_actor(parked(1, 500.0, 5.25));
        let sti = StiEvaluator::default().evaluate(&map3(), &scene);
        assert!(sti.combined < 0.02, "combined {}", sti.combined);
        assert!(sti.per_actor[0].1 < 0.02);
    }

    #[test]
    fn blocking_actor_raises_risk() {
        let scene = SceneSnapshot::new(0.0, ego(), (4.6, 2.0)).with_actor(parked(1, 114.0, 5.25));
        let sti = StiEvaluator::default().evaluate(&map3(), &scene);
        assert!(sti.combined > 0.1, "combined {}", sti.combined);
        assert_eq!(sti.riskiest_actor().unwrap().0, ActorId(1));
        // With one actor, per-actor STI equals combined STI.
        assert!((sti.per_actor[0].1 - sti.combined).abs() < 1e-9);
    }

    #[test]
    fn surrounded_ego_risk_near_one() {
        let mut scene = SceneSnapshot::new(0.0, ego(), (4.6, 2.0));
        // Wall of cars directly ahead across all three lanes, plus flankers.
        for (i, (x, y)) in [
            (108.0, 1.75),
            (108.0, 5.25),
            (108.0, 8.75),
            (100.0, 1.75),
            (100.0, 8.75),
            (94.0, 5.25),
        ]
        .iter()
        .enumerate()
        {
            scene = scene.with_actor(parked(i as u32 + 1, *x, *y));
        }
        let sti = StiEvaluator::default().evaluate(&map3(), &scene);
        assert!(sti.combined > 0.8, "combined {}", sti.combined);
    }

    #[test]
    fn sti_within_bounds_and_attribution_sane() {
        let scene = SceneSnapshot::new(0.0, ego(), (4.6, 2.0))
            .with_actor(parked(1, 112.0, 5.25))
            .with_actor(parked(2, 112.0, 8.75));
        let sti = StiEvaluator::default().evaluate(&map3(), &scene);
        assert!((0.0..=1.0).contains(&sti.combined));
        for (_, v) in &sti.per_actor {
            assert!((0.0..=1.0).contains(v));
        }
        // The in-lane blocker threatens more than the adjacent-lane one.
        assert!(sti.per_actor[0].1 >= sti.per_actor[1].1);
    }

    #[test]
    fn combined_fast_path_matches_full() {
        let scene = SceneSnapshot::new(0.0, ego(), (4.6, 2.0)).with_actor(parked(1, 114.0, 5.25));
        let ev = StiEvaluator::default();
        let full = ev.evaluate(&map3(), &scene);
        let fast = ev.evaluate_combined(&map3(), &scene);
        assert!((full.combined - fast).abs() < 1e-9);
    }

    #[test]
    fn ratio_guards() {
        assert_eq!(sti_ratio(5.0, 0.0), 0.0);
        assert_eq!(sti_ratio(-3.0, 10.0), 0.0);
        assert_eq!(sti_ratio(15.0, 10.0), 1.0);
        assert!((sti_ratio(5.0, 10.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_path_actor_still_contributes() {
        // §V-D case (b): an actor in the adjacent lane encroaching on the
        // ego lane poses risk although it never crosses the ego's path.
        let encroaching = SceneActor::new(
            ActorId(1),
            Trajectory::from_states(
                Seconds::new(0.0),
                Seconds::new(2.5),
                vec![VehicleState::new(110.0, 7.3, 0.0, 0.0); 2],
            ),
            8.0,
            2.6, // oversized
        );
        let scene = SceneSnapshot::new(0.0, ego(), (4.6, 2.0)).with_actor(encroaching);
        let sti = StiEvaluator::default().evaluate(&map3(), &scene);
        assert!(sti.combined > 0.03, "combined {}", sti.combined);
    }
}
