//! Time-to-collision (TTC) baseline metric.

use crate::SceneSnapshot;

/// Default TTC threshold below which a scene counts as risky (s). Used by
/// the LTFMA study and the TTC-based ACA controller, following the ~3 s
/// forward-collision-warning convention of the paper's references [11, 13].
pub const TTC_RISK_SECONDS: f64 = 3.0;

/// Time to collision with the closest *in-path* actor (§IV-C):
/// `TTC = d / s_r` where `d` is the bumper distance to the closest actor
/// whose trajectory intersects the ego's, and `s_r` the closing speed.
///
/// Returns `None` when no in-path actor is closing — exactly the blindness
/// the paper exploits: out-of-path actors (e.g. a cut-in approaching from
/// the side) produce no TTC at all until they enter the path.
pub fn time_to_collision(scene: &SceneSnapshot) -> Option<f64> {
    let ego = scene.ego;
    let ego_vel = ego.velocity();
    let mut best: Option<f64> = None;

    for actor in &scene.actors {
        let a = actor.current_state();
        if !scene.is_in_path(actor) {
            continue;
        }
        let offset = a.position() - ego.position();
        let dist = offset.norm();
        let half_lengths = (scene.ego_dims.0 + actor.length) * 0.5;
        let d = (dist - half_lengths).max(0.0);
        let dir = match offset.try_normalize() {
            Some(d) => d,
            None => continue,
        };
        // Closing speed along the line connecting the two bodies.
        let s_r = (ego_vel - a.velocity()).dot(dir);
        if s_r <= 0.05 {
            continue; // separating or static relative motion
        }
        let ttc = d / s_r;
        if best.is_none_or(|b| ttc < b) {
            best = Some(ttc);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use crate::SceneActor;
    use iprism_dynamics::{Trajectory, VehicleState};
    use iprism_sim::ActorId;
    use iprism_units::Seconds;

    fn scene_with(actors: Vec<SceneActor>) -> SceneSnapshot {
        let mut s = SceneSnapshot::new(0.0, VehicleState::new(0.0, 0.0, 0.0, 10.0), (4.6, 2.0));
        s.actors = actors;
        s
    }

    fn stopped_ahead(id: u32, x: f64) -> SceneActor {
        SceneActor::new(
            ActorId(id),
            Trajectory::from_states(
                Seconds::new(0.0),
                Seconds::new(0.25),
                vec![VehicleState::new(x, 0.0, 0.0, 0.0); 21],
            ),
            4.6,
            2.0,
        )
    }

    #[test]
    fn empty_scene_no_ttc() {
        assert!(time_to_collision(&scene_with(vec![])).is_none());
    }

    #[test]
    fn stopped_lead_gives_ttc() {
        let s = scene_with(vec![stopped_ahead(1, 25.0)]);
        let ttc = time_to_collision(&s).unwrap();
        // 25 m - 4.6 m bumpers = 20.4 m at 10 m/s closing.
        assert!((ttc - 2.04).abs() < 0.05, "ttc {ttc}");
    }

    #[test]
    fn closest_of_two_leads_wins() {
        let s = scene_with(vec![stopped_ahead(1, 40.0), stopped_ahead(2, 25.0)]);
        let ttc = time_to_collision(&s).unwrap();
        assert!(ttc < 2.1);
    }

    #[test]
    fn adjacent_lane_actor_invisible() {
        // Actor 3.5 m to the side travelling parallel: never in path.
        let side = SceneActor::new(
            ActorId(1),
            Trajectory::from_states(
                Seconds::new(0.0),
                Seconds::new(0.25),
                (0..21)
                    .map(|i| VehicleState::new(10.0 + 2.5 * i as f64 * 0.25, 3.5, 0.0, 10.0))
                    .collect(),
            ),
            4.6,
            2.0,
        );
        assert!(time_to_collision(&scene_with(vec![side])).is_none());
    }

    #[test]
    fn receding_lead_no_ttc() {
        // Lead moving away faster than the ego.
        let fleeing = SceneActor::new(
            ActorId(1),
            Trajectory::from_states(
                Seconds::new(0.0),
                Seconds::new(0.25),
                (0..21)
                    .map(|i| VehicleState::new(20.0 + 15.0 * i as f64 * 0.25, 0.0, 0.0, 15.0))
                    .collect(),
            ),
            4.6,
            2.0,
        );
        assert!(time_to_collision(&scene_with(vec![fleeing])).is_none());
    }

    #[test]
    fn cut_in_only_visible_after_entering_path() {
        // Before the cut-in: actor parallel in the adjacent lane → None.
        // After it crosses into the ego lane ahead → Some.
        let cutting: Vec<VehicleState> = (0..21)
            .map(|i| {
                let t = i as f64 * 0.25;
                let y = (3.5 - 3.5 * (t / 2.0).min(1.0)).max(0.0);
                VehicleState::new(12.0 + 8.0 * t, y, 0.0, 8.0)
            })
            .collect();
        let actor = SceneActor::new(
            ActorId(1),
            Trajectory::from_states(Seconds::new(0.0), Seconds::new(0.25), cutting),
            4.6,
            2.0,
        );
        let s = scene_with(vec![actor]);
        // The ego at 10 m/s catches up with the 8 m/s cutting actor.
        let ttc = time_to_collision(&s);
        assert!(ttc.is_some());
    }

    #[test]
    fn overlapping_bodies_zero_ttc() {
        let s = scene_with(vec![stopped_ahead(1, 3.0)]);
        let ttc = time_to_collision(&s).unwrap();
        assert_eq!(ttc, 0.0);
    }
}
