//! Opt-in memoization of counterfactual tube volumes.
//!
//! Every STI evaluation recomputes its reach-tubes, yet each volume is a
//! pure function of the ego state, the map, the reach configuration and the
//! *interpolated obstacle footprints* of the tube's active obstacle set
//! (`|T^∅|` depends on no obstacles at all). Along an SMC mitigation
//! episode the ego revisits identical states whenever episodes replay a
//! shared action prefix, or when it is stopped or cruising steadily — and
//! against a static hazard the obstacle footprints recur too, so whole
//! evaluations are recomputed over and over for the same answer.
//!
//! [`TubeMemo`] caches tube volumes keyed by the **quantized** ego state
//! (millimetre/centi-milliradian resolution), a fingerprint of every
//! config field the tube depends on, and a fingerprint of the active
//! obstacles' interpolated slice footprints
//! ([`iprism_reach::SliceCache::fingerprint`]; the empty set keys `|T^∅|`).
//! It is strictly **opt-in** (`StiEvaluator::with_tube_memo`): within one
//! ego quantization cell the cached volume substitutes for an exact
//! recomputation, a deliberate, bounded approximation that the default
//! evaluator never makes.
//!
//! The map is *not* part of the key — a memo handle must only be used with
//! one map, which is how `iprism_core`'s mitigation environment (one map
//! per episode set) wires it up.

use std::collections::BTreeMap;
use std::sync::Mutex;

use iprism_dynamics::VehicleState;
use iprism_reach::ReachConfig;

/// Quantized ego state `(x, y, θ, v)` plus config and obstacle-footprint
/// fingerprints.
pub(crate) type MemoKey = (i64, i64, i64, i64, u64, u64);

/// Position quantum (m) for memo keys: 1 mm.
const POS_QUANTUM: f64 = 1e-3;
/// Heading quantum (rad) for memo keys.
const ANGLE_QUANTUM: f64 = 1e-4;
/// Speed quantum (m/s) for memo keys: 1 mm/s.
const SPEED_QUANTUM: f64 = 1e-3;

/// A shared, thread-safe cache of counterfactual tube volumes (factual,
/// empty-world and per-actor alike — the obstacle-footprint fingerprint in
/// the key tells them apart).
///
/// Create one with [`TubeMemo::new`], wrap it in an [`std::sync::Arc`],
/// and hand it to every evaluator that should share it via
/// `StiEvaluator::with_tube_memo`. Lookups and inserts are guarded by a
/// mutex; on a poisoned lock the memo degrades to computing without caching
/// rather than panicking.
#[derive(Debug, Default)]
pub struct TubeMemo {
    entries: Mutex<BTreeMap<MemoKey, f64>>,
}

/// Historical name of [`TubeMemo`], from when only `|T^∅|` was cached.
pub type EmptyTubeMemo = TubeMemo;

impl TubeMemo {
    /// Creates an empty memo.
    #[must_use]
    pub fn new() -> Self {
        TubeMemo::default()
    }

    /// Number of cached volumes.
    pub fn len(&self) -> usize {
        self.entries.lock().map(|m| m.len()).unwrap_or(0)
    }

    /// Returns `true` when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every cached entry (e.g. when switching maps).
    pub fn clear(&self) {
        if let Ok(mut map) = self.entries.lock() {
            map.clear();
        }
    }

    /// Returns the cached volume for `key`, computing and caching it with
    /// `compute` on a miss.
    pub(crate) fn get_or_compute(&self, key: MemoKey, compute: impl FnOnce() -> f64) -> f64 {
        match self.entries.lock() {
            Ok(map) => {
                if let Some(&v) = map.get(&key) {
                    return v;
                }
            }
            Err(_) => return compute(),
        }
        // The lock is dropped during the (milliseconds-long) computation so
        // concurrent evaluations of *different* states proceed in parallel;
        // a racing duplicate insert writes the same deterministic value.
        let v = compute();
        if let Ok(mut map) = self.entries.lock() {
            map.insert(key, v);
        }
        v
    }
}

/// Builds the memo key for an ego state under a configuration, with
/// `obstacles_fp` fingerprinting the tube's active obstacle footprints
/// ([`iprism_reach::SliceCache::fingerprint`] of the active set).
pub(crate) fn memo_key(ego: &VehicleState, config: &ReachConfig, obstacles_fp: u64) -> MemoKey {
    (
        (ego.x / POS_QUANTUM).round() as i64,
        (ego.y / POS_QUANTUM).round() as i64,
        (ego.theta / ANGLE_QUANTUM).round() as i64,
        (ego.v / SPEED_QUANTUM).round() as i64,
        config_fingerprint(config),
        obstacles_fp,
    )
}

#[inline]
fn fold(mut h: u64, bits: u64) -> u64 {
    // FNV-1a over the little-endian bytes.
    for b in bits.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[inline]
fn fold_f(h: u64, x: f64) -> u64 {
    fold(h, x.to_bits())
}

/// FNV-1a fingerprint of every [`ReachConfig`] field a tube depends on
/// beyond its obstacle footprints. `start_time` is deliberately excluded:
/// it enters a tube computation *only* through the interpolated obstacle
/// footprints, which the obstacle fingerprint in the memo key captures
/// exactly — this is what lets one memo serve a whole episode sweep.
fn config_fingerprint(c: &ReachConfig) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    h = fold_f(h, c.dt.get());
    h = fold_f(h, c.horizon.get());
    h = fold_f(h, c.dedup_epsilon);
    let (tag, na, ns) = match c.mode {
        iprism_reach::SamplingMode::Boundary => (0u64, 0u64, 0u64),
        iprism_reach::SamplingMode::Extreme => (1, 0, 0),
        iprism_reach::SamplingMode::Uniform { na, ns } => (2, na as u64, ns as u64),
    };
    h = fold(h, tag);
    h = fold(h, na);
    h = fold(h, ns);
    h = fold_f(h, c.grid_resolution.get());
    h = fold_f(h, c.safety_margin.get());
    h = fold(h, c.max_frontier as u64);
    h = fold_f(h, c.drivable_margin.get());
    h = fold_f(h, c.ego_dims.0.get());
    h = fold_f(h, c.ego_dims.1.get());
    h = fold_f(h, c.model.wheelbase.get());
    let l = &c.model.limits;
    h = fold_f(h, l.accel_min);
    h = fold_f(h, l.accel_max);
    h = fold_f(h, l.steer_min);
    h = fold_f(h, l.steer_max);
    h = fold_f(h, l.v_min);
    h = fold_f(h, l.v_max);
    h
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use iprism_units::{Meters, Seconds};

    fn ego() -> VehicleState {
        VehicleState::new(100.0, 5.25, 0.0, 10.0)
    }

    #[test]
    fn get_or_compute_caches() {
        let memo = TubeMemo::new();
        assert!(memo.is_empty());
        let key = memo_key(&ego(), &ReachConfig::default(), 7);
        let mut calls = 0;
        let v1 = memo.get_or_compute(key, || {
            calls += 1;
            42.5
        });
        let v2 = memo.get_or_compute(key, || {
            calls += 1;
            -1.0
        });
        assert_eq!(v1, 42.5);
        assert_eq!(v2, 42.5);
        assert_eq!(calls, 1);
        assert_eq!(memo.len(), 1);
        memo.clear();
        assert!(memo.is_empty());
    }

    #[test]
    fn key_distinguishes_states_beyond_quantum() {
        let cfg = ReachConfig::default();
        let a = memo_key(&VehicleState::new(100.0, 5.25, 0.0, 10.0), &cfg, 0);
        let b = memo_key(&VehicleState::new(100.1, 5.25, 0.0, 10.0), &cfg, 0);
        let c = memo_key(&VehicleState::new(100.0, 5.25, 0.0, 10.0), &cfg, 0);
        let d = memo_key(&VehicleState::new(100.0, 5.25, 0.0, 10.0), &cfg, 1);
        assert_ne!(a, b);
        assert_eq!(a, c);
        assert_ne!(a, d, "obstacle fingerprint must distinguish keys");
    }

    #[test]
    fn fingerprint_ignores_start_time_only() {
        let base = ReachConfig::default();
        let shifted = base.at_time(Seconds::new(37.5));
        assert_eq!(
            memo_key(&ego(), &base, 0).4,
            memo_key(&ego(), &shifted, 0).4
        );

        let coarser = ReachConfig {
            grid_resolution: Meters::new(1.0),
            ..ReachConfig::default()
        };
        assert_ne!(
            memo_key(&ego(), &base, 0).4,
            memo_key(&ego(), &coarser, 0).4
        );
        let fewer = ReachConfig {
            max_frontier: 100,
            ..ReachConfig::default()
        };
        assert_ne!(memo_key(&ego(), &base, 0).4, memo_key(&ego(), &fewer, 0).4);
        let fast = ReachConfig::fast();
        assert_ne!(memo_key(&ego(), &base, 0).4, memo_key(&ego(), &fast, 0).4);
    }
}
