//! The common risk-metric interface every evaluator implements.
//!
//! The paper compares STI against TTC, Dist-CIPA and PKL (and derives the
//! LTFMA lead-time indicator from each) over one shared pipeline: a
//! [`SceneSnapshot`] goes in, per-actor and combined scores come out. The
//! [`RiskMetric`] trait captures exactly that contract so the experiment
//! harness can fan any metric over the episode engine without per-metric
//! wiring.

use iprism_map::RoadMap;
use iprism_sim::ActorId;

use crate::{dist_cipa, time_to_collision, PklModel, RiskIndicator, SceneSnapshot, StiEvaluator};

/// A metric's verdict on one scene.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskScore {
    /// The scene-level score; `None` where the metric is undefined (e.g.
    /// TTC with no in-path actor).
    pub combined: Option<f64>,
    /// Per-actor attributions in scene order (empty for metrics that only
    /// score the scene as a whole).
    pub per_actor: Vec<(ActorId, f64)>,
}

impl RiskScore {
    /// A scene-level-only score with no per-actor attribution.
    pub fn combined_only(combined: Option<f64>) -> Self {
        RiskScore {
            combined,
            per_actor: Vec::new(),
        }
    }
}

/// A risk metric: maps a scene snapshot (ego + actor trajectories) plus the
/// map to per-actor and combined scores — the paper's Eq. (6) shape,
/// shared by STI and every baseline it is compared against.
pub trait RiskMetric: Sync {
    /// The metric's display name (Table II row labels).
    fn name(&self) -> &'static str;

    /// Scores the scene: combined value plus per-actor attributions.
    fn score(&self, map: &RoadMap, scene: &SceneSnapshot) -> RiskScore;

    /// The combined score alone. Metrics with a cheaper scene-level path
    /// (STI skips the per-actor counterfactuals) override this; the default
    /// delegates to [`RiskMetric::score`].
    fn combined(&self, map: &RoadMap, scene: &SceneSnapshot) -> Option<f64> {
        self.score(map, scene).combined
    }
}

impl RiskMetric for StiEvaluator {
    fn name(&self) -> &'static str {
        "STI (ours)"
    }

    fn score(&self, map: &RoadMap, scene: &SceneSnapshot) -> RiskScore {
        let sti = self.evaluate(map, scene);
        RiskScore {
            combined: Some(sti.combined),
            per_actor: sti.per_actor,
        }
    }

    fn combined(&self, map: &RoadMap, scene: &SceneSnapshot) -> Option<f64> {
        Some(self.evaluate_combined(map, scene))
    }
}

impl RiskMetric for PklModel {
    fn name(&self) -> &'static str {
        "PKL"
    }

    fn score(&self, map: &RoadMap, scene: &SceneSnapshot) -> RiskScore {
        let pkl = self.evaluate(map, scene);
        RiskScore {
            combined: Some(pkl.combined),
            per_actor: pkl.per_actor,
        }
    }
}

/// Time-to-collision as a [`RiskMetric`]: scene-level only, undefined when
/// no in-path actor is closing (the blindness Table II demonstrates).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TtcMetric;

impl RiskMetric for TtcMetric {
    fn name(&self) -> &'static str {
        "TTC"
    }

    fn score(&self, _map: &RoadMap, scene: &SceneSnapshot) -> RiskScore {
        RiskScore::combined_only(time_to_collision(scene))
    }
}

/// Distance-to-closest-in-path-actor as a [`RiskMetric`]: scene-level only,
/// undefined without an in-path actor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistCipaMetric;

impl RiskMetric for DistCipaMetric {
    fn name(&self) -> &'static str {
        "Dist. CIPA"
    }

    fn score(&self, _map: &RoadMap, scene: &SceneSnapshot) -> RiskScore {
        RiskScore::combined_only(dist_cipa(scene))
    }
}

/// The LTFMA indicator as a [`RiskMetric`]: thresholds an inner metric's
/// combined score through a [`RiskIndicator`] into the binary risky signal
/// whose pre-accident run length is the paper's §V-A lead time. Scores are
/// `1.0` (risky) or `0.0`.
#[derive(Debug, Clone)]
pub struct LtfmaMetric<M> {
    metric: M,
    indicator: RiskIndicator,
}

impl<M: RiskMetric> LtfmaMetric<M> {
    /// Wraps `metric` with the indicator that binarizes its output.
    pub fn new(metric: M, indicator: RiskIndicator) -> Self {
        LtfmaMetric { metric, indicator }
    }

    /// The wrapped metric.
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// The binarizing indicator.
    pub fn indicator(&self) -> RiskIndicator {
        self.indicator
    }

    /// Whether the scene counts as risky under the wrapped metric.
    pub fn is_risky(&self, map: &RoadMap, scene: &SceneSnapshot) -> bool {
        self.indicator.is_risky(self.metric.combined(map, scene))
    }
}

impl<M: RiskMetric> RiskMetric for LtfmaMetric<M> {
    fn name(&self) -> &'static str {
        "LTFMA"
    }

    fn score(&self, map: &RoadMap, scene: &SceneSnapshot) -> RiskScore {
        let risky = self.is_risky(map, scene);
        RiskScore::combined_only(Some(if risky { 1.0 } else { 0.0 }))
    }
}

/// References delegate — studies hold metrics behind `&dyn RiskMetric`.
impl<M: RiskMetric + ?Sized> RiskMetric for &M {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn score(&self, map: &RoadMap, scene: &SceneSnapshot) -> RiskScore {
        (**self).score(map, scene)
    }

    fn combined(&self, map: &RoadMap, scene: &SceneSnapshot) -> Option<f64> {
        (**self).combined(map, scene)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests

    use super::*;
    use crate::{SceneActor, CIPA_RISK_DISTANCE, TTC_RISK_SECONDS};
    use iprism_dynamics::{Trajectory, VehicleState};
    use iprism_units::Seconds;

    /// A 10 m/s ego with a stopped car 16 m ahead on a two-lane road.
    fn scene() -> (RoadMap, SceneSnapshot) {
        let map = RoadMap::straight_road(2, 3.5, 400.0);
        let ego = VehicleState::new(100.0, 1.75, 0.0, 10.0);
        let blocker = Trajectory::from_states(
            Seconds::new(0.0),
            Seconds::new(0.25),
            vec![VehicleState::new(120.6, 1.75, 0.0, 0.0); 11],
        );
        let scene = SceneSnapshot::new(0.0, ego, (4.6, 2.0)).with_actor(SceneActor::new(
            ActorId(1),
            blocker,
            4.6,
            2.0,
        ));
        (map, scene)
    }

    fn empty_scene() -> (RoadMap, SceneSnapshot) {
        let map = RoadMap::straight_road(2, 3.5, 400.0);
        let scene = SceneSnapshot::new(0.0, VehicleState::new(100.0, 1.75, 0.0, 10.0), (4.6, 2.0));
        (map, scene)
    }

    /// Every impl must agree with the function/evaluator it wraps, and the
    /// `combined` fast path must agree with the full score.
    #[test]
    fn sti_impl_matches_evaluator() {
        let (map, scene) = scene();
        let evaluator = StiEvaluator::default();
        let score = RiskMetric::score(&evaluator, &map, &scene);
        let direct = evaluator.evaluate(&map, &scene);
        assert_eq!(score.combined, Some(direct.combined));
        assert_eq!(score.per_actor, direct.per_actor);
        assert_eq!(
            RiskMetric::combined(&evaluator, &map, &scene),
            Some(evaluator.evaluate_combined(&map, &scene))
        );
        assert_eq!(evaluator.name(), "STI (ours)");
    }

    #[test]
    fn ttc_impl_matches_function() {
        let (map, scene) = scene();
        assert_eq!(
            TtcMetric.score(&map, &scene).combined,
            time_to_collision(&scene)
        );
        assert!(TtcMetric.score(&map, &scene).per_actor.is_empty());
        let (map, empty) = empty_scene();
        assert_eq!(TtcMetric.combined(&map, &empty), None);
    }

    #[test]
    fn dist_cipa_impl_matches_function() {
        let (map, scene) = scene();
        assert_eq!(
            DistCipaMetric.score(&map, &scene).combined,
            dist_cipa(&scene)
        );
        let (map, empty) = empty_scene();
        assert_eq!(DistCipaMetric.combined(&map, &empty), None);
    }

    #[test]
    fn pkl_impl_matches_model() {
        let (map, scene) = scene();
        let model = PklModel::with_tau(1.0, crate::PklPlannerConfig::default());
        let score = RiskMetric::score(&model, &map, &scene);
        let direct = model.evaluate(&map, &scene);
        assert_eq!(score.combined, Some(direct.combined));
        assert_eq!(score.per_actor, direct.per_actor);
    }

    #[test]
    fn ltfma_impl_binarizes_through_the_indicator() {
        let (map, scene) = scene();
        let ttc = LtfmaMetric::new(
            TtcMetric,
            RiskIndicator::Ttc {
                threshold: TTC_RISK_SECONDS,
            },
        );
        // A stopped car ~16 m ahead at 10 m/s closing: TTC ≈ 1.6 s < 3 s.
        assert!(ttc.is_risky(&map, &scene));
        assert_eq!(ttc.score(&map, &scene).combined, Some(1.0));

        let (map, empty) = empty_scene();
        let cipa = LtfmaMetric::new(
            DistCipaMetric,
            RiskIndicator::DistCipa {
                threshold: CIPA_RISK_DISTANCE,
            },
        );
        // Undefined metrics are never risky.
        assert!(!cipa.is_risky(&map, &empty));
        assert_eq!(cipa.score(&map, &empty).combined, Some(0.0));
        assert_eq!(cipa.metric(), &DistCipaMetric);
    }

    #[test]
    fn dyn_dispatch_works_for_every_metric() {
        let (map, scene) = scene();
        let sti = StiEvaluator::default();
        let pkl = PklModel::with_tau(1.0, crate::PklPlannerConfig::default());
        let metrics: Vec<&dyn RiskMetric> = vec![&TtcMetric, &DistCipaMetric, &sti, &pkl];
        for m in metrics {
            let score = m.score(&map, &scene);
            assert_eq!(score.combined, m.combined(&map, &scene), "{}", m.name());
        }
    }
}
