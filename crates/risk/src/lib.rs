//! Risk metrics for iPrism: STI (the paper's contribution) and the three
//! baselines it is compared against (TTC, Dist-CIPA, PKL), plus the LTFMA
//! lead-time heuristic of §V-A.
//!
//! All metrics evaluate a [`SceneSnapshot`]: the ego state plus every other
//! actor's trajectory over the analysis horizon. Snapshots are built either
//! from a recorded simulation [`iprism_sim::Trace`] (ground-truth futures,
//! used for offline characterization — §V-A/B/D) or from a live
//! [`iprism_sim::World`] via the CVTR predictor (used online by the SMC —
//! §IV-C), exactly mirroring the paper's two evaluation modes.
//!
//! # Quick example
//!
//! ```
//! use iprism_dynamics::{Trajectory, VehicleState};
//! use iprism_map::RoadMap;
//! use iprism_risk::{SceneActor, SceneSnapshot, StiEvaluator};
//! use iprism_sim::ActorId;
//! use iprism_units::Seconds;
//!
//! let map = RoadMap::straight_road(2, 3.5, 400.0);
//! // A stopped car 16 m ahead of a 10 m/s ego.
//! let ego = VehicleState::new(100.0, 1.75, 0.0, 10.0);
//! let blocker = Trajectory::from_states(
//!     Seconds::new(0.0), Seconds::new(2.5),
//!     vec![VehicleState::new(116.0, 1.75, 0.0, 0.0); 2]);
//! let scene = SceneSnapshot::new(0.0, ego, (4.6, 2.0))
//!     .with_actor(SceneActor::new(ActorId(1), blocker, 4.6, 2.0));
//!
//! let sti = StiEvaluator::default().evaluate(&map, &scene);
//! assert!(sti.combined > 0.1);       // the blocker removes escape routes
//! assert_eq!(sti.per_actor.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cipa;
mod ltfma;
mod memo;
mod metric;
mod pkl;
mod scene;
mod sti;
mod ttc;

pub use cipa::{dist_cipa, CIPA_RISK_DISTANCE};
pub use ltfma::{ltfma_seconds, ltfma_steps, RiskIndicator};
pub use memo::{EmptyTubeMemo, TubeMemo};
pub use metric::{DistCipaMetric, LtfmaMetric, RiskMetric, RiskScore, TtcMetric};
pub use pkl::{Pkl, PklModel, PklPlannerConfig};
pub use scene::{SceneActor, SceneSnapshot};
pub use sti::{Sti, StiEvaluator, STI_THREADS_ENV};
pub use ttc::{time_to_collision, TTC_RISK_SECONDS};
