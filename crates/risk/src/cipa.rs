//! Distance to closest in-path actor (Dist-CIPA) baseline metric.

use crate::SceneSnapshot;

/// Default Dist-CIPA threshold below which a scene counts as risky (m),
/// used by the LTFMA study.
pub const CIPA_RISK_DISTANCE: f64 = 15.0;

/// Distance (bumper-to-bumper, m) from the ego to the closest in-path actor
/// — the proximity indicator of the paper's reference [13].
///
/// Returns `None` when no actor is in the ego's path; like TTC, Dist-CIPA
/// is blind to out-of-path actors.
pub fn dist_cipa(scene: &SceneSnapshot) -> Option<f64> {
    let ego = scene.ego;
    let mut best: Option<f64> = None;
    for actor in &scene.actors {
        if !scene.is_in_path(actor) {
            continue;
        }
        let a = actor.current_state();
        let dist = a.position().distance(ego.position());
        let half_lengths = (scene.ego_dims.0 + actor.length) * 0.5;
        let d = (dist - half_lengths).max(0.0);
        if best.is_none_or(|b| d < b) {
            best = Some(d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use crate::SceneActor;
    use iprism_dynamics::{Trajectory, VehicleState};
    use iprism_sim::ActorId;
    use iprism_units::Seconds;

    fn scene_with(actors: Vec<SceneActor>) -> SceneSnapshot {
        let mut s = SceneSnapshot::new(0.0, VehicleState::new(0.0, 0.0, 0.0, 10.0), (4.6, 2.0));
        s.actors = actors;
        s
    }

    fn stopped_ahead(id: u32, x: f64) -> SceneActor {
        SceneActor::new(
            ActorId(id),
            Trajectory::from_states(
                Seconds::new(0.0),
                Seconds::new(0.25),
                vec![VehicleState::new(x, 0.0, 0.0, 0.0); 21],
            ),
            4.6,
            2.0,
        )
    }

    #[test]
    fn empty_scene_none() {
        assert!(dist_cipa(&scene_with(vec![])).is_none());
    }

    #[test]
    fn distance_to_stopped_lead() {
        let s = scene_with(vec![stopped_ahead(1, 25.0)]);
        let d = dist_cipa(&s).unwrap();
        assert!((d - 20.4).abs() < 1e-9, "d {d}");
    }

    #[test]
    fn closest_wins() {
        let s = scene_with(vec![stopped_ahead(1, 50.0), stopped_ahead(2, 25.0)]);
        assert!((dist_cipa(&s).unwrap() - 20.4).abs() < 1e-9);
    }

    #[test]
    fn out_of_path_none() {
        let side = SceneActor::new(
            ActorId(1),
            Trajectory::from_states(
                Seconds::new(0.0),
                Seconds::new(0.25),
                (0..21)
                    .map(|i| VehicleState::new(10.0 + 2.5 * i as f64 * 0.25, 3.5, 0.0, 10.0))
                    .collect(),
            ),
            4.6,
            2.0,
        );
        assert!(dist_cipa(&scene_with(vec![side])).is_none());
    }

    #[test]
    fn touching_bodies_zero_distance() {
        let s = scene_with(vec![stopped_ahead(1, 4.0)]);
        assert_eq!(dist_cipa(&s).unwrap(), 0.0);
    }
}
