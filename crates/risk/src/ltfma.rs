//! Lead-Time-for-Mitigating-Accident (LTFMA), §V-A of the paper.

use serde::{Deserialize, Serialize};

/// Adapters turning each metric's raw value into the "risk ≠ 0" indicator
/// that LTFMA counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RiskIndicator {
    /// STI is risky when above a small floor (numerical zero).
    Sti {
        /// Values above this count as nonzero risk.
        floor: f64,
    },
    /// TTC is risky when present and below a threshold (s).
    Ttc {
        /// TTC threshold (s).
        threshold: f64,
    },
    /// Dist-CIPA is risky when present and below a threshold (m).
    DistCipa {
        /// Distance threshold (m).
        threshold: f64,
    },
    /// PKL is risky when above a threshold (nats).
    Pkl {
        /// KL threshold (nats).
        threshold: f64,
    },
}

impl RiskIndicator {
    /// Applies the indicator to a metric sample. `None` samples (metric
    /// undefined, e.g. no in-path actor) are never risky.
    pub fn is_risky(&self, value: Option<f64>) -> bool {
        match (self, value) {
            (RiskIndicator::Sti { floor }, Some(v)) => v > *floor,
            (RiskIndicator::Ttc { threshold }, Some(v)) => v < *threshold,
            (RiskIndicator::DistCipa { threshold }, Some(v)) => v < *threshold,
            (RiskIndicator::Pkl { threshold }, Some(v)) => v > *threshold,
            (_, None) => false,
        }
    }
}

/// LTFMA in steps: the number of *consecutive* risky steps immediately
/// preceding (and including) the accident step.
///
/// This is the paper's §V-A formula: the run length of `risk(i) ≠ 0`
/// ending at `t_accident`. `risky` holds one indicator sample per step;
/// `accident_index` is the step at which the accident happened.
///
/// # Panics
///
/// Panics when `accident_index >= risky.len()`.
pub fn ltfma_steps(risky: &[bool], accident_index: usize) -> usize {
    assert!(
        accident_index < risky.len(),
        "accident index {accident_index} out of range ({} steps)",
        risky.len()
    );
    let mut count = 0;
    for i in (0..=accident_index).rev() {
        if risky[i] {
            count += 1;
        } else {
            break;
        }
    }
    count
}

/// LTFMA in seconds: [`ltfma_steps`] × the step period.
pub fn ltfma_seconds(risky: &[bool], accident_index: usize, dt: f64) -> f64 {
    ltfma_steps(risky, accident_index) as f64 * dt
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counts_consecutive_run() {
        //                       0      1     2      3     4
        let risky = [true, false, true, true, true];
        assert_eq!(ltfma_steps(&risky, 4), 3);
        assert_eq!(ltfma_steps(&risky, 2), 1);
        assert_eq!(ltfma_steps(&risky, 1), 0);
        assert_eq!(ltfma_steps(&risky, 0), 1);
    }

    #[test]
    fn gap_resets_run() {
        let risky = [true, true, false, true];
        assert_eq!(ltfma_steps(&risky, 3), 1);
    }

    #[test]
    fn all_risky_counts_everything() {
        let risky = [true; 10];
        assert_eq!(ltfma_steps(&risky, 9), 10);
        assert!((ltfma_seconds(&risky, 9, 0.1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn never_risky_is_zero() {
        let risky = [false; 5];
        assert_eq!(ltfma_steps(&risky, 4), 0);
        assert_eq!(ltfma_seconds(&risky, 4, 0.1), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let _ = ltfma_steps(&[true], 1);
    }

    #[test]
    fn indicators() {
        let sti = RiskIndicator::Sti { floor: 0.01 };
        assert!(sti.is_risky(Some(0.5)));
        assert!(!sti.is_risky(Some(0.005)));
        assert!(!sti.is_risky(None));

        let ttc = RiskIndicator::Ttc { threshold: 3.0 };
        assert!(ttc.is_risky(Some(1.0)));
        assert!(!ttc.is_risky(Some(5.0)));
        assert!(!ttc.is_risky(None)); // no in-path actor: not risky

        let cipa = RiskIndicator::DistCipa { threshold: 15.0 };
        assert!(cipa.is_risky(Some(3.0)));
        assert!(!cipa.is_risky(Some(40.0)));

        let pkl = RiskIndicator::Pkl { threshold: 0.05 };
        assert!(pkl.is_risky(Some(0.2)));
        assert!(!pkl.is_risky(Some(0.01)));
    }

    proptest! {
        #[test]
        fn prop_run_bounded_by_index(risky in proptest::collection::vec(any::<bool>(), 1..50)) {
            let idx = risky.len() - 1;
            let run = ltfma_steps(&risky, idx);
            prop_assert!(run <= idx + 1);
            // run is exactly the trailing true-count
            let trailing = risky.iter().rev().take_while(|&&r| r).count();
            prop_assert_eq!(run, trailing);
        }
    }
}
