//! Planner KL-divergence (PKL) baseline metric.
//!
//! PKL (paper reference [14]) scores an actor by how much the ego planner's
//! *distribution over plans* changes when that actor is removed from the
//! scene. The original uses a learned neural planner; this reproduction uses
//! a probabilistic trajectory planner (softmax over candidate-rollout costs)
//! whose temperature is **fitted on training scenarios** — preserving PKL's
//! defining property that its quality depends on the training distribution
//! (the PKL-All vs PKL-Holdout comparison of Table II).

use iprism_dynamics::{BicycleModel, ControlInput};
use iprism_map::RoadMap;
use iprism_reach::Obstacle;
use iprism_sim::ActorId;
use iprism_units::{Meters, Seconds};
use serde::{Deserialize, Serialize};

use crate::SceneSnapshot;

/// Candidate-rollout planner parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PklPlannerConfig {
    /// Rollout horizon (s).
    pub horizon: f64,
    /// Rollout sample period (s).
    pub dt: f64,
    /// Candidate accelerations (m/s²).
    pub accels: Vec<f64>,
    /// Candidate steering angles (rad).
    pub steers: Vec<f64>,
    /// Cost added per sample in collision.
    pub collision_weight: f64,
    /// Weight of the exponential clearance penalty.
    pub clearance_weight: f64,
    /// Length scale (m) of the clearance penalty `w·exp(−d/λ)`. Short
    /// scales keep the planner focused on genuine path conflicts instead
    /// of parallel adjacent-lane proximity.
    pub clearance_decay: f64,
    /// Reward (negative cost) per metre of forward progress.
    pub progress_weight: f64,
}

impl Default for PklPlannerConfig {
    fn default() -> Self {
        PklPlannerConfig {
            horizon: 2.5,
            dt: 0.25,
            accels: vec![-4.0, -2.0, 0.0, 2.0],
            steers: vec![-0.25, -0.08, 0.0, 0.08, 0.25],
            collision_weight: 50.0,
            clearance_weight: 3.0,
            clearance_decay: 0.7,
            progress_weight: 0.15,
        }
    }
}

/// Result of a PKL evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pkl {
    /// KL divergence between the plan distribution with all actors and with
    /// none (the collective analogue used in Fig. 4's PKL rows).
    pub combined: f64,
    /// Per-actor KL divergence (actor removed vs. factual), in scene order.
    pub per_actor: Vec<(ActorId, f64)>,
}

/// A "trained" PKL model: the planner's softmax temperature, fitted to the
/// cost spread observed on training scenes.
///
/// On scenes resembling the training distribution the temperature is well
/// calibrated and PKL responds smoothly; on out-of-distribution scenes the
/// cost spread differs from what the temperature was fitted to and PKL
/// saturates or collapses — reproducing the data-sensitivity the paper
/// demonstrates with PKL-All vs PKL-Holdout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PklModel {
    /// Softmax temperature.
    pub tau: f64,
    /// Planner configuration.
    pub planner: PklPlannerConfig,
}

impl PklModel {
    /// Creates a model with an explicit temperature (no training).
    pub fn with_tau(tau: f64, planner: PklPlannerConfig) -> Self {
        assert!(tau > 0.0 && tau.is_finite(), "tau must be positive");
        PklModel { tau, planner }
    }

    /// Fits the temperature on training scenes: `τ` is the median standard
    /// deviation of the *actor-induced* candidate-cost deltas (cost with
    /// obstacles minus cost without), floored at a small positive value.
    /// A planner trained this way is calibrated for the cost spreads of
    /// *those* scenes only — benign training data yields a tiny τ that
    /// saturates on safety-critical scenes.
    pub fn fit<'a, I>(planner: PklPlannerConfig, map: &RoadMap, scenes: I) -> Self
    where
        I: IntoIterator<Item = &'a SceneSnapshot>,
    {
        let mut spreads: Vec<f64> = Vec::new();
        for scene in scenes {
            let with = candidate_costs(&planner, map, scene, &scene.obstacles());
            let without = candidate_costs(&planner, map, scene, &[]);
            let deltas: Vec<f64> = with.iter().zip(&without).map(|(a, b)| a - b).collect();
            let n = deltas.len() as f64;
            let mean = deltas.iter().sum::<f64>() / n;
            let var = deltas.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / n;
            spreads.push(var.sqrt());
        }
        spreads.sort_by(f64::total_cmp);
        let tau = if spreads.is_empty() {
            1.0
        } else {
            spreads[spreads.len() / 2].max(0.05)
        };
        PklModel::with_tau(tau, planner)
    }

    /// Evaluates PKL on a scene.
    pub fn evaluate(&self, map: &RoadMap, scene: &SceneSnapshot) -> Pkl {
        let factual = self.plan_distribution(map, scene, &scene.obstacles());
        let empty = self.plan_distribution(map, scene, &[]);
        let combined = kl_divergence(&factual, &empty);
        let per_actor = scene
            .actors
            .iter()
            .map(|a| {
                let without = self.plan_distribution(map, scene, &scene.obstacles_without(a.id));
                (a.id, kl_divergence(&factual, &without))
            })
            .collect();
        Pkl {
            combined,
            per_actor,
        }
    }

    /// The planner's softmax distribution over candidate plans.
    fn plan_distribution(
        &self,
        map: &RoadMap,
        scene: &SceneSnapshot,
        obstacles: &[Obstacle],
    ) -> Vec<f64> {
        let costs = candidate_costs(&self.planner, map, scene, obstacles);
        softmax_neg(&costs, self.tau)
    }
}

/// Rollout cost for every candidate control held over the horizon.
fn candidate_costs(
    cfg: &PklPlannerConfig,
    map: &RoadMap,
    scene: &SceneSnapshot,
    obstacles: &[Obstacle],
) -> Vec<f64> {
    let model = BicycleModel::default();
    let steps = (cfg.horizon / cfg.dt).ceil() as usize;
    let mut costs = Vec::with_capacity(cfg.accels.len() * cfg.steers.len());
    for &a in &cfg.accels {
        for &s in &cfg.steers {
            let traj = model.rollout(
                scene.ego,
                ControlInput::new(a, s),
                Seconds::new(cfg.dt),
                steps,
            );
            let mut cost = 0.0;
            for (i, state) in traj.states().iter().enumerate().skip(1) {
                let time = scene.time + i as f64 * cfg.dt;
                let fp =
                    state.footprint(Meters::new(scene.ego_dims.0), Meters::new(scene.ego_dims.1));
                if !map.is_obb_drivable(&fp) {
                    cost += cfg.collision_weight * 0.5;
                    continue;
                }
                let mut min_d = f64::INFINITY;
                for o in obstacles {
                    let od = fp.distance(&o.footprint_at(Seconds::new(time), Meters::new(0.0)));
                    min_d = min_d.min(od);
                }
                if min_d <= 0.0 {
                    cost += cfg.collision_weight;
                } else if min_d.is_finite() {
                    cost += cfg.clearance_weight * (-min_d / cfg.clearance_decay).exp();
                }
            }
            let progress = traj.states().last().map_or(0.0, |s| s.x - scene.ego.x);
            cost -= cfg.progress_weight * progress;
            costs.push(cost);
        }
    }
    costs
}

/// `softmax(-c / τ)`.
fn softmax_neg(costs: &[f64], tau: f64) -> Vec<f64> {
    let m = costs.iter().copied().fold(f64::INFINITY, f64::min);
    let exps: Vec<f64> = costs.iter().map(|c| (-(c - m) / tau).exp()).collect();
    let z: f64 = exps.iter().sum();
    exps.iter().map(|e| e / z).collect()
}

/// `KL(p ‖ q)` with the standard absolute-continuity floor.
fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(p.len(), q.len());
    let floor = 1e-12;
    p.iter()
        .zip(q)
        .map(|(&pi, &qi)| {
            if pi <= floor {
                0.0
            } else {
                pi * (pi / qi.max(floor)).ln()
            }
        })
        .sum::<f64>()
        .max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SceneActor;
    use iprism_dynamics::{Trajectory, VehicleState};

    fn map3() -> RoadMap {
        RoadMap::straight_road(3, 3.5, 600.0)
    }

    fn ego_scene() -> SceneSnapshot {
        SceneSnapshot::new(0.0, VehicleState::new(100.0, 5.25, 0.0, 10.0), (4.6, 2.0))
    }

    fn parked(id: u32, x: f64, y: f64) -> SceneActor {
        SceneActor::new(
            ActorId(id),
            Trajectory::from_states(
                Seconds::new(0.0),
                Seconds::new(2.5),
                vec![VehicleState::new(x, y, 0.0, 0.0); 2],
            ),
            4.6,
            2.0,
        )
    }

    fn model() -> PklModel {
        PklModel::with_tau(1.0, PklPlannerConfig::default())
    }

    #[test]
    fn empty_scene_zero_pkl() {
        let pkl = model().evaluate(&map3(), &ego_scene());
        assert!(pkl.combined.abs() < 1e-9);
        assert!(pkl.per_actor.is_empty());
    }

    #[test]
    fn blocking_actor_changes_plans() {
        let scene = ego_scene().with_actor(parked(1, 114.0, 5.25));
        let pkl = model().evaluate(&map3(), &scene);
        assert!(pkl.combined > 0.05, "combined {}", pkl.combined);
        assert!(pkl.per_actor[0].1 > 0.05);
    }

    #[test]
    fn distant_actor_negligible() {
        let scene = ego_scene().with_actor(parked(1, 500.0, 5.25));
        let pkl = model().evaluate(&map3(), &scene);
        assert!(pkl.combined < 0.01, "combined {}", pkl.combined);
    }

    #[test]
    fn single_actor_combined_matches_per_actor() {
        let scene = ego_scene().with_actor(parked(1, 116.0, 5.25));
        let pkl = model().evaluate(&map3(), &scene);
        assert!((pkl.combined - pkl.per_actor[0].1).abs() < 1e-9);
    }

    #[test]
    fn fit_learns_positive_tau() {
        let scenes = [
            ego_scene().with_actor(parked(1, 120.0, 5.25)),
            ego_scene().with_actor(parked(2, 130.0, 1.75)),
            ego_scene(),
        ];
        let m = PklModel::fit(PklPlannerConfig::default(), &map3(), scenes.iter());
        assert!(m.tau > 0.0 && m.tau.is_finite());
    }

    #[test]
    fn different_training_sets_give_different_models() {
        // "All" includes a near-collision scene with huge cost spread;
        // "holdout" only benign scenes → smaller τ.
        let risky = [
            ego_scene().with_actor(parked(1, 110.0, 5.25)),
            ego_scene().with_actor(parked(2, 112.0, 5.25)),
            ego_scene().with_actor(parked(3, 114.0, 5.25)),
        ];
        let benign = [
            ego_scene(),
            ego_scene().with_actor(parked(1, 400.0, 5.25)),
            ego_scene().with_actor(parked(2, 500.0, 1.75)),
        ];
        let m_all = PklModel::fit(PklPlannerConfig::default(), &map3(), risky.iter());
        let m_holdout = PklModel::fit(PklPlannerConfig::default(), &map3(), benign.iter());
        assert!(
            m_all.tau > m_holdout.tau,
            "{} vs {}",
            m_all.tau,
            m_holdout.tau
        );

        // And the two models score the same risky scene differently — PKL's
        // training-data sensitivity.
        let probe = ego_scene().with_actor(parked(9, 113.0, 5.25));
        let p_all = m_all.evaluate(&map3(), &probe).combined;
        let p_holdout = m_holdout.evaluate(&map3(), &probe).combined;
        assert!((p_all - p_holdout).abs() > 1e-3);
    }

    #[test]
    fn kl_properties() {
        let p = vec![0.5, 0.5];
        let q = vec![0.9, 0.1];
        assert!(kl_divergence(&p, &p).abs() < 1e-12);
        assert!(kl_divergence(&p, &q) > 0.0);
        // zero-probability entries contribute nothing
        assert!(kl_divergence(&[1.0, 0.0], &[1.0, 0.0]).abs() < 1e-12);
    }

    #[test]
    fn softmax_sums_to_one() {
        let d = softmax_neg(&[1.0, 2.0, 3.0], 0.5);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(d[0] > d[1] && d[1] > d[2]); // lower cost = higher prob
    }

    #[test]
    #[should_panic(expected = "tau")]
    fn bad_tau_panics() {
        let _ = PklModel::with_tau(0.0, PklPlannerConfig::default());
    }
}
