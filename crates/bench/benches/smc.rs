//! §V-E: SMC inference overhead (the paper reports 0.012 s).

use criterion::{criterion_group, criterion_main, Criterion};
use iprism_agents::{LbcAgent, MitigationPolicy};
use iprism_core::{train_smc, SmcTrainConfig};
use iprism_dynamics::VehicleState;
use iprism_map::RoadMap;
use iprism_sim::{Actor, Behavior, EpisodeConfig, Goal, World};

fn hazard_world() -> (World, EpisodeConfig) {
    let map = RoadMap::straight_road(2, 3.5, 500.0);
    let mut w = World::new(map, VehicleState::new(30.0, 1.75, 0.0, 10.0), 0.1);
    w.spawn(Actor::vehicle(
        1,
        VehicleState::new(80.0, 1.75, 0.0, 0.0),
        Behavior::Idle,
    ));
    (
        w,
        EpisodeConfig {
            max_time: 12.0,
            goal: Goal::XThreshold(200.0),
            stop_on_collision: true,
        },
    )
}

fn bench_smc(c: &mut Criterion) {
    // A minimally trained SMC: the network cost is identical either way.
    let trained = train_smc(
        vec![hazard_world()],
        LbcAgent::default(),
        &SmcTrainConfig::small_test(),
    );
    let mut smc = trained.smc;
    let (world, _) = hazard_world();

    let mut group = c.benchmark_group("smc");
    group.bench_function("inference_full", |b| b.iter(|| smc.decide(&world)));
    let features: Vec<f64> = vec![0.1; iprism_core::FEATURE_DIM];
    group.bench_function("q_network_forward", |b| {
        b.iter(|| smc.agent().q_values(&features));
    });
    group.finish();
}

criterion_group!(benches, bench_smc);
criterion_main!(benches);
