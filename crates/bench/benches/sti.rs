//! §V-E: STI evaluation overhead (the paper reports 0.61 s in Python).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iprism_dynamics::{Trajectory, VehicleState};
use iprism_map::RoadMap;
use iprism_reach::ReachConfig;
use iprism_risk::{SceneActor, SceneSnapshot, StiEvaluator};
use iprism_sim::ActorId;
use iprism_units::Seconds;

fn scene_with_actors(n: usize) -> (RoadMap, SceneSnapshot) {
    let map = RoadMap::straight_road(3, 3.5, 600.0);
    let mut scene = SceneSnapshot::new(0.0, VehicleState::new(100.0, 5.25, 0.0, 10.0), (4.6, 2.0));
    for i in 0..n {
        let x = 115.0 + 12.0 * i as f64;
        let y = [1.75, 5.25, 8.75][i % 3];
        let states: Vec<VehicleState> = (0..11)
            .map(|k| VehicleState::new(x + 6.0 * 0.25 * k as f64, y, 0.0, 6.0))
            .collect();
        scene.actors.push(SceneActor::new(
            ActorId(i as u32 + 1),
            Trajectory::from_states(Seconds::new(0.0), Seconds::new(0.25), states),
            4.6,
            2.0,
        ));
    }
    (map, scene)
}

fn bench_sti(c: &mut Criterion) {
    let mut group = c.benchmark_group("sti");
    for &n in &[1usize, 2, 4, 8, 16] {
        let (map, scene) = scene_with_actors(n);
        let default_eval = StiEvaluator::new(ReachConfig::default());
        // Explicit thread counts isolate the fan-out overhead: `full_serial`
        // forces one thread, `full_parallel` a 4-worker pool (the `N + 2`
        // counterfactual tubes are the parallel grain). Results are
        // byte-identical across all three variants.
        let serial_eval = StiEvaluator::new(ReachConfig::default()).with_threads(1);
        let parallel_eval = StiEvaluator::new(ReachConfig::default()).with_threads(4);
        let fast_eval = StiEvaluator::new(ReachConfig::fast());
        group.bench_with_input(BenchmarkId::new("full_default", n), &n, |b, _| {
            b.iter(|| default_eval.evaluate(&map, &scene));
        });
        group.bench_with_input(BenchmarkId::new("full_serial", n), &n, |b, _| {
            b.iter(|| serial_eval.evaluate(&map, &scene));
        });
        group.bench_with_input(BenchmarkId::new("full_parallel", n), &n, |b, _| {
            b.iter(|| parallel_eval.evaluate(&map, &scene));
        });
        group.bench_with_input(BenchmarkId::new("combined_fast", n), &n, |b, _| {
            b.iter(|| fast_eval.evaluate_combined(&map, &scene));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sti);
criterion_main!(benches);
