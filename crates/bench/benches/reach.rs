//! Reach-tube computation cost across sampling modes (Algorithm 1 +
//! optimizations; ablation for DESIGN.md's boundary-vs-uniform choice).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iprism_dynamics::{Trajectory, VehicleState};
use iprism_map::RoadMap;
use iprism_reach::{compute_reach_tube, Obstacle, ReachConfig, SamplingMode};
use iprism_units::{Meters, Seconds};

fn obstacles() -> Vec<Obstacle> {
    obstacle_field(1)
}

/// `n` parked cars spread over the three lanes ahead of the ego.
fn obstacle_field(n: usize) -> Vec<Obstacle> {
    (0..n)
        .map(|i| {
            let x = 120.0 + 8.0 * i as f64;
            let y = [5.25, 1.75, 8.75][i % 3];
            Obstacle::new(
                Trajectory::from_states(
                    Seconds::new(0.0),
                    Seconds::new(2.5),
                    vec![VehicleState::new(x, y, 0.0, 0.0); 2],
                ),
                Meters::new(4.6),
                Meters::new(2.0),
            )
        })
        .collect()
}

fn bench_reach(c: &mut Criterion) {
    let map = RoadMap::straight_road(3, 3.5, 600.0);
    let ego = VehicleState::new(100.0, 5.25, 0.0, 10.0);
    let obs = obstacles();

    let mut group = c.benchmark_group("reach");
    let modes = [
        ("boundary", SamplingMode::Boundary),
        ("extreme", SamplingMode::Extreme),
        ("uniform3x5", SamplingMode::Uniform { na: 3, ns: 5 }),
    ];
    for (name, mode) in modes {
        let cfg = ReachConfig {
            mode,
            ..ReachConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("mode", name), &cfg, |b, cfg| {
            b.iter(|| compute_reach_tube(&map, ego, &obs, cfg));
        });
    }
    let fast = ReachConfig::fast();
    group.bench_function("fast_preset", |b| {
        b.iter(|| compute_reach_tube(&map, ego, &obs, &fast));
    });
    // Obstacle-count sweep: how the slice cache + broadphase amortize the
    // collision checks as the scene fills up (0 = pure propagation floor).
    let cfg = ReachConfig::default();
    for &n in &[0usize, 4, 16] {
        let field = obstacle_field(n);
        group.bench_with_input(BenchmarkId::new("obstacles", n), &n, |b, _| {
            b.iter(|| compute_reach_tube(&map, ego, &field, &cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reach);
criterion_main!(benches);
