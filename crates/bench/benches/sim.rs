//! Simulator throughput: world stepping and full LBC episodes.

use criterion::{criterion_group, criterion_main, Criterion};
use iprism_agents::LbcAgent;
use iprism_scenarios::{sample_instances, Typology};
use iprism_sim::run_episode;

fn bench_sim(c: &mut Criterion) {
    let spec = sample_instances(Typology::GhostCutIn, 1, 2024).remove(0);

    let mut group = c.benchmark_group("sim");
    group.bench_function("world_step", |b| {
        let mut world = spec.build_world();
        b.iter(|| world.step(iprism_dynamics::ControlInput::COAST));
    });
    group.bench_function("lbc_episode_ghost_cut_in", |b| {
        b.iter(|| {
            let mut world = spec.build_world();
            let mut agent = LbcAgent::default();
            run_episode(&mut world, &mut agent, &spec.episode_config())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
