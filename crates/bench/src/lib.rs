//! Shared helpers for the table/figure regeneration binaries.
//!
//! Each binary reproduces one artifact of the paper's evaluation; run them
//! with `cargo run --release -p iprism-bench --bin <name>`:
//!
//! * `table1` — scenario counts & LBC baseline accidents
//! * `table2` — LTFMA per risk metric
//! * `table3` — mitigation efficacy (also prints Table IV timing)
//! * `fig4`   — risk-metric time series per typology
//! * `fig5`   — STI with vs. without iPrism on ghost cut-in
//! * `fig6`   — STI percentiles on the benign (Argoverse-like) dataset
//! * `fig7`   — the four case studies
//! * `roundabout` — RIP vs RIP+iPrism on the roundabout typology
//!
//! Every binary accepts `--instances N` (sweep size; the paper uses 1000)
//! and `--seed S`, and writes its results as JSON next to its stdout table
//! when `--json PATH` is given.

use iprism_agents::LbcAgent;
use iprism_core::{train_smc, Smc, SmcTrainConfig, TrainedPolicyCache};
use iprism_eval::{select_training_scenarios, EvalConfig};
use iprism_scenarios::Typology;

/// Trains (or loads from the policy cache) the ghost-cut-in LBC+iPrism SMC
/// shared by the `fig5`, `roundabout` and `table3` binaries: top-3 training
/// scenarios from a 60-instance pool, the LBC ADS, and `episodes` training
/// episodes. The cache fingerprint matches across the binaries, so
/// whichever runs first trains the policy once and the others load it.
///
/// # Panics
///
/// Panics when no ghost-cut-in pool instance defeats the LBC baseline
/// (there is then nothing to train mitigation on).
pub fn ghost_cut_in_smc(config: &EvalConfig, episodes: usize) -> Smc {
    let specs = select_training_scenarios(Typology::GhostCutIn, config, 60, 3);
    assert!(!specs.is_empty(), "ghost cut-in accidents exist");
    let templates: Vec<_> = specs
        .iter()
        .map(|s| (s.build_world(), s.episode_config()))
        .collect();
    let train_config = SmcTrainConfig {
        episodes,
        ..SmcTrainConfig::default()
    };
    match &config.policy_dir {
        Some(dir) => TrainedPolicyCache::new(dir).load_or_train(
            &train_config,
            &format!("{specs:?}:lbc"),
            || train_smc(templates.clone(), LbcAgent::default(), &train_config).smc,
        ),
        None => train_smc(templates, LbcAgent::default(), &train_config).smc,
    }
}

/// Prints a CLI usage error and exits with status 2.
fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

/// Parses `s`, exiting with `msg` when it is not a valid `T`.
fn parse_or_die<T: std::str::FromStr>(s: &str, msg: &str) -> T {
    s.parse().unwrap_or_else(|_| die(msg))
}

/// Parses the common CLI flags (`--instances`, `--seed`, `--json`,
/// `--episodes`) shared by the regeneration binaries.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// The assembled evaluation configuration.
    pub config: EvalConfig,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// SMC training episodes (table3/roundabout only; paper: 100).
    pub episodes: usize,
}

impl CommonArgs {
    /// Parses `std::env::args`, exiting with a usage message on
    /// malformed flags.
    pub fn parse() -> Self {
        // SMC training is bit-deterministic, so the regeneration binaries
        // share trained policies across runs (and across each other) via
        // snapshots under results/policies/. Disable by setting
        // IPRISM_POLICY_CACHE=0.
        let mut config = EvalConfig {
            policy_dir: Some(
                concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/policies").to_string(),
            ),
            ..EvalConfig::default()
        };
        let mut json = None;
        let mut episodes = 100;
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let value = |i: &mut usize| -> String {
                *i += 1;
                args.get(*i)
                    .unwrap_or_else(|| die(&format!("missing value for {flag}")))
                    .clone()
            };
            match flag {
                "--instances" => {
                    config.instances = parse_or_die(&value(&mut i), "--instances takes a number");
                }
                "--seed" => config.seed = parse_or_die(&value(&mut i), "--seed takes a number"),
                "--episodes" => {
                    episodes = parse_or_die(&value(&mut i), "--episodes takes a number");
                }
                "--json" => json = Some(value(&mut i)),
                "--paper-scale" => config.instances = 1000,
                other => die(&format!(
                    "unknown flag {other}; supported: --instances N --seed S --episodes E --json PATH --paper-scale"
                )),
            }
            i += 1;
        }
        CommonArgs {
            config,
            json,
            episodes,
        }
    }

    /// Writes `value` as pretty JSON to the `--json` path, if one was given.
    pub fn write_json<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.json {
            let json = serde_json::to_string_pretty(value)
                .unwrap_or_else(|e| die(&format!("results failed to serialize: {e}")));
            if let Err(e) = std::fs::write(path, json) {
                die(&format!("failed to write results JSON to {path}: {e}"));
            }
            eprintln!("results written to {path}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args() {
        // parse() reads process args, so only test the write path here.
        let args = CommonArgs {
            config: EvalConfig::default(),
            json: None,
            episodes: 100,
        };
        args.write_json(&42u32); // no path: no-op
        assert_eq!(args.episodes, 100);
    }
}
