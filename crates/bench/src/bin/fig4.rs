//! Regenerates Figure 4: risk-metric time series (mean ± SD), safe vs.
//! accident populations, per typology.

use iprism_bench::CommonArgs;
use iprism_eval::{risk_characterization, RiskMetricKind};
use iprism_scenarios::Typology;

fn main() {
    let args = CommonArgs::parse();
    let t0 = std::time::Instant::now();
    let metrics = [
        RiskMetricKind::Sti,
        RiskMetricKind::PklAll,
        RiskMetricKind::Ttc,
    ];
    let mut all = Vec::new();
    for typology in Typology::NHTSA {
        let series = risk_characterization(typology, &args.config, &metrics);
        for s in &series {
            let label = if s.accident_population {
                "accident"
            } else {
                "safe"
            };
            println!("\n# {} / {} / {label}", s.typology.name(), s.metric.name());
            println!("{:>7}  {:>8}  {:>8}  {:>5}", "t(s)", "mean", "sd", "n");
            for p in &s.points {
                println!("{:7.1}  {:8.3}  {:8.3}  {:5}", p.time, p.mean, p.sd, p.n);
            }
        }
        all.extend(series);
    }
    eprintln!("elapsed: {:?}", t0.elapsed());
    args.write_json(&all);
}
