//! Regenerates Tables III & IV: mitigation efficacy and activation timing,
//! including the rear-end acceleration extension of §V-C.

use iprism_bench::CommonArgs;
use iprism_eval::mitigation_study;
use iprism_scenarios::Typology;

fn main() {
    let args = CommonArgs::parse();
    let t0 = std::time::Instant::now();
    let typologies = [
        Typology::GhostCutIn,
        Typology::LeadCutIn,
        Typology::LeadSlowdown,
        Typology::RearEnd,
    ];
    let study = mitigation_study(&args.config, &typologies, args.episodes);
    println!("Table III — accident prevention rates (+ Table IV timing)");
    println!(
        "({} instances/typology, {} SMC training episodes, seed {})\n",
        args.config.instances, args.episodes, args.config.seed
    );
    println!("{study}");
    println!("\nSelected training scenarios (max avg-STI criterion):");
    for (t, spec) in &study.training_scenarios {
        println!("  {t}: params {:?}", spec.params);
    }
    eprintln!("elapsed: {:?}", t0.elapsed());
    args.write_json(&study);
}
