//! Regenerates Table I: scenario instances and LBC baseline accidents.

use iprism_bench::CommonArgs;
use iprism_eval::baseline_study;

fn main() {
    let args = CommonArgs::parse();
    let t0 = std::time::Instant::now();
    let study = baseline_study(&args.config);
    println!("Table I — scenario typologies and LBC baseline accidents");
    println!(
        "({} instances/typology, seed {})\n",
        args.config.instances, args.config.seed
    );
    println!("{study}");
    println!("total valid scenarios: {}", study.total_valid());
    eprintln!("elapsed: {:?}", t0.elapsed());
    args.write_json(&study);
}
