//! Ablation sweep over the reach-tube design choices DESIGN.md calls out:
//! dedup ε, horizon k, grid resolution and sampling mode, measured by (a)
//! STI on a reference cut-in scene and (b) wall-clock per evaluation.
//!
//! The point of the table: STI's *value* is stable across the computational
//! knobs (the metric measures geometry, not sampling artifacts) while the
//! cost varies by an order of magnitude — justifying the fast preset used
//! in the RL loop.

use std::time::Instant;

use iprism_bench::CommonArgs;
use iprism_dynamics::{Trajectory, VehicleState};
use iprism_map::RoadMap;
use iprism_reach::{ReachConfig, SamplingMode};
use iprism_risk::{SceneActor, SceneSnapshot, StiEvaluator};
use iprism_sim::ActorId;
use iprism_units::Seconds;

fn reference_scene() -> (RoadMap, SceneSnapshot) {
    let map = RoadMap::straight_road(2, 3.5, 400.0);
    // A cut-in caught mid-manoeuvre: actor crossing into the ego lane 14 m
    // ahead while a leader cruises further out.
    let cutter: Vec<VehicleState> = (0..21)
        .map(|i| {
            let t = i as f64 * 0.25;
            VehicleState::new(114.0 + 9.0 * t, (5.25 - 2.5 * t).max(1.75), -0.2, 9.0)
        })
        .collect();
    let lead: Vec<VehicleState> = (0..21)
        .map(|i| VehicleState::new(135.0 + 8.5 * i as f64 * 0.25, 1.75, 0.0, 8.5))
        .collect();
    let scene = SceneSnapshot::new(0.0, VehicleState::new(100.0, 1.75, 0.0, 10.0), (4.6, 2.0))
        .with_actor(SceneActor::new(
            ActorId(1),
            Trajectory::from_states(Seconds::new(0.0), Seconds::new(0.25), cutter),
            4.6,
            2.0,
        ))
        .with_actor(SceneActor::new(
            ActorId(2),
            Trajectory::from_states(Seconds::new(0.0), Seconds::new(0.25), lead),
            4.6,
            2.0,
        ));
    (map, scene)
}

fn measure(map: &RoadMap, scene: &SceneSnapshot, config: ReachConfig) -> (f64, f64) {
    let evaluator = StiEvaluator::new(config);
    // Warm once, then time a few repetitions.
    let sti = evaluator.evaluate_combined(map, scene);
    let reps = 5;
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = evaluator.evaluate_combined(map, scene);
    }
    (sti, t0.elapsed().as_secs_f64() * 1e3 / reps as f64)
}

fn main() {
    let args = CommonArgs::parse();
    let (map, scene) = reference_scene();

    println!("STI ablation on a reference mid-cut-in scene (two actors)\n");
    println!("{:<34}  {:>8}  {:>10}", "configuration", "STI", "ms/eval");
    println!("{}", "-".repeat(58));

    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    let mut run = |label: String, cfg: ReachConfig| {
        let (sti, ms) = measure(&map, &scene, cfg);
        println!("{label:<34}  {sti:>8.3}  {ms:>10.2}");
        rows.push((label, sti, ms));
    };

    run("default".into(), ReachConfig::default());
    run("fast preset".into(), ReachConfig::fast());

    for eps in [0.75, 1.5, 3.0] {
        let c = ReachConfig {
            dedup_epsilon: eps,
            ..ReachConfig::default()
        };
        run(format!("dedup epsilon = {eps}"), c);
    }
    for horizon in [1.5, 2.5, 3.5] {
        let c = ReachConfig {
            horizon: iprism_units::Seconds::new(horizon),
            ..ReachConfig::default()
        };
        run(format!("horizon k = {horizon} s"), c);
    }
    for res in [0.25, 0.5, 1.0] {
        let c = ReachConfig {
            grid_resolution: iprism_units::Meters::new(res),
            ..ReachConfig::default()
        };
        run(format!("grid resolution = {res} m"), c);
    }
    for (name, mode) in [
        ("boundary (paper opt. 2)", SamplingMode::Boundary),
        ("extreme 3x3", SamplingMode::Extreme),
        ("uniform 3x5", SamplingMode::Uniform { na: 3, ns: 5 }),
        ("uniform 4x7", SamplingMode::Uniform { na: 4, ns: 7 }),
    ] {
        let c = ReachConfig {
            mode,
            ..ReachConfig::default()
        };
        run(format!("sampling: {name}"), c);
    }

    // Stability summary: spread of STI across every configuration.
    let stis: Vec<f64> = rows.iter().map(|(_, s, _)| *s).collect();
    let min = stis.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = stis.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!("\nSTI spread across all configurations: [{min:.3}, {max:.3}]");
    let times: Vec<f64> = rows.iter().map(|(_, _, t)| *t).collect();
    let tmin = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let tmax = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!("cost spread: {tmin:.2}–{tmax:.2} ms per evaluation");
    args.write_json(&rows);
}
