//! Regenerates Figure 5: combined STI on ghost cut-in, LBC vs LBC+iPrism.

use iprism_bench::{ghost_cut_in_smc, CommonArgs};
use iprism_eval::iprism_sti_series;

fn main() {
    let args = CommonArgs::parse();
    let t0 = std::time::Instant::now();
    let smc = ghost_cut_in_smc(&args.config, args.episodes);
    let (lbc, iprism) = iprism_sti_series(&smc, &args.config);
    println!("Figure 5 — STI(combined) on ghost cut-in (mean over sweep)");
    println!("{:>7}  {:>10}  {:>12}", "t(s)", "LBC", "LBC+iPrism");
    let n = lbc.len().max(iprism.len());
    for i in 0..n {
        let t = lbc.get(i).or(iprism.get(i)).map(|p| p.time).unwrap_or(0.0);
        let a = lbc
            .get(i)
            .map(|p| format!("{:.3}", p.mean))
            .unwrap_or_else(|| "-".into());
        let b = iprism
            .get(i)
            .map(|p| format!("{:.3}", p.mean))
            .unwrap_or_else(|| "-".into());
        println!("{t:7.1}  {a:>10}  {b:>12}");
    }
    eprintln!("elapsed: {:?}", t0.elapsed());
    args.write_json(&(lbc, iprism));
}
