//! Regenerates Figure 5: combined STI on ghost cut-in, LBC vs LBC+iPrism.

use iprism_agents::LbcAgent;
use iprism_bench::CommonArgs;
use iprism_core::{train_smc, SmcTrainConfig, TrainedPolicyCache};
use iprism_eval::{iprism_sti_series, select_training_scenarios};
use iprism_scenarios::Typology;

fn main() {
    let args = CommonArgs::parse();
    let t0 = std::time::Instant::now();
    let specs = select_training_scenarios(Typology::GhostCutIn, &args.config, 60, 3);
    assert!(!specs.is_empty(), "ghost cut-in accidents exist");
    let templates: Vec<_> = specs
        .iter()
        .map(|s| (s.build_world(), s.episode_config()))
        .collect();
    let train_config = SmcTrainConfig {
        episodes: args.episodes,
        ..SmcTrainConfig::default()
    };
    // Same fingerprint as table3's ghost-cut-in LBC+iPrism policy: whichever
    // binary runs first trains it once, the others load the snapshot.
    let smc = match &args.config.policy_dir {
        Some(dir) => TrainedPolicyCache::new(dir).load_or_train(
            &train_config,
            &format!("{specs:?}:lbc"),
            || train_smc(templates.clone(), LbcAgent::default(), &train_config).smc,
        ),
        None => train_smc(templates, LbcAgent::default(), &train_config).smc,
    };
    let (lbc, iprism) = iprism_sti_series(&smc, &args.config);
    println!("Figure 5 — STI(combined) on ghost cut-in (mean over sweep)");
    println!("{:>7}  {:>10}  {:>12}", "t(s)", "LBC", "LBC+iPrism");
    let n = lbc.len().max(iprism.len());
    for i in 0..n {
        let t = lbc.get(i).or(iprism.get(i)).map(|p| p.time).unwrap_or(0.0);
        let a = lbc
            .get(i)
            .map(|p| format!("{:.3}", p.mean))
            .unwrap_or_else(|| "-".into());
        let b = iprism
            .get(i)
            .map(|p| format!("{:.3}", p.mean))
            .unwrap_or_else(|| "-".into());
        println!("{t:7.1}  {a:>10}  {b:>12}");
    }
    eprintln!("elapsed: {:?}", t0.elapsed());
    args.write_json(&(lbc, iprism));
}
