//! Regenerates Figure 6: STI percentiles on the benign (Argoverse-like)
//! real-world dataset stand-in.

use iprism_bench::CommonArgs;
use iprism_eval::dataset_study;
use iprism_scenarios::BenignTrafficConfig;

fn main() {
    let args = CommonArgs::parse();
    let t0 = std::time::Instant::now();
    let study = dataset_study(&args.config, &BenignTrafficConfig::default());
    println!("Figure 6 — STI characterization of benign real-world-like data");
    println!(
        "({} episodes, {} actor samples)\n",
        study.episodes, study.actor_samples
    );
    println!("{study}");
    eprintln!("elapsed: {:?}", t0.elapsed());
    args.write_json(&study);
}
