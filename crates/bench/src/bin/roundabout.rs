//! Regenerates the §V-C roundabout experiment: RIP vs RIP+iPrism.

use iprism_agents::LbcAgent;
use iprism_bench::CommonArgs;
use iprism_core::{train_smc, SmcTrainConfig, TrainedPolicyCache};
use iprism_eval::{roundabout_study, select_training_scenarios};
use iprism_scenarios::Typology;

fn main() {
    let args = CommonArgs::parse();
    let t0 = std::time::Instant::now();
    // iPrism is trained on LBC straight-road scenarios (generalization).
    let specs = select_training_scenarios(Typology::GhostCutIn, &args.config, 60, 3);
    assert!(!specs.is_empty(), "ghost cut-in accidents exist");
    let templates: Vec<_> = specs
        .iter()
        .map(|s| (s.build_world(), s.episode_config()))
        .collect();
    let train_config = SmcTrainConfig {
        episodes: args.episodes,
        ..SmcTrainConfig::default()
    };
    // Shares its fingerprint with fig5 and table3's ghost-cut-in policy:
    // one training run serves all three binaries.
    let smc = match &args.config.policy_dir {
        Some(dir) => TrainedPolicyCache::new(dir).load_or_train(
            &train_config,
            &format!("{specs:?}:lbc"),
            || train_smc(templates.clone(), LbcAgent::default(), &train_config).smc,
        ),
        None => train_smc(templates, LbcAgent::default(), &train_config).smc,
    };
    let study = roundabout_study(&smc, &args.config);
    println!("Roundabout ghost cut-in — RIP vs RIP+iPrism");
    println!(
        "({} instances, seed {})\n",
        args.config.instances, args.config.seed
    );
    println!("{study}");
    eprintln!("elapsed: {:?}", t0.elapsed());
    args.write_json(&study);
}
