//! Regenerates the §V-C roundabout experiment: RIP vs RIP+iPrism.

use iprism_agents::LbcAgent;
use iprism_bench::CommonArgs;
use iprism_core::{train_smc, SmcTrainConfig};
use iprism_eval::{roundabout_study, select_training_scenarios};
use iprism_scenarios::Typology;

fn main() {
    let args = CommonArgs::parse();
    let t0 = std::time::Instant::now();
    // iPrism is trained on LBC straight-road scenarios (generalization).
    let specs = select_training_scenarios(Typology::GhostCutIn, &args.config, 60, 3);
    assert!(!specs.is_empty(), "ghost cut-in accidents exist");
    let templates = specs
        .iter()
        .map(|s| (s.build_world(), s.episode_config()))
        .collect();
    let trained = train_smc(
        templates,
        LbcAgent::default(),
        &SmcTrainConfig {
            episodes: args.episodes,
            ..SmcTrainConfig::default()
        },
    );
    let study = roundabout_study(&trained.smc, &args.config);
    println!("Roundabout ghost cut-in — RIP vs RIP+iPrism");
    println!(
        "({} instances, seed {})\n",
        args.config.instances, args.config.seed
    );
    println!("{study}");
    eprintln!("elapsed: {:?}", t0.elapsed());
    args.write_json(&study);
}
