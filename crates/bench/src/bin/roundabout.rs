//! Regenerates the §V-C roundabout experiment: RIP vs RIP+iPrism.

use iprism_bench::{ghost_cut_in_smc, CommonArgs};
use iprism_eval::roundabout_study;

fn main() {
    let args = CommonArgs::parse();
    let t0 = std::time::Instant::now();
    // iPrism is trained on LBC straight-road scenarios (generalization).
    let smc = ghost_cut_in_smc(&args.config, args.episodes);
    let study = roundabout_study(&smc, &args.config);
    println!("Roundabout ghost cut-in — RIP vs RIP+iPrism");
    println!(
        "({} instances, seed {})\n",
        args.config.instances, args.config.seed
    );
    println!("{study}");
    eprintln!("elapsed: {:?}", t0.elapsed());
    args.write_json(&study);
}
