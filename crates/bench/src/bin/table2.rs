//! Regenerates Table II: LTFMA (s) across risk metrics.

use iprism_bench::CommonArgs;
use iprism_eval::{ltfma_study, RiskMetricKind};

fn main() {
    let args = CommonArgs::parse();
    let t0 = std::time::Instant::now();
    let study = ltfma_study(&args.config);
    println!("Table II — Lead-Time-for-Mitigating-Accident (s), mean (SD)");
    println!(
        "({} instances/typology, seed {})\n",
        args.config.instances, args.config.seed
    );
    println!("{study}");
    let sti = study.overall(RiskMetricKind::Sti);
    for m in [
        RiskMetricKind::Ttc,
        RiskMetricKind::DistCipa,
        RiskMetricKind::PklAll,
    ] {
        let v = study.overall(m);
        if v > 0.0 {
            println!("STI improvement over {}: {:.1}x", m.name(), sti / v);
        }
    }
    eprintln!("elapsed: {:?}", t0.elapsed());
    args.write_json(&study);
}
