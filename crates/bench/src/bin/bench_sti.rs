//! Regenerates `BENCH_STI.json`: STI hot-path timings against the recorded
//! pre-optimization baseline.
//!
//! The scene matches `benches/sti.rs` (three-lane straight road, ego at
//! 10 m/s, `n` moving actors ahead), so the numbers are directly comparable
//! with `cargo bench -p iprism-bench --bench sti`. The baseline figures are
//! the medians measured on this benchmark immediately *before* the
//! slice-cache/broadphase/parallel-fan-out optimization of the STI hot path
//! landed; keeping them in the report makes the speedup auditable.
//!
//! Run with `cargo xtask bench-sti` (or directly:
//! `cargo run --release -p iprism-bench --bin bench_sti`).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use iprism_dynamics::{Trajectory, VehicleState};
use iprism_map::RoadMap;
use iprism_reach::ReachConfig;
use iprism_risk::{SceneActor, SceneSnapshot, StiEvaluator};
use iprism_sim::ActorId;
use iprism_units::Seconds;
use serde::Serialize;

/// Timed iterations per case (median reported; 2 extra warm-up runs).
const ITERATIONS: usize = 9;

/// Pre-optimization medians (ms) of the same cases, recorded from
/// `cargo bench -p iprism-bench --bench sti` on the reference host.
const BASELINE_MS: [(&str, f64); 4] = [
    ("sti/full_default/1", 12.104),
    ("sti/full_default/2", 20.554),
    ("sti/full_default/4", 41.238),
    ("sti/combined_fast/4", 3.591),
];

/// The STI benchmark scene: ego plus `n` slow-moving actors ahead.
fn scene_with_actors(n: usize) -> (RoadMap, SceneSnapshot) {
    let map = RoadMap::straight_road(3, 3.5, 600.0);
    let mut scene = SceneSnapshot::new(0.0, VehicleState::new(100.0, 5.25, 0.0, 10.0), (4.6, 2.0));
    for i in 0..n {
        let x = 115.0 + 12.0 * i as f64;
        let y = [1.75, 5.25, 8.75][i % 3];
        let states: Vec<VehicleState> = (0..11)
            .map(|k| VehicleState::new(x + 6.0 * 0.25 * k as f64, y, 0.0, 6.0))
            .collect();
        scene.actors.push(SceneActor::new(
            ActorId(i as u32 + 1),
            Trajectory::from_states(Seconds::new(0.0), Seconds::new(0.25), states),
            4.6,
            2.0,
        ));
    }
    (map, scene)
}

/// Median wall-clock milliseconds of `ITERATIONS` runs of `f`.
fn median_ms(mut f: impl FnMut()) -> f64 {
    for _ in 0..2 {
        f();
    }
    let mut samples: Vec<f64> = (0..ITERATIONS)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

#[derive(Debug, Serialize)]
struct BenchReport {
    description: String,
    iterations: usize,
    baseline_ms: BTreeMap<String, f64>,
    current_ms: BTreeMap<String, f64>,
    speedup: BTreeMap<String, f64>,
}

fn main() {
    let out: PathBuf = match std::env::args().nth(1) {
        Some(path) => PathBuf::from(path),
        // The bench crate lives two levels below the workspace root.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_STI.json"),
    };

    let baseline_ms: BTreeMap<String, f64> = BASELINE_MS
        .iter()
        .map(|&(k, v)| (k.to_string(), v))
        .collect();

    let mut current_ms = BTreeMap::new();
    for n in [1usize, 2, 4] {
        let (map, scene) = scene_with_actors(n);
        let eval = StiEvaluator::new(ReachConfig::default());
        let ms = median_ms(|| {
            std::hint::black_box(eval.evaluate(&map, &scene));
        });
        current_ms.insert(format!("sti/full_default/{n}"), ms);
    }
    {
        let (map, scene) = scene_with_actors(4);
        let eval = StiEvaluator::new(ReachConfig::fast());
        let ms = median_ms(|| {
            std::hint::black_box(eval.evaluate_combined(&map, &scene));
        });
        current_ms.insert("sti/combined_fast/4".to_string(), ms);
    }

    let speedup: BTreeMap<String, f64> = current_ms
        .iter()
        .filter_map(|(k, &now)| {
            let before = *baseline_ms.get(k)?;
            (now > 0.0).then(|| (k.clone(), before / now))
        })
        .collect();

    println!("STI hot-path timings (median of {ITERATIONS} runs)\n");
    println!(
        "{:<24} {:>12} {:>12} {:>9}",
        "case", "baseline", "now", "speedup"
    );
    for (k, &now) in &current_ms {
        let before = baseline_ms.get(k).copied().unwrap_or(f64::NAN);
        let ratio = speedup.get(k).copied().unwrap_or(f64::NAN);
        println!("{k:<24} {before:>9.3} ms {now:>9.3} ms {ratio:>8.2}x");
    }

    let report = BenchReport {
        description: "STI evaluation timings vs. the recorded pre-optimization baseline \
                      (same scenes as benches/sti.rs)"
            .to_string(),
        iterations: ITERATIONS,
        baseline_ms,
        current_ms,
        speedup,
    };
    let json = match serde_json::to_string_pretty(&report) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("error: report failed to serialize: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("error: failed to write {}: {e}", out.display());
        std::process::exit(1);
    }
    eprintln!("\nreport written to {}", out.display());
}
