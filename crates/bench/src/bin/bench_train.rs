//! Regenerates `BENCH_TRAIN.json`: D-DQN training-throughput timings
//! against the recorded pre-optimization baseline.
//!
//! Two cases are measured:
//!
//! * `ddqn/update_ms` — one gradient update (`DdqnAgent::observe` with a
//!   full replay buffer, default minibatch of 32) on `FEATURE_DIM`-sized
//!   synthetic states. This isolates the network math: per-sample forward/
//!   backward before the batched engine, one batched GEMM pass after.
//! * `train_smc/default_s` — end-to-end [`iprism_core::train_smc`] on the
//!   default [`SmcTrainConfig`] (100 episodes) over the standard stopped-car
//!   hazard template used by `benches/smc.rs`. This is the paper-scale
//!   bottleneck the batching + empty-tube-memo work targets.
//!
//! The baseline figures were recorded from this same binary immediately
//! *before* the batched training engine landed; keeping them in the report
//! makes the speedup auditable.
//!
//! Run with `cargo xtask bench-train` (or directly:
//! `cargo run --release -p iprism-bench --bin bench_train`). Pass `--smoke`
//! for one untimed iteration of each case (CI wiring), optionally a PATH to
//! override the output location.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use iprism_agents::LbcAgent;
use iprism_core::{train_smc, SmcTrainConfig, FEATURE_DIM};
use iprism_dynamics::VehicleState;
use iprism_map::RoadMap;
use iprism_rl::{DdqnAgent, DdqnConfig, Transition};
use iprism_sim::{Actor, Behavior, EpisodeConfig, Goal, World};
use serde::Serialize;

/// Timed update-benchmark iterations (mean reported after warm-up).
const UPDATE_ITERS: usize = 300;

/// Pre-optimization figures of the same cases, recorded from this binary
/// on the reference host immediately before the batched engine landed.
const BASELINE: [(&str, f64); 2] = [("ddqn/update_ms", 0.5385), ("train_smc/default_s", 3.868)];

/// Deterministic synthetic transition stream for the update microbench.
fn synthetic_transition(i: usize) -> Transition {
    let state: Vec<f64> = (0..FEATURE_DIM)
        .map(|j| ((i * 31 + j * 7) % 100) as f64 / 100.0)
        .collect();
    let next_state: Vec<f64> = (0..FEATURE_DIM)
        .map(|j| ((i * 31 + j * 7 + 13) % 100) as f64 / 100.0)
        .collect();
    Transition {
        state,
        action: i % 3,
        reward: (i % 7) as f64 / 7.0 - 0.5,
        next_state,
        done: i % 50 == 49,
    }
}

/// Mean milliseconds per gradient update over `iters` observes on a warm
/// agent (buffer full, learning active).
fn update_ms(iters: usize) -> f64 {
    let config = DdqnConfig::default();
    let learn_start = config.learn_start.max(config.batch_size);
    let mut agent = DdqnAgent::new(FEATURE_DIM, 3, config);
    for i in 0..learn_start {
        agent.observe(synthetic_transition(i));
    }
    // Warm-up: a few learning updates outside the timed region.
    for i in 0..10 {
        agent.observe(synthetic_transition(learn_start + i));
    }
    let start = Instant::now();
    for i in 0..iters {
        agent.observe(synthetic_transition(learn_start + 10 + i));
    }
    start.elapsed().as_secs_f64() * 1e3 / iters as f64
}

/// The standard hazard template: fast ego, stopped car ahead (matches
/// `benches/smc.rs` and the `train_smc` unit tests).
fn hazard_template() -> (World, EpisodeConfig) {
    let map = RoadMap::straight_road(2, 3.5, 500.0);
    let mut w = World::new(map, VehicleState::new(30.0, 1.75, 0.0, 10.0), 0.1);
    w.spawn(Actor::vehicle(
        1,
        VehicleState::new(80.0, 1.75, 0.0, 0.0),
        Behavior::Idle,
    ));
    (
        w,
        EpisodeConfig {
            max_time: 12.0,
            goal: Goal::XThreshold(200.0),
            stop_on_collision: true,
        },
    )
}

/// End-to-end `train_smc` wall-clock seconds under `config`.
fn train_smc_seconds(config: &SmcTrainConfig) -> f64 {
    let start = Instant::now();
    let trained = train_smc(vec![hazard_template()], LbcAgent::default(), config);
    std::hint::black_box(&trained.smc);
    start.elapsed().as_secs_f64()
}

#[derive(Debug, Serialize)]
struct BenchReport {
    description: String,
    update_iterations: usize,
    train_episodes: usize,
    updates_per_sec: f64,
    baseline: BTreeMap<String, f64>,
    current: BTreeMap<String, f64>,
    speedup: BTreeMap<String, f64>,
}

fn main() {
    let mut smoke = false;
    let mut out: PathBuf = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_TRAIN.json");
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            path => out = PathBuf::from(path),
        }
    }

    if smoke {
        // One untimed iteration of each case: exercises the full training
        // path (batched updates, memoized STI) without spending CI minutes.
        let ms = update_ms(1);
        let secs = train_smc_seconds(&SmcTrainConfig::small_test());
        println!("smoke: one update {ms:.3} ms, small train_smc {secs:.3} s — ok");
        return;
    }

    let baseline: BTreeMap<String, f64> =
        BASELINE.iter().map(|&(k, v)| (k.to_string(), v)).collect();

    let mut current = BTreeMap::new();
    let upd_ms = update_ms(UPDATE_ITERS);
    current.insert("ddqn/update_ms".to_string(), upd_ms);
    let train_cfg = SmcTrainConfig::default();
    let e2e = train_smc_seconds(&train_cfg);
    current.insert("train_smc/default_s".to_string(), e2e);

    let speedup: BTreeMap<String, f64> = current
        .iter()
        .filter_map(|(k, &now)| {
            let before = *baseline.get(k)?;
            (now > 0.0).then(|| (k.clone(), before / now))
        })
        .collect();

    println!("D-DQN training throughput (vs. recorded pre-optimization baseline)\n");
    println!(
        "{:<24} {:>12} {:>12} {:>9}",
        "case", "baseline", "now", "speedup"
    );
    for (k, &now) in &current {
        let before = baseline.get(k).copied().unwrap_or(f64::NAN);
        let ratio = speedup.get(k).copied().unwrap_or(f64::NAN);
        println!("{k:<24} {before:>12.4} {now:>12.4} {ratio:>8.2}x");
    }
    println!("\ngradient updates/sec: {:.0}", 1e3 / upd_ms);

    let report = BenchReport {
        description: "D-DQN training throughput (gradient update + end-to-end train_smc) \
                      vs. the recorded pre-optimization baseline"
            .to_string(),
        update_iterations: UPDATE_ITERS,
        train_episodes: train_cfg.episodes,
        updates_per_sec: 1e3 / upd_ms,
        baseline,
        current,
        speedup,
    };
    let json = match serde_json::to_string_pretty(&report) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("error: report failed to serialize: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("error: failed to write {}: {e}", out.display());
        std::process::exit(1);
    }
    eprintln!("\nreport written to {}", out.display());
}
