//! Regenerates Figure 7: per-actor STI on the four case-study scenes.

use iprism_bench::CommonArgs;
use iprism_eval::case_study_report;

fn main() {
    let args = CommonArgs::parse();
    let report = case_study_report(&args.config);
    println!("Figure 7 — real-world-style case studies\n");
    println!("{report}");
    args.write_json(&report);
}
