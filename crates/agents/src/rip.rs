//! The Robust Imitative Planning (RIP) agent surrogate.

use iprism_dynamics::{BicycleModel, ControlInput, CvtrModel};
use iprism_sim::{EgoController, World};
use iprism_units::{Meters, Seconds};
use serde::{Deserialize, Serialize};

/// Configuration of the [`RipAgent`] surrogate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RipConfig {
    /// Ensemble size `K` (the paper's RIP uses an ensemble of imitation
    /// models; the WCM configuration takes the worst member).
    pub ensemble: usize,
    /// Candidate-plan horizon (s).
    pub horizon: f64,
    /// Candidate-plan sample period (s).
    pub dt: f64,
    /// Candidate accelerations (m/s²).
    pub accels: Vec<f64>,
    /// Candidate steering angles (rad).
    pub steers: Vec<f64>,
    /// Weight of the benign-driving likelihood prior.
    pub likelihood_weight: f64,
    /// Weight of the (short-sighted) hazard penalty.
    pub collision_weight: f64,
    /// Only collisions within this many seconds are penalized — the
    /// imitative models' likelihoods carry no long-horizon safety signal.
    pub hazard_horizon: f64,
    /// Scale of the deterministic per-member score perturbation modelling
    /// ensemble disagreement.
    pub noise: f64,
    /// Cruise speed the prior prefers (m/s).
    pub target_speed: f64,
}

impl Default for RipConfig {
    fn default() -> Self {
        RipConfig {
            ensemble: 3,
            horizon: 2.0,
            dt: 0.25,
            accels: vec![-4.0, -2.0, 0.0, 2.0],
            steers: vec![-0.2, -0.07, 0.0, 0.07, 0.2],
            likelihood_weight: 1.0,
            collision_weight: 12.0,
            hazard_horizon: 1.0,
            noise: 0.15,
            target_speed: 8.0,
        }
    }
}

/// Surrogate for the RIP-WCM agent (paper reference [16]).
///
/// Candidate plans (constant-control bicycle rollouts) are scored by every
/// ensemble member as `log-likelihood under a benign-driving prior − hazard
/// penalty + member-specific perturbation`; the agent executes the plan
/// with the best **worst-case** member score.
///
/// The surrogate inherits RIP's documented weakness: the benign prior
/// dominates (it was "trained" on accident-free data), and hazard awareness
/// extends only [`RipConfig::hazard_horizon`] seconds ahead, so in NHTSA
/// pre-crash scenes the agent reacts late and underperforms even LBC —
/// matching Table III, where RIP's accident counts exceed LBC's.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RipAgent {
    /// Planner parameters.
    pub config: RipConfig,
}

impl RipAgent {
    /// Creates an agent with the given configuration.
    pub fn new(config: RipConfig) -> Self {
        assert!(config.ensemble >= 1, "ensemble must be non-empty");
        RipAgent { config }
    }
}

impl Default for RipAgent {
    fn default() -> Self {
        RipAgent::new(RipConfig::default())
    }
}

impl EgoController for RipAgent {
    fn control(&mut self, world: &World) -> ControlInput {
        let cfg = &self.config;
        let model = BicycleModel::default();
        let steps = (cfg.horizon / cfg.dt).ceil() as usize;
        let hazard_steps = (cfg.hazard_horizon / cfg.dt).ceil() as usize;
        let ego = world.ego();
        let (ego_len, ego_wid) = world.ego_dims();

        // CVTR predictions of every actor over the horizon.
        let cvtr = CvtrModel::new();
        let obstacles: Vec<_> = world
            .actors()
            .iter()
            .map(|a| {
                (
                    cvtr.predict(
                        a.state,
                        a.yaw_rate,
                        Seconds::new(world.time()),
                        Seconds::new(cfg.dt),
                        steps,
                    ),
                    a.length,
                    a.width,
                )
            })
            .collect();

        let mut best: Option<(f64, ControlInput)> = None;
        for (ci, &a) in cfg.accels.iter().enumerate() {
            for (si, &s) in cfg.steers.iter().enumerate() {
                let u = ControlInput::new(a, s);
                let traj = model.rollout(ego, u, Seconds::new(cfg.dt), steps);

                // Benign-driving log-likelihood: straight, smooth, on-speed,
                // on-road plans are "what the experts did".
                let mut loglik = -1.2 * s.abs() - 0.08 * a.abs();
                if let Some(final_state) = traj.states().last() {
                    loglik -= 0.05 * (final_state.v - cfg.target_speed).abs();
                }
                let off_road = traj.states().iter().skip(1).any(|st| {
                    !world
                        .map()
                        .is_obb_drivable(&st.footprint(Meters::new(ego_len), Meters::new(ego_wid)))
                });
                if off_road {
                    // Experts never leave the road: overwhelming penalty so
                    // no hazard trade-off ever prefers an off-road plan.
                    loglik -= 1000.0;
                }

                // Short-sighted hazard penalty.
                let mut hazard = 0.0;
                for (i, st) in traj.states().iter().enumerate().skip(1).take(hazard_steps) {
                    let fp = st.footprint(Meters::new(ego_len), Meters::new(ego_wid));
                    let time = world.time() + i as f64 * cfg.dt;
                    for (otraj, olen, owid) in &obstacles {
                        if let Some(os) = otraj.state_at_time(time) {
                            if fp.intersects(&os.footprint(Meters::new(*olen), Meters::new(*owid)))
                            {
                                hazard += 1.0;
                            }
                        }
                    }
                }

                // Worst-case over ensemble members: each member perturbs the
                // likelihood deterministically (hash of member × candidate).
                let mut worst = f64::INFINITY;
                for m in 0..cfg.ensemble {
                    let perturb = cfg.noise * pseudo_noise(m as u64, (ci * 31 + si) as u64);
                    let score =
                        cfg.likelihood_weight * (loglik + perturb) - cfg.collision_weight * hazard;
                    worst = worst.min(score);
                }

                if best.is_none_or(|(b, _)| worst > b) {
                    best = Some((worst, u));
                }
            }
        }
        best.map_or(ControlInput::COAST, |(_, u)| u)
    }
}

/// A deterministic value in `[-1, 1]` from two indices (splitmix64 hash).
fn pseudo_noise(a: u64, b: u64) -> f64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z as f64 / u64::MAX as f64) * 2.0 - 1.0
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use iprism_dynamics::VehicleState;
    use iprism_map::RoadMap;
    use iprism_sim::{run_episode, Actor, Behavior, EpisodeConfig, World};

    fn world(ego_speed: f64) -> World {
        let map = RoadMap::straight_road(2, 3.5, 600.0);
        World::new(map, VehicleState::new(20.0, 1.75, 0.0, ego_speed), 0.1)
    }

    #[test]
    fn keeps_lane_and_speed_when_clear() {
        let mut w = world(8.0);
        let mut agent = RipAgent::default();
        for _ in 0..100 {
            let u = agent.control(&w);
            w.step(u);
        }
        assert!((w.ego().v - 8.0).abs() < 1.5, "v {}", w.ego().v);
        assert!((w.ego().y - 1.75).abs() < 0.6, "y {}", w.ego().y);
        assert!(!w.ego_collided());
    }

    #[test]
    fn brakes_only_when_hazard_is_imminent() {
        let mut w = world(8.0);
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(60.0, 1.75, 0.0, 0.0),
            Behavior::Idle,
        ));
        let mut agent = RipAgent::default();
        // 35 m away at 8 m/s: collision ~4.4 s out — beyond the 1 s hazard
        // horizon, so the benign prior wins and RIP keeps cruising.
        let u_far = agent.control(&w);
        assert!(u_far.accel > -1.0, "no early braking: {}", u_far.accel);

        // Move the ego close: collision within the hazard horizon.
        w.set_ego(VehicleState::new(49.0, 1.75, 0.0, 8.0));
        let u_near = agent.control(&w);
        assert!(
            u_near.accel < -1.0,
            "late braking engages: {}",
            u_near.accel
        );
    }

    #[test]
    fn late_reaction_loses_to_fast_approach() {
        // Approaching a stopped car at 14 m/s, RIP's 1 s hazard horizon
        // reacts around 14 m out — too late to stop (needs ~16 m at -4).
        // Single-lane road: no room to swerve around the stopped car.
        let map = RoadMap::straight_road(1, 3.5, 600.0);
        let mut w = World::new(map, VehicleState::new(20.0, 1.75, 0.0, 14.0), 0.1);
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(70.0, 1.75, 0.0, 0.0),
            Behavior::Idle,
        ));
        let mut agent = RipAgent::new(RipConfig {
            target_speed: 14.0,
            ..RipConfig::default()
        });
        let r = run_episode(&mut w, &mut agent, &EpisodeConfig::default());
        assert!(r.outcome.is_collision(), "{:?}", r.outcome);
    }

    #[test]
    fn deterministic() {
        let mut w1 = world(8.0);
        let mut w2 = world(8.0);
        let mut a1 = RipAgent::default();
        let mut a2 = RipAgent::default();
        for _ in 0..50 {
            let u1 = a1.control(&w1);
            let u2 = a2.control(&w2);
            assert_eq!(u1, u2);
            w1.step(u1);
            w2.step(u2);
        }
    }

    #[test]
    fn pseudo_noise_bounded_and_stable() {
        for a in 0..5 {
            for b in 0..5 {
                let n = pseudo_noise(a, b);
                assert!((-1.0..=1.0).contains(&n));
                assert_eq!(n, pseudo_noise(a, b));
            }
        }
        assert_ne!(pseudo_noise(0, 1), pseudo_noise(1, 0));
    }

    #[test]
    #[should_panic(expected = "ensemble")]
    fn empty_ensemble_panics() {
        let _ = RipAgent::new(RipConfig {
            ensemble: 0,
            ..RipConfig::default()
        });
    }
}
