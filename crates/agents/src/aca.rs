//! TTC-based automatic collision avoidance (ACA).

use iprism_dynamics::ControlInput;
use iprism_risk::{time_to_collision, SceneSnapshot};
use iprism_sim::{EgoController, World};
use iprism_units::Seconds;

use crate::util::lane_follow_control;

/// The classical dedicated safety controller the paper compares against
/// (references [11, 13]): whenever the TTC to an in-path actor drops below
/// a threshold, override the ADS with full braking.
///
/// ACA is *reactive* — it activates only after the threshold violation has
/// occurred — and it only sees in-path actors. Both limitations are
/// exactly what Table III demonstrates (0% collision avoidance on ghost
/// cut-ins, strong performance on lead slowdowns).
#[derive(Debug)]
pub struct AcaController<A> {
    inner: A,
    /// TTC threshold triggering the brake override (s).
    pub ttc_threshold: f64,
    /// Prediction horizon for the TTC scene (s).
    pub horizon: f64,
    /// Prediction sample period (s).
    pub dt: f64,
    first_activation: Option<f64>,
}

impl<A> AcaController<A> {
    /// Wraps an ADS controller with a TTC brake override at the given
    /// threshold.
    pub fn new(inner: A, ttc_threshold: f64) -> Self {
        assert!(ttc_threshold > 0.0, "TTC threshold must be positive");
        AcaController {
            inner,
            ttc_threshold,
            horizon: 2.5,
            dt: 0.25,
            first_activation: None,
        }
    }

    /// Time of the first brake override in the current episode, if any
    /// (Table IV's activation-timing measurement).
    pub fn first_activation(&self) -> Option<f64> {
        self.first_activation
    }

    /// The wrapped controller.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: EgoController> EgoController for AcaController<A> {
    fn control(&mut self, world: &World) -> ControlInput {
        let scene = SceneSnapshot::from_world_cvtr(
            world,
            Seconds::new(self.horizon),
            Seconds::new(self.dt),
        );
        let triggered = time_to_collision(&scene).is_some_and(|t| t < self.ttc_threshold);
        if triggered {
            self.first_activation.get_or_insert(world.time());
            let mut u = lane_follow_control(world.map(), &world.ego(), 0.0);
            u.accel = world.vehicle_model().limits.accel_min;
            u
        } else {
            self.inner.control(world)
        }
    }

    fn reset(&mut self) {
        self.first_activation = None;
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LbcAgent;
    use iprism_dynamics::VehicleState;
    use iprism_map::RoadMap;
    use iprism_sim::{run_episode, Actor, Behavior, ConstantControl, EpisodeConfig, World};

    fn world(ego_speed: f64) -> World {
        let map = RoadMap::straight_road(2, 3.5, 600.0);
        World::new(map, VehicleState::new(20.0, 1.75, 0.0, ego_speed), 0.1)
    }

    #[test]
    fn saves_a_blind_controller_from_rear_ending() {
        // A coasting ego would plough into the stopped car; ACA brakes.
        let mut w = world(10.0);
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(80.0, 1.75, 0.0, 0.0),
            Behavior::Idle,
        ));
        let mut agent = AcaController::new(ConstantControl::coast(), 3.0);
        let r = run_episode(&mut w, &mut agent, &EpisodeConfig::default());
        assert!(!r.outcome.is_collision(), "{:?}", r.outcome);
        assert!(agent.first_activation().is_some());
    }

    #[test]
    fn no_activation_without_hazard() {
        let mut w = world(8.0);
        let mut agent = AcaController::new(LbcAgent::default(), 3.0);
        for _ in 0..50 {
            let u = agent.control(&w);
            w.step(u);
        }
        assert!(agent.first_activation().is_none());
    }

    #[test]
    fn blind_to_out_of_path_cut_in_threat() {
        // Side-by-side actor in the adjacent lane going the same speed:
        // no TTC, no activation — even though a cut-in may be imminent.
        let mut w = world(8.0);
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(22.0, 5.25, 0.0, 8.0),
            Behavior::lane_keep(8.0),
        ));
        let mut agent = AcaController::new(ConstantControl::coast(), 3.0);
        let _ = agent.control(&w);
        assert!(agent.first_activation().is_none());
    }

    #[test]
    fn reset_clears_activation() {
        let mut w = world(10.0);
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(40.0, 1.75, 0.0, 0.0),
            Behavior::Idle,
        ));
        let mut agent = AcaController::new(ConstantControl::coast(), 3.0);
        let _ = agent.control(&w);
        assert!(agent.first_activation().is_some());
        agent.reset();
        assert!(agent.first_activation().is_none());
    }

    #[test]
    #[should_panic(expected = "TTC threshold")]
    fn bad_threshold_panics() {
        let _ = AcaController::new(ConstantControl::coast(), 0.0);
    }
}
