//! The common agent interface the evaluation harness drives episodes with.
//!
//! Every study in `iprism-eval` runs the same loop — build a world, drive an
//! [`EgoController`], record the outcome — but mitigation studies also need
//! to know *when a safety layer first intervened* (the paper's §V-C timing
//! analysis). [`EpisodeAgent`] extends [`EgoController`] with exactly that
//! query so the harness can treat the plain ADS baselines (LBC, RIP), the
//! ACA wrapper, and iPrism-mitigated agents uniformly, including behind
//! `Box<dyn EpisodeAgent>`.

use iprism_sim::{ConstantControl, EgoController, World};

use crate::{AcaController, LbcAgent, MitigatedAgent, MitigationPolicy, RipAgent};

/// An ego controller the evaluation harness can run and interrogate.
///
/// The one added query, [`first_activation`](EpisodeAgent::first_activation),
/// reports when the agent's safety layer first overrode the nominal ADS —
/// `None` for agents without one (plain ADS baselines) or when it never
/// fired.
pub trait EpisodeAgent: EgoController {
    /// Sim time (s) of the first safety intervention in the current episode,
    /// if the agent has a safety layer and it fired.
    fn first_activation(&self) -> Option<f64> {
        None
    }
}

impl EpisodeAgent for LbcAgent {}
impl EpisodeAgent for RipAgent {}
impl EpisodeAgent for ConstantControl {}

impl<A: EgoController> EpisodeAgent for AcaController<A> {
    fn first_activation(&self) -> Option<f64> {
        AcaController::first_activation(self)
    }
}

impl<A: EgoController, P: MitigationPolicy> EpisodeAgent for MitigatedAgent<A, P> {
    fn first_activation(&self) -> Option<f64> {
        MitigatedAgent::first_activation(self)
    }
}

impl EgoController for Box<dyn EpisodeAgent + '_> {
    fn control(&mut self, world: &World) -> iprism_dynamics::ControlInput {
        (**self).control(world)
    }

    fn reset(&mut self) {
        (**self).reset();
    }
}

impl EpisodeAgent for Box<dyn EpisodeAgent + '_> {
    fn first_activation(&self) -> Option<f64> {
        (**self).first_activation()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests

    use super::*;
    use crate::NoMitigation;
    use iprism_dynamics::VehicleState;
    use iprism_map::RoadMap;
    use iprism_sim::{run_episode, Actor, Behavior, EpisodeConfig, EpisodeOutcome, Goal};

    /// A 10 m/s ego behind a stopped car: forces ACA/mitigation layers to
    /// fire if they are going to.
    fn blocked_world() -> World {
        let map = RoadMap::straight_road(2, 3.5, 400.0);
        let mut world = World::new(map, VehicleState::new(10.0, 1.75, 0.0, 10.0), 0.1);
        world.spawn(Actor::vehicle(
            1,
            VehicleState::new(45.0, 1.75, 0.0, 0.0),
            Behavior::lane_keep(0.0),
        ));
        world
    }

    fn config() -> EpisodeConfig {
        EpisodeConfig {
            max_time: 8.0,
            goal: Goal::None,
            stop_on_collision: true,
        }
    }

    #[test]
    fn plain_agents_report_no_activation() {
        assert_eq!(LbcAgent::default().first_activation(), None);
        assert_eq!(RipAgent::default().first_activation(), None);
        assert_eq!(ConstantControl::coast().first_activation(), None);
    }

    /// The ACA wrapper's trait-level activation must agree with its inherent
    /// accessor, and the wrapper must fire before a stopped blocker.
    #[test]
    fn aca_activation_flows_through_the_trait() {
        let mut agent = AcaController::new(LbcAgent::default(), 3.0);
        let mut world = blocked_world();
        run_episode(&mut world, &mut agent, &config());
        let via_trait = EpisodeAgent::first_activation(&agent);
        assert_eq!(via_trait, AcaController::first_activation(&agent));
        let t = via_trait.expect("ACA must brake for a stopped in-path car");
        assert!(t > 0.0 && t < 8.0, "activation time {t} outside episode");
    }

    #[test]
    fn unmitigated_wrapper_never_activates() {
        let mut agent = MitigatedAgent::new(LbcAgent::default(), NoMitigation);
        let mut world = blocked_world();
        run_episode(&mut world, &mut agent, &config());
        assert_eq!(EpisodeAgent::first_activation(&agent), None);
    }

    /// A boxed agent must drive the episode to the byte-identical outcome
    /// and trace of the concrete agent — the harness erases agent types.
    #[test]
    fn boxed_agent_matches_concrete_agent() {
        let mut concrete = RipAgent::default();
        let mut world = blocked_world();
        let direct = run_episode(&mut world, &mut concrete, &config());

        let mut boxed: Box<dyn EpisodeAgent> = Box::new(RipAgent::default());
        let mut world = blocked_world();
        let erased = run_episode(&mut world, &mut boxed, &config());

        assert_eq!(direct.outcome, erased.outcome);
        assert_eq!(
            format!("{:?}", direct.trace),
            format!("{:?}", erased.trace),
            "boxed agent diverged from the concrete agent"
        );
        assert_eq!(boxed.first_activation(), None);
    }

    /// RIP keeps its documented failure mode under the new trait: it still
    /// rear-ends the stopped blocker (OOD scene, misleading likelihoods).
    #[test]
    fn rip_still_collides_in_ood_scene_under_trait() {
        let mut boxed: Box<dyn EpisodeAgent> = Box::new(RipAgent::default());
        let mut world = blocked_world();
        let result = run_episode(&mut world, &mut boxed, &config());
        assert!(
            matches!(result.outcome, EpisodeOutcome::Collision { .. }),
            "expected RIP to collide, got {:?}",
            result.outcome
        );
    }
}
