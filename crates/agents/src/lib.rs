//! Driving agents and safety controllers for the iPrism evaluation.
//!
//! The paper evaluates iPrism around two autonomous driving agents and one
//! classical safety controller, none of which are usable verbatim from Rust
//! (they are GPU-trained Python models). This crate provides behavioural
//! surrogates that preserve the properties the evaluation depends on (see
//! DESIGN.md §2 for the substitution argument):
//!
//! * [`LbcAgent`] — the Learning-by-Cheating baseline ADS: a competent lane
//!   follower with *limited hazard handling* (in-path-only perception, a
//!   reaction latency, comfort-limited braking). Drives well in benign
//!   traffic and fails in the NHTSA pre-crash typologies, like the original.
//! * [`RipAgent`] — the Robust Imitative Planning agent: an ensemble of
//!   imitation planners scored under a benign-driving likelihood prior with
//!   worst-case aggregation. Structurally reproduces RIP's documented
//!   failure mode (misleading likelihoods in OOD safety-critical scenes).
//! * [`AcaController`] — the TTC-based automatic collision avoidance
//!   wrapper: full braking whenever TTC to an in-path actor drops below a
//!   threshold.
//! * [`MitigatedAgent`] + [`MitigationPolicy`] — the paper's `⊗` operator
//!   (Fig. 2): a mitigation action, when not No-Op, *overwrites* the ADS
//!   action.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod aca;
mod episode_agent;
mod lbc;
mod mitigation;
mod rip;
mod util;

pub use aca::AcaController;
pub use episode_agent::EpisodeAgent;
pub use lbc::{LbcAgent, LbcConfig};
pub use mitigation::{
    MitigatedAgent, MitigationAction, MitigationPolicy, NoMitigation, ACCELERATE_SPEED_CAP,
};
pub use rip::{RipAgent, RipConfig};
pub use util::lane_follow_control;
