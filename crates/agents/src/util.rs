//! Shared control helpers.

use iprism_dynamics::{ControlInput, VehicleState};
use iprism_geom::wrap_to_pi;
use iprism_map::RoadMap;

/// Stanley-style lane-following control toward the nearest lane centerline
/// at `target_speed`, with a speed-scaled lookahead so curved lanes
/// (roundabout rings) are anticipated instead of corner-cut. On straight
/// lanes the lookahead is a no-op. The longitudinal term is a simple
/// proportional speed tracker; callers override `accel` for braking.
pub fn lane_follow_control(map: &RoadMap, state: &VehicleState, target_speed: f64) -> ControlInput {
    let lane = map.nearest_lane(state.position());
    let here = lane.project(state.position());
    // Aim at the centerline a little ahead: heading target comes from the
    // lookahead point, cross-track correction from the current position.
    let lookahead = (0.8 * state.v).max(2.0);
    let ahead = lane.project(
        state.position()
            + iprism_geom::Vec2::from_angle(iprism_units::Radians::raw(state.theta)) * lookahead,
    );
    let target_heading = (ahead.point - state.position())
        .try_normalize()
        .map_or(ahead.heading, |d| d.angle().get());
    let heading_err = wrap_to_pi(target_heading - state.theta);
    let cross = (-here.lateral / 3.0).atan();
    let steer = (heading_err + cross).clamp(-0.6, 0.6);
    let accel = ((target_speed - state.v) * 1.2).clamp(-4.0, 3.0);
    ControlInput::new(accel, steer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steers_back_to_center() {
        let map = RoadMap::straight_road(2, 3.5, 100.0);
        // left of lane-0 centre → steer right
        let u = lane_follow_control(&map, &VehicleState::new(10.0, 2.5, 0.0, 8.0), 8.0);
        assert!(u.steer < 0.0);
        // right of centre → steer left
        let u2 = lane_follow_control(&map, &VehicleState::new(10.0, 1.0, 0.0, 8.0), 8.0);
        assert!(u2.steer > 0.0);
    }

    #[test]
    fn tracks_speed() {
        let map = RoadMap::straight_road(1, 3.5, 100.0);
        let slow = lane_follow_control(&map, &VehicleState::new(10.0, 1.75, 0.0, 2.0), 10.0);
        assert!(slow.accel > 0.0);
        let fast = lane_follow_control(&map, &VehicleState::new(10.0, 1.75, 0.0, 15.0), 10.0);
        assert!(fast.accel < 0.0);
    }
}
