//! Mitigation actions and the `⊗` arbitration operator (Fig. 2).

use iprism_dynamics::ControlInput;
use iprism_map::LaneId;
use iprism_sim::{EgoController, World};
use serde::{Deserialize, Serialize};

use crate::util::lane_follow_control;

/// Speed cap (m/s) of the [`MitigationAction::Accelerate`] override — an
/// urban road-speed limit. The SMC escapes rear threats by accelerating,
/// not by racing off at the vehicle's mechanical maximum.
pub const ACCELERATE_SPEED_CAP: f64 = 14.0;

/// The SMC's discrete mitigation actions (§III-B of the paper).
///
/// The paper demonstrates braking (BR) and acceleration (ACC); lane changes
/// (LCL/LCR) are defined by the action space and listed as future work —
/// they are implemented here but excluded from the default action set used
/// in the experiments, mirroring the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MitigationAction {
    /// No mitigation; the ADS action passes through.
    NoOp,
    /// Maximum braking while holding the lane.
    Brake,
    /// Maximum acceleration while holding the lane.
    Accelerate,
    /// Change one lane to the left.
    LaneChangeLeft,
    /// Change one lane to the right.
    LaneChangeRight,
}

impl MitigationAction {
    /// The action set used in the paper's experiments: `{No-Op, BR, ACC}`.
    pub const BRAKE_ACCEL: [MitigationAction; 3] = [
        MitigationAction::NoOp,
        MitigationAction::Brake,
        MitigationAction::Accelerate,
    ];

    /// The full action space including lane changes.
    pub const ALL: [MitigationAction; 5] = [
        MitigationAction::NoOp,
        MitigationAction::Brake,
        MitigationAction::Accelerate,
        MitigationAction::LaneChangeLeft,
        MitigationAction::LaneChangeRight,
    ];

    /// Realizes the action as a control input for the current world, or
    /// `None` for [`MitigationAction::NoOp`].
    pub fn to_control(self, world: &World) -> Option<ControlInput> {
        let ego = world.ego();
        let limits = world.vehicle_model().limits;
        match self {
            MitigationAction::NoOp => None,
            MitigationAction::Brake => {
                let mut u = lane_follow_control(world.map(), &ego, 0.0);
                u.accel = limits.accel_min;
                Some(u)
            }
            MitigationAction::Accelerate => {
                let mut u = lane_follow_control(world.map(), &ego, ACCELERATE_SPEED_CAP);
                u.accel = if ego.v < ACCELERATE_SPEED_CAP {
                    limits.accel_max
                } else {
                    0.0
                };
                Some(u)
            }
            MitigationAction::LaneChangeLeft | MitigationAction::LaneChangeRight => {
                let map = world.map();
                let current = map.nearest_lane(ego.position()).id();
                let target = if self == MitigationAction::LaneChangeLeft {
                    LaneId(current.0 + 1)
                } else {
                    LaneId(current.0.saturating_sub(1))
                };
                let lane = map.lane(target).or_else(|| map.lane(current))?;
                let proj = lane.project(ego.position());
                let heading_err = iprism_geom::wrap_to_pi(proj.heading - ego.theta);
                let cross = (-proj.lateral / 4.0).atan();
                Some(ControlInput::new(
                    0.0,
                    (heading_err + cross).clamp(-0.6, 0.6),
                ))
            }
        }
    }
}

/// Decides a mitigation action each step — implemented by the SMC (and by
/// [`NoMitigation`] for baselines).
pub trait MitigationPolicy {
    /// The mitigation action for the current world state.
    fn decide(&mut self, world: &World) -> MitigationAction;
    /// Resets per-episode state.
    fn reset(&mut self) {}
}

/// The identity policy: never mitigates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoMitigation;

impl MitigationPolicy for NoMitigation {
    fn decide(&mut self, _world: &World) -> MitigationAction {
        MitigationAction::NoOp
    }
}

/// The paper's `⊗` operator: an ADS controller augmented with a mitigation
/// policy. A non-No-Op mitigation action **overwrites** the ADS action
/// (the paper's stated implementation choice).
#[derive(Debug)]
pub struct MitigatedAgent<A, P> {
    ads: A,
    policy: P,
    first_activation: Option<f64>,
    last_action: MitigationAction,
}

impl<A, P> MitigatedAgent<A, P> {
    /// Combines an ADS with a mitigation policy.
    pub fn new(ads: A, policy: P) -> Self {
        MitigatedAgent {
            ads,
            policy,
            first_activation: None,
            last_action: MitigationAction::NoOp,
        }
    }

    /// Time of the first non-No-Op mitigation this episode (Table IV).
    pub fn first_activation(&self) -> Option<f64> {
        self.first_activation
    }

    /// The most recent mitigation action.
    pub fn last_action(&self) -> MitigationAction {
        self.last_action
    }

    /// The wrapped ADS.
    pub fn ads(&self) -> &A {
        &self.ads
    }

    /// The wrapped mitigation policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }
}

impl<A: EgoController, P: MitigationPolicy> EgoController for MitigatedAgent<A, P> {
    fn control(&mut self, world: &World) -> ControlInput {
        let ads_control = self.ads.control(world);
        let action = self.policy.decide(world);
        self.last_action = action;
        match action.to_control(world) {
            Some(u) => {
                self.first_activation.get_or_insert(world.time());
                u
            }
            None => ads_control,
        }
    }

    fn reset(&mut self) {
        self.first_activation = None;
        self.last_action = MitigationAction::NoOp;
        self.ads.reset();
        self.policy.reset();
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use iprism_dynamics::VehicleState;
    use iprism_map::RoadMap;
    use iprism_sim::{ConstantControl, World};

    fn world() -> World {
        let map = RoadMap::straight_road(3, 3.5, 300.0);
        World::new(map, VehicleState::new(50.0, 5.25, 0.0, 8.0), 0.1)
    }

    #[test]
    fn action_sets() {
        assert_eq!(MitigationAction::BRAKE_ACCEL.len(), 3);
        assert_eq!(MitigationAction::ALL.len(), 5);
        assert_eq!(MitigationAction::BRAKE_ACCEL[0], MitigationAction::NoOp);
    }

    #[test]
    fn noop_yields_no_control() {
        assert!(MitigationAction::NoOp.to_control(&world()).is_none());
    }

    #[test]
    fn brake_and_accelerate_controls() {
        let w = world();
        let b = MitigationAction::Brake.to_control(&w).unwrap();
        assert_eq!(b.accel, w.vehicle_model().limits.accel_min);
        let a = MitigationAction::Accelerate.to_control(&w).unwrap();
        assert_eq!(a.accel, w.vehicle_model().limits.accel_max);
    }

    #[test]
    fn accelerate_respects_the_speed_cap() {
        let map = RoadMap::straight_road(3, 3.5, 300.0);
        let w = World::new(
            map,
            VehicleState::new(50.0, 5.25, 0.0, ACCELERATE_SPEED_CAP + 1.0),
            0.1,
        );
        let a = MitigationAction::Accelerate.to_control(&w).unwrap();
        assert_eq!(a.accel, 0.0, "no acceleration beyond the cap");
    }

    #[test]
    fn lane_changes_steer_in_the_right_direction() {
        let w = world(); // ego in middle lane (id 1)
        let l = MitigationAction::LaneChangeLeft.to_control(&w).unwrap();
        assert!(l.steer > 0.0);
        let r = MitigationAction::LaneChangeRight.to_control(&w).unwrap();
        assert!(r.steer < 0.0);
    }

    #[test]
    fn lane_change_at_edge_clamps() {
        let map = RoadMap::straight_road(1, 3.5, 300.0);
        let w = World::new(map, VehicleState::new(50.0, 1.75, 0.0, 8.0), 0.1);
        // No lane above/below: falls back to the current lane (≈ straight).
        let l = MitigationAction::LaneChangeLeft.to_control(&w).unwrap();
        assert!(l.steer.abs() < 0.05);
    }

    /// A policy that brakes from step 3 on.
    #[derive(Default)]
    struct BrakeLater {
        calls: usize,
    }

    impl MitigationPolicy for BrakeLater {
        fn decide(&mut self, _world: &World) -> MitigationAction {
            self.calls += 1;
            if self.calls > 3 {
                MitigationAction::Brake
            } else {
                MitigationAction::NoOp
            }
        }
        fn reset(&mut self) {
            self.calls = 0;
        }
    }

    #[test]
    fn arbiter_overwrites_ads_and_records_first_activation() {
        let mut w = world();
        let mut agent = MitigatedAgent::new(ConstantControl::coast(), BrakeLater::default());
        for _ in 0..3 {
            let u = agent.control(&w);
            assert_eq!(u, ControlInput::COAST); // NoOp passes ADS through
            assert_eq!(agent.last_action(), MitigationAction::NoOp);
            w.step(u);
        }
        assert!(agent.first_activation().is_none());
        let u = agent.control(&w);
        assert!(u.accel < -5.0); // Brake overwrote the ADS coast
        assert_eq!(agent.last_action(), MitigationAction::Brake);
        let t = agent.first_activation().unwrap();
        assert!((t - 0.3).abs() < 1e-9);

        agent.reset();
        assert!(agent.first_activation().is_none());
        assert_eq!(agent.last_action(), MitigationAction::NoOp);
    }

    #[test]
    fn no_mitigation_policy_is_identity() {
        let mut w = world();
        let mut agent = MitigatedAgent::new(ConstantControl::coast(), NoMitigation);
        let u = agent.control(&w);
        assert_eq!(u, ControlInput::COAST);
        w.step(u);
        assert!(agent.first_activation().is_none());
    }
}
