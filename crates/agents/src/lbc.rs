//! The Learning-by-Cheating (LBC) baseline ADS surrogate.

use iprism_dynamics::ControlInput;
use iprism_sim::{EgoController, World};
use serde::{Deserialize, Serialize};

use crate::util::lane_follow_control;

/// Configuration of the [`LbcAgent`] surrogate.
///
/// The defaults are calibrated so the agent drives benign traffic cleanly
/// yet reproduces the per-typology accident profile of Table I: blind to
/// actors outside its own lane (cut-ins are seen late), a perception/
/// decision latency before it reacts, and comfort-limited braking unless
/// the hazard is already very close.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LbcConfig {
    /// Cruise speed (m/s).
    pub target_speed: f64,
    /// How far ahead the agent perceives in-lane hazards (m).
    pub perception_range: f64,
    /// Half-width of the perceived corridor around the ego lane centre (m);
    /// actors laterally outside it are invisible (the LBC cut-in blindness).
    pub lateral_tolerance: f64,
    /// Hazard must persist this long before the agent reacts (s).
    pub reaction_delay: f64,
    /// Normal braking strength (m/s², negative).
    pub comfort_brake: f64,
    /// Panic braking strength (m/s², negative).
    pub emergency_brake: f64,
    /// Gap below which panic braking engages (m).
    pub emergency_gap: f64,
    /// Desired time headway to a leader (s).
    pub headway: f64,
}

impl Default for LbcConfig {
    fn default() -> Self {
        LbcConfig {
            target_speed: 8.0,
            perception_range: 35.0,
            lateral_tolerance: 1.6,
            reaction_delay: 0.5,
            comfort_brake: -3.5,
            emergency_brake: -6.0,
            emergency_gap: 7.0,
            headway: 1.0,
        }
    }
}

/// Surrogate for the Learning-by-Cheating agent (paper reference [15]) —
/// the baseline ADS of the entire evaluation.
///
/// See [`LbcConfig`] for the deliberately limited hazard model. The agent
/// is deterministic; the same world always produces the same control.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LbcAgent {
    /// Behaviour parameters.
    pub config: LbcConfig,
    hazard_since: Option<f64>,
}

impl LbcAgent {
    /// Creates an agent with the given configuration.
    pub fn new(config: LbcConfig) -> Self {
        LbcAgent {
            config,
            hazard_since: None,
        }
    }

    /// Creates an agent with the calibrated default configuration.
    pub fn with_target_speed(target_speed: f64) -> Self {
        LbcAgent::new(LbcConfig {
            target_speed,
            ..LbcConfig::default()
        })
    }

    /// Gap (m) and leader speed of the closest perceived in-lane actor
    /// ahead, if any.
    fn perceived_lead(&self, world: &World) -> Option<(f64, f64)> {
        let ego = world.ego();
        let lane = world.map().nearest_lane(ego.position());
        let ego_proj = lane.project(ego.position());
        let mut best: Option<(f64, f64)> = None;
        for actor in world.actors() {
            let proj = lane.project(actor.state.position());
            // Footprint-aware lateral: a body counts as in-corridor when its
            // near edge (not its centre) enters the perceived corridor.
            let edge_lateral = (proj.lateral.abs() - actor.width * 0.5).max(0.0);
            if edge_lateral > self.config.lateral_tolerance {
                continue; // outside the perceived corridor
            }
            let ds = proj.s - ego_proj.s;
            if ds <= 0.0 || ds > self.config.perception_range {
                continue; // behind, or beyond perception
            }
            let gap = ds - (actor.length + 4.6) * 0.5;
            if best.is_none_or(|(g, _)| gap < g) {
                best = Some((gap, actor.state.v));
            }
        }
        best
    }
}

impl Default for LbcAgent {
    fn default() -> Self {
        LbcAgent::new(LbcConfig::default())
    }
}

impl EgoController for LbcAgent {
    fn control(&mut self, world: &World) -> ControlInput {
        let ego = world.ego();
        let mut u = lane_follow_control(world.map(), &ego, self.config.target_speed);

        let hazard = self.perceived_lead(world).and_then(|(gap, lead_v)| {
            let desired = 4.0 + self.config.headway * ego.v;
            if gap < desired && lead_v < ego.v + 0.5 {
                Some(gap)
            } else {
                None
            }
        });

        match hazard {
            Some(gap) => {
                let since = *self.hazard_since.get_or_insert(world.time());
                let reacted = world.time() - since >= self.config.reaction_delay;
                if reacted {
                    u.accel = if gap < self.config.emergency_gap {
                        self.config.emergency_brake
                    } else {
                        self.config.comfort_brake
                    };
                } else if gap < self.config.emergency_gap * 0.5 {
                    // Even before the latency elapses, an imminent overlap
                    // triggers reflex braking (LBC is not completely blind).
                    u.accel = self.config.comfort_brake;
                }
            }
            None => self.hazard_since = None,
        }
        u
    }

    fn reset(&mut self) {
        self.hazard_since = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iprism_dynamics::VehicleState;
    use iprism_map::RoadMap;
    use iprism_sim::{run_episode, Actor, Behavior, EpisodeConfig, Goal, World};

    fn world(ego_speed: f64) -> World {
        let map = RoadMap::straight_road(2, 3.5, 600.0);
        World::new(map, VehicleState::new(20.0, 1.75, 0.0, ego_speed), 0.1)
    }

    #[test]
    fn cruises_at_target_speed_on_open_road() {
        let mut w = world(0.0);
        let mut agent = LbcAgent::default();
        let r = run_episode(
            &mut w,
            &mut agent,
            &EpisodeConfig {
                max_time: 20.0,
                goal: Goal::None,
                stop_on_collision: true,
            },
        );
        assert!(!r.outcome.is_collision());
        let last = r.trace.steps().last().unwrap();
        assert!((last.ego.v - 8.0).abs() < 0.5, "v = {}", last.ego.v);
        assert!((last.ego.y - 1.75).abs() < 0.3);
    }

    #[test]
    fn stops_behind_stopped_leader() {
        let mut w = world(8.0);
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(120.0, 1.75, 0.0, 0.0),
            Behavior::Idle,
        ));
        let mut agent = LbcAgent::default();
        let r = run_episode(&mut w, &mut agent, &EpisodeConfig::default());
        assert!(!r.outcome.is_collision(), "{:?}", r.outcome);
        // parked safely behind the leader
        assert!(w.ego().v < 0.5);
        assert!(w.ego().x < 115.0);
    }

    #[test]
    fn follows_slower_leader_without_collision() {
        let mut w = world(8.0);
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(60.0, 1.75, 0.0, 4.0),
            Behavior::lane_keep(4.0),
        ));
        let mut agent = LbcAgent::default();
        let r = run_episode(
            &mut w,
            &mut agent,
            &EpisodeConfig {
                max_time: 30.0,
                goal: Goal::None,
                stop_on_collision: true,
            },
        );
        assert!(!r.outcome.is_collision());
    }

    #[test]
    fn blind_to_adjacent_lane_traffic() {
        let mut w = world(8.0);
        // A stopped car in the *other* lane is ignored: no braking.
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(60.0, 5.25, 0.0, 0.0),
            Behavior::Idle,
        ));
        let mut agent = LbcAgent::default();
        let u = agent.control(&w);
        assert!(u.accel > -0.5, "must not brake for adjacent lane");
    }

    #[test]
    fn abrupt_very_close_cut_in_defeats_the_agent() {
        // A stopped car materialising 9 m ahead of a fast ego (the end
        // state of an aggressive cut-in) cannot be handled: latency +
        // limited braking lose. This is what the SMC exists to fix.
        let mut w = world(12.0);
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(34.0, 1.75, 0.0, 0.0),
            Behavior::Idle,
        ));
        let mut agent = LbcAgent::with_target_speed(12.0);
        let r = run_episode(&mut w, &mut agent, &EpisodeConfig::default());
        assert!(r.outcome.is_collision(), "{:?}", r.outcome);
    }

    #[test]
    fn reaction_latency_latches_and_clears() {
        let mut w = world(8.0);
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(34.0, 1.75, 0.0, 0.0),
            Behavior::Idle,
        ));
        let mut agent = LbcAgent::default();
        let u0 = agent.control(&w);
        // gap 9.4 m < desired 12 m: hazard latched, but latency not yet
        // elapsed and gap above the reflex zone: no braking yet.
        assert!(agent.hazard_since.is_some());
        assert!(u0.accel > -1.0);
        agent.reset();
        assert!(agent.hazard_since.is_none());
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut w = world(8.0);
            w.spawn(Actor::vehicle(
                1,
                VehicleState::new(60.0, 1.75, 0.0, 2.0),
                Behavior::lane_keep(2.0),
            ));
            let mut agent = LbcAgent::default();
            let r = run_episode(&mut w, &mut agent, &EpisodeConfig::default());
            (format!("{:?}", r.outcome), r.trace.len())
        };
        assert_eq!(run(), run());
    }
}
