//! The composite road map: lanes + drivable regions.

use iprism_geom::{Aabb, Obb, Vec2};
use serde::{Deserialize, Serialize};

use crate::{DrivableRegion, Lane, LaneId};

/// A road map: a set of lanes for guidance plus a union of drivable regions
/// forming the paper's drivable area `M`.
///
/// Two builders cover the scenario typologies: [`RoadMap::straight_road`]
/// (all five NHTSA typologies) and [`RoadMap::roundabout`] (the RIP
/// comparison scenario of §V-C).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoadMap {
    name: String,
    lanes: Vec<Lane>,
    regions: Vec<DrivableRegion>,
}

impl RoadMap {
    /// Creates a map from parts.
    ///
    /// # Panics
    ///
    /// Panics when `lanes` or `regions` is empty.
    pub fn new(name: impl Into<String>, lanes: Vec<Lane>, regions: Vec<DrivableRegion>) -> Self {
        assert!(!lanes.is_empty(), "a road map needs at least one lane");
        assert!(!regions.is_empty(), "a road map needs at least one region");
        RoadMap {
            name: name.into(),
            lanes,
            regions,
        }
    }

    /// A straight road along +x with `num_lanes` parallel lanes of
    /// `lane_width` metres, from `x = 0` to `x = length`.
    ///
    /// Lane `i`'s centerline is at `y = (i + 0.5) · lane_width`; lane 0 is
    /// the bottom (rightmost in the direction of travel) lane.
    pub fn straight_road(num_lanes: usize, lane_width: f64, length: f64) -> Self {
        assert!(num_lanes >= 1, "need at least one lane");
        assert!(lane_width > 0.0 && length > 0.0, "positive dimensions");
        let lanes = (0..num_lanes)
            .map(|i| {
                let y = (i as f64 + 0.5) * lane_width;
                Lane::straight(
                    LaneId(i),
                    Vec2::new(0.0, y),
                    Vec2::new(length, y),
                    lane_width,
                )
            })
            .collect();
        let region = DrivableRegion::Rect(Aabb::new(
            Vec2::ZERO,
            Vec2::new(length, num_lanes as f64 * lane_width),
        ));
        RoadMap::new(format!("straight-{num_lanes}-lane"), lanes, vec![region])
    }

    /// A single-lane roundabout: an annular carriageway centred at `center`
    /// with a *tangential* south-west approach road (as on real roundabouts:
    /// the approach meets the ring where the ring's travel direction matches
    /// the road's) and an east exit road.
    ///
    /// Lane 0 is the approach (west → the ring's south point), lane 1 the
    /// circular lane (counter-clockwise at the annulus midline, from the
    /// south point past the east point), lane 2 the exit (east point →
    /// east).
    pub fn roundabout(center: Vec2, r_inner: f64, r_outer: f64, approach_length: f64) -> Self {
        assert!(r_outer > r_inner && r_inner > 0.0, "bad radii");
        assert!(approach_length > 0.0, "bad approach length");
        let width = r_outer - r_inner;
        let r_mid = (r_inner + r_outer) * 0.5;
        // Tangential entry at the ring's south point: a counter-clockwise
        // ring heads due east there, matching the approach road.
        let south_entry = center + Vec2::new(0.0, -r_mid);
        let east_exit = center + Vec2::new(r_mid, 0.0);

        let approach = Lane::straight(
            LaneId(0),
            south_entry - Vec2::new(approach_length, 0.0),
            south_entry,
            width,
        );
        // Counter-clockwise from the south point (3π/2) past the east point
        // (2π), with overhang for smooth exit tracking.
        let circle = Lane::arc(
            LaneId(1),
            center,
            r_mid,
            1.5 * std::f64::consts::PI,
            2.25 * std::f64::consts::PI,
            width,
        );
        let exit = Lane::straight(
            LaneId(2),
            east_exit,
            east_exit + Vec2::new(approach_length, 0.0),
            width,
        );

        let half_w = width * 0.5;
        let regions = vec![
            DrivableRegion::Annulus {
                center,
                r_inner,
                r_outer,
            },
            DrivableRegion::Rect(Aabb::new(
                south_entry - Vec2::new(approach_length, half_w),
                south_entry + Vec2::new(0.0, half_w),
            )),
            DrivableRegion::Rect(Aabb::new(
                east_exit - Vec2::new(0.0, half_w),
                east_exit + Vec2::new(approach_length, half_w),
            )),
            // Mountable apron at the exit mouth (the exit turn is sharper
            // than the tangential entry).
            DrivableRegion::Rect(Aabb::new(
                center + Vec2::new((r_inner - 5.0).max(0.0), -(half_w + 2.0)),
                center + Vec2::new(r_mid + 2.0, half_w + 2.0),
            )),
        ];
        RoadMap::new("roundabout", vec![approach, circle, exit], regions)
    }

    /// Map name (for reports).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All lanes.
    #[inline]
    pub fn lanes(&self) -> &[Lane] {
        &self.lanes
    }

    /// Looks up a lane by id.
    pub fn lane(&self, id: LaneId) -> Option<&Lane> {
        self.lanes.iter().find(|l| l.id() == id)
    }

    /// The drivable regions.
    #[inline]
    pub fn regions(&self) -> &[DrivableRegion] {
        &self.regions
    }

    /// Returns `true` if the point lies in any drivable region.
    pub fn is_drivable(&self, p: Vec2) -> bool {
        self.regions.iter().any(|r| r.contains(p))
    }

    /// Returns `true` if the whole footprint is drivable.
    ///
    /// Checks the four corners and the centre against the union of regions
    /// (a corner may be covered by a different region than the centre, e.g.
    /// at a roundabout entry).
    pub fn is_obb_drivable(&self, obb: &Obb) -> bool {
        let (s, c) = obb.pose.heading().sin_cos();
        self.is_obb_drivable_trig(obb, s, c)
    }

    /// [`RoadMap::is_obb_drivable`] with the heading's sine and cosine
    /// supplied by the caller (which must equal
    /// `obb.pose.heading().sin_cos()`); lets hot paths that evaluate many
    /// footprints per distinct heading skip the per-call trig while getting
    /// bit-identical verdicts.
    // `sin_t`/`cos_t` are dimensionless trig ratios; `raw-f64-param` does
    // not flag them, so no waiver is needed.
    pub fn is_obb_drivable_trig(&self, obb: &Obb, sin_t: f64, cos_t: f64) -> bool {
        // Fast accept: a padded axis-aligned bound of the footprint
        // (half-extents |c|·hl + |s|·hw etc. cover every corner, the pad in
        // `covers_aabb` absorbs rounding) fully inside a single region
        // certifies all five point checks below without computing corners.
        // Inconclusive bounds fall through to the exact per-point test, so
        // verdicts are bit-identical either way.
        let ex = cos_t.abs() * (obb.length * 0.5) + sin_t.abs() * (obb.width * 0.5);
        let ey = sin_t.abs() * (obb.length * 0.5) + cos_t.abs() * (obb.width * 0.5);
        let c = obb.center();
        let bound = Aabb::new(Vec2::new(c.x - ex, c.y - ey), Vec2::new(c.x + ex, c.y + ey));
        if self.regions.iter().any(|r| r.covers_aabb(&bound)) {
            return true;
        }
        obb.corners_given_trig(sin_t, cos_t)
            .iter()
            .chain(std::iter::once(&obb.center()))
            .all(|&p| self.is_drivable(p))
    }

    /// The lane whose centerline is closest to `p`.
    ///
    /// # Panics
    ///
    /// Panics when the map has no lanes (constructors always add at least
    /// one).
    pub fn nearest_lane(&self, p: Vec2) -> &Lane {
        let mut it = self.lanes.iter();
        let Some(first) = it.next() else {
            panic!("road map has at least one lane");
        };
        let mut best = first;
        let mut best_d = best.project(p).point.distance_sq(p);
        for lane in it {
            let d = lane.project(p).point.distance_sq(p);
            if d < best_d {
                best = lane;
                best_d = d;
            }
        }
        best
    }

    /// Bounding box of the full drivable area.
    pub fn bounds(&self) -> Aabb {
        self.regions
            .iter()
            .map(DrivableRegion::aabb)
            .reduce(|acc, bb| acc.union(&bb))
            .unwrap_or_else(|| Aabb::new(Vec2::ZERO, Vec2::ZERO))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iprism_geom::Pose;
    use iprism_geom::{Meters, Radians};
    use proptest::prelude::*;

    #[test]
    fn straight_road_layout() {
        let m = RoadMap::straight_road(3, 3.5, 300.0);
        assert_eq!(m.lanes().len(), 3);
        assert_eq!(m.name(), "straight-3-lane");
        // lane centers
        assert!((m.lane(LaneId(0)).unwrap().point_at(0.0).y - 1.75).abs() < 1e-12);
        assert!((m.lane(LaneId(2)).unwrap().point_at(0.0).y - 8.75).abs() < 1e-12);
        // drivability
        assert!(m.is_drivable(Vec2::new(150.0, 5.0)));
        assert!(!m.is_drivable(Vec2::new(150.0, 11.0)));
        assert!(!m.is_drivable(Vec2::new(-5.0, 5.0)));
        let bb = m.bounds();
        assert_eq!(bb.max, Vec2::new(300.0, 10.5));
    }

    #[test]
    fn nearest_lane() {
        let m = RoadMap::straight_road(2, 3.5, 100.0);
        assert_eq!(m.nearest_lane(Vec2::new(50.0, 1.0)).id(), LaneId(0));
        assert_eq!(m.nearest_lane(Vec2::new(50.0, 6.0)).id(), LaneId(1));
    }

    #[test]
    fn obb_drivability() {
        let m = RoadMap::straight_road(2, 3.5, 100.0);
        let ok = Obb::new(
            Pose::new(50.0, 3.5, Radians::new(0.0)),
            Meters::new(4.6),
            Meters::new(2.0),
        );
        let off = Obb::new(
            Pose::new(50.0, 6.8, Radians::new(0.0)),
            Meters::new(4.6),
            Meters::new(2.0),
        );
        assert!(m.is_obb_drivable(&ok));
        assert!(!m.is_obb_drivable(&off));
    }

    #[test]
    fn roundabout_layout() {
        let m = RoadMap::roundabout(Vec2::new(0.0, 0.0), 12.0, 19.0, 60.0);
        assert_eq!(m.lanes().len(), 3);
        // on the ring
        assert!(m.is_drivable(Vec2::new(0.0, 15.0)));
        // island not drivable
        assert!(!m.is_drivable(Vec2::new(0.0, 0.0)));
        // tangential approach road drivable (runs at y = -r_mid)
        assert!(m.is_drivable(Vec2::new(-30.0, -15.5)));
        // far away not drivable
        assert!(!m.is_drivable(Vec2::new(0.0, 40.0)));
        // circular lane points lie on the annulus midline
        let ring = m.lane(LaneId(1)).unwrap();
        let p = ring.point_at(ring.length() * 0.5);
        assert!((p.norm() - 15.5).abs() < 0.1);
        // the approach ends exactly at the ring's south point, where the
        // ring heading is due east (tangential entry)
        let entry = m.lane(LaneId(0)).unwrap().point_at(60.0);
        assert!(entry.distance(Vec2::new(0.0, -15.5)) < 1e-9);
        assert!(m.lane(LaneId(1)).unwrap().heading_at(0.0).abs() < 0.05);
    }

    #[test]
    fn lane_lookup_missing() {
        let m = RoadMap::straight_road(1, 3.5, 10.0);
        assert!(m.lane(LaneId(7)).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn empty_lanes_panic() {
        let _ = RoadMap::new("x", vec![], vec![]);
    }

    proptest! {
        #[test]
        fn prop_lane_centers_drivable(lane in 0usize..3, s in 0.0..300.0f64) {
            let m = RoadMap::straight_road(3, 3.5, 300.0);
            let l = m.lane(LaneId(lane)).unwrap();
            prop_assert!(m.is_drivable(l.point_at(s)));
        }

        #[test]
        fn prop_roundabout_ring_lane_drivable(f in 0.0..1.0f64) {
            let m = RoadMap::roundabout(Vec2::ZERO, 12.0, 19.0, 60.0);
            let ring = m.lane(LaneId(1)).unwrap();
            prop_assert!(m.is_drivable(ring.point_at(ring.length() * f)));
        }

        #[test]
        fn prop_obb_drivable_fast_path_matches_per_point(
            x in -20.0..120.0f64,
            y in -5.0..12.0f64,
            theta in -3.2..3.2f64,
        ) {
            // The AABB-certificate fast accept must never flip a verdict
            // relative to the exact five-point check, on both map shapes.
            let maps = [
                RoadMap::straight_road(2, 3.5, 100.0),
                RoadMap::roundabout(Vec2::new(50.0, 3.0), 12.0, 19.0, 60.0),
            ];
            let obb = Obb::new(
                Pose::new(x, y, Radians::new(theta)),
                Meters::new(4.6),
                Meters::new(2.0),
            );
            for m in maps {
                let exact = obb
                    .corners()
                    .iter()
                    .chain(std::iter::once(&obb.center()))
                    .all(|&p| m.is_drivable(p));
                prop_assert_eq!(m.is_obb_drivable(&obb), exact);
            }
        }

        #[test]
        fn prop_nearest_lane_is_argmin(x in 0.0..100.0f64, y in -5.0..12.0f64) {
            let m = RoadMap::straight_road(2, 3.5, 100.0);
            let p = Vec2::new(x, y);
            let chosen = m.nearest_lane(p);
            let chosen_d = chosen.project(p).point.distance(p);
            for l in m.lanes() {
                prop_assert!(chosen_d <= l.project(p).point.distance(p) + 1e-9);
            }
        }
    }
}
