//! Drivable-area regions.

use iprism_geom::{Aabb, Obb, Polygon, Vec2};
use serde::{Deserialize, Serialize};

/// A primitive drivable region. A [`crate::RoadMap`]'s drivable area is the
/// union of its regions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DrivableRegion {
    /// An axis-aligned rectangle (straight road surface).
    Rect(Aabb),
    /// An annulus (roundabout carriageway): drivable where
    /// `r_inner ≤ |p − center| ≤ r_outer`.
    Annulus {
        /// Centre of the annulus.
        center: Vec2,
        /// Inner (island) radius.
        r_inner: f64,
        /// Outer radius.
        r_outer: f64,
    },
    /// An arbitrary simple polygon.
    Poly(Polygon),
}

impl DrivableRegion {
    /// Returns `true` if the point lies inside the region.
    pub fn contains(&self, p: Vec2) -> bool {
        match self {
            DrivableRegion::Rect(bb) => bb.contains(p),
            DrivableRegion::Annulus {
                center,
                r_inner,
                r_outer,
            } => {
                let d = p.distance(*center);
                d >= *r_inner && d <= *r_outer
            }
            DrivableRegion::Poly(poly) => poly.contains(p),
        }
    }

    /// Conservative bounding box of the region.
    pub fn aabb(&self) -> Aabb {
        match self {
            DrivableRegion::Rect(bb) => *bb,
            DrivableRegion::Annulus {
                center, r_outer, ..
            } => Aabb::new(
                *center - Vec2::new(*r_outer, *r_outer),
                *center + Vec2::new(*r_outer, *r_outer),
            ),
            DrivableRegion::Poly(poly) => poly.aabb(),
        }
    }

    /// Returns `true` if all four corners and the centre of the box lie in
    /// the region (sufficient footprint check for the region sizes used in
    /// the scenarios).
    pub fn contains_obb(&self, obb: &Obb) -> bool {
        obb.corners().iter().all(|&c| self.contains(c)) && self.contains(obb.center())
    }

    /// Conservative test: `true` only if *every* point of `bb` lies in the
    /// region ([`DrivableRegion::contains`] holds for all of them). `false`
    /// is inconclusive — callers must fall back to per-point checks. A
    /// `1e-9` safety margin absorbs rounding between the bound arithmetic
    /// here and the per-point arithmetic, keeping `true` verdicts sound.
    pub fn covers_aabb(&self, bb: &Aabb) -> bool {
        const MARGIN: f64 = 1e-9;
        match self {
            DrivableRegion::Rect(r) => {
                bb.min.x >= r.min.x + MARGIN
                    && bb.min.y >= r.min.y + MARGIN
                    && bb.max.x <= r.max.x - MARGIN
                    && bb.max.y <= r.max.y - MARGIN
            }
            DrivableRegion::Annulus {
                center,
                r_inner,
                r_outer,
            } => {
                // Farthest box point from the centre bounds every point's
                // distance above; the nearest box point bounds it below.
                let fx = (center.x - bb.min.x).abs().max((center.x - bb.max.x).abs());
                let fy = (center.y - bb.min.y).abs().max((center.y - bb.max.y).abs());
                let nx = (bb.min.x - center.x).max(center.x - bb.max.x).max(0.0);
                let ny = (bb.min.y - center.y).max(center.y - bb.max.y).max(0.0);
                fx.hypot(fy) <= *r_outer - MARGIN && nx.hypot(ny) >= *r_inner + MARGIN
            }
            // No cheap full-coverage certificate for general polygons.
            DrivableRegion::Poly(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iprism_geom::Pose;
    use iprism_geom::{Meters, Radians};
    use proptest::prelude::*;

    #[test]
    fn rect_contains() {
        let r = DrivableRegion::Rect(Aabb::new(Vec2::ZERO, Vec2::new(10.0, 5.0)));
        assert!(r.contains(Vec2::new(5.0, 2.0)));
        assert!(!r.contains(Vec2::new(5.0, 6.0)));
        assert_eq!(r.aabb().max, Vec2::new(10.0, 5.0));
    }

    #[test]
    fn annulus_contains() {
        let a = DrivableRegion::Annulus {
            center: Vec2::ZERO,
            r_inner: 10.0,
            r_outer: 20.0,
        };
        assert!(a.contains(Vec2::new(15.0, 0.0)));
        assert!(!a.contains(Vec2::new(5.0, 0.0))); // island
        assert!(!a.contains(Vec2::new(25.0, 0.0))); // outside
        assert!(a.contains(Vec2::new(10.0, 0.0))); // boundary
        let bb = a.aabb();
        assert_eq!(bb.min, Vec2::new(-20.0, -20.0));
    }

    #[test]
    fn poly_region() {
        let p = DrivableRegion::Poly(Polygon::rectangle(Vec2::ZERO, Vec2::new(4.0, 4.0)));
        assert!(p.contains(Vec2::new(2.0, 2.0)));
        assert!(!p.contains(Vec2::new(5.0, 2.0)));
    }

    #[test]
    fn obb_containment() {
        let r = DrivableRegion::Rect(Aabb::new(Vec2::ZERO, Vec2::new(100.0, 7.0)));
        let inside = Obb::new(
            Pose::new(50.0, 3.5, Radians::new(0.0)),
            Meters::new(4.6),
            Meters::new(2.0),
        );
        let poking_out = Obb::new(
            Pose::new(50.0, 6.5, Radians::new(0.0)),
            Meters::new(4.6),
            Meters::new(2.0),
        );
        assert!(r.contains_obb(&inside));
        assert!(!r.contains_obb(&poking_out));
    }

    #[test]
    fn covers_aabb_conservative() {
        let r = DrivableRegion::Rect(Aabb::new(Vec2::ZERO, Vec2::new(10.0, 5.0)));
        assert!(r.covers_aabb(&Aabb::new(Vec2::new(1.0, 1.0), Vec2::new(9.0, 4.0))));
        assert!(!r.covers_aabb(&Aabb::new(Vec2::new(1.0, 1.0), Vec2::new(11.0, 4.0))));

        let a = DrivableRegion::Annulus {
            center: Vec2::ZERO,
            r_inner: 10.0,
            r_outer: 20.0,
        };
        // fully on the ring east of the island
        assert!(a.covers_aabb(&Aabb::new(Vec2::new(12.0, -2.0), Vec2::new(16.0, 2.0))));
        // straddles the island
        assert!(!a.covers_aabb(&Aabb::new(Vec2::new(5.0, -2.0), Vec2::new(16.0, 2.0))));
        // pokes past the outer radius
        assert!(!a.covers_aabb(&Aabb::new(Vec2::new(12.0, -2.0), Vec2::new(21.0, 2.0))));

        // polygons are always inconclusive
        let p = DrivableRegion::Poly(Polygon::rectangle(Vec2::ZERO, Vec2::new(4.0, 4.0)));
        assert!(!p.covers_aabb(&Aabb::new(Vec2::new(1.0, 1.0), Vec2::new(2.0, 2.0))));
    }

    proptest! {
        #[test]
        fn prop_annulus_radial_symmetry(angle in 0.0..std::f64::consts::TAU, rad in 0.0..30.0f64) {
            let a = DrivableRegion::Annulus {
                center: Vec2::ZERO,
                r_inner: 10.0,
                r_outer: 20.0,
            };
            let p = Vec2::from_angle(Radians::new(angle)) * rad;
            prop_assert_eq!(a.contains(p), (10.0..=20.0).contains(&rad));
        }

        #[test]
        fn prop_contained_points_in_aabb(x in -30.0..30.0f64, y in -30.0..30.0f64) {
            let regions = [
                DrivableRegion::Rect(Aabb::new(Vec2::ZERO, Vec2::new(10.0, 5.0))),
                DrivableRegion::Annulus { center: Vec2::ZERO, r_inner: 5.0, r_outer: 15.0 },
            ];
            let p = Vec2::new(x, y);
            for r in regions {
                if r.contains(p) {
                    prop_assert!(r.aabb().contains(p));
                }
            }
        }
    }
}
