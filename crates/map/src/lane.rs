//! Lane centerlines and arc-length projections.

use iprism_geom::{Radians, Segment, Vec2};
use serde::{Deserialize, Serialize};

/// Identifier of a lane within a [`crate::RoadMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LaneId(pub usize);

/// Result of projecting a point onto a lane centerline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaneProjection {
    /// Arc length along the centerline at the closest point (m).
    pub s: f64,
    /// Signed lateral offset: positive left of travel direction (m).
    pub lateral: f64,
    /// The closest point on the centerline.
    pub point: Vec2,
    /// Centerline heading at the closest point (rad).
    pub heading: f64,
}

/// A lane described by a polyline centerline and a constant width.
///
/// Arc-length queries (`point_at`, `heading_at`) and point projection follow
/// the usual Frenet conventions: `s` grows along the travel direction and
/// `lateral > 0` is to the left.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lane {
    id: LaneId,
    centerline: Vec<Vec2>,
    width: f64,
    cumulative: Vec<f64>,
}

impl Lane {
    /// Creates a lane from its centerline polyline and width.
    ///
    /// # Panics
    ///
    /// Panics when the centerline has fewer than two points or the width is
    /// not strictly positive.
    pub fn new(id: LaneId, centerline: Vec<Vec2>, width: f64) -> Self {
        assert!(
            centerline.len() >= 2,
            "lane centerline needs >= 2 points, got {}",
            centerline.len()
        );
        assert!(width > 0.0, "lane width must be positive, got {width}");
        let mut cumulative = Vec::with_capacity(centerline.len());
        let mut acc = 0.0;
        cumulative.push(0.0);
        for w in centerline.windows(2) {
            acc += w[0].distance(w[1]);
            cumulative.push(acc);
        }
        Lane {
            id,
            centerline,
            width,
            cumulative,
        }
    }

    /// A straight lane from `start` to `end`.
    pub fn straight(id: LaneId, start: Vec2, end: Vec2, width: f64) -> Self {
        Lane::new(id, vec![start, end], width)
    }

    /// A circular-arc lane (used for roundabouts), sampled every ~1 m.
    pub fn arc(id: LaneId, center: Vec2, radius: f64, a0: f64, a1: f64, width: f64) -> Self {
        assert!(radius > 0.0, "arc radius must be positive");
        let span = a1 - a0;
        let n = ((radius * span.abs()).ceil() as usize).max(8);
        let pts = (0..=n)
            .map(|i| {
                let a = a0 + span * i as f64 / n as f64;
                center + Vec2::from_angle(Radians::new(a)) * radius
            })
            .collect();
        Lane::new(id, pts, width)
    }

    /// Lane identifier.
    #[inline]
    pub fn id(&self) -> LaneId {
        self.id
    }

    /// Lane width (m).
    #[inline]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Total centerline length (m).
    #[inline]
    pub fn length(&self) -> f64 {
        self.cumulative.last().copied().unwrap_or(0.0)
    }

    /// Centerline polyline.
    #[inline]
    pub fn centerline(&self) -> &[Vec2] {
        &self.centerline
    }

    /// Point on the centerline at arc length `s` (clamped to the ends).
    pub fn point_at(&self, s: f64) -> Vec2 {
        let (i, frac) = self.locate(s);
        self.centerline[i].lerp(self.centerline[i + 1], frac)
    }

    /// Centerline heading at arc length `s` (clamped to the ends).
    pub fn heading_at(&self, s: f64) -> f64 {
        let (i, _) = self.locate(s);
        (self.centerline[i + 1] - self.centerline[i]).angle().get()
    }

    /// Projects a world point onto the centerline.
    pub fn project(&self, p: Vec2) -> LaneProjection {
        let mut best_d2 = f64::INFINITY;
        let mut best = LaneProjection {
            s: 0.0,
            lateral: 0.0,
            point: self.centerline[0],
            heading: 0.0,
        };
        for i in 0..self.centerline.len() - 1 {
            let seg = Segment::new(self.centerline[i], self.centerline[i + 1]);
            let c = seg.closest_point(p);
            let d2 = c.distance_sq(p);
            if d2 < best_d2 {
                best_d2 = d2;
                let dir = seg.direction().normalize_or_zero();
                let along = (c - self.centerline[i]).dot(dir);
                // signed lateral offset: positive when p is left of travel
                let lateral = dir.cross(p - c);
                best = LaneProjection {
                    s: self.cumulative[i] + along,
                    lateral,
                    point: c,
                    heading: dir.angle().get(),
                };
            }
        }
        best
    }

    /// Returns `true` if the point lies within half a lane width of the
    /// centerline.
    pub fn contains(&self, p: Vec2) -> bool {
        self.project(p).lateral.abs() <= self.width * 0.5
    }

    /// Waypoints along the centerline every `spacing` metres (both endpoints
    /// included).
    pub fn waypoints(&self, spacing: f64) -> Vec<Vec2> {
        assert!(spacing > 0.0, "waypoint spacing must be positive");
        let n = (self.length() / spacing).ceil() as usize;
        let mut out = Vec::with_capacity(n + 1);
        for i in 0..=n {
            out.push(self.point_at(i as f64 * spacing));
        }
        out
    }

    fn locate(&self, s: f64) -> (usize, f64) {
        let s = s.clamp(0.0, self.length());
        // binary search over the cumulative table
        let i = match self.cumulative.binary_search_by(|c| c.total_cmp(&s)) {
            Ok(i) => i.min(self.centerline.len() - 2),
            Err(i) => i.saturating_sub(1).min(self.centerline.len() - 2),
        };
        let seg_len = self.cumulative[i + 1] - self.cumulative[i];
        let frac = if seg_len <= 0.0 {
            0.0
        } else {
            (s - self.cumulative[i]) / seg_len
        };
        (i, frac)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn straight_lane() -> Lane {
        Lane::straight(LaneId(0), Vec2::ZERO, Vec2::new(100.0, 0.0), 3.5)
    }

    #[test]
    fn straight_lane_queries() {
        let l = straight_lane();
        assert_eq!(l.id(), LaneId(0));
        assert_eq!(l.length(), 100.0);
        assert_eq!(l.width(), 3.5);
        assert_eq!(l.point_at(50.0), Vec2::new(50.0, 0.0));
        assert_eq!(l.heading_at(50.0), 0.0);
        assert_eq!(l.point_at(-10.0), Vec2::ZERO); // clamped
        assert_eq!(l.point_at(500.0), Vec2::new(100.0, 0.0));
    }

    #[test]
    fn projection_signs() {
        let l = straight_lane();
        let left = l.project(Vec2::new(30.0, 1.0));
        assert!((left.s - 30.0).abs() < 1e-9);
        assert!((left.lateral - 1.0).abs() < 1e-9);
        assert!((left.heading).abs() < 1e-12);
        let right = l.project(Vec2::new(30.0, -1.0));
        assert!((right.lateral + 1.0).abs() < 1e-9);
    }

    #[test]
    fn containment() {
        let l = straight_lane();
        assert!(l.contains(Vec2::new(10.0, 1.7)));
        assert!(!l.contains(Vec2::new(10.0, 2.0)));
    }

    #[test]
    fn polyline_lane() {
        let l = Lane::new(
            LaneId(1),
            vec![Vec2::ZERO, Vec2::new(10.0, 0.0), Vec2::new(10.0, 10.0)],
            3.0,
        );
        assert_eq!(l.length(), 20.0);
        assert_eq!(l.point_at(15.0), Vec2::new(10.0, 5.0));
        assert!((l.heading_at(15.0) - FRAC_PI_2).abs() < 1e-12);
        // corner projection
        let pr = l.project(Vec2::new(11.0, 5.0));
        assert!((pr.s - 15.0).abs() < 1e-9);
        assert!((pr.lateral + 1.0).abs() < 1e-9);
    }

    #[test]
    fn arc_lane() {
        let l = Lane::arc(LaneId(2), Vec2::ZERO, 20.0, 0.0, PI, 3.5);
        // half circumference
        assert!((l.length() - PI * 20.0).abs() < 0.3);
        let start = l.point_at(0.0);
        assert!(start.distance(Vec2::new(20.0, 0.0)) < 1e-9);
        let end = l.point_at(l.length());
        assert!(end.distance(Vec2::new(-20.0, 0.0)) < 0.1);
    }

    #[test]
    fn waypoints_cover_lane() {
        let l = straight_lane();
        let wps = l.waypoints(10.0);
        assert_eq!(wps.len(), 11);
        assert_eq!(wps[0], Vec2::ZERO);
        assert_eq!(*wps.last().unwrap(), Vec2::new(100.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "centerline")]
    fn short_centerline_panics() {
        let _ = Lane::new(LaneId(0), vec![Vec2::ZERO], 3.0);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn bad_width_panics() {
        let _ = Lane::straight(LaneId(0), Vec2::ZERO, Vec2::UNIT_X, 0.0);
    }

    proptest! {
        #[test]
        fn prop_point_at_then_project_roundtrip(s in 0.0..100.0f64) {
            let l = straight_lane();
            let p = l.point_at(s);
            let pr = l.project(p);
            prop_assert!((pr.s - s).abs() < 1e-6);
            prop_assert!(pr.lateral.abs() < 1e-6);
        }

        #[test]
        fn prop_projection_distance_consistent(x in -20.0..120.0f64, y in -20.0..20.0f64) {
            let l = straight_lane();
            let p = Vec2::new(x, y);
            let pr = l.project(p);
            // |lateral| never exceeds the true distance to the closest point
            prop_assert!(pr.lateral.abs() <= pr.point.distance(p) + 1e-9);
        }

        #[test]
        fn prop_arc_points_on_circle(s in 0.0..10.0f64) {
            let l = Lane::arc(LaneId(0), Vec2::ZERO, 15.0, 0.0, 1.0, 3.0);
            let p = l.point_at(s.min(l.length()));
            prop_assert!((p.norm() - 15.0).abs() < 0.05);
        }
    }
}
