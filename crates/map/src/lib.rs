//! Road maps for iPrism: lanes, drivable areas and routes.
//!
//! The paper's reach-tube computation needs the drivable area `M` (states
//! outside it are not escape routes) and its agents need lane centerlines to
//! follow. This crate provides both, with two concrete map builders used by
//! the NHTSA scenario typologies: straight multi-lane roads and a roundabout
//! (used by the RIP comparison in §V-C).
//!
//! # Quick example
//!
//! ```
//! use iprism_map::RoadMap;
//! use iprism_geom::Vec2;
//!
//! let map = RoadMap::straight_road(2, 3.5, 200.0);
//! assert!(map.is_drivable(Vec2::new(50.0, 3.5)));
//! assert!(!map.is_drivable(Vec2::new(50.0, 12.0)));
//! assert_eq!(map.lanes().len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod lane;
mod region;
mod road_map;

pub use lane::{Lane, LaneId, LaneProjection};
pub use region::DrivableRegion;
pub use road_map::RoadMap;
