//! Vehicle dynamics for iPrism: the kinematic bicycle model, control limits,
//! timestamped trajectories and the constant-velocity-and-turn-rate (CVTR)
//! prediction model.
//!
//! The paper propagates ego states through a kinematic bicycle model
//! (reference [42] of the paper) when computing reach-tubes (Algorithm 1),
//! and predicts other actors' near-future trajectories with a CVTR model
//! (§IV-C) during SMC training and inference. Both live here.
//!
//! # Quick example
//!
//! ```
//! use iprism_dynamics::{BicycleModel, ControlInput, VehicleState};
//! use iprism_units::Seconds;
//!
//! let model = BicycleModel::default();
//! let state = VehicleState::new(0.0, 0.0, 0.0, 10.0);
//! let next = model.step(state, ControlInput::new(1.0, 0.0), Seconds::new(0.1));
//! assert!(next.x > state.x);          // moved forward
//! assert!(next.v > state.v);          // accelerated
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bicycle;
mod control;
mod cvtr;
mod state;
mod trajectory;

pub use bicycle::{BicycleModel, PreparedControl};
pub use control::{ControlInput, ControlLimits};
pub use cvtr::CvtrModel;
pub use state::VehicleState;
pub use trajectory::{Trajectory, TrajectoryCursor};
