//! Constant-velocity-and-turn-rate (CVTR) trajectory prediction.
//!
//! §IV-C of the paper: during SMC training and inference the ground-truth
//! future trajectories `X` of other actors are unknown, so iPrism predicts
//! them with a CVTR model — each actor keeps its current speed and yaw rate.

use iprism_units::{MetersPerSecond, MetersPerSecondSquared, Seconds};
use serde::{Deserialize, Serialize};

use crate::{Trajectory, VehicleState};

/// Predicts an actor's future trajectory assuming constant speed and
/// constant turn (yaw) rate.
///
/// # Examples
///
/// ```
/// use iprism_dynamics::{CvtrModel, VehicleState};
/// use iprism_units::Seconds;
///
/// let cvtr = CvtrModel::default();
/// let now = VehicleState::new(0.0, 0.0, 0.0, 10.0);
/// // straight at 10 m/s
/// let pred = cvtr.predict(now, 0.0, Seconds::new(0.0), Seconds::new(0.1), 10);
/// assert!((pred.states().last().unwrap().x - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CvtrModel {
    /// Optional speed decay per second (0 = pure CVTR). A small positive
    /// value models friction for long horizons.
    pub speed_decay: f64,
}

impl CvtrModel {
    /// Creates a pure CVTR model (no speed decay).
    pub fn new() -> Self {
        CvtrModel { speed_decay: 0.0 }
    }

    /// Creates a model whose decay reproduces a given friction deceleration
    /// at a given reference speed: an actor travelling at `at_speed` sheds
    /// `decel` of speed per second, i.e. `speed_decay = decel / at_speed`.
    ///
    /// Non-positive or non-finite inputs fall back to pure CVTR (no decay)
    /// rather than producing a speed-*increasing* model.
    #[must_use]
    pub fn with_braking(decel: MetersPerSecondSquared, at_speed: MetersPerSecond) -> Self {
        if decel.get() <= 0.0 || !decel.is_finite() || at_speed.get() <= 0.0 {
            return CvtrModel::new();
        }
        CvtrModel {
            speed_decay: decel.get() / at_speed.get(),
        }
    }

    /// Predicts `steps` future samples at period `dt`, starting from
    /// `state` at time `start_time` with measured `yaw_rate` (rad/s).
    ///
    /// The returned trajectory includes the current state as sample 0 and
    /// has `steps + 1` samples.
    pub fn predict(
        &self,
        state: VehicleState,
        yaw_rate: f64,
        start_time: Seconds,
        dt: Seconds,
        steps: usize,
    ) -> Trajectory {
        let mut traj = Trajectory::with_capacity(start_time, dt, steps + 1);
        let dt = dt.get();
        traj.push(state);
        let mut s = state;
        for _ in 0..steps {
            let (sin_t, cos_t) = s.theta.sin_cos();
            let v = (s.v * (1.0 - self.speed_decay * dt)).max(0.0);
            s = VehicleState::new(
                s.x + s.v * cos_t * dt,
                s.y + s.v * sin_t * dt,
                iprism_geom::wrap_to_pi(s.theta + yaw_rate * dt),
                v,
            );
            traj.push(s);
        }
        traj
    }

    /// Estimates a yaw rate from two consecutive states `prev → cur`
    /// observed `dt` seconds apart.
    pub fn estimate_yaw_rate(prev: &VehicleState, cur: &VehicleState, dt: Seconds) -> f64 {
        if dt.get() <= 0.0 {
            return 0.0;
        }
        iprism_geom::wrap_to_pi(cur.theta - prev.theta) / dt.get()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn straight_prediction() {
        let cvtr = CvtrModel::new();
        let p = cvtr.predict(
            VehicleState::new(0.0, 0.0, 0.0, 5.0),
            0.0,
            Seconds::new(2.0),
            Seconds::new(0.5),
            4,
        );
        assert_eq!(p.len(), 5);
        assert_eq!(p.start_time().get(), 2.0);
        let last = p.states().last().unwrap();
        assert!((last.x - 10.0).abs() < 1e-9);
        assert_eq!(last.y, 0.0);
    }

    #[test]
    fn turning_prediction_curves() {
        let cvtr = CvtrModel::new();
        let p = cvtr.predict(
            VehicleState::new(0.0, 0.0, 0.0, 5.0),
            0.5,
            Seconds::new(0.0),
            Seconds::new(0.1),
            20,
        );
        let last = p.states().last().unwrap();
        assert!(last.y > 0.5); // curved left
        assert!((last.theta - 1.0).abs() < 1e-9); // 0.5 rad/s * 2 s
    }

    #[test]
    fn speed_decay_slows_down() {
        let cvtr = CvtrModel { speed_decay: 0.5 };
        let p = cvtr.predict(
            VehicleState::new(0.0, 0.0, 0.0, 10.0),
            0.0,
            Seconds::new(0.0),
            Seconds::new(0.5),
            8,
        );
        let last = p.states().last().unwrap();
        assert!(last.v < 10.0);
        assert!(last.v >= 0.0);
    }

    #[test]
    fn braking_constructor_derives_decay() {
        let m =
            CvtrModel::with_braking(MetersPerSecondSquared::new(1.0), MetersPerSecond::new(10.0));
        assert_eq!(m, CvtrModel { speed_decay: 0.1 });
        // Degenerate inputs degrade to pure CVTR instead of anti-friction.
        for m in [
            CvtrModel::with_braking(
                MetersPerSecondSquared::new(-1.0),
                MetersPerSecond::new(10.0),
            ),
            CvtrModel::with_braking(
                MetersPerSecondSquared::new(f64::NAN),
                MetersPerSecond::new(10.0),
            ),
            CvtrModel::with_braking(MetersPerSecondSquared::new(1.0), MetersPerSecond::new(0.0)),
        ] {
            assert_eq!(m, CvtrModel::new());
        }
    }

    #[test]
    fn yaw_rate_estimation() {
        let a = VehicleState::new(0.0, 0.0, 0.0, 5.0);
        let b = VehicleState::new(0.5, 0.0, 0.2, 5.0);
        assert!((CvtrModel::estimate_yaw_rate(&a, &b, Seconds::new(0.1)) - 2.0).abs() < 1e-9);
        assert_eq!(CvtrModel::estimate_yaw_rate(&a, &b, Seconds::new(0.0)), 0.0);
    }

    #[test]
    fn yaw_rate_wraps() {
        use std::f64::consts::PI;
        let a = VehicleState::new(0.0, 0.0, PI - 0.05, 5.0);
        let b = VehicleState::new(0.0, 0.0, -PI + 0.05, 5.0);
        let w = CvtrModel::estimate_yaw_rate(&a, &b, Seconds::new(0.1));
        assert!((w - 1.0).abs() < 1e-9); // +0.1 rad through the wrap
    }

    proptest! {
        #[test]
        fn prop_prediction_finite_and_sized(
            x in -100.0..100.0f64, y in -100.0..100.0f64,
            th in -3.0..3.0f64, v in 0.0..30.0f64,
            w in -1.0..1.0f64, steps in 0usize..50,
        ) {
            let p = CvtrModel::new().predict(VehicleState::new(x, y, th, v), w, Seconds::new(0.0), Seconds::new(0.1), steps);
            prop_assert_eq!(p.len(), steps + 1);
            for s in p.states() {
                prop_assert!(s.is_finite());
            }
        }

        #[test]
        fn prop_zero_speed_stays_put(
            th in -3.0..3.0f64, w in -1.0..1.0f64, steps in 1usize..30,
        ) {
            let p = CvtrModel::new().predict(VehicleState::new(1.0, 2.0, th, 0.0), w, Seconds::new(0.0), Seconds::new(0.1), steps);
            for s in p.states() {
                prop_assert!((s.x - 1.0).abs() < 1e-12 && (s.y - 2.0).abs() < 1e-12);
            }
        }
    }
}
