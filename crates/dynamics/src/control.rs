//! Control inputs `u = (a, φ)` and their limits.

use iprism_units::{MetersPerSecond, MetersPerSecondSquared, Radians};
use serde::{Deserialize, Serialize};

/// A control input to the bicycle model: longitudinal acceleration and
/// front-wheel steering angle. This is the paper's `u = (a_t, φ_t)`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ControlInput {
    /// Longitudinal acceleration (m/s²); negative is braking.
    pub accel: f64,
    /// Front-wheel steering angle (rad); positive steers left.
    pub steer: f64,
}

impl ControlInput {
    /// Creates a control input.
    ///
    /// Takes raw `f64`s deliberately: this is the storage-layer constructor
    /// mirroring the serialized field layout, and control samples are built
    /// in bulk inside the reach-tube hot loops.
    #[inline]
    // iprism-lint: allow(raw-f64-param)
    pub const fn new(accel: f64, steer: f64) -> Self {
        ControlInput { accel, steer }
    }

    /// Creates a control input from dimensioned quantities.
    ///
    /// Prefer this over [`ControlInput::new`] outside the hot loops: the
    /// newtypes make it impossible to swap the two components or feed a
    /// speed where an acceleration belongs.
    #[inline]
    #[must_use]
    pub fn from_units(accel: MetersPerSecondSquared, steer: Radians) -> Self {
        ControlInput::new(accel.get(), steer.get())
    }

    /// The longitudinal acceleration as a dimensioned quantity.
    #[inline]
    #[must_use]
    pub fn acceleration(&self) -> MetersPerSecondSquared {
        MetersPerSecondSquared::new(self.accel)
    }

    /// The zero input (coast straight).
    pub const COAST: ControlInput = ControlInput {
        accel: 0.0,
        steer: 0.0,
    };
}

/// Admissible control ranges `[a_min, a_max] × [φ_min, φ_max]` plus a speed
/// envelope.
///
/// The reach-tube computation samples inside these bounds and always includes
/// the extreme values so that the tube boundary is covered (§III-A of the
/// paper). Defaults follow typical passenger-car values used in the paper's
/// reference [46]: braking to −6 m/s², acceleration to +3.5 m/s², steering
/// to ±35° and speeds in `[0, 30]` m/s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlLimits {
    /// Minimum (most negative) acceleration, i.e. hardest braking (m/s²).
    pub accel_min: f64,
    /// Maximum acceleration (m/s²).
    pub accel_max: f64,
    /// Minimum steering angle (rad, full right).
    pub steer_min: f64,
    /// Maximum steering angle (rad, full left).
    pub steer_max: f64,
    /// Minimum speed (m/s); vehicles do not reverse in this model.
    pub v_min: f64,
    /// Maximum speed (m/s).
    pub v_max: f64,
}

impl Default for ControlLimits {
    fn default() -> Self {
        ControlLimits {
            accel_min: -6.0,
            accel_max: 3.5,
            steer_min: -0.610_865_238_2, // -35°
            steer_max: 0.610_865_238_2,  // +35°
            v_min: 0.0,
            v_max: 30.0,
        }
    }
}

impl ControlLimits {
    /// Clamps a control input into the admissible ranges.
    pub fn clamp(&self, u: ControlInput) -> ControlInput {
        ControlInput::new(
            self.clamp_accel(u.acceleration()).get(),
            u.steer.clamp(self.steer_min, self.steer_max),
        )
    }

    /// Returns `true` if `u` lies inside the admissible ranges.
    pub fn contains(&self, u: ControlInput) -> bool {
        (self.accel_min..=self.accel_max).contains(&u.accel)
            && (self.steer_min..=self.steer_max).contains(&u.steer)
    }

    /// Clamps a speed into `[v_min, v_max]`.
    #[inline]
    pub fn clamp_speed(&self, v: MetersPerSecond) -> MetersPerSecond {
        MetersPerSecond::new(v.get().clamp(self.v_min, self.v_max))
    }

    /// Clamps an acceleration into `[accel_min, accel_max]`.
    #[inline]
    pub fn clamp_accel(&self, a: MetersPerSecondSquared) -> MetersPerSecondSquared {
        MetersPerSecondSquared::new(a.get().clamp(self.accel_min, self.accel_max))
    }

    /// The hardest admissible braking as a positive deceleration magnitude
    /// (`-accel_min`). Zero or negative means the limits allow no braking
    /// at all, so stopping distances are unbounded.
    #[inline]
    #[must_use]
    pub fn max_braking(&self) -> MetersPerSecondSquared {
        MetersPerSecondSquared::new(-self.accel_min)
    }

    /// The acceleration bounds as dimensioned quantities `(min, max)`.
    #[inline]
    #[must_use]
    pub fn accel_bounds(&self) -> (MetersPerSecondSquared, MetersPerSecondSquared) {
        (
            MetersPerSecondSquared::new(self.accel_min),
            MetersPerSecondSquared::new(self.accel_max),
        )
    }

    /// The boundary control set used by the paper's optimization 2:
    /// all combinations of `{0, a_max} × {φ_min, 0, φ_max}`.
    ///
    /// Propagating only these six inputs traces the reach-tube boundary;
    /// intermediate trajectories are implied between them.
    pub fn boundary_controls(&self) -> [ControlInput; 6] {
        [
            ControlInput::new(0.0, self.steer_min),
            ControlInput::new(0.0, 0.0),
            ControlInput::new(0.0, self.steer_max),
            ControlInput::new(self.accel_max, self.steer_min),
            ControlInput::new(self.accel_max, 0.0),
            ControlInput::new(self.accel_max, self.steer_max),
        ]
    }

    /// The full extreme-control set `{a_min, 0, a_max} × {φ_min, 0, φ_max}`
    /// (nine inputs), which additionally covers hard braking.
    pub fn extreme_controls(&self) -> [ControlInput; 9] {
        let accels = [self.accel_min, 0.0, self.accel_max];
        let steers = [self.steer_min, 0.0, self.steer_max];
        let mut out = [ControlInput::COAST; 9];
        let mut i = 0;
        for a in accels {
            for s in steers {
                out[i] = ControlInput::new(a, s);
                i += 1;
            }
        }
        out
    }

    /// Uniform lattice of `na × ns` control samples spanning the admissible
    /// box, endpoints included (so the boundary is always part of the
    /// samples, as Algorithm 1 requires).
    ///
    /// # Panics
    ///
    /// Panics when `na < 2` or `ns < 2`.
    pub fn lattice(&self, na: usize, ns: usize) -> Vec<ControlInput> {
        assert!(na >= 2 && ns >= 2, "lattice needs at least 2x2 samples");
        let mut out = Vec::with_capacity(na * ns);
        // The `>= 2` assert above keeps both denominators at least 1.
        let (na_den, ns_den) = ((na - 1) as f64, (ns - 1) as f64);
        for i in 0..na {
            let fa = i as f64 / na_den;
            let a = self.accel_min + fa * (self.accel_max - self.accel_min);
            for j in 0..ns {
                let fs = j as f64 / ns_den;
                let s = self.steer_min + fs * (self.steer_max - self.steer_min);
                out.push(ControlInput::new(a, s));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_limits_sane() {
        let l = ControlLimits::default();
        assert!(l.accel_min < 0.0 && l.accel_max > 0.0);
        assert!(l.steer_min < 0.0 && l.steer_max > 0.0);
        assert!(l.v_min <= l.v_max);
    }

    /// Exact set membership for clamped values, without a float `==` (which
    /// clippy's `float_cmp` rightly rejects): clamping returns bit-identical
    /// inputs, so `total_cmp` equality is the correct comparison.
    fn same(a: f64, b: f64) -> bool {
        a.total_cmp(&b) == std::cmp::Ordering::Equal
    }

    #[test]
    fn clamping() {
        let l = ControlLimits::default();
        let u = l.clamp(ControlInput::new(-100.0, 100.0));
        assert!(same(u.accel, l.accel_min));
        assert!(same(u.steer, l.steer_max));
        assert!(l.contains(u));
        assert!(!l.contains(ControlInput::new(99.0, 0.0)));
        assert!(same(
            l.clamp_speed(MetersPerSecond::new(1000.0)).get(),
            l.v_max
        ));
        assert!(same(
            l.clamp_speed(MetersPerSecond::new(-5.0)).get(),
            l.v_min
        ));
    }

    #[test]
    fn typed_constructor_matches_raw() {
        let u = ControlInput::from_units(MetersPerSecondSquared::new(-2.5), Radians::new(0.1));
        assert_eq!(u, ControlInput::new(-2.5, 0.1));
        assert!(same(u.acceleration().get(), -2.5));
    }

    #[test]
    fn typed_accel_clamp_and_bounds() {
        let l = ControlLimits::default();
        assert!(same(
            l.clamp_accel(MetersPerSecondSquared::new(-100.0)).get(),
            l.accel_min
        ));
        assert!(same(
            l.clamp_accel(MetersPerSecondSquared::new(100.0)).get(),
            l.accel_max
        ));
        assert!(same(l.max_braking().get(), 6.0));
        let (lo, hi) = l.accel_bounds();
        assert!(same(lo.get(), l.accel_min) && same(hi.get(), l.accel_max));
    }

    #[test]
    fn boundary_controls_match_paper() {
        let l = ControlLimits::default();
        let b = l.boundary_controls();
        assert_eq!(b.len(), 6);
        // accelerations drawn from {0, a_max}
        assert!(b
            .iter()
            .all(|u| same(u.accel, 0.0) || same(u.accel, l.accel_max)));
        // steering drawn from {min, 0, max}
        assert!(b.iter().all(|u| same(u.steer, l.steer_min)
            || same(u.steer, 0.0)
            || same(u.steer, l.steer_max)));
        // all distinct
        for i in 0..6 {
            for j in (i + 1)..6 {
                assert_ne!(b[i], b[j]);
            }
        }
    }

    #[test]
    fn extreme_controls_cover_braking() {
        let l = ControlLimits::default();
        let e = l.extreme_controls();
        assert_eq!(e.len(), 9);
        assert!(e.iter().any(|u| same(u.accel, l.accel_min)));
    }

    #[test]
    fn lattice_includes_endpoints() {
        let l = ControlLimits::default();
        let samples = l.lattice(3, 3);
        assert_eq!(samples.len(), 9);
        assert!(samples.contains(&ControlInput::new(l.accel_min, l.steer_min)));
        assert!(samples.contains(&ControlInput::new(l.accel_max, l.steer_max)));
        assert!(samples.iter().all(|&u| l.contains(u)));
    }

    #[test]
    #[should_panic(expected = "lattice")]
    fn tiny_lattice_panics() {
        let _ = ControlLimits::default().lattice(1, 3);
    }

    proptest! {
        #[test]
        fn prop_clamp_is_contained(a in -100.0..100.0f64, s in -10.0..10.0f64) {
            let l = ControlLimits::default();
            prop_assert!(l.contains(l.clamp(ControlInput::new(a, s))));
        }

        #[test]
        fn prop_clamp_idempotent(a in -100.0..100.0f64, s in -10.0..10.0f64) {
            let l = ControlLimits::default();
            let once = l.clamp(ControlInput::new(a, s));
            prop_assert_eq!(once, l.clamp(once));
        }

        #[test]
        fn prop_lattice_within_limits(na in 2usize..8, ns in 2usize..8) {
            let l = ControlLimits::default();
            for u in l.lattice(na, ns) {
                prop_assert!(l.contains(u));
            }
        }
    }
}
