//! The vehicle state `x = [x, y, θ, v]` used throughout the paper.

use iprism_geom::{Meters, Obb, Pose, Radians, Vec2};
use serde::{Deserialize, Serialize};

/// Kinematic state of a vehicle: position, heading and scalar speed along
/// the heading. This matches the paper's `x_t^{ego} = [x, y, θ, v]`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VehicleState {
    /// World x-position (m).
    pub x: f64,
    /// World y-position (m).
    pub y: f64,
    /// Heading (rad, counter-clockwise from +x).
    pub theta: f64,
    /// Speed along the heading (m/s); non-negative in normal operation.
    pub v: f64,
}

impl VehicleState {
    /// Creates a state from its four components.
    ///
    /// Takes raw `f64`s deliberately: this is the storage-layer constructor
    /// mirroring the serialized field layout, called from the innermost
    /// integration loops. [`VehicleState::pose`] and
    /// [`VehicleState::velocity`] expose the typed views.
    #[inline]
    // iprism-lint: allow(raw-f64-param)
    pub const fn new(x: f64, y: f64, theta: f64, v: f64) -> Self {
        VehicleState { x, y, theta, v }
    }

    /// Creates a stationary state at a pose.
    #[inline]
    pub fn at_rest(pose: Pose) -> Self {
        VehicleState::new(pose.x, pose.y, pose.theta, 0.0)
    }

    /// Position as a vector.
    #[inline]
    pub fn position(&self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Pose (position + heading).
    #[inline]
    pub fn pose(&self) -> Pose {
        // `raw`: the stored heading is kept normalized by the dynamics
        // contracts; re-wrapping here would hide violations.
        Pose::new(self.x, self.y, Radians::raw(self.theta))
    }

    /// Velocity vector `v · (cos θ, sin θ)`.
    #[inline]
    pub fn velocity(&self) -> Vec2 {
        Vec2::from_angle(Radians::raw(self.theta)) * self.v
    }

    /// The vehicle footprint as an oriented box of `length` × `width`.
    #[inline]
    pub fn footprint(&self, length: Meters, width: Meters) -> Obb {
        Obb::new(self.pose(), length, width)
    }

    /// L2 norm of the full state vector difference — the distance used by
    /// the paper's ε-deduplication optimization (§III-A, optimization 1).
    ///
    /// The norm mixes metres, radians and m/s, so it is *not* a `Meters`
    /// quantity; it stays a dimensionless raw `f64` by design.
    // iprism-lint: allow(raw-f64-return)
    pub fn l2_distance(&self, other: &VehicleState) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dt = iprism_geom::wrap_to_pi(self.theta - other.theta);
        let dv = self.v - other.v;
        (dx * dx + dy * dy + dt * dt + dv * dv).sqrt()
    }

    /// Returns `true` if every component is finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.theta.is_finite() && self.v.is_finite()
    }
}

impl From<VehicleState> for Pose {
    #[inline]
    fn from(s: VehicleState) -> Pose {
        s.pose()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn accessors() {
        let s = VehicleState::new(1.0, 2.0, FRAC_PI_2, 3.0);
        assert_eq!(s.position(), Vec2::new(1.0, 2.0));
        assert_eq!(s.pose(), Pose::new(1.0, 2.0, Radians::new(FRAC_PI_2)));
        assert!(s.velocity().distance(Vec2::new(0.0, 3.0)) < 1e-12);
        let p: Pose = s.into();
        assert_eq!(p, s.pose());
    }

    #[test]
    fn at_rest_has_zero_speed() {
        let s = VehicleState::at_rest(Pose::new(5.0, 5.0, Radians::new(1.0)));
        assert_eq!(s.v, 0.0);
        assert_eq!(s.velocity(), Vec2::ZERO);
    }

    #[test]
    fn footprint_dimensions() {
        let s = VehicleState::new(0.0, 0.0, 0.0, 0.0);
        let fp = s.footprint(Meters::new(4.6), Meters::new(2.0));
        assert_eq!(fp.length, 4.6);
        assert_eq!(fp.width, 2.0);
        assert_eq!(fp.center(), Vec2::ZERO);
    }

    #[test]
    fn l2_distance_zero_on_self() {
        let s = VehicleState::new(1.0, 2.0, 0.5, 3.0);
        assert_eq!(s.l2_distance(&s), 0.0);
    }

    #[test]
    fn l2_distance_wraps_heading() {
        use std::f64::consts::PI;
        let a = VehicleState::new(0.0, 0.0, -PI + 0.01, 0.0);
        let b = VehicleState::new(0.0, 0.0, PI - 0.01, 0.0);
        // headings are 0.02 rad apart through the wrap
        assert!(a.l2_distance(&b) < 0.03);
    }

    #[test]
    fn finiteness() {
        assert!(VehicleState::new(0.0, 0.0, 0.0, 0.0).is_finite());
        assert!(!VehicleState::new(f64::NAN, 0.0, 0.0, 0.0).is_finite());
        assert!(!VehicleState::new(0.0, 0.0, 0.0, f64::INFINITY).is_finite());
    }

    proptest! {
        #[test]
        fn prop_l2_symmetric(
            ax in -100.0..100.0f64, ay in -100.0..100.0f64,
            at in -3.0..3.0f64, av in 0.0..30.0f64,
            bx in -100.0..100.0f64, by in -100.0..100.0f64,
            bt in -3.0..3.0f64, bv in 0.0..30.0f64,
        ) {
            let a = VehicleState::new(ax, ay, at, av);
            let b = VehicleState::new(bx, by, bt, bv);
            prop_assert!((a.l2_distance(&b) - b.l2_distance(&a)).abs() < 1e-9);
        }

        #[test]
        fn prop_velocity_norm_is_speed(
            t in -3.0..3.0f64, v in 0.0..40.0f64,
        ) {
            let s = VehicleState::new(0.0, 0.0, t, v);
            prop_assert!((s.velocity().norm() - v).abs() < 1e-9);
        }
    }
}
