//! Kinematic bicycle model (paper reference [42]).

use iprism_units::{Meters, MetersPerSecond, MetersPerSecondSquared, Seconds};
use serde::{Deserialize, Serialize};

use crate::{ControlInput, ControlLimits, Trajectory, VehicleState};

/// The kinematic bicycle model used to propagate ego states in the
/// reach-tube computation (Algorithm 1):
///
/// ```text
/// ẋ = v cos θ      θ̇ = (v / L) tan φ
/// ẏ = v sin θ      v̇ = a
/// ```
///
/// with wheelbase `L`. Integration is forward-Euler at the caller's Δt,
/// matching the time-slice discretization of the paper; a finer RK4-style
/// integrator is unnecessary at the Δt ≈ 0.1–0.5 s used there.
///
/// # Examples
///
/// ```
/// use iprism_dynamics::{BicycleModel, ControlInput, VehicleState};
/// use iprism_units::{Meters, Seconds};
///
/// let m = BicycleModel::new(Meters::new(2.9));
/// let s0 = VehicleState::new(0.0, 0.0, 0.0, 10.0);
/// // Full-left steering turns the heading left.
/// let s1 = m.step(s0, ControlInput::new(0.0, 0.5), Seconds::new(0.1));
/// assert!(s1.theta > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BicycleModel {
    /// Wheelbase `L`.
    pub wheelbase: Meters,
    /// Control/speed limits enforced during propagation.
    pub limits: ControlLimits,
}

/// A control input preprocessed by [`BicycleModel::prepare`] for repeated
/// propagation: sanitized, clamped, with the steering tangent taken once.
///
/// Only meaningful for the model (and limits) that prepared it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreparedControl {
    /// Clamped longitudinal acceleration (m/s²).
    pub accel: f64,
    /// `tan` of the clamped steering angle (dimensionless).
    pub steer_tan: f64,
}

impl PreparedControl {
    /// The clamped longitudinal acceleration as a dimensioned quantity.
    #[inline]
    #[must_use]
    pub fn acceleration(&self) -> MetersPerSecondSquared {
        MetersPerSecondSquared::new(self.accel)
    }
}

impl Default for BicycleModel {
    /// Typical passenger-car parameters (wheelbase 2.9 m, default limits),
    /// following the paper's reference [46].
    fn default() -> Self {
        BicycleModel::new(Meters::new(2.9))
    }
}

impl BicycleModel {
    /// Creates a model with the given wheelbase and default control limits.
    ///
    /// # Panics
    ///
    /// Panics when `wheelbase` is not strictly positive and finite.
    pub fn new(wheelbase: Meters) -> Self {
        assert!(
            wheelbase.get() > 0.0 && wheelbase.is_finite(),
            "wheelbase must be positive and finite, got {wheelbase}"
        );
        BicycleModel {
            wheelbase,
            limits: ControlLimits::default(),
        }
    }

    /// Creates a model with explicit limits.
    pub fn with_limits(wheelbase: Meters, limits: ControlLimits) -> Self {
        let mut m = BicycleModel::new(wheelbase);
        m.limits = limits;
        m
    }

    /// Propagates a state forward by `dt` seconds under control `u`.
    ///
    /// The control is clamped into the admissible ranges and the resulting
    /// speed into the speed envelope, so the output is always dynamically
    /// feasible. The heading is kept wrapped in `(-π, π]`.
    pub fn step(&self, state: VehicleState, u: ControlInput, dt: Seconds) -> VehicleState {
        let (sin_t, cos_t) = state.theta.sin_cos();
        self.step_prepared(state, self.prepare(u), dt, sin_t, cos_t)
    }

    /// Preprocesses a control for repeated propagation: sanitizes non-finite
    /// components (a faulty agent must not poison the simulation with NaNs —
    /// `clamp` propagates NaN), clamps into the admissible ranges and takes
    /// `tan φ` once. [`BicycleModel::step_prepared`] with the result is
    /// bit-identical to [`BicycleModel::step`] with the raw control.
    pub fn prepare(&self, u: ControlInput) -> PreparedControl {
        let u = ControlInput::new(
            if u.accel.is_finite() { u.accel } else { 0.0 },
            if u.steer.is_finite() { u.steer } else { 0.0 },
        );
        let u = self.limits.clamp(u);
        PreparedControl {
            accel: u.accel,
            steer_tan: u.steer.tan(),
        }
    }

    /// [`BicycleModel::step`] with the per-control and per-state
    /// trigonometry hoisted out: `p` carries the clamped control and its
    /// `tan φ`, and `sin_t`/`cos_t` must be `state.theta.sin_cos()`.
    ///
    /// The reach-tube expansion steps every control of a slice from the same
    /// parent state, so the caller computes the heading's sin/cos once per
    /// parent and `tan φ` once per tube instead of once per (parent,
    /// control) pair. The arithmetic is exactly `step`'s, so results are
    /// **bit-identical** — only redundant transcendental calls are removed.
    // `sin_t`/`cos_t` are dimensionless trig ratios; `raw-f64-param` does
    // not flag them, so no waiver is needed.
    pub fn step_prepared(
        &self,
        state: VehicleState,
        p: PreparedControl,
        dt: Seconds,
        sin_t: f64,
        cos_t: f64,
    ) -> VehicleState {
        let dt = dt.get();
        debug_assert!(dt >= 0.0, "negative dt");
        let x = state.x + state.v * cos_t * dt;
        let y = state.y + state.v * sin_t * dt;
        let theta = iprism_geom::wrap_to_pi(
            state.theta + state.v / self.wheelbase.get() * p.steer_tan * dt,
        );
        let v = self
            .limits
            .clamp_speed(MetersPerSecond::new(state.v + p.accel * dt))
            .get();
        let next = VehicleState::new(x, y, theta, v);
        if state.is_finite() {
            // Propagation preserves finiteness and heading normalization
            // whenever the input state was well-formed.
            iprism_contracts::check_finite_state(
                "BicycleModel::step",
                &[next.x, next.y, next.theta, next.v],
            );
            iprism_contracts::check_heading_normalized("BicycleModel::step", next.theta);
        }
        next
    }

    /// Rolls out a constant control for `steps` steps of `dt` seconds and
    /// returns the trajectory (initial state included, `steps + 1` samples).
    pub fn rollout(
        &self,
        state: VehicleState,
        u: ControlInput,
        dt: Seconds,
        steps: usize,
    ) -> Trajectory {
        let mut traj = Trajectory::with_capacity(Seconds::new(0.0), dt, steps + 1);
        traj.push(state);
        let mut s = state;
        for _ in 0..steps {
            s = self.step(s, u, dt);
            traj.push(s);
        }
        traj
    }

    /// Rolls out a control *sequence*, applying `controls[i]` over step `i`.
    pub fn rollout_sequence(
        &self,
        state: VehicleState,
        controls: &[ControlInput],
        dt: Seconds,
    ) -> Trajectory {
        let mut traj = Trajectory::with_capacity(Seconds::new(0.0), dt, controls.len() + 1);
        traj.push(state);
        let mut s = state;
        for &u in controls {
            s = self.step(s, u, dt);
            traj.push(s);
        }
        traj
    }

    /// Distance covered from speed `v` to a full stop under maximum braking.
    pub fn stopping_distance(&self, v: MetersPerSecond) -> Meters {
        let b = self.limits.max_braking();
        if b.get() <= 0.0 {
            return Meters::new(f64::INFINITY);
        }
        let v = v.get();
        Meters::new(v * v / (2.0 * b.get()))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use proptest::prelude::*;

    fn model() -> BicycleModel {
        BicycleModel::default()
    }

    #[test]
    fn straight_line_constant_speed() {
        let m = model();
        let s = m.step(
            VehicleState::new(0.0, 0.0, 0.0, 10.0),
            ControlInput::COAST,
            Seconds::new(0.5),
        );
        assert!((s.x - 5.0).abs() < 1e-12);
        assert_eq!(s.y, 0.0);
        assert_eq!(s.theta, 0.0);
        assert_eq!(s.v, 10.0);
    }

    #[test]
    fn braking_reduces_speed_to_zero_not_negative() {
        let m = model();
        let mut s = VehicleState::new(0.0, 0.0, 0.0, 2.0);
        for _ in 0..20 {
            s = m.step(s, ControlInput::new(-6.0, 0.0), Seconds::new(0.5));
        }
        assert_eq!(s.v, 0.0);
    }

    #[test]
    fn speed_saturates_at_vmax() {
        let m = model();
        let mut s = VehicleState::new(0.0, 0.0, 0.0, 29.0);
        for _ in 0..20 {
            s = m.step(s, ControlInput::new(3.5, 0.0), Seconds::new(1.0));
        }
        assert_eq!(s.v, m.limits.v_max);
    }

    #[test]
    fn steering_turns_heading() {
        let m = model();
        let left = m.step(
            VehicleState::new(0.0, 0.0, 0.0, 10.0),
            ControlInput::new(0.0, 0.3),
            Seconds::new(0.1),
        );
        let right = m.step(
            VehicleState::new(0.0, 0.0, 0.0, 10.0),
            ControlInput::new(0.0, -0.3),
            Seconds::new(0.1),
        );
        assert!(left.theta > 0.0);
        assert!(right.theta < 0.0);
        assert!((left.theta + right.theta).abs() < 1e-12); // symmetric
    }

    #[test]
    fn no_turn_at_zero_speed() {
        let m = model();
        let s = m.step(
            VehicleState::new(0.0, 0.0, 0.0, 0.0),
            ControlInput::new(0.0, 0.6),
            Seconds::new(0.5),
        );
        assert_eq!(s.theta, 0.0);
        assert_eq!(s.position(), iprism_geom::Vec2::ZERO);
    }

    #[test]
    fn control_clamped() {
        let m = model();
        // An insane steering command behaves like the max steering command.
        let wild = m.step(
            VehicleState::new(0.0, 0.0, 0.0, 10.0),
            ControlInput::new(0.0, 10.0),
            Seconds::new(0.1),
        );
        let maxed = m.step(
            VehicleState::new(0.0, 0.0, 0.0, 10.0),
            ControlInput::new(0.0, m.limits.steer_max),
            Seconds::new(0.1),
        );
        assert_eq!(wild, maxed);
    }

    #[test]
    fn rollout_length_and_continuity() {
        let m = model();
        let t = m.rollout(
            VehicleState::new(0.0, 0.0, 0.0, 10.0),
            ControlInput::COAST,
            Seconds::new(0.1),
            10,
        );
        assert_eq!(t.len(), 11);
        assert!((t.states()[10].x - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rollout_sequence_applies_each_control() {
        let m = model();
        let controls = [ControlInput::new(3.5, 0.0), ControlInput::new(-6.0, 0.0)];
        let t = m.rollout_sequence(
            VehicleState::new(0.0, 0.0, 0.0, 10.0),
            &controls,
            Seconds::new(1.0),
        );
        assert_eq!(t.len(), 3);
        assert!((t.states()[1].v - 13.5).abs() < 1e-12);
        assert!((t.states()[2].v - 7.5).abs() < 1e-12);
    }

    #[test]
    fn stopping_distance_quadratic() {
        let m = model();
        let d10 = m.stopping_distance(MetersPerSecond::new(10.0));
        let d20 = m.stopping_distance(MetersPerSecond::new(20.0));
        assert!((d20 / d10 - 4.0).abs() < 1e-9);
        assert!((d10.get() - 100.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "wheelbase")]
    fn bad_wheelbase_panics() {
        let _ = BicycleModel::new(Meters::new(0.0));
    }

    #[test]
    fn non_finite_controls_are_sanitized() {
        // Failure injection: a faulty controller emitting NaN/∞ must not
        // corrupt the vehicle state.
        let m = model();
        let s0 = VehicleState::new(0.0, 0.0, 0.0, 10.0);
        for u in [
            ControlInput::new(f64::NAN, 0.0),
            ControlInput::new(0.0, f64::NAN),
            ControlInput::new(f64::INFINITY, f64::NEG_INFINITY),
        ] {
            let s1 = m.step(s0, u, Seconds::new(0.1));
            assert!(s1.is_finite(), "{u:?}");
        }
        // NaN controls behave exactly like coasting.
        let coast = m.step(s0, ControlInput::COAST, Seconds::new(0.1));
        let nan = m.step(s0, ControlInput::new(f64::NAN, f64::NAN), Seconds::new(0.1));
        assert_eq!(coast, nan);
    }

    #[test]
    fn turning_circle_returns_to_start() {
        // Driving a full circle at constant steer brings us back near the
        // starting point.
        let m = model();
        let steer = 0.3f64;
        let v = 5.0;
        let yaw_rate = v / m.wheelbase.get() * steer.tan();
        let period = std::f64::consts::TAU / yaw_rate;
        let dt = 0.001;
        let steps = (period / dt).round() as usize;
        let t = m.rollout(
            VehicleState::new(0.0, 0.0, 0.0, v),
            ControlInput::new(0.0, steer),
            Seconds::new(dt),
            steps,
        );
        let last = *t.states().last().unwrap();
        assert!(
            last.position().norm() < 0.2,
            "drift {}",
            last.position().norm()
        );
    }

    #[test]
    fn prepared_step_bit_identical_to_step() {
        let m = model();
        let controls = [
            ControlInput::new(0.0, 0.3),
            ControlInput::new(3.5, -0.61),
            ControlInput::new(-6.0, 0.0),
            ControlInput::new(f64::NAN, f64::INFINITY), // sanitized path
            ControlInput::new(99.0, -99.0),             // clamped path
        ];
        for u in controls {
            let p = m.prepare(u);
            for (theta, v) in [(0.0, 10.0), (1.2, 0.0), (-3.0, 29.5)] {
                let s = VehicleState::new(12.5, -3.25, theta, v);
                let (sin_t, cos_t) = s.theta.sin_cos();
                assert_eq!(
                    m.step(s, u, Seconds::new(0.3)),
                    m.step_prepared(s, p, Seconds::new(0.3), sin_t, cos_t),
                    "{u:?} at theta={theta} v={v}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_prepared_step_matches_step(
            x in -1e3..1e3f64, y in -1e3..1e3f64, th in -3.0..3.0f64, v in 0.0..30.0f64,
            a in -10.0..10.0f64, s in -1.0..1.0f64, dt in 0.001..1.0f64,
        ) {
            let m = model();
            let state = VehicleState::new(x, y, th, v);
            let u = ControlInput::new(a, s);
            let (sin_t, cos_t) = state.theta.sin_cos();
            prop_assert_eq!(
                m.step(state, u, Seconds::new(dt)),
                m.step_prepared(state, m.prepare(u), Seconds::new(dt), sin_t, cos_t)
            );
        }

        #[test]
        fn prop_step_is_finite(
            x in -1e3..1e3f64, y in -1e3..1e3f64, th in -3.0..3.0f64, v in 0.0..30.0f64,
            a in -10.0..10.0f64, s in -1.0..1.0f64, dt in 0.001..1.0f64,
        ) {
            let m = model();
            let next = m.step(VehicleState::new(x, y, th, v), ControlInput::new(a, s), Seconds::new(dt));
            prop_assert!(next.is_finite());
            prop_assert!(next.v >= m.limits.v_min && next.v <= m.limits.v_max);
        }

        #[test]
        fn prop_displacement_bounded_by_speed(
            th in -3.0..3.0f64, v in 0.0..30.0f64,
            a in -10.0..10.0f64, s in -1.0..1.0f64, dt in 0.001..1.0f64,
        ) {
            let m = model();
            let s0 = VehicleState::new(0.0, 0.0, th, v);
            let s1 = m.step(s0, ControlInput::new(a, s), Seconds::new(dt));
            // Euler step moves exactly v*dt
            prop_assert!((s1.position().norm() - v * dt).abs() < 1e-9);
        }

        #[test]
        fn prop_heading_wrapped(
            th in -3.0..3.0f64, v in 0.0..30.0f64, s in -1.0..1.0f64,
        ) {
            let m = model();
            let next = m.step(VehicleState::new(0.0, 0.0, th, v), ControlInput::new(0.0, s), Seconds::new(0.5));
            prop_assert!(next.theta > -std::f64::consts::PI - 1e-9);
            prop_assert!(next.theta <= std::f64::consts::PI + 1e-9);
        }
    }
}
