//! Timestamped state sequences.

use iprism_geom::Vec2;
use iprism_units::Seconds;
use serde::{Deserialize, Serialize};

use crate::VehicleState;

/// A time-ordered sequence of [`VehicleState`]s sampled at a fixed period.
///
/// This is the paper's *trajectory of an actor* (§II): "a time-ordered
/// sequence of states representing the actor's dynamic evolution". Sample
/// `i` is at time `start_time + i * dt`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    start_time: f64,
    dt: f64,
    states: Vec<VehicleState>,
}

impl Trajectory {
    /// Creates an empty trajectory starting at `start_time` with sample
    /// period `dt`.
    ///
    /// # Panics
    ///
    /// Panics when `dt` is not strictly positive and finite.
    pub fn new(start_time: Seconds, dt: Seconds) -> Self {
        Trajectory::with_capacity(start_time, dt, 0)
    }

    /// Like [`Trajectory::new`] but pre-allocates room for `cap` samples.
    pub fn with_capacity(start_time: Seconds, dt: Seconds, cap: usize) -> Self {
        let (start_time, dt) = (start_time.get(), dt.get());
        assert!(
            dt > 0.0 && dt.is_finite(),
            "trajectory dt must be positive and finite, got {dt}"
        );
        Trajectory {
            start_time,
            dt,
            states: Vec::with_capacity(cap),
        }
    }

    /// Builds a trajectory directly from states.
    pub fn from_states(start_time: Seconds, dt: Seconds, states: Vec<VehicleState>) -> Self {
        let mut t = Trajectory::new(start_time, dt);
        t.states = states;
        t
    }

    /// Appends a state at the next sample instant.
    #[inline]
    pub fn push(&mut self, s: VehicleState) {
        self.states.push(s);
    }

    /// The sample states in time order.
    #[inline]
    pub fn states(&self) -> &[VehicleState] {
        &self.states
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` when the trajectory has no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Sample period.
    #[inline]
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Time of the first sample.
    #[inline]
    pub fn start_time(&self) -> Seconds {
        Seconds::new(self.start_time)
    }

    /// Time of the last sample, or `start_time` when empty.
    pub fn end_time(&self) -> Seconds {
        if self.states.is_empty() {
            self.start_time()
        } else {
            Seconds::new(self.start_time + (self.states.len() - 1) as f64 * self.dt)
        }
    }

    /// Time of sample `i`.
    #[inline]
    pub fn time_at(&self, i: usize) -> Seconds {
        Seconds::new(self.start_time + i as f64 * self.dt)
    }

    /// The state at time `t`, linearly interpolated between samples and
    /// clamped to the ends. Returns `None` when the trajectory is empty.
    pub fn state_at_time(&self, t: f64) -> Option<VehicleState> {
        self.interpolate(t)
    }

    /// Shared interpolation kernel behind [`Trajectory::state_at_time`] and
    /// [`TrajectoryCursor::state_at`] — one implementation so the cursor is
    /// bit-identical to the random-access path.
    fn interpolate(&self, t: f64) -> Option<VehicleState> {
        if self.states.is_empty() {
            return None;
        }
        let f = (t - self.start_time) / self.dt;
        if f <= 0.0 {
            return Some(self.states[0]);
        }
        let last = self.states.len() - 1;
        if f >= last as f64 {
            return Some(self.states[last]);
        }
        let i = f.floor() as usize;
        let frac = f - i as f64;
        let a = self.states[i];
        let b = self.states[i + 1];
        Some(VehicleState::new(
            a.x + (b.x - a.x) * frac,
            a.y + (b.y - a.y) * frac,
            a.theta + iprism_geom::wrap_to_pi(b.theta - a.theta) * frac,
            a.v + (b.v - a.v) * frac,
        ))
    }

    /// Returns a cursor for sweeping this trajectory at non-decreasing
    /// times (e.g. the reach computation's slice-by-slice obstacle
    /// interpolation). Results are bit-identical to
    /// [`Trajectory::state_at_time`]; the cursor additionally enforces (in
    /// validating builds) that the sweep really is monotone, which is what
    /// makes the amortized-O(1) access pattern sound for future
    /// non-uniformly-sampled trajectory representations.
    pub fn cursor(&self) -> TrajectoryCursor<'_> {
        TrajectoryCursor {
            trajectory: self,
            last_time: f64::NEG_INFINITY,
        }
    }

    /// Total path length (sum of inter-sample distances).
    pub fn path_length(&self) -> f64 {
        self.states
            .windows(2)
            .map(|w| w[0].position().distance(w[1].position()))
            .sum()
    }

    /// Positions of all samples.
    pub fn positions(&self) -> impl Iterator<Item = Vec2> + '_ {
        self.states.iter().map(super::state::VehicleState::position)
    }

    /// Returns `true` if this trajectory's position path comes within
    /// `threshold` metres of `other`'s at any *shared* sample time.
    ///
    /// This is the discrete form of the paper's "safely navigable" check:
    /// two trajectories intersect when the actors occupy (nearly) the same
    /// place at the same time.
    pub fn intersects(&self, other: &Trajectory, threshold: f64) -> bool {
        let t0 = self.start_time.max(other.start_time);
        let t1 = self.end_time().get().min(other.end_time().get());
        if t1 < t0 {
            return false;
        }
        let dt = self.dt.min(other.dt);
        let steps = ((t1 - t0) / dt).round() as usize;
        for i in 0..=steps {
            let t = t0 + i as f64 * dt;
            if let (Some(a), Some(b)) = (self.state_at_time(t), other.state_at_time(t)) {
                if a.position().distance(b.position()) <= threshold {
                    return true;
                }
            }
        }
        false
    }
}

/// A monotone interpolation cursor over a [`Trajectory`].
///
/// Created by [`Trajectory::cursor`]. Queries must come at non-decreasing
/// times; each returns exactly what [`Trajectory::state_at_time`] would.
#[derive(Debug, Clone)]
pub struct TrajectoryCursor<'a> {
    trajectory: &'a Trajectory,
    last_time: f64,
}

impl TrajectoryCursor<'_> {
    /// The interpolated state at `t`, which must be `>=` every previous
    /// query time on this cursor. Returns `None` for empty trajectories.
    pub fn state_at(&mut self, t: Seconds) -> Option<VehicleState> {
        let t = t.get();
        iprism_contracts::check_monotone_time("TrajectoryCursor::state_at", self.last_time, t);
        self.last_time = t;
        self.trajectory.interpolate(t)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use proptest::prelude::*;

    fn straight(start: f64, dt: f64, n: usize, speed: f64) -> Trajectory {
        let states = (0..n)
            .map(|i| VehicleState::new(speed * dt * i as f64, 0.0, 0.0, speed))
            .collect();
        Trajectory::from_states(Seconds::new(start), Seconds::new(dt), states)
    }

    #[test]
    fn times() {
        let t = straight(1.0, 0.5, 5, 10.0);
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.start_time().get(), 1.0);
        assert_eq!(t.end_time().get(), 3.0);
        assert_eq!(t.time_at(2).get(), 2.0);
        assert_eq!(t.dt(), 0.5);
    }

    #[test]
    fn empty_trajectory() {
        let t = Trajectory::new(Seconds::new(0.0), Seconds::new(0.1));
        assert!(t.is_empty());
        assert_eq!(t.end_time().get(), 0.0);
        assert!(t.state_at_time(0.0).is_none());
        assert_eq!(t.path_length(), 0.0);
    }

    #[test]
    fn interpolation_midpoint() {
        let t = straight(0.0, 1.0, 3, 10.0);
        let s = t.state_at_time(0.5).unwrap();
        assert!((s.x - 5.0).abs() < 1e-12);
        // clamping at the ends
        assert_eq!(t.state_at_time(-1.0).unwrap().x, 0.0);
        assert_eq!(t.state_at_time(100.0).unwrap().x, 20.0);
    }

    #[test]
    fn interpolation_wraps_heading() {
        use std::f64::consts::PI;
        let states = vec![
            VehicleState::new(0.0, 0.0, PI - 0.1, 0.0),
            VehicleState::new(0.0, 0.0, -PI + 0.1, 0.0),
        ];
        let t = Trajectory::from_states(Seconds::new(0.0), Seconds::new(1.0), states);
        let mid = t.state_at_time(0.5).unwrap();
        // interpolates through the wrap, not through zero
        assert!(mid.theta.abs() > 3.0);
    }

    #[test]
    fn path_length() {
        let t = straight(0.0, 0.5, 5, 10.0);
        assert!((t.path_length() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_same_lane() {
        let a = straight(0.0, 0.1, 50, 10.0);
        let b = straight(0.0, 0.1, 50, 10.0); // identical
        assert!(a.intersects(&b, 1.0));
    }

    #[test]
    fn no_intersection_parallel_lanes() {
        let a = straight(0.0, 0.1, 50, 10.0);
        let mut states = Vec::new();
        for i in 0..50 {
            states.push(VehicleState::new(i as f64, 10.0, 0.0, 10.0));
        }
        let b = Trajectory::from_states(Seconds::new(0.0), Seconds::new(0.1), states);
        assert!(!a.intersects(&b, 1.0));
    }

    #[test]
    fn no_intersection_when_times_disjoint() {
        let a = straight(0.0, 0.1, 10, 10.0);
        let b = straight(100.0, 0.1, 10, 10.0);
        assert!(!a.intersects(&b, 1000.0));
    }

    #[test]
    fn crossing_at_same_time_intersects() {
        // two actors pass through the origin at t = 1
        let a = Trajectory::from_states(
            Seconds::new(0.0),
            Seconds::new(1.0),
            vec![
                VehicleState::new(-10.0, 0.0, 0.0, 10.0),
                VehicleState::new(0.0, 0.0, 0.0, 10.0),
            ],
        );
        let b = Trajectory::from_states(
            Seconds::new(0.0),
            Seconds::new(1.0),
            vec![
                VehicleState::new(0.0, -10.0, 1.57, 10.0),
                VehicleState::new(0.0, 0.0, 1.57, 10.0),
            ],
        );
        assert!(a.intersects(&b, 0.5));
    }

    #[test]
    #[should_panic(expected = "dt")]
    fn zero_dt_panics() {
        let _ = Trajectory::new(Seconds::new(0.0), Seconds::new(0.0));
    }

    proptest! {
        #[test]
        fn prop_intersects_symmetric(
            n in 2usize..20, m in 2usize..20,
            va in 0.0..20.0f64, vb in 0.0..20.0f64,
            off in -5.0..5.0f64,
        ) {
            let a = straight(0.0, 0.1, n, va);
            let mut states = Vec::new();
            for i in 0..m {
                states.push(VehicleState::new(va * 0.1 * i as f64, off, 0.0, vb));
            }
            let b = Trajectory::from_states(Seconds::new(0.0), Seconds::new(0.1), states);
            prop_assert_eq!(a.intersects(&b, 1.0), b.intersects(&a, 1.0));
        }

        #[test]
        fn prop_interpolated_x_monotone(
            n in 2usize..20, v in 0.1..20.0f64, t in 0.0..2.0f64
        ) {
            let traj = straight(0.0, 0.1, n, v);
            let s = traj.state_at_time(t).unwrap();
            prop_assert!(s.x >= -1e-9);
            prop_assert!(s.x <= v * 0.1 * (n - 1) as f64 + 1e-9);
        }
    }
}
