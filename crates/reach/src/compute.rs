//! Algorithm 1: frontier-by-frontier reach-tube propagation.

use std::cmp::Ordering;

use iprism_dynamics::{ControlInput, PreparedControl, VehicleState};
use iprism_geom::{Aabb, Grid2, Meters, Obb, Vec2};
use iprism_map::RoadMap;

use crate::slice_cache::SliceFootprint;
use crate::{Obstacle, ReachConfig, ReachTube, SamplingMode, SliceCache};

/// Computes the ego's escape-route reach-tube over `[t, t+k]`.
///
/// This is the paper's `Reach(M, X_{t:t+k}, x_t^ego)` (Algorithm 1): starting
/// from the ego state, controls are sampled per [`SamplingMode`] at every
/// time slice, states are propagated through the bicycle model, and a
/// propagated state survives only when the ego footprint there
///
/// * does not intersect any obstacle footprint at that slice's time (nor at
///   the slice midpoint, to suppress tunnelling), and
/// * stays fully inside the drivable area `M`.
///
/// Surviving states are ε-deduplicated (optimization 1). The tube volume is
/// measured on a fixed ego-centred occupancy grid whose extent depends only
/// on the ego state and the config — never on the obstacles — so the
/// volumes of the factual and counterfactual tubes in STI's Eq. (4)–(5) are
/// directly comparable.
pub fn compute_reach_tube(
    map: &RoadMap,
    ego: VehicleState,
    obstacles: &[Obstacle],
    config: &ReachConfig,
) -> ReachTube {
    let cache = SliceCache::new(obstacles, config);
    let active: Vec<usize> = (0..cache.obstacle_count()).collect();
    compute_reach_tube_cached(map, ego, &cache, &active, config)
}

/// [`compute_reach_tube`] over a precomputed [`SliceCache`] and an obstacle
/// subset.
///
/// `active` selects which cached obstacles participate (indices into the
/// obstacle list the cache was built from); the STI evaluator uses this to
/// compute the factual tube (`all`), the empty tube (`&[]`) and every
/// per-actor counterfactual tube (`all minus i`) from **one** shared cache,
/// instead of re-interpolating every obstacle trajectory per tube.
///
/// The result is bit-identical to calling [`compute_reach_tube`] with the
/// corresponding obstacle slice: the cache stores footprints built by the
/// same arithmetic, and its broadphase boxes only ever skip exact
/// separating-axis tests that must report "no collision".
///
/// # Panics
///
/// Panics when `config` is invalid, when an index in `active` is out of
/// bounds for the cache, or (in validating builds) when the ego state is
/// non-finite or its heading is unnormalized.
// iprism: hot-path(deterministic)
pub fn compute_reach_tube_cached(
    map: &RoadMap,
    ego: VehicleState,
    cache: &SliceCache,
    active: &[usize],
    config: &ReachConfig,
) -> ReachTube {
    config.validate();
    iprism_contracts::check_finite_state(
        "compute_reach_tube ego",
        &[ego.x, ego.y, ego.theta, ego.v],
    );
    iprism_contracts::check_heading_normalized("compute_reach_tube ego", ego.theta);
    let limits = &config.model.limits;
    // Borrow the fixed-size control arrays in place instead of allocating a
    // Vec per tube; only the uniform lattice needs heap storage.
    let boundary;
    let extreme;
    let lattice;
    let controls: &[ControlInput] = match config.mode {
        SamplingMode::Boundary => {
            boundary = limits.boundary_controls();
            &boundary
        }
        SamplingMode::Extreme => {
            extreme = limits.extreme_controls();
            &extreme
        }
        SamplingMode::Uniform { na, ns } => {
            lattice = limits.lattice(na, ns);
            &lattice
        }
    };
    // Clamp and take `tan φ` once per control for the whole tube; stepping a
    // prepared control is bit-identical to stepping the raw one.
    let prepared: Vec<PreparedControl> =
        controls.iter().map(|&u| config.model.prepare(u)).collect();
    let n_slices = config.slices();
    let (ego_len, ego_wid) = config.ego_dims;
    // Drivability uses a slightly shrunk body: roads have usable margins,
    // and without the allowance every tilted state near a lane edge dies
    // and the tube loses all lateral spread.
    let drive_len = (ego_len - 2.0 * config.drivable_margin).max(Meters::new(0.1));
    let drive_wid = (ego_wid - 2.0 * config.drivable_margin).max(Meters::new(0.1));

    // Obstacles whose swept broadphase bounds the ego provably cannot reach
    // are dropped from the active set up front — for distant traffic this
    // empties the collision loop entirely.
    let active: Vec<usize> = active
        .iter()
        .copied()
        .filter(|&i| cache.interacts(i, &ego))
        .collect();

    // Ego-centred grid covering everything reachable within the horizon.
    let k = config.horizon.get();
    let reach_radius =
        ego.v * k + 0.5 * config.model.limits.accel_max * k * k + ego_len.get() + 2.0;
    let grid_bounds = Aabb::new(
        ego.position() - Vec2::new(reach_radius, reach_radius),
        ego.position() + Vec2::new(reach_radius, reach_radius),
    );
    let mut grid = Grid2::new(grid_bounds, config.grid_resolution);

    let mut slices: Vec<Vec<VehicleState>> = Vec::with_capacity(n_slices + 1);
    slices.push(vec![ego]);
    let mut truncated = false;

    // Buffers reused across slices (the per-slice allocations dominated the
    // small-scene profile).
    let mut slice_fps: Vec<&SliceFootprint> = Vec::with_capacity(active.len());
    let mut candidates: Vec<VehicleState> = Vec::new();
    let mut cells = CellTable::new();
    // Per-parent filter verdicts keyed by exact heading bits; holds at most
    // one entry per distinct steering angle in the control set.
    let mut theta_memo: Vec<(u64, bool)> = Vec::with_capacity(controls.len());
    // Tube-global sine/cosine memo: frontier headings recur heavily across
    // parents and slices (straight driving keeps most of the frontier at a
    // handful of headings), so one libm call per *distinct* heading serves
    // the whole tube.
    let mut trig = TrigTable::new();

    for slice_idx in 1..=n_slices {
        slice_fps.clear();
        slice_fps.extend(active.iter().map(|&i| &cache.footprints(i)[slice_idx - 1]));

        // Phase 1: generate every feasible candidate of this slice and mark
        // its swept segment. Marking happens for *all* feasible transitions
        // — including ones the ε-dedup below drops from further expansion —
        // so the volume measure does not depend on which duplicate becomes
        // the expansion representative.
        //
        // One Euler step moves the position by `v·cosθ·dt` regardless of the
        // control, so every candidate of a parent shares one position (and
        // one swept segment), and candidates sharing a steering angle share
        // their heading too. The geometric filters (drivability, slice and
        // midpoint collision) read only `(x, y, θ)` — never `v` — so their
        // verdict is computed once per distinct heading and the segment is
        // marked once per parent, with bit-identical results.
        candidates.clear();
        for &state in &slices[slice_idx - 1] {
            theta_memo.clear();
            let mut marked = false;
            // One sin/cos of the parent heading serves every control.
            let (sin_t, cos_t) = trig.sin_cos(state.theta);
            for &p in &prepared {
                let cand = config
                    .model
                    .step_prepared(state, p, config.dt, sin_t, cos_t);
                if !cand.is_finite() {
                    continue;
                }
                let bits = cand.theta.to_bits();
                let passes = match theta_memo.iter().find(|&&(b, _)| b == bits) {
                    Some(&(_, passes)) => passes,
                    None => {
                        let passes = survives_filters(
                            map, &state, &cand, drive_len, drive_wid, ego_len, ego_wid, &slice_fps,
                            &mut trig,
                        );
                        theta_memo.push((bits, passes));
                        passes
                    }
                };
                if !passes {
                    continue;
                }
                if !marked {
                    grid.mark_segment(state.position(), cand.position());
                    marked = true;
                }
                candidates.push(cand);
            }
        }

        // Phase 2: ε-dedup (optimization 1) with a *canonical* representative
        // per quantized state cell — the fastest candidate, ties broken by
        // full state ordering. Canonical selection makes the expansion
        // robust to pruning: removing candidates (because an obstacle
        // appeared) can only replace a representative with a slower one,
        // never with a farther-reaching one.
        //
        // Implemented as a single O(n) pass over a reused open-addressing
        // table ([`CellTable`]) keyed by the packed cell id ([`cell_key`]):
        // each insert either claims a fresh cell or replaces the stored
        // representative when the newcomer is canonically greater, so the
        // table ends holding exactly the per-cell canonical maximum — the
        // same states a (cell, canonical-descending) sort followed by
        // keep-first-per-cell selects, without the O(n log n) comparison
        // sort. The frontier order is fixed by the canonical sort below,
        // so probe order never leaks into the result.
        cells.begin(candidates.len());
        for &cand in &candidates {
            cells.insert(cell_key(&cand, config.dedup_epsilon), cand);
        }
        let mut next = cells.drain();
        next.sort_unstable_by(|a, b| canonical_order(b, a));
        if next.len() > config.max_frontier {
            next.truncate(config.max_frontier);
            truncated = true;
        }
        slices.push(next);
    }

    ReachTube::new(slices, grid, truncated)
}

/// The per-candidate geometric filters: drivability of the (shrunk) body,
/// collision against the slice footprints and the anti-tunnelling midpoint
/// collision check. Reads only the candidate's pose — the verdict is shared
/// by every sibling candidate with the same heading.
#[allow(clippy::too_many_arguments)] // internal hot-path helper
fn survives_filters(
    map: &RoadMap,
    state: &VehicleState,
    cand: &VehicleState,
    drive_len: Meters,
    drive_wid: Meters,
    ego_len: Meters,
    ego_wid: Meters,
    slice_fps: &[&SliceFootprint],
    trig: &mut TrigTable,
) -> bool {
    let drive_fp = cand.footprint(drive_len, drive_wid);
    let (sin_t, cos_t) = trig.sin_cos(cand.theta);
    if !map.is_obb_drivable_trig(&drive_fp, sin_t, cos_t) {
        return false;
    }
    if hits_obstacles(cand, ego_len, ego_wid, slice_fps, false) {
        return false;
    }
    // Midpoint check against tunnelling through thin/fast actors.
    let mid = VehicleState::new(
        (state.x + cand.x) * 0.5,
        (state.y + cand.y) * 0.5,
        cand.theta,
        cand.v,
    );
    !hits_obstacles(&mid, ego_len, ego_wid, slice_fps, true)
}

/// Collision test of one candidate against the active slice footprints,
/// with centre-point broadphase: the exact SAT test (and the ego-OBB
/// construction itself) only runs for obstacles whose reject box contains
/// the candidate's centre. `mid` selects the slice-midpoint footprints.
fn hits_obstacles(
    cand: &VehicleState,
    ego_len: Meters,
    ego_wid: Meters,
    fps: &[&SliceFootprint],
    mid: bool,
) -> bool {
    let center = cand.position();
    let mut ego_fp: Option<Obb> = None;
    for sf in fps {
        let (reject, obb) = if mid {
            (&sf.mid_reject, &sf.mid_obb)
        } else {
            (&sf.reject, &sf.obb)
        };
        if !reject.contains(center) {
            continue;
        }
        let fp = ego_fp.get_or_insert_with(|| cand.footprint(ego_len, ego_wid));
        if fp.intersects(obb) {
            return true;
        }
    }
    false
}

/// Order-preserving integer embedding of an `i64` (flipping the sign bit
/// maps the signed order onto the unsigned order).
#[inline]
fn zorder(v: i64) -> u64 {
    (v as u64) ^ (1 << 63)
}

/// Memo of `θ.sin_cos()` keyed by the exact bit pattern of `θ`, kept sorted
/// for binary-search lookup. On a hit it returns the pair libm produced for
/// those same input bits, so memoized trig is bit-identical to calling
/// `sin_cos` every time; only the (deterministic) call count changes.
struct TrigTable {
    entries: Vec<(u64, f64, f64)>,
}

impl TrigTable {
    fn new() -> Self {
        TrigTable {
            entries: Vec::new(),
        }
    }

    fn sin_cos(&mut self, theta: f64) -> (f64, f64) {
        let bits = theta.to_bits();
        match self.entries.binary_search_by_key(&bits, |e| e.0) {
            Ok(i) => (self.entries[i].1, self.entries[i].2),
            Err(i) => {
                let (s, c) = theta.sin_cos();
                self.entries.insert(i, (bits, s, c));
                (s, c)
            }
        }
    }
}

/// Reusable open-addressing scratch table mapping ε-dedup cells to their
/// canonical representative (the [`canonical_order`] maximum of every
/// candidate inserted for that cell).
///
/// Slots carry a generation tag so clearing between slices is O(1); the
/// `live` list records first-claimed slots so extraction touches only
/// occupied entries. The hash only steers probe placement — lookups compare
/// the full key, and the caller re-sorts the extracted states — so the
/// result is independent of the hash function and probe order.
struct CellTable {
    /// `(generation, key, state)`; a slot is live iff its tag equals the
    /// table's current generation.
    slots: Vec<(u32, (u128, u128), VehicleState)>,
    /// Slot indices claimed this generation, in first-insertion order.
    live: Vec<u32>,
    generation: u32,
}

impl CellTable {
    fn new() -> Self {
        CellTable {
            slots: Vec::new(),
            live: Vec::new(),
            generation: 0,
        }
    }

    /// Starts a new slice: O(1) clear, growing to hold `n` inserts at a load
    /// factor of at most one half.
    fn begin(&mut self, n: usize) {
        let want = (n.max(1) * 2).next_power_of_two();
        if self.slots.len() < want || self.generation == u32::MAX {
            let empty = (0, (0, 0), VehicleState::new(0.0, 0.0, 0.0, 0.0));
            self.slots.clear();
            self.slots.resize(want, empty);
            self.generation = 1;
        } else {
            self.generation += 1;
        }
        self.live.clear();
    }

    /// Inserts a candidate, keeping the canonical maximum per cell.
    fn insert(&mut self, key: (u128, u128), cand: VehicleState) {
        let mask = self.slots.len() - 1;
        let mut idx = (hash_cell(key) as usize) & mask;
        loop {
            let slot = &mut self.slots[idx];
            if slot.0 != self.generation {
                *slot = (self.generation, key, cand);
                self.live.push(idx as u32);
                return;
            }
            if slot.1 == key {
                if canonical_order(&cand, &slot.2) == std::cmp::Ordering::Greater {
                    slot.2 = cand;
                }
                return;
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Extracts the representatives (in unspecified order) and clears the
    /// live list.
    fn drain(&mut self) -> Vec<VehicleState> {
        let next = self
            .live
            .iter()
            .map(|&i| self.slots[i as usize].2)
            .collect();
        self.live.clear();
        next
    }
}

/// Mixes a packed cell key into a table index (splitmix-style finalizer).
/// Hash quality only affects probe length, never any result.
#[inline]
fn hash_cell(key: (u128, u128)) -> u64 {
    let mut h = (key.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= ((key.0 >> 64) as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= (key.1 as u64).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= ((key.1 >> 64) as u64).wrapping_mul(0xd6e8_feb8_6659_fd93);
    h ^= h >> 29;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 32)
}

/// The ε-dedup cell of a state as a pair of packed integers: each quantized
/// coordinate of [`quantize`] is embedded order-preserving in a `u64` and
/// packed high-to-low, so two states share a `cell_key` iff they share a
/// `quantize` tuple (the equality the [`CellTable`] dedups on) and the
/// lexicographic key order equals the tuple order (so key-sorted groupings
/// remain available at two machine-word comparisons per key).
fn cell_key(s: &VehicleState, eps: f64) -> (u128, u128) {
    let (qx, qy, qt, qv) = quantize(s, eps);
    (
        (u128::from(zorder(qx)) << 64) | u128::from(zorder(qy)),
        (u128::from(zorder(qt)) << 64) | u128::from(zorder(qv)),
    )
}

/// Quantizes a state for ε-dedup. Position dims are scaled by ε, heading by
/// 0.15 rad and speed by 1 m/s — a state is dropped when all four quantized
/// coordinates match a visited state, approximating the paper's L2-norm
/// threshold test in O(1).
fn quantize(s: &VehicleState, eps: f64) -> (i64, i64, i64, i64) {
    (
        (s.x / eps).round() as i64,
        (s.y / eps).round() as i64,
        (s.theta / 0.15).round() as i64,
        (s.v / 1.0).round() as i64,
    )
}

/// Deterministic total order on states: primarily by speed — the canonical
/// dedup representative is the fastest, farthest-reaching state — with
/// full-state tie-breaking for reproducibility. `total_cmp` keeps the order
/// total even for non-finite states, so the sort can never misbehave.
fn canonical_order(a: &VehicleState, b: &VehicleState) -> Ordering {
    a.v.total_cmp(&b.v)
        .then(a.x.total_cmp(&b.x))
        .then(a.y.total_cmp(&b.y))
        .then(a.theta.total_cmp(&b.theta))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use iprism_dynamics::Trajectory;
    use iprism_geom::Seconds;

    fn open_road() -> RoadMap {
        RoadMap::straight_road(3, 3.5, 600.0)
    }

    fn ego() -> VehicleState {
        VehicleState::new(100.0, 5.25, 0.0, 10.0)
    }

    fn stationary_obstacle(x: f64, y: f64) -> Obstacle {
        let states = vec![VehicleState::new(x, y, 0.0, 0.0); 2];
        Obstacle::new(
            Trajectory::from_states(Seconds::new(0.0), Seconds::new(3.0), states),
            Meters::new(4.6),
            Meters::new(2.0),
        )
    }

    #[test]
    fn open_road_has_large_tube() {
        let tube = compute_reach_tube(&open_road(), ego(), &[], &ReachConfig::default());
        assert!(!tube.is_empty());
        assert!(tube.volume() > 50.0, "volume {}", tube.volume());
        assert_eq!(tube.slices().len(), ReachConfig::default().slices() + 1);
    }

    #[test]
    fn obstacle_shrinks_tube() {
        let free = compute_reach_tube(&open_road(), ego(), &[], &ReachConfig::default());
        let blocked = compute_reach_tube(
            &open_road(),
            ego(),
            &[stationary_obstacle(115.0, 5.25)],
            &ReachConfig::default(),
        );
        assert!(blocked.volume() < free.volume());
        assert!(blocked.volume() > 0.0);
    }

    #[test]
    fn surrounded_ego_has_empty_tube() {
        // Box the ego in completely at close range.
        let obstacles = vec![
            stationary_obstacle(106.0, 5.25), // ahead
            stationary_obstacle(94.0, 5.25),  // behind
            stationary_obstacle(100.0, 8.75), // left
            stationary_obstacle(100.0, 1.75), // right
            stationary_obstacle(106.0, 8.75),
            stationary_obstacle(106.0, 1.75),
        ];
        let cfg = ReachConfig {
            mode: SamplingMode::Boundary,
            ..ReachConfig::default()
        };
        let tube = compute_reach_tube(&open_road(), ego(), &obstacles, &cfg);
        // With 10 m/s the ego cannot stop before 106 and cannot swerve.
        assert!(
            tube.volume() < 10.0,
            "nearly trapped ego should have tiny tube, got {}",
            tube.volume()
        );
    }

    #[test]
    fn off_map_start_yields_empty_tube() {
        let e = VehicleState::new(100.0, 50.0, 0.0, 10.0);
        let tube = compute_reach_tube(&open_road(), e, &[], &ReachConfig::default());
        assert!(tube.is_empty());
        assert_eq!(tube.volume(), 0.0);
    }

    #[test]
    fn faster_ego_reaches_more() {
        let slow = compute_reach_tube(
            &open_road(),
            VehicleState::new(100.0, 5.25, 0.0, 3.0),
            &[],
            &ReachConfig::default(),
        );
        let fast = compute_reach_tube(
            &open_road(),
            VehicleState::new(100.0, 5.25, 0.0, 15.0),
            &[],
            &ReachConfig::default(),
        );
        assert!(fast.volume() > slow.volume());
    }

    #[test]
    fn longer_horizon_grows_tube_volume() {
        let short = ReachConfig {
            horizon: Seconds::new(1.5),
            ..ReachConfig::default()
        };
        let long = ReachConfig {
            horizon: Seconds::new(3.0),
            ..ReachConfig::default()
        };
        let ts = compute_reach_tube(&open_road(), ego(), &[], &short);
        let tl = compute_reach_tube(&open_road(), ego(), &[], &long);
        // Same grid extents depend on horizon, so compare cell counts scaled
        // by resolution — volume in m² is comparable.
        assert!(tl.volume() > ts.volume());
    }

    #[test]
    fn sampling_modes_agree_qualitatively() {
        // Footnote 5 of the paper: optimized and unoptimized computations
        // differ only marginally. Check the obstacle-induced *relative*
        // shrinkage agrees in direction and rough magnitude.
        let obstacle = stationary_obstacle(112.0, 5.25);
        let modes = [
            SamplingMode::Boundary,
            SamplingMode::Extreme,
            SamplingMode::Uniform { na: 3, ns: 5 },
        ];
        let mut ratios = Vec::new();
        for mode in modes {
            let cfg = ReachConfig {
                mode,
                ..ReachConfig::default()
            };
            let free = compute_reach_tube(&open_road(), ego(), &[], &cfg);
            let blocked =
                compute_reach_tube(&open_road(), ego(), std::slice::from_ref(&obstacle), &cfg);
            ratios.push(blocked.volume() / free.volume());
        }
        for r in &ratios {
            assert!(*r > 0.0 && *r < 1.0, "ratios {ratios:?}");
        }
        // All modes should agree the obstacle removes 10–90% of the tube.
        for w in ratios.windows(2) {
            assert!((w[0] - w[1]).abs() < 0.35, "ratios {ratios:?}");
        }
    }

    #[test]
    fn moving_obstacle_blocks_future_not_present() {
        // An actor far ahead but closing fast: the tube should shrink less
        // than for the same actor parked at its *current* position... and
        // more than for no actor.
        let closing_states: Vec<VehicleState> = (0..14)
            .map(|i| {
                VehicleState::new(
                    150.0 - 8.0 * 0.25 * i as f64,
                    5.25,
                    std::f64::consts::PI,
                    8.0,
                )
            })
            .collect();
        let closing = Obstacle::new(
            Trajectory::from_states(Seconds::new(0.0), Seconds::new(0.25), closing_states),
            Meters::new(4.6),
            Meters::new(2.0),
        );
        let free = compute_reach_tube(&open_road(), ego(), &[], &ReachConfig::default());
        let blocked = compute_reach_tube(&open_road(), ego(), &[closing], &ReachConfig::default());
        assert!(blocked.volume() < free.volume());
    }

    #[test]
    fn deterministic() {
        let cfg = ReachConfig::default();
        let o = stationary_obstacle(115.0, 5.25);
        let a = compute_reach_tube(&open_road(), ego(), std::slice::from_ref(&o), &cfg);
        let b = compute_reach_tube(&open_road(), ego(), &[o], &cfg);
        assert_eq!(a.volume(), b.volume());
        assert_eq!(a.state_count(), b.state_count());
    }

    #[test]
    fn adding_obstacles_never_grows_the_tube_much() {
        // Approximate monotonicity (the property STI's sign depends on):
        // adding an obstacle may only shrink the measured volume, up to the
        // small dedup-representative noise documented in DESIGN.md §8.
        // Deterministic pseudo-random obstacle placements.
        let map = open_road();
        let mut cfg = ReachConfig::fast();
        cfg.max_frontier = 256;
        let base = compute_reach_tube(&map, ego(), &[], &cfg);
        let mut state = 0x1234_5678_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..16 {
            let x = 105.0 + 35.0 * next();
            let y = 1.75 + 7.0 * next();
            let blocked = compute_reach_tube(&map, ego(), &[stationary_obstacle(x, y)], &cfg);
            assert!(
                blocked.volume() <= base.volume() * 1.05 + 1.0,
                "obstacle at ({x:.1},{y:.1}) grew tube: {} -> {}",
                base.volume(),
                blocked.volume()
            );
        }
    }

    #[test]
    fn more_obstacles_monotonically_shrink() {
        // Nested obstacle sets: every superset yields a no-larger tube.
        let map = open_road();
        let cfg = ReachConfig::default();
        let obstacles = [
            stationary_obstacle(112.0, 5.25),
            stationary_obstacle(112.0, 8.75),
            stationary_obstacle(112.0, 1.75),
        ];
        let mut prev = compute_reach_tube(&map, ego(), &[], &cfg).volume();
        for k in 1..=3 {
            let v = compute_reach_tube(&map, ego(), &obstacles[..k], &cfg).volume();
            assert!(
                v <= prev * 1.05 + 1.0,
                "superset grew tube at k={k}: {prev} -> {v}"
            );
            prev = v;
        }
        assert!(
            prev < compute_reach_tube(&map, ego(), &[], &cfg).volume() * 0.8,
            "a full wall must shrink the tube substantially"
        );
    }

    proptest::proptest! {
        /// `cell_key` is an order-preserving (and equality-preserving)
        /// embedding of the `quantize` tuple, so the packed dedup sort
        /// groups and orders cells exactly like the tuple sort it replaced.
        #[test]
        fn prop_cell_key_orders_like_quantize_tuple(
            a in proptest::collection::vec(-1e7..1e7f64, 4),
            b in proptest::collection::vec(-1e7..1e7f64, 4),
        ) {
            let sa = VehicleState::new(a[0], a[1], a[2], a[3]);
            let sb = VehicleState::new(b[0], b[1], b[2], b[3]);
            for eps in [0.5, 1.5, 2.0] {
                let tuple_cmp = quantize(&sa, eps).cmp(&quantize(&sb, eps));
                let key_cmp = cell_key(&sa, eps).cmp(&cell_key(&sb, eps));
                proptest::prop_assert_eq!(tuple_cmp, key_cmp);
            }
        }

        /// The cached/prefiltered path over an arbitrary obstacle subset is
        /// bit-identical (full [`ReachTube`] equality: slices, grid and
        /// truncation flag) to building everything from scratch with only
        /// that subset materialized — i.e. neither the shared [`SliceCache`]
        /// nor any broadphase/relevance prefilter changes a collision
        /// verdict anywhere in the pipeline.
        #[test]
        fn prop_cached_subset_matches_direct(
            placements in proptest::collection::vec(
                (103.0..140.0f64, 0.5..10.0f64), 0..5),
            mask in 0u32..32,
        ) {
            let map = open_road();
            let cfg = ReachConfig::fast();
            let obstacles: Vec<Obstacle> = placements
                .iter()
                .map(|&(x, y)| stationary_obstacle(x, y))
                .collect();
            let cache = SliceCache::new(&obstacles, &cfg);
            let active: Vec<usize> = (0..obstacles.len())
                .filter(|i| mask & (1 << i) != 0)
                .collect();
            let subset: Vec<Obstacle> =
                active.iter().map(|&i| obstacles[i].clone()).collect();
            let cached = compute_reach_tube_cached(&map, ego(), &cache, &active, &cfg);
            let direct = compute_reach_tube(&map, ego(), &subset, &cfg);
            proptest::prop_assert_eq!(cached, direct);
        }
    }

    #[test]
    fn stationary_ego_small_but_nonempty_tube() {
        let e = VehicleState::new(100.0, 5.25, 0.0, 0.0);
        let tube = compute_reach_tube(&open_road(), e, &[], &ReachConfig::default());
        assert!(!tube.is_empty());
        // Can only accelerate forward from rest: small tube.
        let fast = compute_reach_tube(&open_road(), ego(), &[], &ReachConfig::default());
        assert!(tube.volume() < fast.volume());
    }
}
