//! Algorithm 1: frontier-by-frontier reach-tube propagation.

use std::cmp::Ordering;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use iprism_dynamics::{ControlInput, VehicleState};
use iprism_geom::{Aabb, Grid2, Meters, Obb, Seconds, Vec2};
use iprism_map::RoadMap;

use crate::{Obstacle, ReachConfig, ReachTube, SamplingMode};

/// Computes the ego's escape-route reach-tube over `[t, t+k]`.
///
/// This is the paper's `Reach(M, X_{t:t+k}, x_t^ego)` (Algorithm 1): starting
/// from the ego state, controls are sampled per [`SamplingMode`] at every
/// time slice, states are propagated through the bicycle model, and a
/// propagated state survives only when the ego footprint there
///
/// * does not intersect any obstacle footprint at that slice's time (nor at
///   the slice midpoint, to suppress tunnelling), and
/// * stays fully inside the drivable area `M`.
///
/// Surviving states are ε-deduplicated (optimization 1). The tube volume is
/// measured on a fixed ego-centred occupancy grid whose extent depends only
/// on the ego state and the config — never on the obstacles — so the
/// volumes of the factual and counterfactual tubes in STI's Eq. (4)–(5) are
/// directly comparable.
pub fn compute_reach_tube(
    map: &RoadMap,
    ego: VehicleState,
    obstacles: &[Obstacle],
    config: &ReachConfig,
) -> ReachTube {
    config.validate();
    iprism_contracts::check_finite_state(
        "compute_reach_tube ego",
        &[ego.x, ego.y, ego.theta, ego.v],
    );
    iprism_contracts::check_heading_normalized("compute_reach_tube ego", ego.theta);
    let controls = control_set(config);
    let n_slices = config.slices();
    let (ego_len, ego_wid) = config.ego_dims;

    // Ego-centred grid covering everything reachable within the horizon.
    let k = config.horizon.get();
    let reach_radius =
        ego.v * k + 0.5 * config.model.limits.accel_max * k * k + ego_len.get() + 2.0;
    let grid_bounds = Aabb::new(
        ego.position() - Vec2::new(reach_radius, reach_radius),
        ego.position() + Vec2::new(reach_radius, reach_radius),
    );
    let mut grid = Grid2::new(grid_bounds, config.grid_resolution);

    let mut slices: Vec<Vec<VehicleState>> = Vec::with_capacity(n_slices + 1);
    slices.push(vec![ego]);
    let mut truncated = false;

    for slice_idx in 1..=n_slices {
        let slice_time = config.start_time + slice_idx as f64 * config.dt;

        // Phase 1: generate every feasible candidate of this slice and mark
        // its swept segment. Marking happens for *all* feasible transitions
        // — including ones the ε-dedup below drops from further expansion —
        // so the volume measure does not depend on which duplicate becomes
        // the expansion representative.
        let mut candidates: Vec<VehicleState> = Vec::new();
        for &state in &slices[slice_idx - 1] {
            for &u in &controls {
                let cand = config.model.step(state, u, config.dt);
                if !cand.is_finite() {
                    continue;
                }
                let fp = cand.footprint(ego_len, ego_wid);
                // Drivability uses a slightly shrunk body: roads have
                // usable margins, and without the allowance every tilted
                // state near a lane edge dies and the tube loses all
                // lateral spread.
                let drive_fp = cand.footprint(
                    (ego_len - 2.0 * config.drivable_margin).max(Meters::new(0.1)),
                    (ego_wid - 2.0 * config.drivable_margin).max(Meters::new(0.1)),
                );
                if !map.is_obb_drivable(&drive_fp) {
                    continue;
                }
                if collides(&fp, obstacles, slice_time, config.safety_margin) {
                    continue;
                }
                // Midpoint check against tunnelling through thin/fast actors.
                let mid = VehicleState::new(
                    (state.x + cand.x) * 0.5,
                    (state.y + cand.y) * 0.5,
                    cand.theta,
                    cand.v,
                );
                let mid_fp = mid.footprint(ego_len, ego_wid);
                if collides(
                    &mid_fp,
                    obstacles,
                    slice_time - config.dt * 0.5,
                    config.safety_margin,
                ) {
                    continue;
                }
                grid.mark_segment(state.position(), cand.position());
                candidates.push(cand);
            }
        }

        // Phase 2: ε-dedup (optimization 1) with a *canonical* representative
        // per quantized state cell — the fastest candidate, ties broken by
        // full state ordering. Canonical selection makes the expansion
        // robust to pruning: removing candidates (because an obstacle
        // appeared) can only replace a representative with a slower one,
        // never with a farther-reaching one.
        let mut best: BTreeMap<(i64, i64, i64, i64), VehicleState> = BTreeMap::new();
        for cand in candidates {
            let key = quantize(&cand, config.dedup_epsilon);
            match best.entry(key) {
                Entry::Vacant(e) => {
                    e.insert(cand);
                }
                Entry::Occupied(mut e) => {
                    if canonical_order(&cand, e.get()) == Ordering::Greater {
                        e.insert(cand);
                    }
                }
            }
        }
        let mut next: Vec<VehicleState> = best.into_values().collect();
        next.sort_by(|a, b| canonical_order(b, a));
        if next.len() > config.max_frontier {
            next.truncate(config.max_frontier);
            truncated = true;
        }
        slices.push(next);
    }

    ReachTube::new(slices, grid, truncated)
}

fn collides(fp: &Obb, obstacles: &[Obstacle], time: Seconds, margin: Meters) -> bool {
    obstacles
        .iter()
        .any(|o| fp.intersects(&o.footprint_at(time, margin)))
}

fn control_set(config: &ReachConfig) -> Vec<ControlInput> {
    let limits = &config.model.limits;
    match config.mode {
        SamplingMode::Boundary => limits.boundary_controls().to_vec(),
        SamplingMode::Extreme => limits.extreme_controls().to_vec(),
        SamplingMode::Uniform { na, ns } => limits.lattice(na, ns),
    }
}

/// Quantizes a state for ε-dedup. Position dims are scaled by ε, heading by
/// 0.15 rad and speed by 1 m/s — a state is dropped when all four quantized
/// coordinates match a visited state, approximating the paper's L2-norm
/// threshold test in O(1).
fn quantize(s: &VehicleState, eps: f64) -> (i64, i64, i64, i64) {
    (
        (s.x / eps).round() as i64,
        (s.y / eps).round() as i64,
        (s.theta / 0.15).round() as i64,
        (s.v / 1.0).round() as i64,
    )
}

/// Deterministic total order on states: primarily by speed — the canonical
/// dedup representative is the fastest, farthest-reaching state — with
/// full-state tie-breaking for reproducibility. `total_cmp` keeps the order
/// total even for non-finite states, so the sort can never misbehave.
fn canonical_order(a: &VehicleState, b: &VehicleState) -> Ordering {
    a.v.total_cmp(&b.v)
        .then(a.x.total_cmp(&b.x))
        .then(a.y.total_cmp(&b.y))
        .then(a.theta.total_cmp(&b.theta))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use iprism_dynamics::Trajectory;

    fn open_road() -> RoadMap {
        RoadMap::straight_road(3, 3.5, 600.0)
    }

    fn ego() -> VehicleState {
        VehicleState::new(100.0, 5.25, 0.0, 10.0)
    }

    fn stationary_obstacle(x: f64, y: f64) -> Obstacle {
        let states = vec![VehicleState::new(x, y, 0.0, 0.0); 2];
        Obstacle::new(
            Trajectory::from_states(Seconds::new(0.0), Seconds::new(3.0), states),
            Meters::new(4.6),
            Meters::new(2.0),
        )
    }

    #[test]
    fn open_road_has_large_tube() {
        let tube = compute_reach_tube(&open_road(), ego(), &[], &ReachConfig::default());
        assert!(!tube.is_empty());
        assert!(tube.volume() > 50.0, "volume {}", tube.volume());
        assert_eq!(tube.slices().len(), ReachConfig::default().slices() + 1);
    }

    #[test]
    fn obstacle_shrinks_tube() {
        let free = compute_reach_tube(&open_road(), ego(), &[], &ReachConfig::default());
        let blocked = compute_reach_tube(
            &open_road(),
            ego(),
            &[stationary_obstacle(115.0, 5.25)],
            &ReachConfig::default(),
        );
        assert!(blocked.volume() < free.volume());
        assert!(blocked.volume() > 0.0);
    }

    #[test]
    fn surrounded_ego_has_empty_tube() {
        // Box the ego in completely at close range.
        let obstacles = vec![
            stationary_obstacle(106.0, 5.25), // ahead
            stationary_obstacle(94.0, 5.25),  // behind
            stationary_obstacle(100.0, 8.75), // left
            stationary_obstacle(100.0, 1.75), // right
            stationary_obstacle(106.0, 8.75),
            stationary_obstacle(106.0, 1.75),
        ];
        let cfg = ReachConfig {
            mode: SamplingMode::Boundary,
            ..ReachConfig::default()
        };
        let tube = compute_reach_tube(&open_road(), ego(), &obstacles, &cfg);
        // With 10 m/s the ego cannot stop before 106 and cannot swerve.
        assert!(
            tube.volume() < 10.0,
            "nearly trapped ego should have tiny tube, got {}",
            tube.volume()
        );
    }

    #[test]
    fn off_map_start_yields_empty_tube() {
        let e = VehicleState::new(100.0, 50.0, 0.0, 10.0);
        let tube = compute_reach_tube(&open_road(), e, &[], &ReachConfig::default());
        assert!(tube.is_empty());
        assert_eq!(tube.volume(), 0.0);
    }

    #[test]
    fn faster_ego_reaches_more() {
        let slow = compute_reach_tube(
            &open_road(),
            VehicleState::new(100.0, 5.25, 0.0, 3.0),
            &[],
            &ReachConfig::default(),
        );
        let fast = compute_reach_tube(
            &open_road(),
            VehicleState::new(100.0, 5.25, 0.0, 15.0),
            &[],
            &ReachConfig::default(),
        );
        assert!(fast.volume() > slow.volume());
    }

    #[test]
    fn longer_horizon_grows_tube_volume() {
        let short = ReachConfig {
            horizon: Seconds::new(1.5),
            ..ReachConfig::default()
        };
        let long = ReachConfig {
            horizon: Seconds::new(3.0),
            ..ReachConfig::default()
        };
        let ts = compute_reach_tube(&open_road(), ego(), &[], &short);
        let tl = compute_reach_tube(&open_road(), ego(), &[], &long);
        // Same grid extents depend on horizon, so compare cell counts scaled
        // by resolution — volume in m² is comparable.
        assert!(tl.volume() > ts.volume());
    }

    #[test]
    fn sampling_modes_agree_qualitatively() {
        // Footnote 5 of the paper: optimized and unoptimized computations
        // differ only marginally. Check the obstacle-induced *relative*
        // shrinkage agrees in direction and rough magnitude.
        let obstacle = stationary_obstacle(112.0, 5.25);
        let modes = [
            SamplingMode::Boundary,
            SamplingMode::Extreme,
            SamplingMode::Uniform { na: 3, ns: 5 },
        ];
        let mut ratios = Vec::new();
        for mode in modes {
            let cfg = ReachConfig {
                mode,
                ..ReachConfig::default()
            };
            let free = compute_reach_tube(&open_road(), ego(), &[], &cfg);
            let blocked =
                compute_reach_tube(&open_road(), ego(), std::slice::from_ref(&obstacle), &cfg);
            ratios.push(blocked.volume() / free.volume());
        }
        for r in &ratios {
            assert!(*r > 0.0 && *r < 1.0, "ratios {ratios:?}");
        }
        // All modes should agree the obstacle removes 10–90% of the tube.
        for w in ratios.windows(2) {
            assert!((w[0] - w[1]).abs() < 0.35, "ratios {ratios:?}");
        }
    }

    #[test]
    fn moving_obstacle_blocks_future_not_present() {
        // An actor far ahead but closing fast: the tube should shrink less
        // than for the same actor parked at its *current* position... and
        // more than for no actor.
        let closing_states: Vec<VehicleState> = (0..14)
            .map(|i| {
                VehicleState::new(
                    150.0 - 8.0 * 0.25 * i as f64,
                    5.25,
                    std::f64::consts::PI,
                    8.0,
                )
            })
            .collect();
        let closing = Obstacle::new(
            Trajectory::from_states(Seconds::new(0.0), Seconds::new(0.25), closing_states),
            Meters::new(4.6),
            Meters::new(2.0),
        );
        let free = compute_reach_tube(&open_road(), ego(), &[], &ReachConfig::default());
        let blocked = compute_reach_tube(&open_road(), ego(), &[closing], &ReachConfig::default());
        assert!(blocked.volume() < free.volume());
    }

    #[test]
    fn deterministic() {
        let cfg = ReachConfig::default();
        let o = stationary_obstacle(115.0, 5.25);
        let a = compute_reach_tube(&open_road(), ego(), std::slice::from_ref(&o), &cfg);
        let b = compute_reach_tube(&open_road(), ego(), &[o], &cfg);
        assert_eq!(a.volume(), b.volume());
        assert_eq!(a.state_count(), b.state_count());
    }

    #[test]
    fn adding_obstacles_never_grows_the_tube_much() {
        // Approximate monotonicity (the property STI's sign depends on):
        // adding an obstacle may only shrink the measured volume, up to the
        // small dedup-representative noise documented in DESIGN.md §8.
        // Deterministic pseudo-random obstacle placements.
        let map = open_road();
        let mut cfg = ReachConfig::fast();
        cfg.max_frontier = 256;
        let base = compute_reach_tube(&map, ego(), &[], &cfg);
        let mut state = 0x1234_5678_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..16 {
            let x = 105.0 + 35.0 * next();
            let y = 1.75 + 7.0 * next();
            let blocked = compute_reach_tube(&map, ego(), &[stationary_obstacle(x, y)], &cfg);
            assert!(
                blocked.volume() <= base.volume() * 1.05 + 1.0,
                "obstacle at ({x:.1},{y:.1}) grew tube: {} -> {}",
                base.volume(),
                blocked.volume()
            );
        }
    }

    #[test]
    fn more_obstacles_monotonically_shrink() {
        // Nested obstacle sets: every superset yields a no-larger tube.
        let map = open_road();
        let cfg = ReachConfig::default();
        let obstacles = [
            stationary_obstacle(112.0, 5.25),
            stationary_obstacle(112.0, 8.75),
            stationary_obstacle(112.0, 1.75),
        ];
        let mut prev = compute_reach_tube(&map, ego(), &[], &cfg).volume();
        for k in 1..=3 {
            let v = compute_reach_tube(&map, ego(), &obstacles[..k], &cfg).volume();
            assert!(
                v <= prev * 1.05 + 1.0,
                "superset grew tube at k={k}: {prev} -> {v}"
            );
            prev = v;
        }
        assert!(
            prev < compute_reach_tube(&map, ego(), &[], &cfg).volume() * 0.8,
            "a full wall must shrink the tube substantially"
        );
    }

    #[test]
    fn stationary_ego_small_but_nonempty_tube() {
        let e = VehicleState::new(100.0, 5.25, 0.0, 0.0);
        let tube = compute_reach_tube(&open_road(), e, &[], &ReachConfig::default());
        assert!(!tube.is_empty());
        // Can only accelerate forward from rest: small tube.
        let fast = compute_reach_tube(&open_road(), ego(), &[], &ReachConfig::default());
        assert!(tube.volume() < fast.volume());
    }
}
