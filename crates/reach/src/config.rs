//! Reach-tube computation parameters.

use iprism_dynamics::{BicycleModel, ControlLimits};
use iprism_units::{Meters, Radians, Seconds};
use serde::{Deserialize, Serialize};

/// How controls are sampled at each time slice of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SamplingMode {
    /// The paper's optimization 2: enumerate `{0, a_max} × {φ_min, 0,
    /// φ_max}` (six controls). Traces the tube boundary cheaply.
    Boundary,
    /// All nine extreme combinations `{a_min, 0, a_max} × {φ_min, 0,
    /// φ_max}` — additionally covers hard-braking escape routes.
    Extreme,
    /// Uniform lattice of `na × ns` controls spanning the admissible box,
    /// extremes always included (the unoptimized Algorithm 1).
    Uniform {
        /// Acceleration samples (≥ 2).
        na: usize,
        /// Steering samples (≥ 2).
        ns: usize,
    },
}

/// The steering range sampled by the reach computation (rad). Full
/// mechanical steering lock (±35°) tilts the body so sharply within one
/// time slice that every steered state leaves its lane footprint-first;
/// escape-route analysis samples the dynamically sensible range instead
/// (±17°, comfortable evasive steering at road speeds).
pub const REACH_STEER_LIMIT: Radians = Radians::raw(0.3);

fn reach_model() -> BicycleModel {
    BicycleModel::with_limits(
        Meters::new(2.9),
        ControlLimits {
            steer_min: -REACH_STEER_LIMIT.get(),
            steer_max: REACH_STEER_LIMIT.get(),
            ..ControlLimits::default()
        },
    )
}

/// Configuration of [`crate::compute_reach_tube`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReachConfig {
    /// Time-slice length Δt.
    pub dt: Seconds,
    /// Horizon k: the tube spans `[t, t+k]`.
    pub horizon: Seconds,
    /// ε of the paper's optimization 1 — states closer than this (L2 over a
    /// scaled state vector) are deduplicated.
    pub dedup_epsilon: f64,
    /// Control sampling strategy.
    pub mode: SamplingMode,
    /// Occupancy-grid cell size for the volume measure.
    pub grid_resolution: Meters,
    /// Obstacle inflation margin; a small buffer around other actors.
    pub safety_margin: Meters,
    /// Hard cap on the per-slice frontier size (deterministic truncation).
    pub max_frontier: usize,
    /// Lateral/longitudinal shrink applied to the ego footprint for the
    /// *drivability* check only (m per side). Roads have usable margins;
    /// without this, any tilted body near a lane edge is spuriously
    /// pruned and lateral escape routes vanish.
    pub drivable_margin: Meters,
    /// Ego footprint `(length, width)` used for collision checks.
    pub ego_dims: (Meters, Meters),
    /// Vehicle model used for propagation.
    pub model: BicycleModel,
    /// Absolute start time `t` (must match the obstacle trajectories).
    pub start_time: Seconds,
}

impl Default for ReachConfig {
    /// Defaults used throughout the evaluation: Δt = 0.25 s, k = 2.5 s,
    /// ε = 1.5, boundary-control enumeration, 0.5 m grid.
    fn default() -> Self {
        ReachConfig {
            dt: Seconds::new(0.25),
            horizon: Seconds::new(2.5),
            dedup_epsilon: 1.5,
            mode: SamplingMode::Boundary,
            grid_resolution: Meters::new(0.5),
            safety_margin: Meters::new(0.25),
            max_frontier: 768,
            drivable_margin: Meters::new(0.3),
            ego_dims: (Meters::new(4.6), Meters::new(2.0)),
            model: reach_model(),
            start_time: Seconds::new(0.0),
        }
    }
}

impl ReachConfig {
    /// A cheaper preset for in-the-loop use (SMC reward evaluation during RL
    /// training): 8 slices of 0.3 s, coarser dedup and grid, tighter
    /// frontier cap. Roughly 5–10× faster than the default at the cost of a
    /// coarser tube.
    pub fn fast() -> Self {
        ReachConfig {
            dt: Seconds::new(0.3),
            horizon: Seconds::new(2.4),
            dedup_epsilon: 2.0,
            grid_resolution: Meters::new(0.75),
            max_frontier: 256,
            ..ReachConfig::default()
        }
    }

    /// Number of time slices `⌈k / Δt⌉`.
    pub fn slices(&self) -> usize {
        (self.horizon / self.dt).ceil() as usize
    }

    /// Returns a copy with a different start time (convenience for sweeping
    /// a trace).
    pub fn at_time(&self, t: Seconds) -> Self {
        let mut c = self.clone();
        c.start_time = t;
        c
    }

    /// Validates the configuration, panicking on nonsense values.
    ///
    /// # Panics
    ///
    /// Panics when any parameter is non-positive where positivity is
    /// required, or when a uniform mode has fewer than 2×2 samples.
    pub fn validate(&self) {
        assert!(
            self.dt.get() > 0.0 && self.dt.is_finite(),
            "dt must be positive"
        );
        assert!(
            self.horizon >= self.dt,
            "horizon must be at least one time slice"
        );
        assert!(self.dedup_epsilon > 0.0, "dedup epsilon must be positive");
        assert!(
            self.grid_resolution.get() > 0.0,
            "grid resolution must be positive"
        );
        assert!(
            self.safety_margin.get() >= 0.0,
            "safety margin must be >= 0"
        );
        assert!(self.max_frontier >= 1, "frontier cap must be >= 1");
        assert!(
            self.drivable_margin.get() >= 0.0
                && 2.0 * self.drivable_margin.get() < self.ego_dims.1.get(),
            "drivable margin must be >= 0 and less than half the ego width"
        );
        assert!(
            self.ego_dims.0.get() > 0.0 && self.ego_dims.1.get() > 0.0,
            "ego dims must be positive"
        );
        if let SamplingMode::Uniform { na, ns } = self.mode {
            assert!(na >= 2 && ns >= 2, "uniform mode needs >= 2x2 samples");
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;

    #[test]
    fn default_is_valid() {
        let c = ReachConfig::default();
        c.validate();
        assert_eq!(c.slices(), 10);
    }

    #[test]
    fn at_time_shifts_start() {
        let c = ReachConfig::default().at_time(Seconds::new(5.0));
        assert_eq!(c.start_time, Seconds::new(5.0));
        assert_eq!(c.dt, ReachConfig::default().dt);
    }

    #[test]
    fn slices_rounds_up() {
        let c = ReachConfig {
            horizon: Seconds::new(1.1),
            dt: Seconds::new(0.25),
            ..ReachConfig::default()
        };
        assert_eq!(c.slices(), 5);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn bad_dt_panics() {
        let c = ReachConfig {
            dt: Seconds::new(0.0),
            ..ReachConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "2x2")]
    fn bad_uniform_panics() {
        let c = ReachConfig {
            mode: SamplingMode::Uniform { na: 1, ns: 5 },
            ..ReachConfig::default()
        };
        c.validate();
    }
}
