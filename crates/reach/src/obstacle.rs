//! Moving obstacles against which the reach-tube is pruned.

use iprism_dynamics::Trajectory;
use iprism_geom::{Meters, Obb, Seconds};
use serde::{Deserialize, Serialize};

/// An obstacle with a (predicted or ground-truth) trajectory and a
/// rectangular footprint.
///
/// This is the reach-tube's view of the paper's `X_{t:t+k}^{(i)}`: the
/// trajectory of actor *i* over the analysis horizon. The trajectory may
/// come from a recorded trace (offline STI characterization) or from the
/// CVTR predictor (online SMC operation) — the reach computation does not
/// care.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Obstacle {
    /// The obstacle's states over (at least) the analysis horizon.
    pub trajectory: Trajectory,
    /// Footprint length (m).
    pub length: f64,
    /// Footprint width (m).
    pub width: f64,
}

impl Obstacle {
    /// Creates an obstacle.
    ///
    /// # Panics
    ///
    /// Panics when the trajectory is empty or the dimensions are not
    /// strictly positive.
    pub fn new(trajectory: Trajectory, length: Meters, width: Meters) -> Self {
        let (length, width) = (length.get(), width.get());
        assert!(
            !trajectory.is_empty(),
            "obstacle trajectory must be non-empty"
        );
        assert!(
            length > 0.0 && width > 0.0,
            "obstacle dims must be positive, got {length} x {width}"
        );
        Obstacle {
            trajectory,
            length,
            width,
        }
    }

    /// The obstacle footprint at absolute time `time`, interpolated along
    /// the trajectory (clamped at the ends), optionally inflated by
    /// `margin`.
    pub fn footprint_at(&self, time: Seconds, margin: Meters) -> Obb {
        // `new` rejects empty trajectories, so the fallback is unreachable
        // unless the public field was overwritten. Validating builds catch
        // that corruption loudly; release builds fall back to a zero-size
        // footprint at the origin (prunes nothing) instead of panicking
        // mid-reach.
        iprism_contracts::check_nonempty_trajectory(
            "Obstacle::footprint_at",
            self.trajectory.is_empty(),
        );
        let s = self
            .trajectory
            .state_at_time(time.get())
            .unwrap_or_default();
        self.footprint_of(s, margin)
    }

    /// Footprint OBB for an already-interpolated trajectory state — the one
    /// construction both [`Obstacle::footprint_at`] and the slice cache use,
    /// so cached and uncached collision checks are bit-identical.
    pub(crate) fn footprint_of(&self, s: iprism_dynamics::VehicleState, margin: Meters) -> Obb {
        Obb::new(
            s.pose(),
            Meters::new(self.length) + margin * 2.0,
            Meters::new(self.width) + margin * 2.0,
        )
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use iprism_dynamics::VehicleState;

    fn moving_obstacle() -> Obstacle {
        let states = (0..11)
            .map(|i| VehicleState::new(i as f64, 0.0, 0.0, 10.0))
            .collect();
        Obstacle::new(
            Trajectory::from_states(Seconds::new(0.0), Seconds::new(0.1), states),
            Meters::new(4.6),
            Meters::new(2.0),
        )
    }

    #[test]
    fn footprint_interpolates() {
        let o = moving_obstacle();
        let fp = o.footprint_at(Seconds::new(0.55), Meters::new(0.0));
        assert!((fp.center().x - 5.5).abs() < 1e-9);
        assert_eq!(fp.length, 4.6);
    }

    #[test]
    fn footprint_clamps_beyond_horizon() {
        let o = moving_obstacle();
        assert!(
            (o.footprint_at(Seconds::new(99.0), Meters::new(0.0))
                .center()
                .x
                - 10.0)
                .abs()
                < 1e-9
        );
        assert!(
            (o.footprint_at(Seconds::new(-1.0), Meters::new(0.0))
                .center()
                .x)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn margin_inflates() {
        let o = moving_obstacle();
        let fp = o.footprint_at(Seconds::new(0.0), Meters::new(0.5));
        assert!((fp.length - 5.6).abs() < 1e-12);
        assert!((fp.width - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_trajectory_panics() {
        let _ = Obstacle::new(
            Trajectory::new(Seconds::new(0.0), Seconds::new(0.1)),
            Meters::new(4.6),
            Meters::new(2.0),
        );
    }
}
