//! The computed reach-tube and its volume measure.

use iprism_dynamics::VehicleState;
use iprism_geom::Grid2;
use serde::{Deserialize, Serialize};

/// The result of Algorithm 1: the surviving states per time slice plus the
/// occupancy grid measuring state-space volume.
///
/// Slice 0 always holds exactly the initial ego state; slices `1..` hold the
/// propagated, collision-free, deduplicated states. The *volume* counts grid
/// cells touched by slices `1..` — strictly future escape routes — so a tube
/// whose frontier dies immediately has volume 0 (no escape route).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReachTube {
    slices: Vec<Vec<VehicleState>>,
    grid: Grid2,
    truncated: bool,
}

impl ReachTube {
    pub(crate) fn new(slices: Vec<Vec<VehicleState>>, grid: Grid2, truncated: bool) -> Self {
        ReachTube {
            slices,
            grid,
            truncated,
        }
    }

    /// States per time slice (slice 0 is the initial state).
    #[inline]
    pub fn slices(&self) -> &[Vec<VehicleState>] {
        &self.slices
    }

    /// Total number of stored states across all slices.
    pub fn state_count(&self) -> usize {
        self.slices.iter().map(Vec::len).sum()
    }

    /// Number of occupied volume cells (`|T|` in cell units).
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.grid.occupied_cells()
    }

    /// Tube volume in m² (occupied cells × cell area) — the `|T|` of
    /// Eq. (4)–(5).
    #[inline]
    pub fn volume(&self) -> f64 {
        self.grid.occupied_area()
    }

    /// The underlying occupancy grid.
    #[inline]
    pub fn grid(&self) -> &Grid2 {
        &self.grid
    }

    /// `true` when no future state survived — the paper's *safety hazard*
    /// condition (escape routes reduced to zero, §II).
    pub fn is_empty(&self) -> bool {
        self.slices.iter().skip(1).all(Vec::is_empty)
    }

    /// The slice index after which the frontier died, if it did.
    pub fn frontier_death_slice(&self) -> Option<usize> {
        self.slices
            .iter()
            .enumerate()
            .skip(1)
            .find(|(_, s)| s.is_empty())
            .map(|(i, _)| i)
    }

    /// `true` when the per-slice frontier cap bounded the expansion.
    ///
    /// Truncation is a normal part of keeping the computation cheap: the
    /// frontier is sorted canonically (fastest states first) before
    /// truncating, so the retained states are the tube's envelope and the
    /// volume remains a stable measure.
    #[inline]
    pub fn was_truncated(&self) -> bool {
        self.truncated
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use iprism_geom::{Aabb, Meters, Vec2};

    fn tube_with(slices: Vec<Vec<VehicleState>>) -> ReachTube {
        let mut grid = Grid2::new(
            Aabb::new(Vec2::new(-50.0, -50.0), Vec2::new(50.0, 50.0)),
            Meters::new(0.5),
        );
        for s in slices.iter().skip(1).flatten() {
            grid.mark(s.position());
        }
        ReachTube::new(slices, grid, false)
    }

    #[test]
    fn empty_future_is_empty_tube() {
        let t = tube_with(vec![vec![VehicleState::default()], vec![], vec![]]);
        assert!(t.is_empty());
        assert_eq!(t.cell_count(), 0);
        assert_eq!(t.volume(), 0.0);
        assert_eq!(t.frontier_death_slice(), Some(1));
    }

    #[test]
    fn volume_counts_future_slices_only() {
        let t = tube_with(vec![
            vec![VehicleState::new(0.0, 0.0, 0.0, 5.0)],
            vec![
                VehicleState::new(1.0, 0.0, 0.0, 5.0),
                VehicleState::new(2.0, 0.0, 0.0, 5.0),
            ],
        ]);
        assert!(!t.is_empty());
        assert_eq!(t.cell_count(), 2);
        assert!((t.volume() - 2.0 * 0.25).abs() < 1e-12);
        assert_eq!(t.state_count(), 3);
        assert_eq!(t.frontier_death_slice(), None);
    }

    #[test]
    fn truncation_flag() {
        let t = ReachTube::new(
            vec![vec![VehicleState::default()]],
            Grid2::new(Aabb::new(Vec2::ZERO, Vec2::new(1.0, 1.0)), Meters::new(0.5)),
            true,
        );
        assert!(t.was_truncated());
    }
}
