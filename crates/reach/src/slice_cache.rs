//! Per-slice obstacle broadphase cache shared across counterfactual tubes.
//!
//! [`crate::compute_reach_tube`] tests every candidate ego state against
//! every obstacle at the candidate's time slice. The slice times are fixed
//! by the [`ReachConfig`], so each obstacle's interpolated footprint — and
//! its midpoint footprint for the anti-tunnelling check — is a function of
//! the slice index alone. The naive loop nevertheless re-interpolated the
//! trajectory and rebuilt the OBB for *every candidate*, an
//! O(candidates × obstacles) allocation-heavy inner loop.
//!
//! [`SliceCache`] precomputes, once per (obstacle, slice):
//!
//! * the obstacle's interpolated OBB at the slice time and at the slice
//!   midpoint (built through the exact same `Obstacle::footprint_at`
//!   arithmetic, so collision outcomes are bit-identical to the uncached
//!   path), and
//! * a conservative **reject AABB** per OBB — the OBB's bounding box
//!   inflated by the ego footprint's circumradius. A candidate whose centre
//!   lies outside the reject box provably cannot intersect the obstacle, so
//!   the broadphase skips the SAT narrow phase (and the ego-OBB
//!   construction) for the overwhelming majority of candidate/obstacle
//!   pairs.
//!
//! The cache depends only on the obstacle list and the config — not on
//! which counterfactual subset of obstacles is active — so the STI
//! evaluator builds it **once** and shares it (immutably, hence safely
//! across threads) between the factual tube, the empty tube and all `N`
//! per-actor counterfactual tubes.
//!
//! The cache also answers reachability-level relevance queries
//! ([`SliceCache::interacts`]): an obstacle whose reject boxes all lie
//! beyond the ego's maximum kinematic reach can be dropped from the active
//! set — or its whole counterfactual tube skipped — with bit-identical
//! results.

use iprism_dynamics::VehicleState;
use iprism_geom::{Aabb, Meters, Obb, Vec2};

use crate::{Obstacle, ReachConfig};

/// Extra conservatism (m) added to every broadphase inflation so SAT's own
/// epsilon slack (touching boxes count as intersecting) can never produce a
/// hit that the broadphase rejected.
const BROADPHASE_SLACK: f64 = 1e-3;

/// Precomputed per-slice collision data for one obstacle at one time slice.
#[derive(Debug, Clone)]
pub(crate) struct SliceFootprint {
    /// Obstacle OBB at the slice time, inflated by the safety margin.
    pub(crate) obb: Obb,
    /// `obb`'s AABB inflated by the ego circumradius: candidates whose
    /// centre falls outside cannot intersect `obb`.
    pub(crate) reject: Aabb,
    /// Obstacle OBB at the slice midpoint (anti-tunnelling check).
    pub(crate) mid_obb: Obb,
    /// Reject AABB for `mid_obb`.
    pub(crate) mid_reject: Aabb,
}

/// Per-obstacle data: footprints for every slice plus their union bounds.
#[derive(Debug, Clone)]
struct CachedObstacle {
    /// One entry per slice, index `slice_idx - 1`.
    slices: Vec<SliceFootprint>,
    /// Union of every reject AABB — the obstacle's total swept extent over
    /// the horizon, already inflated for the broadphase.
    bounds: Aabb,
}

/// Precomputed obstacle broadphase data for one [`ReachConfig`], shared by
/// every (counterfactual) reach-tube of an STI evaluation.
///
/// Build once with [`SliceCache::new`], then compute tubes over arbitrary
/// obstacle subsets with [`crate::compute_reach_tube_cached`].
#[derive(Debug, Clone)]
pub struct SliceCache {
    obstacles: Vec<CachedObstacle>,
    /// `horizon + dt` (s): conservative time span covering the discrete
    /// Euler propagation's overshoot past the nominal horizon.
    reach_span: f64,
    /// Largest acceleration magnitude the model can command (m/s²).
    accel_mag: f64,
}

impl SliceCache {
    /// Precomputes slice footprints and reject boxes for `obstacles`.
    ///
    /// The cache is tied to the `config` it was built with (slice times,
    /// safety margin and ego dimensions are baked in); compute tubes only
    /// with the same configuration.
    pub fn new(obstacles: &[Obstacle], config: &ReachConfig) -> Self {
        let n_slices = config.slices();
        let (ego_len, ego_wid) = config.ego_dims;
        // Any point of the ego footprint is within the circumradius of its
        // centre, so inflating an obstacle box by it makes centre-point
        // containment a sound broadphase.
        let inflation = Meters::new(
            0.5 * (ego_len.get() * ego_len.get() + ego_wid.get() * ego_wid.get()).sqrt()
                + BROADPHASE_SLACK,
        );
        let cached = obstacles
            .iter()
            .map(|obstacle| {
                iprism_contracts::check_nonempty_trajectory(
                    "SliceCache::new",
                    obstacle.trajectory.is_empty(),
                );
                let mut cursor = obstacle.trajectory.cursor();
                let mut slices = Vec::with_capacity(n_slices);
                let mut bounds: Option<Aabb> = None;
                for slice_idx in 1..=n_slices {
                    // Exactly the times the uncached inner loop used.
                    let slice_time = config.start_time + slice_idx as f64 * config.dt;
                    let mid_time = slice_time - config.dt * 0.5;
                    // Midpoint first: the cursor sweep must be monotone.
                    let mid_state = cursor.state_at(mid_time).unwrap_or_default();
                    let slice_state = cursor.state_at(slice_time).unwrap_or_default();
                    let obb = obstacle.footprint_of(slice_state, config.safety_margin);
                    let mid_obb = obstacle.footprint_of(mid_state, config.safety_margin);
                    let reject = obb.aabb().inflated(inflation);
                    let mid_reject = mid_obb.aabb().inflated(inflation);
                    let union = reject.union(&mid_reject);
                    bounds = Some(bounds.map_or(union, |b| b.union(&union)));
                    slices.push(SliceFootprint {
                        obb,
                        reject,
                        mid_obb,
                        mid_reject,
                    });
                }
                CachedObstacle {
                    slices,
                    bounds: bounds
                        .unwrap_or_else(|| Aabb::new(Vec2::new(0.0, 0.0), Vec2::new(0.0, 0.0))),
                }
            })
            .collect();
        let limits = &config.model.limits;
        SliceCache {
            obstacles: cached,
            reach_span: (config.horizon + config.dt).get(),
            accel_mag: limits.accel_max.abs().max(limits.accel_min.abs()),
        }
    }

    /// Number of obstacles the cache was built over.
    pub fn obstacle_count(&self) -> usize {
        self.obstacles.len()
    }

    /// Returns `true` when the cache holds no obstacles.
    pub fn is_empty(&self) -> bool {
        self.obstacles.is_empty()
    }

    /// Per-slice footprints of obstacle `index` (entry `slice_idx - 1`).
    pub(crate) fn footprints(&self, index: usize) -> &[SliceFootprint] {
        &self.obstacles[index].slices
    }

    /// FNV-1a fingerprint of the `active` obstacles' interpolated slice
    /// footprints (slice and midpoint OBBs, in slice order).
    ///
    /// A cached tube computation sees the active obstacles *only* through
    /// these footprints, so two (ego, config)-identical computations whose
    /// active sets fingerprint equally are bit-identical — the fingerprint
    /// (not the obstacle identities or the start time, which both enter
    /// solely via the interpolated geometry) is a sound memoization key
    /// component. The empty set has its own well-defined fingerprint.
    pub fn fingerprint(&self, active: &[usize]) -> u64 {
        let mut h = fold(0xcbf2_9ce4_8422_2325, active.len() as u64);
        for &i in active {
            for fp in &self.obstacles[i].slices {
                for obb in [&fp.obb, &fp.mid_obb] {
                    h = fold(h, obb.pose.x.to_bits());
                    h = fold(h, obb.pose.y.to_bits());
                    h = fold(h, obb.pose.theta.to_bits());
                    h = fold(h, obb.length.to_bits());
                    h = fold(h, obb.width.to_bits());
                }
            }
        }
        h
    }

    /// Conservative test of whether obstacle `index` can interact with any
    /// state the ego can reach over the horizon.
    ///
    /// `false` guarantees that no candidate of a reach computation from
    /// `ego` can ever collide with this obstacle, so dropping it from the
    /// active set — or skipping its counterfactual tube outright, reusing
    /// the factual volume — changes nothing, bit for bit. The bound is the
    /// ego's worst-case kinematic displacement (`|v|·k + ½·a·k²` over the
    /// padded span, plus slack), compared against the obstacle's swept,
    /// already-inflated broadphase bounds.
    pub fn interacts(&self, index: usize, ego: &VehicleState) -> bool {
        let span = self.reach_span;
        let radius = ego.v.abs() * span + 0.5 * self.accel_mag * span * span + 1.0;
        let reach = Aabb::new(
            ego.position() - Vec2::new(radius, radius),
            ego.position() + Vec2::new(radius, radius),
        );
        self.obstacles[index].bounds.intersects(&reach)
    }
}

/// One FNV-1a step over the little-endian bytes of `bits`.
#[inline]
fn fold(mut h: u64, bits: u64) -> u64 {
    for b in bits.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use iprism_dynamics::Trajectory;
    use iprism_geom::Seconds;
    use proptest::prelude::*;

    fn obstacle_at(x: f64, y: f64) -> Obstacle {
        Obstacle::new(
            Trajectory::from_states(
                Seconds::new(0.0),
                Seconds::new(2.5),
                vec![VehicleState::new(x, y, 0.0, 0.0); 2],
            ),
            Meters::new(4.6),
            Meters::new(2.0),
        )
    }

    #[test]
    fn cache_matches_uncached_footprints() {
        let cfg = ReachConfig::default();
        let o = obstacle_at(115.0, 5.25);
        let cache = SliceCache::new(std::slice::from_ref(&o), &cfg);
        assert_eq!(cache.obstacle_count(), 1);
        assert!(!cache.is_empty());
        let fps = cache.footprints(0);
        assert_eq!(fps.len(), cfg.slices());
        for (i, fp) in fps.iter().enumerate() {
            let slice_time = cfg.start_time + (i + 1) as f64 * cfg.dt;
            let expect = o.footprint_at(slice_time, cfg.safety_margin);
            let expect_mid = o.footprint_at(slice_time - cfg.dt * 0.5, cfg.safety_margin);
            assert_eq!(fp.obb, expect, "slice {i} footprint diverged");
            assert_eq!(fp.mid_obb, expect_mid, "slice {i} midpoint diverged");
        }
    }

    #[test]
    fn reject_boxes_enclose_obbs() {
        let cfg = ReachConfig::default();
        let o = obstacle_at(120.0, 1.75);
        let cache = SliceCache::new(std::slice::from_ref(&o), &cfg);
        for fp in cache.footprints(0) {
            for corner in fp.obb.corners() {
                assert!(fp.reject.contains(corner));
            }
            for corner in fp.mid_obb.corners() {
                assert!(fp.mid_reject.contains(corner));
            }
        }
    }

    #[test]
    fn distant_obstacle_does_not_interact() {
        let cfg = ReachConfig::default();
        let near = obstacle_at(115.0, 5.25);
        let far = obstacle_at(500.0, 5.25);
        let cache = SliceCache::new(&[near, far], &cfg);
        let ego = VehicleState::new(100.0, 5.25, 0.0, 10.0);
        assert!(cache.interacts(0, &ego));
        assert!(!cache.interacts(1, &ego));
        // A much faster ego reaches further (150 m/s × 2.75 s ≈ 410 m).
        let fast = VehicleState::new(100.0, 5.25, 0.0, 150.0);
        assert!(cache.interacts(1, &fast));
    }

    #[test]
    fn empty_obstacle_list() {
        let cache = SliceCache::new(&[], &ReachConfig::default());
        assert_eq!(cache.obstacle_count(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn fingerprint_tracks_active_geometry() {
        let cfg = ReachConfig::default();
        let cache = SliceCache::new(&[obstacle_at(115.0, 5.25), obstacle_at(120.0, 1.75)], &cfg);
        // deterministic, and sensitive to the active set
        assert_eq!(cache.fingerprint(&[]), cache.fingerprint(&[]));
        assert_ne!(cache.fingerprint(&[]), cache.fingerprint(&[0]));
        assert_ne!(cache.fingerprint(&[0]), cache.fingerprint(&[1]));
        // identical interpolated geometry fingerprints equally even when it
        // lives at a different index of a different cache
        let solo = SliceCache::new(&[obstacle_at(120.0, 1.75)], &cfg);
        assert_eq!(cache.fingerprint(&[1]), solo.fingerprint(&[0]));
    }

    proptest! {
        /// Soundness of the broadphase: the set of candidates whose centre
        /// the reject box accepts is a superset of the candidates whose
        /// footprint intersects the obstacle OBB — so gating the SAT test on
        /// the reject box can never change a collision verdict.
        #[test]
        fn prop_broadphase_accepts_every_intersection(
            ox in 90.0..130.0f64, oy in 0.0..10.5f64, oth in -3.1..3.1f64,
            cx in 90.0..130.0f64, cy in 0.0..10.5f64, cth in -3.1..3.1f64,
        ) {
            let cfg = ReachConfig::default();
            let (ego_len, ego_wid) = cfg.ego_dims;
            let obstacle = Obstacle::new(
                Trajectory::from_states(
                    Seconds::new(0.0),
                    Seconds::new(2.5),
                    vec![VehicleState::new(ox, oy, oth, 0.0); 2],
                ),
                Meters::new(4.6),
                Meters::new(2.0),
            );
            let cache = SliceCache::new(std::slice::from_ref(&obstacle), &cfg);
            let cand = VehicleState::new(cx, cy, cth, 5.0);
            let fp = cand.footprint(ego_len, ego_wid);
            for sf in cache.footprints(0) {
                // No false rejects, for the slice and the midpoint boxes.
                if fp.intersects(&sf.obb) {
                    prop_assert!(sf.reject.contains(cand.position()));
                }
                if fp.intersects(&sf.mid_obb) {
                    prop_assert!(sf.mid_reject.contains(cand.position()));
                }
                // Equivalently: the prefiltered verdict equals the plain SAT
                // verdict (the hot path computes the left-hand side).
                let prefiltered =
                    sf.reject.contains(cand.position()) && fp.intersects(&sf.obb);
                prop_assert_eq!(prefiltered, fp.intersects(&sf.obb));
            }
        }
    }
}
