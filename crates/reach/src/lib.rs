//! Sampled reach-tube computation — Algorithm 1 of the iPrism paper.
//!
//! A *reach-tube* is the set of states traversed by all dynamically feasible
//! ego trajectories over a horizon `[t, t+k]`. iPrism computes the ego's
//! escape routes as the reach-tube that avoids every obstacle trajectory and
//! stays on the drivable area; the tube *volume* (state-space occupancy on a
//! fixed grid) is the `|T|` appearing in the STI equations (4)–(5).
//!
//! The implementation follows the paper's Algorithm 1 plus both of its
//! optimizations:
//!
//! 1. **ε-deduplication** — a propagated state is dropped when it is within
//!    L2 distance ε of an already-visited state (implemented as quantized
//!    state hashing, the standard approximation);
//! 2. **boundary-control enumeration** — instead of uniform sampling,
//!    propagate only the control combinations `{0, a_max} × {φ_min, 0,
//!    φ_max}` ([`SamplingMode::Boundary`]). Uniform sampling with the
//!    extremes always included ([`SamplingMode::Uniform`]) is also
//!    implemented, mirroring the paper's footnote 5 comparison.
//!
//! # Quick example
//!
//! ```
//! use iprism_dynamics::VehicleState;
//! use iprism_map::RoadMap;
//! use iprism_reach::{compute_reach_tube, ReachConfig};
//!
//! let map = RoadMap::straight_road(2, 3.5, 400.0);
//! let ego = VehicleState::new(50.0, 1.75, 0.0, 10.0);
//! let tube = compute_reach_tube(&map, ego, &[], &ReachConfig::default());
//! assert!(tube.volume() > 0.0); // open road: plenty of escape routes
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod compute;
mod config;
mod obstacle;
mod slice_cache;
mod tube;

pub use compute::{compute_reach_tube, compute_reach_tube_cached};
pub use config::{ReachConfig, SamplingMode};
pub use obstacle::Obstacle;
pub use slice_cache::SliceCache;
pub use tube::ReachTube;
