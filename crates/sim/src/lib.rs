//! A deterministic 2-D driving simulator — iPrism's CARLA substitute.
//!
//! The paper evaluates iPrism inside the CARLA simulator. The algorithms
//! under study (STI, the SMC, the baselines) only consume actor poses,
//! velocities, footprints and the drivable area, so this crate provides a
//! kinematic 2-D world with:
//!
//! * vehicles and pedestrians as oriented boxes driven by scripted,
//!   deterministic behaviours (lane keeping, cut-ins, slowdowns, rear
//!   approaches, pedestrian crossings, pull-outs, …),
//! * an ego vehicle driven externally through an [`EgoController`],
//! * OBB collision detection (ego–actor and actor–actor),
//! * a fixed-Δt episode loop that records a full [`Trace`] for offline risk
//!   analysis (the ground-truth trajectories used by STI's Eq. 1–5).
//!
//! Determinism is a design requirement: identical initial worlds and
//! controllers produce identical traces, which the experiment harness relies
//! on to regenerate the paper's tables bit-for-bit.
//!
//! # Quick example
//!
//! ```
//! use iprism_map::RoadMap;
//! use iprism_sim::{Actor, Behavior, ConstantControl, EpisodeConfig, World};
//! use iprism_dynamics::VehicleState;
//!
//! let map = RoadMap::straight_road(2, 3.5, 400.0);
//! let mut world = World::new(map, VehicleState::new(10.0, 1.75, 0.0, 8.0), 0.1);
//! world.spawn(Actor::vehicle(1, VehicleState::new(40.0, 1.75, 0.0, 8.0), Behavior::lane_keep(8.0)));
//!
//! let mut agent = ConstantControl::coast();
//! let result = iprism_sim::run_episode(&mut world, &mut agent, &EpisodeConfig::default());
//! assert!(result.trace.len() > 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod actor;
mod behavior;
mod episode;
mod render;
mod trace;
mod world;

pub use actor::{Actor, ActorId, ActorKind, MotionModel};
pub use behavior::{Behavior, BehaviorCtx, CutInPhase};
pub use episode::{
    run_episode, run_episode_observed, CollisionLog, ConstantControl, EgoController, Episode,
    EpisodeConfig, EpisodeObserver, EpisodeOutcome, EpisodeResult, Goal,
};
pub use render::render_world;
pub use trace::{Trace, TraceStep};
pub use world::{CollisionEvent, StepEvents, World};

/// Default ego/vehicle footprint length (m) — a typical passenger car.
pub const VEHICLE_LENGTH: f64 = 4.6;
/// Default ego/vehicle footprint width (m).
pub const VEHICLE_WIDTH: f64 = 2.0;
/// Pedestrian footprint side (m).
pub const PEDESTRIAN_SIZE: f64 = 0.6;
