//! Non-ego actors: vehicles, pedestrians and static obstacles.

use iprism_dynamics::VehicleState;
use iprism_geom::{Meters, Obb};
use serde::{Deserialize, Serialize};

use crate::Behavior;

/// Identifier of an actor within a [`crate::World`]. The ego vehicle has no
/// `ActorId`; ids refer exclusively to other actors, matching the paper's
/// convention that "an actor is an on-road vehicle other than the AV".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ActorId(pub u32);

/// What kind of road user an actor is. The kind fixes the default footprint
/// and motion model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActorKind {
    /// A passenger car (4.6 m × 2.0 m, bicycle-model motion).
    Vehicle,
    /// An oversized vehicle such as a truck (8.0 m × 2.6 m).
    Oversized,
    /// A pedestrian (0.6 m square, holonomic motion).
    Pedestrian,
    /// A parked / static obstacle (vehicle footprint, never moves).
    Parked,
}

impl ActorKind {
    /// Default footprint `(length, width)` for the kind.
    pub fn default_dims(self) -> (f64, f64) {
        match self {
            ActorKind::Vehicle | ActorKind::Parked => (crate::VEHICLE_LENGTH, crate::VEHICLE_WIDTH),
            ActorKind::Oversized => (8.0, 2.6),
            ActorKind::Pedestrian => (crate::PEDESTRIAN_SIZE, crate::PEDESTRIAN_SIZE),
        }
    }
}

/// How an actor's state integrates a control command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MotionModel {
    /// Kinematic bicycle model (vehicles).
    Bicycle,
    /// Holonomic point motion: heading changes directly (pedestrians).
    Holonomic,
    /// Never moves (parked cars, debris).
    Static,
}

/// A scripted non-ego actor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Actor {
    /// Unique id within the world.
    pub id: ActorId,
    /// Road-user category.
    pub kind: ActorKind,
    /// Current kinematic state.
    pub state: VehicleState,
    /// Current yaw rate (rad/s), updated by the world each step; used by the
    /// CVTR predictor.
    pub yaw_rate: f64,
    /// Footprint length (m).
    pub length: f64,
    /// Footprint width (m).
    pub width: f64,
    /// The scripted behaviour driving this actor.
    pub behavior: Behavior,
    /// How control commands integrate.
    pub motion: MotionModel,
}

impl Actor {
    /// Creates an actor of `kind` with that kind's default dimensions and
    /// motion model.
    pub fn new(id: u32, kind: ActorKind, state: VehicleState, behavior: Behavior) -> Self {
        let (length, width) = kind.default_dims();
        let motion = match kind {
            ActorKind::Vehicle | ActorKind::Oversized => MotionModel::Bicycle,
            ActorKind::Pedestrian => MotionModel::Holonomic,
            ActorKind::Parked => MotionModel::Static,
        };
        Actor {
            id: ActorId(id),
            kind,
            state,
            yaw_rate: 0.0,
            length,
            width,
            behavior,
            motion,
        }
    }

    /// Convenience: a passenger-car actor.
    pub fn vehicle(id: u32, state: VehicleState, behavior: Behavior) -> Self {
        Actor::new(id, ActorKind::Vehicle, state, behavior)
    }

    /// Convenience: a pedestrian actor.
    pub fn pedestrian(id: u32, state: VehicleState, behavior: Behavior) -> Self {
        Actor::new(id, ActorKind::Pedestrian, state, behavior)
    }

    /// Convenience: a parked (static) vehicle.
    pub fn parked(id: u32, state: VehicleState) -> Self {
        Actor::new(id, ActorKind::Parked, state, Behavior::Idle)
    }

    /// Convenience: an oversized vehicle (truck).
    pub fn oversized(id: u32, state: VehicleState, behavior: Behavior) -> Self {
        Actor::new(id, ActorKind::Oversized, state, behavior)
    }

    /// Overrides the footprint dimensions.
    pub fn with_dims(mut self, length: f64, width: f64) -> Self {
        assert!(length > 0.0 && width > 0.0, "positive actor dims");
        self.length = length;
        self.width = width;
        self
    }

    /// Current footprint as an oriented box.
    pub fn footprint(&self) -> Obb {
        self.state
            .footprint(Meters::new(self.length), Meters::new(self.width))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;

    #[test]
    fn kinds_have_sane_defaults() {
        assert_eq!(ActorKind::Vehicle.default_dims(), (4.6, 2.0));
        assert_eq!(ActorKind::Oversized.default_dims(), (8.0, 2.6));
        assert_eq!(ActorKind::Pedestrian.default_dims(), (0.6, 0.6));
        assert_eq!(ActorKind::Parked.default_dims(), (4.6, 2.0));
    }

    #[test]
    fn constructors_assign_motion_models() {
        let s = VehicleState::new(0.0, 0.0, 0.0, 5.0);
        assert_eq!(
            Actor::vehicle(1, s, Behavior::Idle).motion,
            MotionModel::Bicycle
        );
        assert_eq!(
            Actor::pedestrian(2, s, Behavior::Idle).motion,
            MotionModel::Holonomic
        );
        assert_eq!(Actor::parked(3, s).motion, MotionModel::Static);
        assert_eq!(
            Actor::oversized(4, s, Behavior::Idle).motion,
            MotionModel::Bicycle
        );
    }

    #[test]
    fn with_dims_overrides() {
        let s = VehicleState::new(0.0, 0.0, 0.0, 0.0);
        let a = Actor::vehicle(1, s, Behavior::Idle).with_dims(10.0, 3.0);
        assert_eq!(a.length, 10.0);
        let fp = a.footprint();
        assert_eq!(fp.length, 10.0);
        assert_eq!(fp.width, 3.0);
    }

    #[test]
    #[should_panic(expected = "positive actor dims")]
    fn bad_dims_panic() {
        let s = VehicleState::new(0.0, 0.0, 0.0, 0.0);
        let _ = Actor::vehicle(1, s, Behavior::Idle).with_dims(0.0, 1.0);
    }
}
