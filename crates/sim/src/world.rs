//! The simulated world: ego + actors + map, stepped at a fixed Δt.

use iprism_dynamics::{BicycleModel, ControlInput, CvtrModel, VehicleState};
use iprism_geom::{Meters, Obb, Seconds};
use iprism_map::RoadMap;
use serde::{Deserialize, Serialize};

use crate::behavior::{BehaviorCtx, LeadInfo};
use crate::{Actor, ActorId, MotionModel};

/// A collision detected during a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollisionEvent {
    /// First participant; `None` means the ego vehicle.
    pub a: Option<ActorId>,
    /// Second participant.
    pub b: ActorId,
}

/// Events produced by one [`World::step`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StepEvents {
    /// Collisions that occurred this step.
    pub collisions: Vec<CollisionEvent>,
    /// `true` when the ego footprint left the drivable area.
    pub ego_offroad: bool,
}

impl StepEvents {
    /// Returns `true` if the ego vehicle collided this step.
    pub fn ego_collided(&self) -> bool {
        self.collisions.iter().any(|c| c.a.is_none())
    }
}

/// The simulation world.
///
/// The ego vehicle is driven externally (see [`crate::EgoController`]);
/// all other actors are driven by their scripted [`crate::Behavior`]s.
/// Stepping is deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct World {
    map: RoadMap,
    ego: VehicleState,
    ego_yaw_rate: f64,
    ego_length: f64,
    ego_width: f64,
    actors: Vec<Actor>,
    time: f64,
    dt: f64,
    model: BicycleModel,
    ego_collided: bool,
}

impl World {
    /// Creates a world with the ego at `ego_state` and no other actors.
    ///
    /// # Panics
    ///
    /// Panics when `dt` is not strictly positive and finite.
    pub fn new(map: RoadMap, ego_state: VehicleState, dt: f64) -> Self {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive, got {dt}");
        World {
            map,
            ego: ego_state,
            ego_yaw_rate: 0.0,
            ego_length: crate::VEHICLE_LENGTH,
            ego_width: crate::VEHICLE_WIDTH,
            actors: Vec::new(),
            time: 0.0,
            dt,
            model: BicycleModel::default(),
            ego_collided: false,
        }
    }

    /// Adds an actor to the world.
    ///
    /// # Panics
    ///
    /// Panics when an actor with the same id already exists.
    pub fn spawn(&mut self, actor: Actor) {
        assert!(
            self.actors.iter().all(|a| a.id != actor.id),
            "duplicate actor id {:?}",
            actor.id
        );
        self.actors.push(actor);
    }

    /// The road map.
    #[inline]
    pub fn map(&self) -> &RoadMap {
        &self.map
    }

    /// Current ego state.
    #[inline]
    pub fn ego(&self) -> VehicleState {
        self.ego
    }

    /// Ego yaw rate estimated from the last step (rad/s).
    #[inline]
    pub fn ego_yaw_rate(&self) -> f64 {
        self.ego_yaw_rate
    }

    /// Ego footprint dimensions `(length, width)`.
    #[inline]
    pub fn ego_dims(&self) -> (f64, f64) {
        (self.ego_length, self.ego_width)
    }

    /// Ego footprint as an oriented box.
    pub fn ego_footprint(&self) -> Obb {
        self.ego
            .footprint(Meters::new(self.ego_length), Meters::new(self.ego_width))
    }

    /// All non-ego actors.
    #[inline]
    pub fn actors(&self) -> &[Actor] {
        &self.actors
    }

    /// Looks up an actor by id.
    pub fn actor(&self, id: ActorId) -> Option<&Actor> {
        self.actors.iter().find(|a| a.id == id)
    }

    /// Simulation time (s).
    #[inline]
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Step period (s).
    #[inline]
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The bicycle model used to integrate the ego and vehicle actors.
    #[inline]
    pub fn vehicle_model(&self) -> &BicycleModel {
        &self.model
    }

    /// `true` once the ego has collided with any actor.
    #[inline]
    pub fn ego_collided(&self) -> bool {
        self.ego_collided
    }

    /// Overrides the ego state (used by scenario builders and tests).
    pub fn set_ego(&mut self, state: VehicleState) {
        self.ego = state;
    }

    /// Advances the world by one step with the ego applying `ego_control`.
    ///
    /// Order of operations: actor behaviours observe the *pre-step* world,
    /// then every body integrates simultaneously, then collisions are
    /// detected on the post-step footprints. Actor-actor collisions turn
    /// both participants into stationary wrecks (so a front-accident leaves
    /// a blocked road, as the typology requires).
    pub fn step(&mut self, ego_control: ControlInput) -> StepEvents {
        // 1. Decide actor controls against the pre-step world.
        let ego_snapshot = self.ego;
        let mut controls = Vec::with_capacity(self.actors.len());
        for i in 0..self.actors.len() {
            let lead = self.lead_info(i);
            let me = self.actors[i].state;
            let ctx = BehaviorCtx {
                map: &self.map,
                ego: ego_snapshot,
                time: self.time,
                dt: self.dt,
                lead,
                wheelbase: self.model.wheelbase.get(),
            };
            let u = self.actors[i].behavior.decide(&me, &ctx);
            controls.push(u);
        }

        // 2. Integrate the ego.
        let prev_ego_theta = self.ego.theta;
        self.ego = self
            .model
            .step(self.ego, ego_control, Seconds::new(self.dt));
        self.ego_yaw_rate = CvtrModel::estimate_yaw_rate(
            &VehicleState::new(0.0, 0.0, prev_ego_theta, 0.0),
            &self.ego,
            Seconds::new(self.dt),
        );

        // 3. Integrate the actors.
        for (actor, u) in self.actors.iter_mut().zip(&controls) {
            let prev_theta = actor.state.theta;
            match actor.motion {
                MotionModel::Bicycle => {
                    actor.state = self.model.step(actor.state, *u, Seconds::new(self.dt));
                }
                MotionModel::Holonomic => {
                    let v = (actor.state.v + u.accel * self.dt).clamp(0.0, 3.0);
                    let theta = iprism_geom::wrap_to_pi(actor.state.theta + u.steer * self.dt);
                    let (s, c) = theta.sin_cos();
                    actor.state = VehicleState::new(
                        actor.state.x + v * c * self.dt,
                        actor.state.y + v * s * self.dt,
                        theta,
                        v,
                    );
                }
                MotionModel::Static => {}
            }
            actor.yaw_rate = iprism_geom::wrap_to_pi(actor.state.theta - prev_theta) / self.dt;
        }

        self.time += self.dt;

        // 4. Detect collisions.
        let mut events = StepEvents::default();
        let ego_fp = self.ego_footprint();
        for actor in &self.actors {
            if ego_fp.intersects(&actor.footprint()) {
                events.collisions.push(CollisionEvent {
                    a: None,
                    b: actor.id,
                });
                self.ego_collided = true;
            }
        }
        let mut wrecked: Vec<usize> = Vec::new();
        for i in 0..self.actors.len() {
            for j in (i + 1)..self.actors.len() {
                if self.actors[i]
                    .footprint()
                    .intersects(&self.actors[j].footprint())
                {
                    events.collisions.push(CollisionEvent {
                        a: Some(self.actors[i].id),
                        b: self.actors[j].id,
                    });
                    wrecked.push(i);
                    wrecked.push(j);
                }
            }
        }
        for i in wrecked {
            let a = &mut self.actors[i];
            a.state.v = 0.0;
            a.behavior = crate::Behavior::Idle;
            a.motion = MotionModel::Static;
        }

        events.ego_offroad = !self.map.is_obb_drivable(&ego_fp);

        // Post-step contracts: every integrated body is finite with a
        // wrapped heading, or downstream risk math is meaningless.
        iprism_contracts::check_finite_state(
            "World::step ego",
            &[self.ego.x, self.ego.y, self.ego.theta, self.ego.v],
        );
        iprism_contracts::check_heading_normalized("World::step ego", self.ego.theta);
        for actor in &self.actors {
            iprism_contracts::check_finite_state(
                "World::step actor",
                &[
                    actor.state.x,
                    actor.state.y,
                    actor.state.theta,
                    actor.state.v,
                ],
            );
            iprism_contracts::check_heading_normalized("World::step actor", actor.state.theta);
        }
        events
    }

    /// Gap and speed of the closest entity (actor or ego) ahead of actor
    /// `idx` in its lane, within a 60 m lookahead.
    fn lead_info(&self, idx: usize) -> Option<LeadInfo> {
        let me = &self.actors[idx];
        let lane = self.map.nearest_lane(me.state.position());
        let my_s = lane.project(me.state.position()).s;
        let half_w = lane.width() * 0.5;

        let mut best: Option<LeadInfo> = None;
        let mut consider = |pos: iprism_geom::Vec2, speed: f64, length: f64| {
            let proj = lane.project(pos);
            if proj.lateral.abs() > half_w {
                return;
            }
            let ds = proj.s - my_s;
            if ds <= 0.0 || ds > 60.0 {
                return;
            }
            let gap = ds - (length + me.length) * 0.5;
            if best.is_none_or(|b| gap < b.gap) {
                best = Some(LeadInfo { gap, speed });
            }
        };

        consider(self.ego.position(), self.ego.v, self.ego_length);
        for (j, other) in self.actors.iter().enumerate() {
            if j != idx {
                consider(other.state.position(), other.state.v, other.length);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use crate::Behavior;

    fn two_lane_world(ego_speed: f64) -> World {
        let map = RoadMap::straight_road(2, 3.5, 500.0);
        World::new(map, VehicleState::new(20.0, 1.75, 0.0, ego_speed), 0.1)
    }

    #[test]
    fn empty_world_steps() {
        let mut w = two_lane_world(10.0);
        let ev = w.step(ControlInput::COAST);
        assert!(ev.collisions.is_empty());
        assert!(!ev.ego_offroad);
        assert!((w.time() - 0.1).abs() < 1e-12);
        assert!((w.ego().x - 21.0).abs() < 1e-9);
    }

    #[test]
    fn spawn_duplicate_id_panics() {
        let mut w = two_lane_world(0.0);
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(50.0, 1.75, 0.0, 0.0),
            Behavior::Idle,
        ));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            w.spawn(Actor::vehicle(
                1,
                VehicleState::new(60.0, 1.75, 0.0, 0.0),
                Behavior::Idle,
            ));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn ego_collision_detected() {
        let mut w = two_lane_world(10.0);
        // Stationary car 3 m ahead of the ego: immediate crash.
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(26.0, 1.75, 0.0, 0.0),
            Behavior::Idle,
        ));
        let mut hit = false;
        for _ in 0..20 {
            let ev = w.step(ControlInput::COAST);
            if ev.ego_collided() {
                hit = true;
                break;
            }
        }
        assert!(hit);
        assert!(w.ego_collided());
    }

    #[test]
    fn actor_actor_collision_makes_wrecks() {
        let mut w = two_lane_world(0.0);
        w.set_ego(VehicleState::new(5.0, 1.75, 0.0, 0.0));
        // Fast car behind a stopped car in the same lane, far from the ego.
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(200.0, 1.75, 0.0, 0.0),
            Behavior::Idle,
        ));
        w.spawn(Actor::vehicle(
            2,
            VehicleState::new(170.0, 1.75, 0.0, 20.0),
            Behavior::RearApproach { target_speed: 20.0 },
        ));
        let mut crashed = false;
        for _ in 0..60 {
            let ev = w.step(ControlInput::COAST);
            if !ev.collisions.is_empty() {
                crashed = true;
                break;
            }
        }
        assert!(crashed);
        // Both are now static wrecks.
        for a in w.actors() {
            assert_eq!(a.motion, MotionModel::Static);
            assert_eq!(a.state.v, 0.0);
        }
    }

    #[test]
    fn offroad_reported() {
        let map = RoadMap::straight_road(1, 3.5, 100.0);
        let mut w = World::new(map, VehicleState::new(50.0, 10.0, 0.0, 5.0), 0.1);
        let ev = w.step(ControlInput::COAST);
        assert!(ev.ego_offroad);
    }

    #[test]
    fn lane_keep_actor_follows_lane() {
        let mut w = two_lane_world(0.0);
        w.set_ego(VehicleState::new(5.0, 1.75, 0.0, 0.0));
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(50.0, 5.0, 0.0, 8.0), // slightly off lane-1 center
            Behavior::lane_keep(8.0),
        ));
        for _ in 0..100 {
            w.step(ControlInput::COAST);
        }
        let a = &w.actors()[0];
        assert!(
            (a.state.y - 5.25).abs() < 0.3,
            "converged to lane center, y={}",
            a.state.y
        );
        assert!((a.state.v - 8.0).abs() < 0.5);
    }

    #[test]
    fn lane_keep_actor_yields_to_leader() {
        let mut w = two_lane_world(0.0);
        w.set_ego(VehicleState::new(5.0, 5.25, 0.0, 0.0)); // ego out of the way
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(120.0, 1.75, 0.0, 0.0),
            Behavior::Idle,
        ));
        w.spawn(Actor::vehicle(
            2,
            VehicleState::new(80.0, 1.75, 0.0, 10.0),
            Behavior::lane_keep(10.0),
        ));
        for _ in 0..200 {
            w.step(ControlInput::COAST);
        }
        // follower stopped before hitting the leader
        let follower = w.actor(ActorId(2)).unwrap();
        assert!(follower.state.v < 1.0);
        assert!(!w
            .actors()
            .iter()
            .any(|a| a.motion == MotionModel::Static && a.id == ActorId(2)));
    }

    #[test]
    fn yaw_rate_updates() {
        let mut w = two_lane_world(10.0);
        w.step(ControlInput::new(0.0, 0.3));
        assert!(w.ego_yaw_rate() > 0.0);
    }

    #[test]
    fn deterministic_stepping() {
        let build = || {
            let mut w = two_lane_world(10.0);
            w.spawn(Actor::vehicle(
                1,
                VehicleState::new(60.0, 5.25, 0.0, 12.0),
                Behavior::ghost_cut_in(iprism_map::LaneId(0), 5.0, 10.0, 12.0),
            ));
            w
        };
        let mut w1 = build();
        let mut w2 = build();
        for _ in 0..100 {
            w1.step(ControlInput::COAST);
            w2.step(ControlInput::COAST);
        }
        assert_eq!(w1.ego(), w2.ego());
        assert_eq!(w1.actors()[0].state, w2.actors()[0].state);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_panics() {
        let map = RoadMap::straight_road(1, 3.5, 10.0);
        let _ = World::new(map, VehicleState::default(), 0.0);
    }
}
