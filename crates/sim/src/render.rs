//! ASCII top-down scene rendering for debugging, examples and docs.

use iprism_geom::Vec2;

use crate::World;

/// Renders a top-down ASCII view of the world around the ego vehicle.
///
/// Legend: `E` ego, `A`–`Z` actors (by spawn order), `.` drivable road,
/// space off-road. One character covers `resolution` metres; the view spans
/// `[-behind, +ahead]` metres longitudinally around the ego.
///
/// # Examples
///
/// ```
/// use iprism_dynamics::VehicleState;
/// use iprism_map::RoadMap;
/// use iprism_sim::{render_world, Actor, Behavior, World};
///
/// let map = RoadMap::straight_road(2, 3.5, 200.0);
/// let mut world = World::new(map, VehicleState::new(50.0, 1.75, 0.0, 8.0), 0.1);
/// world.spawn(Actor::vehicle(1, VehicleState::new(65.0, 5.25, 0.0, 8.0), Behavior::Idle));
/// let art = render_world(&world, 20.0, 30.0, 1.0);
/// assert!(art.contains('E'));
/// assert!(art.contains('A'));
/// ```
pub fn render_world(world: &World, behind: f64, ahead: f64, resolution: f64) -> String {
    assert!(resolution > 0.0, "resolution must be positive");
    assert!(
        behind >= 0.0 && ahead > 0.0,
        "view extents must be positive"
    );
    let ego = world.ego();
    let bounds = world.map().bounds();
    let x0 = ego.x - behind;
    let x1 = ego.x + ahead;
    let y0 = bounds.min.y - 1.0;
    let y1 = bounds.max.y + 1.0;

    let cols = ((x1 - x0) / resolution).ceil() as usize;
    let rows = ((y1 - y0) / resolution).ceil() as usize;
    let mut canvas = vec![vec![' '; cols]; rows];

    // Road surface.
    for (r, row) in canvas.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            let p = Vec2::new(
                x0 + (c as f64 + 0.5) * resolution,
                y0 + (r as f64 + 0.5) * resolution,
            );
            if world.map().is_drivable(p) {
                *cell = '.';
            }
        }
    }

    let mut paint = |footprint: iprism_geom::Obb, ch: char| {
        let bb = footprint.aabb();
        let c_lo = (((bb.min.x - x0) / resolution).floor().max(0.0)) as usize;
        let c_hi = (((bb.max.x - x0) / resolution).ceil()).max(0.0) as usize;
        let r_lo = (((bb.min.y - y0) / resolution).floor().max(0.0)) as usize;
        let r_hi = (((bb.max.y - y0) / resolution).ceil()).max(0.0) as usize;
        for (r, row) in canvas
            .iter_mut()
            .enumerate()
            .take(r_hi.min(rows))
            .skip(r_lo)
        {
            for (c, cell) in row.iter_mut().enumerate().take(c_hi.min(cols)).skip(c_lo) {
                let p = Vec2::new(
                    x0 + (c as f64 + 0.5) * resolution,
                    y0 + (r as f64 + 0.5) * resolution,
                );
                if footprint.contains(p) {
                    *cell = ch;
                }
            }
        }
    };

    for (i, actor) in world.actors().iter().enumerate() {
        let ch = (b'A' + (i % 26) as u8) as char;
        paint(actor.footprint(), ch);
    }
    paint(world.ego_footprint(), 'E');

    // Rows top-down (larger y first) so "left" lanes appear above.
    let mut out = String::with_capacity((cols + 1) * rows);
    for row in canvas.iter().rev() {
        let line: String = row.iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Actor, Behavior};
    use iprism_dynamics::VehicleState;
    use iprism_map::RoadMap;

    fn world() -> World {
        let map = RoadMap::straight_road(2, 3.5, 200.0);
        let mut w = World::new(map, VehicleState::new(50.0, 1.75, 0.0, 8.0), 0.1);
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(62.0, 5.25, 0.0, 8.0),
            Behavior::Idle,
        ));
        w
    }

    #[test]
    fn renders_ego_actor_and_road() {
        let art = render_world(&world(), 15.0, 25.0, 1.0);
        assert!(art.contains('E'));
        assert!(art.contains('A'));
        assert!(art.contains('.'));
        // ego's row is below the actor's row (actor in the upper lane)
        let ego_row = art.lines().position(|l| l.contains('E')).unwrap();
        let actor_row = art.lines().position(|l| l.contains('A')).unwrap();
        assert!(actor_row < ego_row, "upper lane renders above");
    }

    #[test]
    fn many_actors_cycle_letters() {
        let map = RoadMap::straight_road(2, 3.5, 400.0);
        let mut w = World::new(map, VehicleState::new(50.0, 1.75, 0.0, 8.0), 0.1);
        for i in 0..3 {
            w.spawn(Actor::vehicle(
                i + 1,
                VehicleState::new(60.0 + 8.0 * i as f64, 5.25, 0.0, 0.0),
                Behavior::Idle,
            ));
        }
        let art = render_world(&w, 15.0, 50.0, 1.0);
        assert!(art.contains('A') && art.contains('B') && art.contains('C'));
    }

    #[test]
    fn view_clamps_to_canvas() {
        // An actor outside the view window simply does not appear.
        let mut w = world();
        w.spawn(Actor::vehicle(
            9,
            VehicleState::new(150.0, 1.75, 0.0, 0.0),
            Behavior::Idle,
        ));
        let art = render_world(&w, 10.0, 20.0, 1.0);
        assert!(!art.contains('B'));
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn zero_resolution_panics() {
        let _ = render_world(&world(), 10.0, 10.0, 0.0);
    }
}
