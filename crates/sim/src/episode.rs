//! Episode loop: drive a world with an ego controller until collision,
//! goal, or timeout.
//!
//! The [`Episode`] engine is the single place the workspace steps a
//! [`World`]: every evaluation path (the batch studies via [`run_episode`],
//! the RL training environment via per-tick [`Episode::step`] calls)
//! composes it rather than re-implementing the step/record/terminate
//! sequence. [`EpisodeObserver`] hooks let callers compute risk series,
//! collision logs and reward terms in the same pass.

use iprism_dynamics::ControlInput;
use serde::{Deserialize, Serialize};

use crate::{ActorId, StepEvents, Trace, World};

/// Drives the ego vehicle: given the current world, produce this step's
/// control input.
///
/// Both the baseline ADS agents (LBC/RIP surrogates) and iPrism-augmented
/// agents implement this trait; the simulator itself stays agnostic of how
/// decisions are made. Controllers receive the full world — equivalent to
/// the perfect perception the paper grants every evaluated agent in CARLA.
pub trait EgoController {
    /// Computes the ego control for the current step.
    fn control(&mut self, world: &World) -> ControlInput;

    /// Called once before an episode starts; resets internal state.
    fn reset(&mut self) {}
}

/// A trivial controller that always applies the same input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantControl(pub ControlInput);

impl ConstantControl {
    /// A controller that coasts (zero input).
    pub fn coast() -> Self {
        ConstantControl(ControlInput::COAST)
    }
}

impl EgoController for ConstantControl {
    fn control(&mut self, _world: &World) -> ControlInput {
        self.0
    }
}

/// Episode termination goal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Goal {
    /// Finish when the ego x-position reaches this threshold.
    XThreshold(f64),
    /// Finish when the ego is within `radius` of `(x, y)`.
    Point {
        /// Target x (m).
        x: f64,
        /// Target y (m).
        y: f64,
        /// Capture radius (m).
        radius: f64,
    },
    /// No goal: run until collision or timeout.
    None,
}

impl Goal {
    /// Returns `true` when the goal is met for the given ego position.
    pub fn reached(&self, ego: iprism_geom::Vec2) -> bool {
        match *self {
            Goal::XThreshold(x) => ego.x >= x,
            Goal::Point { x, y, radius } => ego.distance(iprism_geom::Vec2::new(x, y)) <= radius,
            Goal::None => false,
        }
    }
}

/// Configuration of an episode run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpisodeConfig {
    /// Hard time limit (s).
    pub max_time: f64,
    /// Termination goal.
    pub goal: Goal,
    /// Stop at the first ego collision (always true in the paper's setup).
    pub stop_on_collision: bool,
}

impl Default for EpisodeConfig {
    fn default() -> Self {
        EpisodeConfig {
            max_time: 30.0,
            goal: Goal::None,
            stop_on_collision: true,
        }
    }
}

/// How an episode ended.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EpisodeOutcome {
    /// The ego collided with the listed actor (a *safety violation*, §II).
    Collision {
        /// The actor hit.
        with: ActorId,
        /// Simulation time of the collision (s).
        time: f64,
    },
    /// The goal was reached without a collision.
    ReachedGoal {
        /// Completion time (s).
        time: f64,
    },
    /// The time limit elapsed without collision or goal.
    Timeout,
}

impl EpisodeOutcome {
    /// `true` when the episode ended in an ego collision.
    pub fn is_collision(&self) -> bool {
        matches!(self, EpisodeOutcome::Collision { .. })
    }
}

/// Result of [`run_episode`]: the outcome plus the full trace.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeResult {
    /// How the episode ended.
    pub outcome: EpisodeOutcome,
    /// Per-step recording (includes the initial state).
    pub trace: Trace,
}

/// Observes an episode while the engine drives it: one hook per lifecycle
/// event, all with no-op defaults. Observers are where risk series,
/// collision logs, reward terms and (later) tracing/metrics attach — the
/// episode runs once and every consumer reads the same pass.
pub trait EpisodeObserver {
    /// Called once after the initial world state is recorded, before any
    /// step.
    fn on_start(&mut self, _world: &World) {}

    /// Called after every engine step with the post-step world and the
    /// step's events.
    fn on_step(&mut self, _world: &World, _events: &StepEvents) {}

    /// Called once when the episode ends (collision, goal, or timeout).
    fn on_end(&mut self, _world: &World, _outcome: &EpisodeOutcome) {}
}

/// The no-op observer: `run_episode` is `run_episode_observed` with `()`.
impl EpisodeObserver for () {}

/// An observer recording every ego collision event the engine emits —
/// including those an episode configured with `stop_on_collision: false`
/// drives through, which the final [`EpisodeOutcome`] cannot report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CollisionLog {
    /// `(time, actor)` of every ego collision, in step order.
    pub events: Vec<(f64, ActorId)>,
}

impl EpisodeObserver for CollisionLog {
    fn on_step(&mut self, world: &World, events: &StepEvents) {
        for c in events.collisions.iter().filter(|c| c.a.is_none()) {
            self.events.push((world.time(), c.b));
        }
    }
}

/// The episode engine: steps a [`World`] one control tick at a time,
/// recording the trace and deciding the outcome with exactly the semantics
/// [`run_episode`] has always had (first ego collision wins over a
/// same-step goal; goals and collisions are checked on the post-step
/// state).
///
/// This is the **only** place the workspace calls [`World::step`] outside
/// of tests and benches — the `no-world-step-outside-sim` AST-lint rule
/// enforces it. Batch callers use [`run_episode`]/[`run_episode_observed`];
/// callers that interleave stepping with their own logic (the RL
/// `MitigationEnv` decision loop in `iprism-core`) drive [`Episode::step`]
/// directly and keep their own termination rules on top.
#[derive(Debug, Clone)]
pub struct Episode {
    config: EpisodeConfig,
    dt: f64,
    trace: Option<Trace>,
    outcome: Option<EpisodeOutcome>,
}

impl Episode {
    /// Starts an episode on `world`, recording its initial state into the
    /// trace.
    pub fn begin(world: &World, config: EpisodeConfig) -> Self {
        let mut trace = Trace::new(world.dt());
        trace.record(world);
        Episode {
            config,
            dt: world.dt(),
            trace: Some(trace),
            outcome: None,
        }
    }

    /// Starts an episode without trace recording — for high-churn callers
    /// (RL training steps thousands of episodes and never reads traces).
    pub fn begin_untraced(world: &World, config: EpisodeConfig) -> Self {
        Episode {
            config,
            dt: world.dt(),
            trace: None,
            outcome: None,
        }
    }

    /// The episode configuration.
    pub fn config(&self) -> &EpisodeConfig {
        &self.config
    }

    /// The decided outcome, if the episode has terminated.
    pub fn outcome(&self) -> Option<&EpisodeOutcome> {
        self.outcome.as_ref()
    }

    /// Whether a terminal outcome (collision or goal) has been decided.
    pub fn is_done(&self) -> bool {
        self.outcome.is_some()
    }

    /// The trace recorded so far (`None` for untraced episodes).
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// The step budget implied by the configured time limit.
    pub fn max_steps(&self) -> usize {
        (self.config.max_time / self.dt).ceil() as usize
    }

    /// Advances the world by one tick under `control`: steps, records the
    /// trace, and decides the outcome (first ego collision, then goal) on
    /// the post-step state. Stepping past a decided outcome is allowed —
    /// callers with their own termination rules keep driving — and the
    /// first decided outcome is kept.
    pub fn step(&mut self, world: &mut World, control: ControlInput) -> StepEvents {
        let events = world.step(control);
        if let Some(trace) = &mut self.trace {
            trace.record(world);
        }
        if self.outcome.is_none() {
            if self.config.stop_on_collision {
                if let Some(c) = events.collisions.iter().find(|c| c.a.is_none()) {
                    self.outcome = Some(EpisodeOutcome::Collision {
                        with: c.b,
                        time: world.time(),
                    });
                }
            }
            if self.outcome.is_none() && self.config.goal.reached(world.ego().position()) {
                self.outcome = Some(EpisodeOutcome::ReachedGoal { time: world.time() });
            }
        }
        events
    }

    /// Consumes the engine into an [`EpisodeResult`]: the decided outcome
    /// (or [`EpisodeOutcome::Timeout`] when none was reached) plus the
    /// recorded trace (empty for untraced episodes).
    pub fn finish(self) -> EpisodeResult {
        EpisodeResult {
            outcome: self.outcome.unwrap_or(EpisodeOutcome::Timeout),
            trace: self.trace.unwrap_or_else(|| Trace::new(self.dt)),
        }
    }
}

/// Runs one episode: repeatedly queries `controller` and steps `world`
/// until collision, goal, or timeout. Returns the outcome and the full
/// trace. The world is left in its final state.
pub fn run_episode(
    world: &mut World,
    controller: &mut dyn EgoController,
    config: &EpisodeConfig,
) -> EpisodeResult {
    run_episode_observed(world, controller, config, &mut ())
}

/// [`run_episode`] with an [`EpisodeObserver`] attached: the observer sees
/// the initial state, every post-step world with its events, and the final
/// outcome — one pass serves every consumer.
pub fn run_episode_observed(
    world: &mut World,
    controller: &mut dyn EgoController,
    config: &EpisodeConfig,
    observer: &mut dyn EpisodeObserver,
) -> EpisodeResult {
    controller.reset();
    let mut episode = Episode::begin(world, *config);
    observer.on_start(world);
    for _ in 0..episode.max_steps() {
        let u = controller.control(world);
        let events = episode.step(world, u);
        observer.on_step(world, &events);
        if episode.is_done() {
            break;
        }
    }
    let result = episode.finish();
    observer.on_end(world, &result.outcome);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Actor, Behavior};
    use iprism_dynamics::VehicleState;
    use iprism_map::RoadMap;

    fn world_with_obstacle() -> World {
        let map = RoadMap::straight_road(1, 3.5, 300.0);
        let mut w = World::new(map, VehicleState::new(10.0, 1.75, 0.0, 10.0), 0.1);
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(40.0, 1.75, 0.0, 0.0),
            Behavior::Idle,
        ));
        w
    }

    #[test]
    fn collision_ends_episode() {
        let mut w = world_with_obstacle();
        let mut agent = ConstantControl::coast();
        let r = run_episode(&mut w, &mut agent, &EpisodeConfig::default());
        match r.outcome {
            EpisodeOutcome::Collision { with, time } => {
                assert_eq!(with, ActorId(1));
                assert!(time > 0.0 && time < 5.0);
            }
            other => panic!("expected collision, got {other:?}"),
        }
        assert!(r.outcome.is_collision());
        assert!(r.trace.first_collision_index().is_some());
    }

    #[test]
    fn goal_reached() {
        let map = RoadMap::straight_road(1, 3.5, 300.0);
        let mut w = World::new(map, VehicleState::new(10.0, 1.75, 0.0, 10.0), 0.1);
        let mut agent = ConstantControl::coast();
        let cfg = EpisodeConfig {
            max_time: 60.0,
            goal: Goal::XThreshold(100.0),
            stop_on_collision: true,
        };
        let r = run_episode(&mut w, &mut agent, &cfg);
        match r.outcome {
            EpisodeOutcome::ReachedGoal { time } => assert!((time - 9.0).abs() < 0.2),
            other => panic!("expected goal, got {other:?}"),
        }
    }

    #[test]
    fn timeout_without_goal() {
        let map = RoadMap::straight_road(1, 3.5, 300.0);
        let mut w = World::new(map, VehicleState::new(10.0, 1.75, 0.0, 0.0), 0.1);
        let mut agent = ConstantControl::coast();
        let cfg = EpisodeConfig {
            max_time: 1.0,
            goal: Goal::None,
            stop_on_collision: true,
        };
        let r = run_episode(&mut w, &mut agent, &cfg);
        assert_eq!(r.outcome, EpisodeOutcome::Timeout);
        assert_eq!(r.trace.len(), 11);
    }

    #[test]
    fn point_goal() {
        let g = Goal::Point {
            x: 10.0,
            y: 0.0,
            radius: 2.0,
        };
        assert!(g.reached(iprism_geom::Vec2::new(9.0, 1.0)));
        assert!(!g.reached(iprism_geom::Vec2::new(5.0, 0.0)));
        assert!(!Goal::None.reached(iprism_geom::Vec2::ZERO));
    }

    /// The observed runner with the no-op observer is `run_episode` — the
    /// engine refactor must not change a single recorded byte.
    #[test]
    fn observed_runner_matches_plain_runner() {
        let mut w1 = world_with_obstacle();
        let mut w2 = world_with_obstacle();
        let plain = run_episode(
            &mut w1,
            &mut ConstantControl::coast(),
            &EpisodeConfig::default(),
        );
        let observed = run_episode_observed(
            &mut w2,
            &mut ConstantControl::coast(),
            &EpisodeConfig::default(),
            &mut (),
        );
        assert_eq!(plain, observed);
        assert_eq!(format!("{:?}", w1.ego()), format!("{:?}", w2.ego()));
    }

    #[test]
    fn collision_log_observer_sees_the_crash() {
        let mut w = world_with_obstacle();
        let mut log = CollisionLog::default();
        let r = run_episode_observed(
            &mut w,
            &mut ConstantControl::coast(),
            &EpisodeConfig::default(),
            &mut log,
        );
        match r.outcome {
            EpisodeOutcome::Collision { with, time } => {
                assert_eq!(log.events, vec![(time, with)]);
            }
            other => panic!("expected collision, got {other:?}"),
        }
    }

    /// Lifecycle hooks fire in order: one start, one step per engine tick,
    /// one end.
    #[test]
    fn observer_lifecycle_counts() {
        #[derive(Default)]
        struct Counter {
            starts: usize,
            steps: usize,
            ends: usize,
        }
        impl EpisodeObserver for Counter {
            fn on_start(&mut self, _world: &World) {
                self.starts += 1;
            }
            fn on_step(&mut self, _world: &World, _events: &StepEvents) {
                self.steps += 1;
            }
            fn on_end(&mut self, _world: &World, _outcome: &EpisodeOutcome) {
                self.ends += 1;
            }
        }
        let map = RoadMap::straight_road(1, 3.5, 300.0);
        let mut w = World::new(map, VehicleState::new(10.0, 1.75, 0.0, 0.0), 0.1);
        let cfg = EpisodeConfig {
            max_time: 1.0,
            goal: Goal::None,
            stop_on_collision: true,
        };
        let mut counter = Counter::default();
        let r = run_episode_observed(&mut w, &mut ConstantControl::coast(), &cfg, &mut counter);
        assert_eq!(r.outcome, EpisodeOutcome::Timeout);
        assert_eq!(counter.starts, 1);
        assert_eq!(counter.steps, 10); // (1.0 / 0.1).ceil()
        assert_eq!(counter.ends, 1);
    }

    /// Driving the engine tick by tick reproduces the batch runner exactly
    /// — this is the contract the RL env's decision loop builds on.
    #[test]
    fn manual_engine_stepping_matches_run_episode() {
        let mut w1 = world_with_obstacle();
        let batch = run_episode(
            &mut w1,
            &mut ConstantControl::coast(),
            &EpisodeConfig::default(),
        );

        let mut w2 = world_with_obstacle();
        let mut agent = ConstantControl::coast();
        agent.reset();
        let mut episode = Episode::begin(&w2, EpisodeConfig::default());
        for _ in 0..episode.max_steps() {
            let u = agent.control(&w2);
            episode.step(&mut w2, u);
            if episode.is_done() {
                break;
            }
        }
        assert_eq!(episode.finish(), batch);
    }

    /// Untraced episodes decide the same outcome without paying for the
    /// trace.
    #[test]
    fn untraced_engine_decides_same_outcome() {
        let mut w = world_with_obstacle();
        let mut episode = Episode::begin_untraced(&w, EpisodeConfig::default());
        assert!(episode.trace().is_none());
        for _ in 0..episode.max_steps() {
            episode.step(&mut w, ControlInput::COAST);
            if episode.is_done() {
                break;
            }
        }
        assert!(episode.outcome().unwrap().is_collision());
        let result = episode.finish();
        assert_eq!(result.trace.len(), 0);
    }

    #[test]
    fn braking_controller_avoids_crash() {
        struct Braker;
        impl EgoController for Braker {
            fn control(&mut self, world: &World) -> ControlInput {
                // brake when anything is within 15 m ahead in our lane
                let ego = world.ego();
                let danger = world.actors().iter().any(|a| {
                    let dx = a.state.x - ego.x;
                    (a.state.y - ego.y).abs() < 1.75 && dx > 0.0 && dx < 15.0
                });
                if danger {
                    ControlInput::new(-6.0, 0.0)
                } else {
                    ControlInput::COAST
                }
            }
        }
        let mut w = world_with_obstacle();
        let mut agent = Braker;
        let r = run_episode(&mut w, &mut agent, &EpisodeConfig::default());
        assert!(!r.outcome.is_collision(), "got {:?}", r.outcome);
    }
}
