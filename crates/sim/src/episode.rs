//! Episode loop: drive a world with an ego controller until collision,
//! goal, or timeout.

use iprism_dynamics::ControlInput;
use serde::{Deserialize, Serialize};

use crate::{ActorId, Trace, World};

/// Drives the ego vehicle: given the current world, produce this step's
/// control input.
///
/// Both the baseline ADS agents (LBC/RIP surrogates) and iPrism-augmented
/// agents implement this trait; the simulator itself stays agnostic of how
/// decisions are made. Controllers receive the full world — equivalent to
/// the perfect perception the paper grants every evaluated agent in CARLA.
pub trait EgoController {
    /// Computes the ego control for the current step.
    fn control(&mut self, world: &World) -> ControlInput;

    /// Called once before an episode starts; resets internal state.
    fn reset(&mut self) {}
}

/// A trivial controller that always applies the same input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantControl(pub ControlInput);

impl ConstantControl {
    /// A controller that coasts (zero input).
    pub fn coast() -> Self {
        ConstantControl(ControlInput::COAST)
    }
}

impl EgoController for ConstantControl {
    fn control(&mut self, _world: &World) -> ControlInput {
        self.0
    }
}

/// Episode termination goal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Goal {
    /// Finish when the ego x-position reaches this threshold.
    XThreshold(f64),
    /// Finish when the ego is within `radius` of `(x, y)`.
    Point {
        /// Target x (m).
        x: f64,
        /// Target y (m).
        y: f64,
        /// Capture radius (m).
        radius: f64,
    },
    /// No goal: run until collision or timeout.
    None,
}

impl Goal {
    /// Returns `true` when the goal is met for the given ego position.
    pub fn reached(&self, ego: iprism_geom::Vec2) -> bool {
        match *self {
            Goal::XThreshold(x) => ego.x >= x,
            Goal::Point { x, y, radius } => ego.distance(iprism_geom::Vec2::new(x, y)) <= radius,
            Goal::None => false,
        }
    }
}

/// Configuration of an episode run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpisodeConfig {
    /// Hard time limit (s).
    pub max_time: f64,
    /// Termination goal.
    pub goal: Goal,
    /// Stop at the first ego collision (always true in the paper's setup).
    pub stop_on_collision: bool,
}

impl Default for EpisodeConfig {
    fn default() -> Self {
        EpisodeConfig {
            max_time: 30.0,
            goal: Goal::None,
            stop_on_collision: true,
        }
    }
}

/// How an episode ended.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EpisodeOutcome {
    /// The ego collided with the listed actor (a *safety violation*, §II).
    Collision {
        /// The actor hit.
        with: ActorId,
        /// Simulation time of the collision (s).
        time: f64,
    },
    /// The goal was reached without a collision.
    ReachedGoal {
        /// Completion time (s).
        time: f64,
    },
    /// The time limit elapsed without collision or goal.
    Timeout,
}

impl EpisodeOutcome {
    /// `true` when the episode ended in an ego collision.
    pub fn is_collision(&self) -> bool {
        matches!(self, EpisodeOutcome::Collision { .. })
    }
}

/// Result of [`run_episode`]: the outcome plus the full trace.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeResult {
    /// How the episode ended.
    pub outcome: EpisodeOutcome,
    /// Per-step recording (includes the initial state).
    pub trace: Trace,
}

/// Runs one episode: repeatedly queries `controller` and steps `world`
/// until collision, goal, or timeout. Returns the outcome and the full
/// trace. The world is left in its final state.
pub fn run_episode(
    world: &mut World,
    controller: &mut dyn EgoController,
    config: &EpisodeConfig,
) -> EpisodeResult {
    controller.reset();
    let mut trace = Trace::new(world.dt());
    trace.record(world);

    let steps = (config.max_time / world.dt()).ceil() as usize;
    for _ in 0..steps {
        let u = controller.control(world);
        let events = world.step(u);
        trace.record(world);

        if config.stop_on_collision {
            if let Some(c) = events.collisions.iter().find(|c| c.a.is_none()) {
                return EpisodeResult {
                    outcome: EpisodeOutcome::Collision {
                        with: c.b,
                        time: world.time(),
                    },
                    trace,
                };
            }
        }
        if config.goal.reached(world.ego().position()) {
            return EpisodeResult {
                outcome: EpisodeOutcome::ReachedGoal { time: world.time() },
                trace,
            };
        }
    }
    EpisodeResult {
        outcome: EpisodeOutcome::Timeout,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Actor, Behavior};
    use iprism_dynamics::VehicleState;
    use iprism_map::RoadMap;

    fn world_with_obstacle() -> World {
        let map = RoadMap::straight_road(1, 3.5, 300.0);
        let mut w = World::new(map, VehicleState::new(10.0, 1.75, 0.0, 10.0), 0.1);
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(40.0, 1.75, 0.0, 0.0),
            Behavior::Idle,
        ));
        w
    }

    #[test]
    fn collision_ends_episode() {
        let mut w = world_with_obstacle();
        let mut agent = ConstantControl::coast();
        let r = run_episode(&mut w, &mut agent, &EpisodeConfig::default());
        match r.outcome {
            EpisodeOutcome::Collision { with, time } => {
                assert_eq!(with, ActorId(1));
                assert!(time > 0.0 && time < 5.0);
            }
            other => panic!("expected collision, got {other:?}"),
        }
        assert!(r.outcome.is_collision());
        assert!(r.trace.first_collision_index().is_some());
    }

    #[test]
    fn goal_reached() {
        let map = RoadMap::straight_road(1, 3.5, 300.0);
        let mut w = World::new(map, VehicleState::new(10.0, 1.75, 0.0, 10.0), 0.1);
        let mut agent = ConstantControl::coast();
        let cfg = EpisodeConfig {
            max_time: 60.0,
            goal: Goal::XThreshold(100.0),
            stop_on_collision: true,
        };
        let r = run_episode(&mut w, &mut agent, &cfg);
        match r.outcome {
            EpisodeOutcome::ReachedGoal { time } => assert!((time - 9.0).abs() < 0.2),
            other => panic!("expected goal, got {other:?}"),
        }
    }

    #[test]
    fn timeout_without_goal() {
        let map = RoadMap::straight_road(1, 3.5, 300.0);
        let mut w = World::new(map, VehicleState::new(10.0, 1.75, 0.0, 0.0), 0.1);
        let mut agent = ConstantControl::coast();
        let cfg = EpisodeConfig {
            max_time: 1.0,
            goal: Goal::None,
            stop_on_collision: true,
        };
        let r = run_episode(&mut w, &mut agent, &cfg);
        assert_eq!(r.outcome, EpisodeOutcome::Timeout);
        assert_eq!(r.trace.len(), 11);
    }

    #[test]
    fn point_goal() {
        let g = Goal::Point {
            x: 10.0,
            y: 0.0,
            radius: 2.0,
        };
        assert!(g.reached(iprism_geom::Vec2::new(9.0, 1.0)));
        assert!(!g.reached(iprism_geom::Vec2::new(5.0, 0.0)));
        assert!(!Goal::None.reached(iprism_geom::Vec2::ZERO));
    }

    #[test]
    fn braking_controller_avoids_crash() {
        struct Braker;
        impl EgoController for Braker {
            fn control(&mut self, world: &World) -> ControlInput {
                // brake when anything is within 15 m ahead in our lane
                let ego = world.ego();
                let danger = world.actors().iter().any(|a| {
                    let dx = a.state.x - ego.x;
                    (a.state.y - ego.y).abs() < 1.75 && dx > 0.0 && dx < 15.0
                });
                if danger {
                    ControlInput::new(-6.0, 0.0)
                } else {
                    ControlInput::COAST
                }
            }
        }
        let mut w = world_with_obstacle();
        let mut agent = Braker;
        let r = run_episode(&mut w, &mut agent, &EpisodeConfig::default());
        assert!(!r.outcome.is_collision(), "got {:?}", r.outcome);
    }
}
