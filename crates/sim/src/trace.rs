//! Episode traces: the recorded ground truth used for offline risk analysis.

use iprism_dynamics::{Trajectory, VehicleState};
use iprism_geom::Seconds;
use serde::{Deserialize, Serialize};

use crate::{ActorId, World};

/// One recorded simulation step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStep {
    /// Simulation time (s).
    pub time: f64,
    /// Ego state at `time`.
    pub ego: VehicleState,
    /// Ego yaw rate (rad/s).
    pub ego_yaw_rate: f64,
    /// Every actor's `(id, state, yaw_rate, length, width)` at `time`.
    pub actors: Vec<(ActorId, VehicleState, f64, f64, f64)>,
    /// `true` when the ego collided at or before this step.
    pub ego_collided: bool,
}

/// A full episode recording at the world's fixed Δt.
///
/// Traces are what the paper's offline evaluations consume: the *ground
/// truth* future trajectories `X_{t:t+k}` in STI's Eq. (1)–(5) are read
/// directly out of the trace, and the risk-metric time series of Fig. 4 are
/// computed per recorded step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    dt: f64,
    steps: Vec<TraceStep>,
}

impl Trace {
    /// Creates an empty trace for a world stepped at `dt`.
    pub fn new(dt: f64) -> Self {
        assert!(dt > 0.0 && dt.is_finite(), "trace dt must be positive");
        Trace {
            dt,
            steps: Vec::new(),
        }
    }

    /// Records the current state of `world`.
    pub fn record(&mut self, world: &World) {
        self.steps.push(TraceStep {
            time: world.time(),
            ego: world.ego(),
            ego_yaw_rate: world.ego_yaw_rate(),
            actors: world
                .actors()
                .iter()
                .map(|a| (a.id, a.state, a.yaw_rate, a.length, a.width))
                .collect(),
            ego_collided: world.ego_collided(),
        });
    }

    /// Recorded steps in time order.
    #[inline]
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// Number of recorded steps.
    #[inline]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when nothing has been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Recording period (s).
    #[inline]
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Index of the first step at which the ego had collided, if any.
    pub fn first_collision_index(&self) -> Option<usize> {
        self.steps.iter().position(|s| s.ego_collided)
    }

    /// The ego trajectory over the whole episode.
    pub fn ego_trajectory(&self) -> Trajectory {
        let start = self.steps.first().map_or(0.0, |s| s.time);
        Trajectory::from_states(
            Seconds::new(start),
            Seconds::new(self.dt),
            self.steps.iter().map(|s| s.ego).collect(),
        )
    }

    /// Ids of every actor that appears in the trace.
    pub fn actor_ids(&self) -> Vec<ActorId> {
        let mut ids: Vec<ActorId> = self
            .steps
            .iter()
            .flat_map(|s| s.actors.iter().map(|(id, ..)| *id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Ground-truth trajectory of actor `id` from step `from` (inclusive)
    /// for up to `horizon_steps + 1` samples — exactly the `X_{t:t+k}`
    /// window that STI's counterfactual queries need.
    ///
    /// Returns `None` when the actor does not appear at step `from`.
    pub fn actor_trajectory(
        &self,
        id: ActorId,
        from: usize,
        horizon_steps: usize,
    ) -> Option<Trajectory> {
        let first = self.steps.get(from)?;
        first.actors.iter().find(|(aid, ..)| *aid == id)?;
        let start_time = first.time;
        let mut states = Vec::with_capacity(horizon_steps + 1);
        for step in self.steps.iter().skip(from).take(horizon_steps + 1) {
            match step.actors.iter().find(|(aid, ..)| *aid == id) {
                Some((_, s, ..)) => states.push(*s),
                None => break,
            }
        }
        Some(Trajectory::from_states(
            Seconds::new(start_time),
            Seconds::new(self.dt),
            states,
        ))
    }

    /// Footprint dimensions `(length, width)` of actor `id`.
    pub fn actor_dims(&self, id: ActorId) -> Option<(f64, f64)> {
        self.steps.iter().find_map(|s| {
            s.actors
                .iter()
                .find(|(aid, ..)| *aid == id)
                .map(|&(_, _, _, l, w)| (l, w))
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use crate::{Actor, Behavior};
    use iprism_dynamics::ControlInput;
    use iprism_map::RoadMap;

    fn traced_world(steps: usize) -> (World, Trace) {
        let map = RoadMap::straight_road(2, 3.5, 500.0);
        let mut w = World::new(map, VehicleState::new(10.0, 1.75, 0.0, 10.0), 0.1);
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(50.0, 5.25, 0.0, 8.0),
            Behavior::lane_keep(8.0),
        ));
        let mut trace = Trace::new(w.dt());
        trace.record(&w);
        for _ in 0..steps {
            w.step(ControlInput::COAST);
            trace.record(&w);
        }
        (w, trace)
    }

    #[test]
    fn records_every_step() {
        let (_, trace) = traced_world(50);
        assert_eq!(trace.len(), 51);
        assert!(!trace.is_empty());
        assert_eq!(trace.dt(), 0.1);
        assert_eq!(trace.actor_ids(), vec![ActorId(1)]);
    }

    #[test]
    fn ego_trajectory_covers_episode() {
        let (_, trace) = traced_world(50);
        let traj = trace.ego_trajectory();
        assert_eq!(traj.len(), 51);
        assert!((traj.states()[0].x - 10.0).abs() < 1e-9);
        assert!(traj.states()[50].x > 50.0);
    }

    #[test]
    fn actor_trajectory_window() {
        let (_, trace) = traced_world(50);
        let traj = trace.actor_trajectory(ActorId(1), 10, 20).unwrap();
        assert_eq!(traj.len(), 21);
        assert!((traj.start_time().get() - trace.steps()[10].time).abs() < 1e-9);
        // Missing actor id yields None.
        assert!(trace.actor_trajectory(ActorId(99), 0, 10).is_none());
        // Window clipped at the end of the trace.
        let clipped = trace.actor_trajectory(ActorId(1), 45, 20).unwrap();
        assert_eq!(clipped.len(), 6);
    }

    #[test]
    fn actor_dims_lookup() {
        let (_, trace) = traced_world(5);
        assert_eq!(trace.actor_dims(ActorId(1)), Some((4.6, 2.0)));
        assert_eq!(trace.actor_dims(ActorId(9)), None);
    }

    #[test]
    fn collision_index() {
        let map = RoadMap::straight_road(1, 3.5, 200.0);
        let mut w = World::new(map, VehicleState::new(10.0, 1.75, 0.0, 10.0), 0.1);
        w.spawn(Actor::vehicle(
            1,
            VehicleState::new(20.0, 1.75, 0.0, 0.0),
            Behavior::Idle,
        ));
        let mut trace = Trace::new(w.dt());
        trace.record(&w);
        for _ in 0..30 {
            w.step(ControlInput::COAST);
            trace.record(&w);
        }
        let idx = trace.first_collision_index().unwrap();
        assert!(idx > 0 && idx < 15);
        assert!(trace.steps()[idx].ego_collided);
        assert!(!trace.steps()[idx - 1].ego_collided);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_dt_panics() {
        let _ = Trace::new(-1.0);
    }
}
