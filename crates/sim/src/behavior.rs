//! Scripted, deterministic NPC behaviours.
//!
//! Each NHTSA pre-crash typology (§IV-B1 of the paper) is realized by
//! composing these behaviours: `CutIn` (ghost/lead cut-in), `Slowdown`
//! (lead slowdown), `RearApproach` (rear-end), `MergeInto` (front accident),
//! plus `PedestrianCross`, `PullOut` and `Parked`-style actors for the
//! Argoverse-like dataset scenes (§V-D).

use iprism_dynamics::{ControlInput, Trajectory, VehicleState};
use iprism_geom::wrap_to_pi;
use iprism_map::{LaneId, RoadMap};
use serde::{Deserialize, Serialize};

/// Phase of a lane-change manoeuvre.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CutInPhase {
    /// Driving in the original lane, waiting for the trigger condition.
    Waiting,
    /// Actively steering into the target lane.
    Cutting,
    /// Lane change finished; lane-keeping in the target lane.
    Done,
}

/// Per-step context handed to a behaviour.
#[derive(Debug, Clone, Copy)]
pub struct BehaviorCtx<'a> {
    /// The road map.
    pub map: &'a RoadMap,
    /// Current ego state (behaviours may react to the ego actor).
    pub ego: VehicleState,
    /// Simulation time (s).
    pub time: f64,
    /// Step period (s).
    pub dt: f64,
    /// Gap (bumper distance, m) and speed of the nearest actor ahead in the
    /// same lane, when one exists within lookahead.
    pub lead: Option<LeadInfo>,
    /// Wheelbase used to convert yaw commands to steering angles.
    pub wheelbase: f64,
}

/// Information about the closest in-lane leader.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeadInfo {
    /// Bumper-to-bumper gap (m).
    pub gap: f64,
    /// Leader speed (m/s).
    pub speed: f64,
}

/// A scripted behaviour. Behaviours are finite-state and deterministic;
/// their mutable state (trigger flags, phases) lives inline in the enum so
/// that cloning a world clones the full scenario state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Behavior {
    /// No control input (static obstacles, wrecks).
    Idle,
    /// Follow the nearest lane at a target speed, yielding to a leader.
    LaneKeep {
        /// Cruise speed (m/s).
        target_speed: f64,
    },
    /// Drive in the current lane, then abruptly change into `target_lane`
    /// when the longitudinal trigger relative to the ego fires.
    ///
    /// With `from_behind = true` this is the *ghost cut-in*: the actor
    /// approaches from behind in the adjacent lane and cuts in once it is
    /// `trigger_gap` metres ahead of the ego. With `from_behind = false` it
    /// is the *lead cut-in*: the actor starts ahead and cuts in once the ego
    /// closes to within `trigger_gap` metres.
    CutIn {
        /// Lane the actor swerves into (the ego lane).
        target_lane: LaneId,
        /// Longitudinal trigger distance (m); see variant docs.
        trigger_gap: f64,
        /// Longitudinal distance over which the lane change completes (m);
        /// smaller is more abrupt.
        change_distance: f64,
        /// Speed held during the manoeuvre (m/s).
        speed: f64,
        /// Whether the actor starts behind the ego (ghost cut-in).
        from_behind: bool,
        /// Manoeuvre phase (mutated by the behaviour).
        phase: CutInPhase,
    },
    /// Lane-keep, then brake to `target_speed` once the ego closes to within
    /// `trigger_distance` metres behind the actor (lead slowdown typology).
    Slowdown {
        /// Cruise speed before the trigger (m/s).
        cruise_speed: f64,
        /// Ego distance that triggers the slowdown (m).
        trigger_distance: f64,
        /// Braking strength (m/s², positive number).
        decel: f64,
        /// Speed to settle at (usually 0).
        target_speed: f64,
        /// Latched trigger flag.
        triggered: bool,
    },
    /// Drive at `target_speed` in the current lane **ignoring any leader**
    /// (rear-end typology: hits the ego from behind).
    RearApproach {
        /// Approach speed (m/s).
        target_speed: f64,
    },
    /// Merge into `target_lane` after travelling `trigger_after` metres,
    /// without yielding (front-accident typology; collides with the actor
    /// already in that lane).
    MergeInto {
        /// Lane to merge into.
        target_lane: LaneId,
        /// Distance from spawn after which the merge starts (m).
        trigger_after: f64,
        /// Longitudinal distance over which the merge completes (m).
        change_distance: f64,
        /// Speed during the merge (m/s).
        speed: f64,
        /// x-position at spawn (set by the builder).
        spawn_x: f64,
        /// Manoeuvre phase.
        phase: CutInPhase,
    },
    /// Stand still, then walk straight (along the current heading) once the
    /// ego closes to within `trigger_distance` metres.
    PedestrianCross {
        /// Walking speed (m/s).
        speed: f64,
        /// Ego distance that triggers the crossing (m).
        trigger_distance: f64,
        /// Latched trigger flag.
        started: bool,
    },
    /// Parked off-lane; pulls out into `target_lane` once the ego closes to
    /// within `trigger_distance` metres.
    PullOut {
        /// Lane to pull into.
        target_lane: LaneId,
        /// Ego distance that triggers the pull-out (m).
        trigger_distance: f64,
        /// Speed to accelerate to (m/s).
        target_speed: f64,
        /// Latched trigger flag.
        started: bool,
    },
    /// Replay a fixed trajectory (dataset scenes).
    FollowTrajectory {
        /// The trajectory to follow.
        trajectory: Trajectory,
    },
}

impl Behavior {
    /// Convenience constructor for [`Behavior::LaneKeep`].
    pub fn lane_keep(target_speed: f64) -> Self {
        Behavior::LaneKeep { target_speed }
    }

    /// Convenience constructor for a ghost cut-in (§IV-B1(a)).
    pub fn ghost_cut_in(
        target_lane: LaneId,
        trigger_gap: f64,
        change_distance: f64,
        speed: f64,
    ) -> Self {
        Behavior::CutIn {
            target_lane,
            trigger_gap,
            change_distance,
            speed,
            from_behind: true,
            phase: CutInPhase::Waiting,
        }
    }

    /// Convenience constructor for a lead cut-in (§IV-B1(b)).
    pub fn lead_cut_in(
        target_lane: LaneId,
        trigger_gap: f64,
        change_distance: f64,
        speed: f64,
    ) -> Self {
        Behavior::CutIn {
            target_lane,
            trigger_gap,
            change_distance,
            speed,
            from_behind: false,
            phase: CutInPhase::Waiting,
        }
    }

    /// Computes this step's control for an actor with state `me`.
    ///
    /// The returned control is interpreted by the actor's motion model; the
    /// world clamps it into the vehicle's control limits.
    pub fn decide(&mut self, me: &VehicleState, ctx: &BehaviorCtx<'_>) -> ControlInput {
        match self {
            Behavior::Idle => ControlInput::COAST,

            Behavior::LaneKeep { target_speed } => {
                let lane = ctx.map.nearest_lane(me.position()).clone();
                lane_keep_control(me, &lane, *target_speed, ctx)
            }

            Behavior::CutIn {
                target_lane,
                trigger_gap,
                change_distance,
                speed,
                from_behind,
                phase,
            } => {
                let rel = me.x - ctx.ego.x;
                if *phase == CutInPhase::Waiting {
                    let fired = if *from_behind {
                        rel >= *trigger_gap
                    } else {
                        rel <= *trigger_gap
                    };
                    if fired {
                        *phase = CutInPhase::Cutting;
                    }
                }
                match phase {
                    CutInPhase::Waiting => {
                        let lane = ctx.map.nearest_lane(me.position()).clone();
                        speed_only_control(me, &lane, *speed, ctx)
                    }
                    CutInPhase::Cutting | CutInPhase::Done => {
                        // A misconfigured target lane degrades to the
                        // nearest lane instead of aborting the simulation.
                        let lane = ctx
                            .map
                            .lane(*target_lane)
                            .unwrap_or_else(|| ctx.map.nearest_lane(me.position()))
                            .clone();
                        if *phase == CutInPhase::Cutting
                            && lane.project(me.position()).lateral.abs() < 0.15
                        {
                            *phase = CutInPhase::Done;
                        }
                        lane_change_control(me, &lane, *speed, *change_distance, ctx)
                    }
                }
            }

            Behavior::Slowdown {
                cruise_speed,
                trigger_distance,
                decel,
                target_speed,
                triggered,
            } => {
                let gap_to_ego = me.x - ctx.ego.x;
                if !*triggered && gap_to_ego >= 0.0 && gap_to_ego <= *trigger_distance {
                    *triggered = true;
                }
                let lane = ctx.map.nearest_lane(me.position()).clone();
                if *triggered {
                    let accel = if me.v > *target_speed { -*decel } else { 0.0 };
                    let mut u = speed_only_control(me, &lane, me.v, ctx);
                    u.accel = accel;
                    u
                } else {
                    speed_only_control(me, &lane, *cruise_speed, ctx)
                }
            }

            Behavior::RearApproach { target_speed } => {
                let lane = ctx.map.nearest_lane(me.position()).clone();
                // Ignores the leader entirely — that is the point.
                speed_only_control(me, &lane, *target_speed, ctx)
            }

            Behavior::MergeInto {
                target_lane,
                trigger_after,
                change_distance,
                speed,
                spawn_x,
                phase,
            } => {
                if *phase == CutInPhase::Waiting && me.x - *spawn_x >= *trigger_after {
                    *phase = CutInPhase::Cutting;
                }
                match phase {
                    CutInPhase::Waiting => {
                        let lane = ctx.map.nearest_lane(me.position()).clone();
                        speed_only_control(me, &lane, *speed, ctx)
                    }
                    CutInPhase::Cutting => {
                        let lane = ctx
                            .map
                            .lane(*target_lane)
                            .unwrap_or_else(|| ctx.map.nearest_lane(me.position()))
                            .clone();
                        if lane.project(me.position()).lateral.abs() < 0.15 {
                            *phase = CutInPhase::Done;
                        }
                        lane_change_control(me, &lane, *speed, *change_distance, ctx)
                    }
                    CutInPhase::Done => {
                        // Merge complete without contact: resume ordinary,
                        // leader-aware lane keeping (so a missed merge stays
                        // a near-miss instead of a delayed rear-end).
                        let lane = ctx
                            .map
                            .lane(*target_lane)
                            .unwrap_or_else(|| ctx.map.nearest_lane(me.position()))
                            .clone();
                        lane_keep_control(me, &lane, *speed, ctx)
                    }
                }
            }

            Behavior::PedestrianCross {
                speed,
                trigger_distance,
                started,
            } => {
                if !*started && ctx.ego.position().distance(me.position()) <= *trigger_distance {
                    *started = true;
                }
                if *started {
                    ControlInput::new((*speed - me.v) * 2.0, 0.0)
                } else {
                    ControlInput::new(-me.v * 2.0, 0.0)
                }
            }

            Behavior::PullOut {
                target_lane,
                trigger_distance,
                target_speed,
                started,
            } => {
                if !*started && (ctx.ego.x - me.x).abs() <= *trigger_distance {
                    *started = true;
                }
                if *started {
                    let lane = ctx
                        .map
                        .lane(*target_lane)
                        .unwrap_or_else(|| ctx.map.nearest_lane(me.position()))
                        .clone();
                    lane_change_control(me, &lane, *target_speed, 8.0, ctx)
                } else {
                    ControlInput::new(-me.v * 2.0, 0.0)
                }
            }

            Behavior::FollowTrajectory { trajectory } => {
                match trajectory.state_at_time(ctx.time + ctx.dt) {
                    Some(next) => {
                        let accel = (next.v - me.v) / ctx.dt;
                        let dtheta = wrap_to_pi(next.theta - me.theta);
                        let steer = if me.v.abs() < 0.1 {
                            0.0
                        } else {
                            (ctx.wheelbase * dtheta / (me.v * ctx.dt)).atan()
                        };
                        ControlInput::new(accel, steer)
                    }
                    None => ControlInput::new(-me.v * 2.0, 0.0),
                }
            }
        }
    }
}

/// Stanley-style lane keeping: track the centerline heading plus a
/// cross-track correction, with leader-aware speed control.
pub(crate) fn lane_keep_control(
    me: &VehicleState,
    lane: &iprism_map::Lane,
    target_speed: f64,
    ctx: &BehaviorCtx<'_>,
) -> ControlInput {
    let mut u = speed_only_control(me, lane, target_speed, ctx);
    // Leader-aware speed: keep a 1.5 s time gap plus 5 m standstill buffer.
    if let Some(lead) = ctx.lead {
        let desired_gap = 5.0 + 1.5 * me.v;
        if lead.gap < desired_gap {
            let closing = me.v - lead.speed;
            let brake = 1.5 * closing.max(0.0) + 2.0 * (desired_gap - lead.gap) / desired_gap;
            u.accel = u.accel.min(-brake);
        }
    }
    u
}

/// Lane tracking without leader awareness (scenario actors that must not
/// yield), at a fixed target speed.
pub(crate) fn speed_only_control(
    me: &VehicleState,
    lane: &iprism_map::Lane,
    target_speed: f64,
    _ctx: &BehaviorCtx<'_>,
) -> ControlInput {
    let proj = lane.project(me.position());
    let heading_err = wrap_to_pi(proj.heading - me.theta);
    let cross = (-proj.lateral / 3.0).atan();
    let steer = (heading_err + cross).clamp(-0.6, 0.6);
    let accel = ((target_speed - me.v) * 1.5).clamp(-6.0, 3.5);
    ControlInput::new(accel, steer)
}

/// Aggressive lane-change control: steer toward `lane`'s centerline so the
/// change completes over roughly `change_distance` metres of travel.
pub(crate) fn lane_change_control(
    me: &VehicleState,
    lane: &iprism_map::Lane,
    speed: f64,
    change_distance: f64,
    _ctx: &BehaviorCtx<'_>,
) -> ControlInput {
    let proj = lane.project(me.position());
    // Aim at a point on the target centerline `change_distance` ahead.
    let lookahead = change_distance.max(1.0);
    let heading_err = wrap_to_pi(proj.heading - me.theta);
    let cross = (-proj.lateral / (lookahead * 0.35)).atan();
    let steer = (heading_err + cross).clamp(-0.6, 0.6);
    let accel = ((speed - me.v) * 2.0).clamp(-6.0, 3.5);
    ControlInput::new(accel, steer)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use iprism_geom::Seconds;
    use iprism_map::RoadMap;

    fn ctx<'a>(map: &'a RoadMap, ego: VehicleState) -> BehaviorCtx<'a> {
        BehaviorCtx {
            map,
            ego,
            time: 0.0,
            dt: 0.1,
            lead: None,
            wheelbase: 2.9,
        }
    }

    #[test]
    fn idle_outputs_coast() {
        let map = RoadMap::straight_road(2, 3.5, 100.0);
        let me = VehicleState::new(10.0, 1.75, 0.0, 5.0);
        let c = ctx(&map, me);
        assert_eq!(Behavior::Idle.decide(&me, &c), ControlInput::COAST);
    }

    #[test]
    fn lane_keep_corrects_offset() {
        let map = RoadMap::straight_road(2, 3.5, 100.0);
        // Drifted left of lane-0 center: must steer right (negative).
        let me = VehicleState::new(10.0, 2.5, 0.0, 5.0);
        let c = ctx(&map, me);
        let u = Behavior::lane_keep(5.0).decide(&me, &c);
        assert!(u.steer < 0.0);
    }

    #[test]
    fn lane_keep_tracks_speed() {
        let map = RoadMap::straight_road(2, 3.5, 100.0);
        let me = VehicleState::new(10.0, 1.75, 0.0, 2.0);
        let c = ctx(&map, me);
        let u = Behavior::lane_keep(8.0).decide(&me, &c);
        assert!(u.accel > 0.0);
    }

    #[test]
    fn lane_keep_brakes_for_leader() {
        let map = RoadMap::straight_road(2, 3.5, 100.0);
        let me = VehicleState::new(10.0, 1.75, 0.0, 10.0);
        let mut c = ctx(&map, me);
        c.lead = Some(LeadInfo {
            gap: 3.0,
            speed: 0.0,
        });
        let u = Behavior::lane_keep(10.0).decide(&me, &c);
        assert!(u.accel < -1.0);
    }

    #[test]
    fn ghost_cut_in_waits_then_cuts() {
        let map = RoadMap::straight_road(2, 3.5, 200.0);
        let ego = VehicleState::new(50.0, 1.75, 0.0, 8.0);
        let mut b = Behavior::ghost_cut_in(LaneId(0), 5.0, 10.0, 12.0);

        // Still behind the ego: waiting, stays in lane 1.
        let me_behind = VehicleState::new(30.0, 5.25, 0.0, 12.0);
        let c = ctx(&map, ego);
        let _ = b.decide(&me_behind, &c);
        match &b {
            Behavior::CutIn { phase, .. } => assert_eq!(*phase, CutInPhase::Waiting),
            _ => unreachable!(),
        }

        // Now 6 m ahead of the ego: trigger fires, steers right toward lane 0.
        let me_ahead = VehicleState::new(56.0, 5.25, 0.0, 12.0);
        let u = b.decide(&me_ahead, &c);
        match &b {
            Behavior::CutIn { phase, .. } => assert_eq!(*phase, CutInPhase::Cutting),
            _ => unreachable!(),
        }
        assert!(u.steer < 0.0, "steers toward the ego lane");
    }

    #[test]
    fn lead_cut_in_triggers_on_approach() {
        let map = RoadMap::straight_road(2, 3.5, 200.0);
        let mut b = Behavior::lead_cut_in(LaneId(0), 20.0, 15.0, 6.0);
        let me = VehicleState::new(80.0, 5.25, 0.0, 6.0);

        // Ego far behind: no trigger.
        let far = ctx(&map, VehicleState::new(20.0, 1.75, 0.0, 10.0));
        let _ = b.decide(&me, &far);
        match &b {
            Behavior::CutIn { phase, .. } => assert_eq!(*phase, CutInPhase::Waiting),
            _ => unreachable!(),
        }

        // Ego within 20 m: trigger.
        let near = ctx(&map, VehicleState::new(65.0, 1.75, 0.0, 10.0));
        let _ = b.decide(&me, &near);
        match &b {
            Behavior::CutIn { phase, .. } => assert_eq!(*phase, CutInPhase::Cutting),
            _ => unreachable!(),
        }
    }

    #[test]
    fn slowdown_latches_trigger() {
        let map = RoadMap::straight_road(2, 3.5, 200.0);
        let mut b = Behavior::Slowdown {
            cruise_speed: 8.0,
            trigger_distance: 30.0,
            decel: 4.0,
            target_speed: 0.0,
            triggered: false,
        };
        let me = VehicleState::new(100.0, 1.75, 0.0, 8.0);
        // ego 25 m behind -> trigger
        let c = ctx(&map, VehicleState::new(75.0, 1.75, 0.0, 10.0));
        let u = b.decide(&me, &c);
        assert!(u.accel < 0.0);
        // even if the ego falls back, stays triggered
        let c2 = ctx(&map, VehicleState::new(10.0, 1.75, 0.0, 10.0));
        let u2 = b.decide(&me, &c2);
        assert!(u2.accel < 0.0);
    }

    #[test]
    fn slowdown_stops_braking_at_target() {
        let map = RoadMap::straight_road(2, 3.5, 200.0);
        let mut b = Behavior::Slowdown {
            cruise_speed: 8.0,
            trigger_distance: 30.0,
            decel: 4.0,
            target_speed: 0.0,
            triggered: true,
        };
        let me = VehicleState::new(100.0, 1.75, 0.0, 0.0);
        let c = ctx(&map, VehicleState::new(75.0, 1.75, 0.0, 10.0));
        let u = b.decide(&me, &c);
        assert_eq!(u.accel, 0.0);
    }

    #[test]
    fn rear_approach_ignores_leader() {
        let map = RoadMap::straight_road(2, 3.5, 200.0);
        let me = VehicleState::new(10.0, 1.75, 0.0, 15.0);
        let mut c = ctx(&map, VehicleState::new(30.0, 1.75, 0.0, 5.0));
        c.lead = Some(LeadInfo {
            gap: 2.0,
            speed: 5.0,
        });
        let u = Behavior::RearApproach { target_speed: 20.0 }.decide(&me, &c);
        assert!(u.accel > 0.0, "keeps accelerating into the leader");
    }

    #[test]
    fn pedestrian_waits_then_walks() {
        let map = RoadMap::straight_road(2, 3.5, 200.0);
        let mut b = Behavior::PedestrianCross {
            speed: 1.4,
            trigger_distance: 15.0,
            started: false,
        };
        let me = VehicleState::new(50.0, -1.0, std::f64::consts::FRAC_PI_2, 0.0);
        let far = ctx(&map, VehicleState::new(10.0, 1.75, 0.0, 8.0));
        let u = b.decide(&me, &far);
        assert_eq!(u.accel, 0.0);
        let near = ctx(&map, VehicleState::new(40.0, 1.75, 0.0, 8.0));
        let u2 = b.decide(&me, &near);
        assert!(u2.accel > 0.0);
    }

    #[test]
    fn pull_out_triggers_near_ego() {
        let map = RoadMap::straight_road(2, 3.5, 200.0);
        let mut b = Behavior::PullOut {
            target_lane: LaneId(0),
            trigger_distance: 20.0,
            target_speed: 5.0,
            started: false,
        };
        let me = VehicleState::new(60.0, -1.2, 0.0, 0.0);
        let near = ctx(&map, VehicleState::new(45.0, 1.75, 0.0, 8.0));
        let u = b.decide(&me, &near);
        assert!(u.accel > 0.0);
        assert!(u.steer > 0.0, "steers left into the lane");
    }

    #[test]
    fn follow_trajectory_matches_speed() {
        let map = RoadMap::straight_road(1, 3.5, 200.0);
        let states = vec![
            VehicleState::new(0.0, 1.75, 0.0, 5.0),
            VehicleState::new(0.5, 1.75, 0.0, 5.0),
            VehicleState::new(1.0, 1.75, 0.0, 5.0),
        ];
        let mut b = Behavior::FollowTrajectory {
            trajectory: Trajectory::from_states(Seconds::new(0.0), Seconds::new(0.1), states),
        };
        let me = VehicleState::new(0.0, 1.75, 0.0, 5.0);
        let c = ctx(&map, VehicleState::new(0.0, 1.75, 0.0, 0.0));
        let u = b.decide(&me, &c);
        assert!(u.accel.abs() < 1e-9);
        assert!(u.steer.abs() < 1e-9);
    }

    #[test]
    fn merge_into_triggers_after_distance() {
        let map = RoadMap::straight_road(2, 3.5, 300.0);
        let mut b = Behavior::MergeInto {
            target_lane: LaneId(0),
            trigger_after: 20.0,
            change_distance: 10.0,
            speed: 8.0,
            spawn_x: 50.0,
            phase: CutInPhase::Waiting,
        };
        let c = ctx(&map, VehicleState::new(0.0, 1.75, 0.0, 8.0));
        // Travelled only 10 m: waiting.
        let _ = b.decide(&VehicleState::new(60.0, 5.25, 0.0, 8.0), &c);
        match &b {
            Behavior::MergeInto { phase, .. } => assert_eq!(*phase, CutInPhase::Waiting),
            _ => unreachable!(),
        }
        // Travelled 25 m: merging.
        let u = b.decide(&VehicleState::new(75.0, 5.25, 0.0, 8.0), &c);
        match &b {
            Behavior::MergeInto { phase, .. } => assert_eq!(*phase, CutInPhase::Cutting),
            _ => unreachable!(),
        }
        assert!(u.steer < 0.0);
    }
}
