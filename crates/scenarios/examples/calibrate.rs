//! Calibration probe: LBC collision rates per typology over a param sweep.
use iprism_agents::LbcAgent;
use iprism_scenarios::{sample_instances, Typology};
use iprism_sim::{run_episode, EpisodeOutcome, MotionModel};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    for t in Typology::NHTSA {
        let mut coll = 0;
        let mut valid = 0;
        let mut timeouts = 0;
        for spec in sample_instances(t, n, 2024) {
            let mut w = spec.build_world();
            let mut agent = LbcAgent::default();
            let r = run_episode(&mut w, &mut agent, &spec.episode_config());
            if t == Typology::FrontAccident {
                let wrecked = w.actors().iter().any(|a| a.motion == MotionModel::Static);
                if wrecked {
                    valid += 1;
                }
            } else {
                valid += 1;
            }
            match r.outcome {
                EpisodeOutcome::Collision { .. } => coll += 1,
                EpisodeOutcome::Timeout => timeouts += 1,
                _ => {}
            }
        }
        println!(
            "{:<16} collisions {:>4}/{} valid {:>4} timeouts {:>3}",
            t.name(),
            coll,
            n,
            valid,
            timeouts
        );
    }
}
