//! Determinism regression tests: the whole scenario → world → episode
//! pipeline must be bit-reproducible under a fixed seed. This is what the
//! AST lint's `no-hash-collections` / `no-unseeded-rng` rules protect; the
//! tests here catch ordering or entropy leaks those rules cannot see
//! (e.g. dependence on pointer values or uninitialized padding).

#![allow(clippy::float_cmp)] // exact comparisons are intentional: the STI
                             // pipeline promises bit-identical results

use iprism_agents::LbcAgent;
use iprism_reach::{compute_reach_tube, ReachConfig};
use iprism_risk::{SceneSnapshot, StiEvaluator};
use iprism_scenarios::{sample_instances, Typology};
use iprism_sim::run_episode;
use iprism_units::{Meters, Seconds};

/// Runs one seeded episode and renders its full trace as a string. `Debug`
/// formatting prints every `f64` exactly (shortest round-trip form), so two
/// equal strings mean byte-identical numeric histories.
fn episode_fingerprint(seed: u64) -> String {
    let instances = sample_instances(Typology::GhostCutIn, 1, seed);
    let spec = &instances[0];
    let mut world = spec.build_world();
    let mut controller = LbcAgent::with_target_speed(10.0);
    let result = run_episode(&mut world, &mut controller, &spec.episode_config());
    format!("{:?}\n{:?}", result.outcome, result.trace)
}

/// FNV-1a 64-bit over the fingerprint string: a compact pin for golden
/// byte-identity tests.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

#[test]
fn same_seed_gives_byte_identical_traces() {
    let a = episode_fingerprint(2024);
    let b = episode_fingerprint(2024);
    assert_eq!(a, b, "two runs of the same seeded episode diverged");
}

/// Golden pin captured before the trait-based episode engine refactor: the
/// seed-2024 ghost-cut-in episode must replay this exact numeric history on
/// every machine and after every refactor of the episode-stepping path.
/// A moved hash means the simulation semantics changed — that is never a
/// refactor; re-pin only with a CHANGES.md entry explaining why.
#[test]
fn episode_trace_matches_pre_refactor_golden() {
    assert_eq!(
        fnv1a(&episode_fingerprint(2024)),
        0xcd14_261e_90b2_89e4,
        "seed-2024 episode trace diverged from the pinned golden fingerprint"
    );
}

#[test]
fn different_seeds_give_different_scenarios() {
    // Sanity check that the fingerprint actually captures the scenario:
    // different seeds draw different hyperparameters.
    let a = episode_fingerprint(1);
    let b = episode_fingerprint(2);
    assert_ne!(a, b, "fingerprint is insensitive to the scenario seed");
}

/// A CVTR-predicted scene from a seeded scenario world, as the online SMC
/// loop builds them (§IV-C).
fn seeded_scene(typology: Typology, seed: u64) -> (iprism_map::RoadMap, SceneSnapshot) {
    let instances = sample_instances(typology, 1, seed);
    let world = instances[0].build_world();
    let cfg = ReachConfig::default();
    let scene = SceneSnapshot::from_world_cvtr(&world, cfg.horizon, cfg.dt);
    (world.map().clone(), scene)
}

#[test]
fn sti_is_byte_identical_across_thread_counts() {
    // The parallel counterfactual fan-out must not influence results: any
    // rayon thread count reproduces the serial evaluation byte for byte.
    for (typology, seed) in [(Typology::LeadCutIn, 99), (Typology::GhostCutIn, 7)] {
        let (map, scene) = seeded_scene(typology, seed);
        let serial = StiEvaluator::default()
            .with_threads(1)
            .evaluate(&map, &scene);
        for threads in [2, 8] {
            let parallel = StiEvaluator::default()
                .with_threads(threads)
                .evaluate(&map, &scene);
            assert_eq!(
                parallel, serial,
                "{typology:?}: {threads} threads diverged from serial"
            );
        }
    }
}

#[test]
fn sti_evaluator_matches_naive_counterfactual_reference() {
    // The evaluator's shared-cache + broadphase + relevance-skip machinery
    // must agree *exactly* with the naive reference that recomputes every
    // counterfactual tube from scratch via `compute_reach_tube`.
    let (map, scene) = seeded_scene(Typology::LeadCutIn, 42);
    assert!(!scene.actors.is_empty(), "scenario must provide actors");

    let mut cfg = ReachConfig::default().at_time(Seconds::new(scene.time));
    cfg.ego_dims = (Meters::new(scene.ego_dims.0), Meters::new(scene.ego_dims.1));
    let v_all = compute_reach_tube(&map, scene.ego, &scene.obstacles(), &cfg).volume();
    let v_empty = compute_reach_tube(&map, scene.ego, &[], &cfg).volume();
    let ratio = |numerator: f64| {
        if v_empty <= 0.0 {
            0.0
        } else {
            (numerator / v_empty).clamp(0.0, 1.0)
        }
    };

    let sti = StiEvaluator::default().evaluate(&map, &scene);
    assert_eq!(sti.volume_all, v_all);
    assert_eq!(sti.volume_empty, v_empty);
    assert_eq!(sti.combined, ratio(v_empty - v_all));
    assert_eq!(sti.per_actor.len(), scene.actors.len());
    for (i, actor) in scene.actors.iter().enumerate() {
        let v_without =
            compute_reach_tube(&map, scene.ego, &scene.obstacles_without(actor.id), &cfg).volume();
        assert_eq!(
            sti.per_actor[i],
            (actor.id, ratio(v_without - v_all)),
            "actor {i} diverged from the naive reference"
        );
    }
}

#[test]
fn sampling_is_reproducible_and_seed_sensitive() {
    let a = sample_instances(Typology::LeadCutIn, 5, 7);
    let b = sample_instances(Typology::LeadCutIn, 5, 7);
    assert_eq!(a, b);
    let c = sample_instances(Typology::LeadCutIn, 5, 8);
    assert_ne!(a, c);
}
