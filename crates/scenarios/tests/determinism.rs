//! Determinism regression tests: the whole scenario → world → episode
//! pipeline must be bit-reproducible under a fixed seed. This is what the
//! AST lint's `no-hash-collections` / `no-unseeded-rng` rules protect; the
//! tests here catch ordering or entropy leaks those rules cannot see
//! (e.g. dependence on pointer values or uninitialized padding).

use iprism_agents::LbcAgent;
use iprism_scenarios::{sample_instances, Typology};
use iprism_sim::run_episode;

/// Runs one seeded episode and renders its full trace as a string. `Debug`
/// formatting prints every `f64` exactly (shortest round-trip form), so two
/// equal strings mean byte-identical numeric histories.
fn episode_fingerprint(seed: u64) -> String {
    let instances = sample_instances(Typology::GhostCutIn, 1, seed);
    let spec = &instances[0];
    let mut world = spec.build_world();
    let mut controller = LbcAgent::with_target_speed(10.0);
    let result = run_episode(&mut world, &mut controller, &spec.episode_config());
    format!("{:?}\n{:?}", result.outcome, result.trace)
}

#[test]
fn same_seed_gives_byte_identical_traces() {
    let a = episode_fingerprint(2024);
    let b = episode_fingerprint(2024);
    assert_eq!(a, b, "two runs of the same seeded episode diverged");
}

#[test]
fn different_seeds_give_different_scenarios() {
    // Sanity check that the fingerprint actually captures the scenario:
    // different seeds draw different hyperparameters.
    let a = episode_fingerprint(1);
    let b = episode_fingerprint(2);
    assert_ne!(a, b, "fingerprint is insensitive to the scenario seed");
}

#[test]
fn sampling_is_reproducible_and_seed_sensitive() {
    let a = sample_instances(Typology::LeadCutIn, 5, 7);
    let b = sample_instances(Typology::LeadCutIn, 5, 7);
    assert_eq!(a, b);
    let c = sample_instances(Typology::LeadCutIn, 5, 8);
    assert_ne!(a, c);
}
