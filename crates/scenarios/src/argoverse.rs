//! Synthetic benign traffic — the Argoverse stand-in of §V-D.
//!
//! The paper characterizes STI on the Argoverse dataset to show that
//! real-world data is long-tailed toward *low-risk* scenes (human drivers
//! obey rules and avoid danger). This module generates such data: lane
//! keeping traffic with safe gaps, an occasional parked car, and a
//! pedestrian waiting at the roadside — benign unless the sampled geometry
//! happens to get (mildly) interesting, which is exactly the long tail.

use iprism_dynamics::VehicleState;
use iprism_map::RoadMap;
use iprism_sim::{Actor, ActorKind, Behavior, World};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the benign-traffic generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenignTrafficConfig {
    /// Number of lanes.
    pub lanes: usize,
    /// Road length (m).
    pub road_length: f64,
    /// Number of vehicles (excluding the ego).
    pub vehicles: usize,
    /// Cruise-speed range (m/s).
    pub speed_range: (f64, f64),
    /// Minimum initial bumper gap between same-lane vehicles (m).
    pub min_gap: f64,
    /// Probability that an extra parked car appears on the rightmost lane
    /// edge.
    pub parked_probability: f64,
    /// Probability that a (non-crossing) pedestrian stands at the roadside.
    pub pedestrian_probability: f64,
    /// Ego start speed (m/s).
    pub ego_speed: f64,
}

impl Default for BenignTrafficConfig {
    fn default() -> Self {
        BenignTrafficConfig {
            lanes: 3,
            road_length: 800.0,
            vehicles: 8,
            speed_range: (5.0, 11.0),
            min_gap: 18.0,
            parked_probability: 0.25,
            pedestrian_probability: 0.15,
            ego_speed: 8.0,
        }
    }
}

/// Generates one benign-traffic episode world, deterministic under `seed`.
///
/// Vehicles are placed in random lanes at safe gaps, all lane-keeping with
/// leader-aware speed control; none of the scripted hazard behaviours
/// (cut-ins, slowdowns, rear approaches) are used.
pub fn generate_benign_episode(config: &BenignTrafficConfig, seed: u64) -> World {
    assert!(config.lanes >= 1 && config.vehicles < 1000, "sane config");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let map = RoadMap::straight_road(config.lanes, 3.5, config.road_length);
    let lane_y = |i: usize| (i as f64 + 0.5) * 3.5;

    let ego_lane = rng.gen_range(0..config.lanes);
    let ego_x = rng.gen_range(40.0..80.0);
    let mut world = World::new(
        map,
        VehicleState::new(ego_x, lane_y(ego_lane), 0.0, config.ego_speed),
        0.1,
    );

    // Track the last-placed x per lane to enforce safe gaps.
    let mut next_free_x: Vec<f64> = (0..config.lanes)
        .map(|l| {
            if l == ego_lane {
                ego_x + config.min_gap
            } else {
                rng.gen_range(20.0..60.0)
            }
        })
        .collect();

    let mut id = 1u32;
    for _ in 0..config.vehicles {
        let lane = rng.gen_range(0..config.lanes);
        let gap = rng.gen_range(config.min_gap..config.min_gap * 3.0);
        let x = next_free_x[lane] + gap;
        if x > config.road_length - 50.0 {
            continue; // lane full
        }
        next_free_x[lane] = x;
        let speed = rng.gen_range(config.speed_range.0..config.speed_range.1);
        world.spawn(Actor::vehicle(
            id,
            VehicleState::new(x, lane_y(lane), 0.0, speed),
            Behavior::lane_keep(speed),
        ));
        id += 1;
    }

    if rng.gen_range(0.0..1.0) < config.parked_probability {
        // Badly parked car at the right road edge, slightly into lane 0.
        // Resample the position until it clears the lane traffic — benign
        // data must never start inside a collision — and give up (no parked
        // car) when the sampled stretch is fully occupied.
        let intrusion = rng.gen_range(-0.4..0.6);
        for _ in 0..8 {
            let x = rng.gen_range(ego_x + 40.0..ego_x + 120.0);
            let parked = Actor::parked(id, VehicleState::new(x, intrusion, 0.0, 0.0));
            let fp = parked.footprint();
            if world
                .actors()
                .iter()
                .all(|a| !a.footprint().intersects(&fp))
            {
                world.spawn(parked);
                id += 1;
                break;
            }
        }
    }

    if rng.gen_range(0.0..1.0) < config.pedestrian_probability {
        // Pedestrian waiting at the roadside (never crosses in benign data).
        let x = rng.gen_range(ego_x + 30.0..ego_x + 100.0);
        world.spawn(Actor::new(
            id,
            ActorKind::Pedestrian,
            VehicleState::new(x, -1.0, std::f64::consts::FRAC_PI_2, 0.0),
            Behavior::Idle,
        ));
    }

    world
}

#[cfg(test)]
mod tests {
    use super::*;
    use iprism_sim::{run_episode, ConstantControl, EpisodeConfig};

    #[test]
    fn deterministic_generation() {
        let cfg = BenignTrafficConfig::default();
        let a = generate_benign_episode(&cfg, 42);
        let b = generate_benign_episode(&cfg, 42);
        assert_eq!(a.actors().len(), b.actors().len());
        for (x, y) in a.actors().iter().zip(b.actors()) {
            assert_eq!(x.state, y.state);
        }
        let c = generate_benign_episode(&cfg, 43);
        // different seed: some difference in layout
        let same = a.actors().len() == c.actors().len()
            && a.actors()
                .iter()
                .zip(c.actors())
                .all(|(x, y)| x.state == y.state);
        assert!(!same);
    }

    #[test]
    fn gaps_are_safe() {
        let cfg = BenignTrafficConfig::default();
        for seed in 0..20 {
            let w = generate_benign_episode(&cfg, seed);
            // no initial overlaps anywhere
            let fps: Vec<_> = w
                .actors()
                .iter()
                .map(iprism_sim::Actor::footprint)
                .collect();
            for i in 0..fps.len() {
                for j in (i + 1)..fps.len() {
                    assert!(!fps[i].intersects(&fps[j]), "seed {seed}: overlap");
                }
                assert!(
                    !fps[i].intersects(&w.ego_footprint()),
                    "seed {seed}: ego overlap"
                );
            }
        }
    }

    #[test]
    fn benign_episodes_rarely_collide() {
        // Traffic left to itself (ego coasting slowly) should be accident
        // free in the vast majority of seeds.
        let cfg = BenignTrafficConfig::default();
        let mut collisions = 0;
        for seed in 0..10 {
            let mut w = generate_benign_episode(&cfg, seed);
            let mut agent = ConstantControl::coast();
            let r = run_episode(
                &mut w,
                &mut agent,
                &EpisodeConfig {
                    max_time: 10.0,
                    goal: iprism_sim::Goal::None,
                    stop_on_collision: true,
                },
            );
            if r.outcome.is_collision() {
                collisions += 1;
            }
        }
        assert!(collisions <= 2, "benign traffic collided {collisions}/10");
    }
}
