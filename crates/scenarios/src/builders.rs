//! World construction per typology.

use iprism_dynamics::{Trajectory, VehicleState};
use iprism_geom::{Seconds, Vec2};
use iprism_map::{LaneId, RoadMap};
use iprism_sim::{Actor, Behavior, CutInPhase, World};

use crate::{ScenarioSpec, Typology, EGO_START_SPEED, EGO_START_X};

/// Simulation step used by every scenario (s).
pub const SIM_DT: f64 = 0.1;

/// Lane width (m) of the straight-road typologies.
const LANE_WIDTH: f64 = 3.5;
/// Lane-0 / lane-1 centre y-coordinates.
const LANE0_Y: f64 = 0.5 * LANE_WIDTH;
const LANE1_Y: f64 = 1.5 * LANE_WIDTH;

pub(crate) fn build_world(spec: &ScenarioSpec) -> World {
    match spec.typology {
        Typology::GhostCutIn => ghost_cut_in(spec),
        Typology::LeadCutIn => lead_cut_in(spec),
        Typology::LeadSlowdown => lead_slowdown(spec),
        Typology::FrontAccident => front_accident(spec),
        Typology::RearEnd => rear_end(spec),
        Typology::RoundaboutGhostCutIn => roundabout_ghost_cut_in(spec),
    }
}

fn straight_world() -> World {
    let map = RoadMap::straight_road(2, LANE_WIDTH, 600.0);
    World::new(
        map,
        VehicleState::new(EGO_START_X, LANE0_Y, 0.0, EGO_START_SPEED),
        SIM_DT,
    )
}

/// §IV-B1(a): an actor approaches from behind in the adjacent lane and cuts
/// in abruptly once it is slightly ahead of the ego.
fn ghost_cut_in(spec: &ScenarioSpec) -> World {
    let behind = spec.param("distance_same_lane");
    let change = spec.param("distance_lane_change");
    let speed = spec.param("speed_lane_change");
    let mut w = straight_world();
    w.spawn(Actor::vehicle(
        1,
        VehicleState::new(EGO_START_X - behind, LANE1_Y, 0.0, speed),
        Behavior::ghost_cut_in(LaneId(0), 3.0, change, speed),
    ));
    // Traffic ahead in the ego lane: the cutter squeezes into the gap, and
    // the ego cannot simply outrun the threat.
    w.spawn(Actor::vehicle(
        2,
        VehicleState::new(EGO_START_X + 35.0, LANE0_Y, 0.0, 8.5),
        Behavior::lane_keep(8.5),
    ));
    w
}

/// §IV-B1(b): an actor ahead in the adjacent lane cuts in as the ego
/// approaches within the trigger distance.
fn lead_cut_in(spec: &ScenarioSpec) -> World {
    let trigger = spec.param("event_trigger_distance");
    let change = spec.param("distance_lane_change");
    let speed = spec.param("speed_lane_change");
    let mut w = straight_world();
    w.spawn(Actor::vehicle(
        1,
        VehicleState::new(EGO_START_X + 45.0, LANE1_Y, 0.0, speed),
        Behavior::lead_cut_in(LaneId(0), trigger, change, speed),
    ));
    w
}

/// §IV-B1(c): an actor ahead in the same lane brakes to a stop once the ego
/// closes within the trigger distance.
fn lead_slowdown(spec: &ScenarioSpec) -> World {
    let location = spec.param("npc_vehicle_location");
    let speed = spec.param("npc_vehicle_speed");
    let trigger = spec.param("event_trigger_distance");
    let mut w = straight_world();
    w.spawn(Actor::vehicle(
        1,
        VehicleState::new(EGO_START_X + location, LANE0_Y, 0.0, speed),
        Behavior::Slowdown {
            cruise_speed: speed,
            trigger_distance: trigger,
            decel: 6.0,
            target_speed: 0.0,
            triggered: false,
        },
    ));
    w
}

/// §IV-B1(d): two actors ahead collide in a merging conflict; the wreck
/// blocks the road. Whether they actually collide depends on the sampled
/// parameters — instances where they miss are *invalid* (the paper kept
/// 810 of 1000).
fn front_accident(spec: &ScenarioSpec) -> World {
    let gap_behind = spec.param("distance_lane_change");
    let lead_offset = spec.param("distance_same_lane");
    let trigger = spec.param("event_trigger_distance");
    let mut w = straight_world();
    let a_x = EGO_START_X + 55.0 + lead_offset;
    // Lane-0 victim, cruising.
    w.spawn(Actor::vehicle(
        1,
        VehicleState::new(a_x, LANE0_Y, 0.0, 7.0),
        Behavior::lane_keep(7.0),
    ));
    // Lane-1 merger, faster, merges without yielding after `trigger` metres.
    let b_x = a_x - gap_behind;
    w.spawn(Actor::vehicle(
        2,
        VehicleState::new(b_x, LANE1_Y, 0.0, 10.0),
        Behavior::MergeInto {
            target_lane: LaneId(0),
            trigger_after: trigger,
            change_distance: 10.0,
            speed: 10.0,
            spawn_x: b_x,
            phase: CutInPhase::Waiting,
        },
    ));
    w
}

/// §IV-B1(e): a fast actor approaches in the ego lane from behind while a
/// slower leader and adjacent-lane traffic pin the ego in.
fn rear_end(spec: &ScenarioSpec) -> World {
    let rear_speed = spec.param("npc_vehicle_1_speed");
    let lead_speed = spec.param("npc_vehicle_2_speed");
    let rear_location = spec.param("npc_vehicle_1_location");
    let mut w = straight_world();
    // Leader well ahead of the ego; accelerating up to its speed is the
    // only escape from the rear threat (§V-C's acceleration extension).
    w.spawn(Actor::vehicle(
        1,
        VehicleState::new(EGO_START_X + 45.0, LANE0_Y, 0.0, lead_speed),
        Behavior::lane_keep(lead_speed),
    ));
    // The threat: approaches from behind, never yields.
    w.spawn(Actor::vehicle(
        2,
        VehicleState::new(EGO_START_X - rear_location, LANE0_Y, 0.0, rear_speed),
        Behavior::RearApproach {
            target_speed: rear_speed,
        },
    ));
    // Adjacent-lane traffic blocking the escape to the left.
    w.spawn(Actor::vehicle(
        3,
        VehicleState::new(EGO_START_X + 6.0, LANE1_Y, 0.0, EGO_START_SPEED),
        Behavior::lane_keep(EGO_START_SPEED),
    ));
    w
}

/// §V-C: ghost cut-in at a roundabout — a ring vehicle arrives at the
/// (tangential, south) entry exactly when the ego does and fails to yield.
fn roundabout_ghost_cut_in(spec: &ScenarioSpec) -> World {
    let arc_offset = spec.param("npc_arc_offset");
    let npc_speed = spec.param("npc_speed");
    let ego_speed = spec.param("ego_speed");

    let center = Vec2::ZERO;
    let (r_inner, r_outer, approach) = (12.0, 19.0, 60.0);
    let r_mid = (r_inner + r_outer) * 0.5;
    let map = RoadMap::roundabout(center, r_inner, r_outer, approach);

    // Ego starts 40 m down the tangential approach heading east.
    let ego_start = Vec2::new(-40.0, -r_mid);
    let mut w = World::new(
        map,
        VehicleState::new(ego_start.x, ego_start.y, 0.0, ego_speed),
        SIM_DT,
    );

    // The conflicting vehicle circulates counter-clockwise; time its arrival
    // at the south entry (angle 3π/2) to coincide with the ego's, shifted by
    // the sampled arc offset.
    let t_ego_entry = 40.0 / ego_speed.max(1.0);
    let omega = npc_speed / r_mid;
    // Angle at t=0 such that angle(t_entry) = 3π/2.
    let start_angle = 1.5 * std::f64::consts::PI - omega * t_ego_entry - arc_offset / r_mid;
    let steps = (45.0 / SIM_DT) as usize;
    let mut states = Vec::with_capacity(steps + 1);
    for i in 0..=steps {
        let t = i as f64 * SIM_DT;
        let ang = start_angle + omega * t;
        let pos = center + Vec2::from_angle(iprism_geom::Radians::new(ang)) * r_mid;
        // counter-clockwise tangent
        let heading = ang + std::f64::consts::FRAC_PI_2;
        states.push(VehicleState::new(
            pos.x,
            pos.y,
            iprism_geom::wrap_to_pi(heading),
            npc_speed,
        ));
    }
    let trajectory = Trajectory::from_states(Seconds::new(0.0), Seconds::new(SIM_DT), states);
    w.spawn(Actor::vehicle(
        1,
        trajectory.states()[0],
        Behavior::FollowTrajectory { trajectory },
    ));
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_instances;
    use iprism_agents::LbcAgent;
    use iprism_sim::{run_episode, ConstantControl, EpisodeOutcome};

    fn spec(t: Typology, params: Vec<f64>) -> ScenarioSpec {
        ScenarioSpec::new(t, params, 0)
    }

    #[test]
    fn ghost_cut_in_npc_starts_behind_in_adjacent_lane() {
        let w = spec(Typology::GhostCutIn, vec![20.0, 8.0, 11.0]).build_world();
        let npc = &w.actors()[0];
        assert!(npc.state.x < w.ego().x);
        assert!((npc.state.y - LANE1_Y).abs() < 1e-9);
        assert!(npc.state.v > w.ego().v);
    }

    #[test]
    fn ghost_cut_in_can_produce_a_collision() {
        // An aggressive instance defeats the LBC baseline.
        let s = spec(Typology::GhostCutIn, vec![25.2, 5.6, 10.5]);
        let mut w = s.build_world();
        let mut agent = LbcAgent::default();
        let r = run_episode(&mut w, &mut agent, &s.episode_config());
        assert!(r.outcome.is_collision(), "{:?}", r.outcome);
    }

    #[test]
    fn lead_cut_in_waits_for_ego() {
        let s = spec(Typology::LeadCutIn, vec![20.0, 8.0, 4.0]);
        let mut w = s.build_world();
        // With a parked ego nothing happens: the cut-in never triggers.
        let mut agent = ConstantControl::coast();
        w.set_ego(VehicleState::new(EGO_START_X, LANE0_Y, 0.0, 0.0));
        for _ in 0..100 {
            let u = agent_control(&mut agent, &w);
            w.step(u);
        }
        assert!((w.actors()[0].state.y - LANE1_Y).abs() < 0.2);
    }

    fn agent_control(
        agent: &mut impl iprism_sim::EgoController,
        w: &World,
    ) -> iprism_dynamics::ControlInput {
        agent.control(w)
    }

    #[test]
    fn lead_slowdown_scenario_produces_stop() {
        let s = spec(Typology::LeadSlowdown, vec![40.0, 6.0, 30.0]);
        let mut w = s.build_world();
        let mut agent = LbcAgent::default();
        let _ = run_episode(&mut w, &mut agent, &s.episode_config());
        // The NPC ended up stopped (it braked when the ego approached).
        assert!(w.actors()[0].state.v < 1.0);
    }

    #[test]
    fn front_accident_wrecks_block_road_and_lbc_avoids() {
        let s = spec(Typology::FrontAccident, vec![8.0, 10.0, 15.0]);
        let mut w = s.build_world();
        let mut agent = LbcAgent::default();
        let r = run_episode(&mut w, &mut agent, &s.episode_config());
        // The two NPCs collided...
        let wrecked = w
            .actors()
            .iter()
            .any(|a| a.motion == iprism_sim::MotionModel::Static);
        assert!(wrecked, "NPC-NPC accident must have happened");
        // ... and the ego avoided them (Table I: 0 LBC accidents here).
        assert!(!r.outcome.is_collision(), "{:?}", r.outcome);
    }

    #[test]
    fn rear_end_defeats_lbc() {
        let s = spec(Typology::RearEnd, vec![16.0, 7.0, 30.0]);
        let mut w = s.build_world();
        let mut agent = LbcAgent::default();
        let r = run_episode(&mut w, &mut agent, &s.episode_config());
        match r.outcome {
            EpisodeOutcome::Collision { with, .. } => {
                assert_eq!(with, iprism_sim::ActorId(2), "hit by the rear actor");
            }
            other => panic!("expected rear-end collision, got {other:?}"),
        }
    }

    #[test]
    fn roundabout_npc_reaches_entry_with_ego() {
        let s = spec(Typology::RoundaboutGhostCutIn, vec![0.0, 8.0, 8.0]);
        let w = s.build_world();
        let npc = &w.actors()[0];
        // NPC starts on the ring.
        let r = npc.state.position().norm();
        assert!((r - 15.5).abs() < 0.5, "npc radius {r}");
        // Ego on the tangential south-west approach.
        assert!(w.ego().x <= -40.0 && (w.ego().y + 15.5).abs() < 1e-9);
    }

    #[test]
    fn sampled_instances_have_varied_outcomes() {
        // Across a small sweep, the ghost cut-in typology must produce both
        // collisions and escapes for the LBC baseline (it is ~52% in the
        // full sweep).
        let mut collided = 0;
        let mut safe = 0;
        for s in sample_instances(Typology::GhostCutIn, 12, 99) {
            let mut w = s.build_world();
            let mut agent = LbcAgent::default();
            let r = run_episode(&mut w, &mut agent, &s.episode_config());
            if r.outcome.is_collision() {
                collided += 1;
            } else {
                safe += 1;
            }
        }
        assert!(collided > 0, "no collisions in sweep");
        assert!(safe > 0, "no safe episodes in sweep");
    }
}
