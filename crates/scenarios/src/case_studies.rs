//! The four Figure-7 case studies of §V-D.
//!
//! Each returns a fully configured [`World`] capturing the depicted moment;
//! evaluating per-actor STI on a CVTR snapshot of the world reproduces the
//! qualitative findings (which actor dominates the risk, which actors are
//! harmless).

use iprism_dynamics::VehicleState;
use iprism_map::RoadMap;
use iprism_sim::{Actor, ActorKind, Behavior, World};
use serde::{Deserialize, Serialize};
use std::f64::consts::FRAC_PI_2;

/// The Figure-7 scenes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CaseStudy {
    /// (a) A pedestrian crossing forces the ego to stop (paper: STI 0.72,
    /// the most safety-threatening actor).
    PedestrianCrossing,
    /// (b) An oversized actor in the adjacent lane partially occupies the
    /// ego lane without intending to merge (paper: STI 0.69 — risky while
    /// never in the ego's path).
    OversizedActor,
    /// (c) A cluttered street: one actor exiting the lane (STI 0), one
    /// entering (STI 0.35), one badly parked blocking part of the lane.
    ClutteredStreet,
    /// (d) An actor pulling out of a parking spot plus two actors occupying
    /// the adjacent lane the ego might otherwise use.
    ActorPullingOut,
}

impl CaseStudy {
    /// All four scenes in Figure-7 order.
    pub const ALL: [CaseStudy; 4] = [
        CaseStudy::PedestrianCrossing,
        CaseStudy::OversizedActor,
        CaseStudy::ClutteredStreet,
        CaseStudy::ActorPullingOut,
    ];

    /// Scene label matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            CaseStudy::PedestrianCrossing => "pedestrian crossing",
            CaseStudy::OversizedActor => "oversized actor",
            CaseStudy::ClutteredStreet => "cluttered environment",
            CaseStudy::ActorPullingOut => "actor pulling out",
        }
    }
}

/// Builds the world for a case study.
pub fn case_study(kind: CaseStudy) -> World {
    match kind {
        CaseStudy::PedestrianCrossing => pedestrian_crossing(),
        CaseStudy::OversizedActor => oversized_actor(),
        CaseStudy::ClutteredStreet => cluttered_street(),
        CaseStudy::ActorPullingOut => actor_pulling_out(),
    }
}

fn base_world(ego_speed: f64) -> World {
    base_world_lanes(ego_speed, 2)
}

fn base_world_lanes(ego_speed: f64, lanes: usize) -> World {
    let map = RoadMap::straight_road(lanes, 3.5, 300.0);
    World::new(map, VehicleState::new(50.0, 1.75, 0.0, ego_speed), 0.1)
}

/// (a) A pedestrian mid-crossing directly ahead of the ego.
fn pedestrian_crossing() -> World {
    let mut w = base_world(8.0);
    w.spawn(Actor::new(
        1,
        ActorKind::Pedestrian,
        VehicleState::new(66.0, 1.2, FRAC_PI_2, 1.4), // walking across the lane
        Behavior::PedestrianCross {
            speed: 1.4,
            trigger_distance: 1e9, // already crossing
            started: true,
        },
    ));
    // A benign vehicle far ahead for scene context.
    w.spawn(Actor::vehicle(
        2,
        VehicleState::new(160.0, 5.25, 0.0, 8.0),
        Behavior::lane_keep(8.0),
    ));
    w
}

/// (b) An oversized truck in the adjacent lane encroaching on the ego lane.
fn oversized_actor() -> World {
    let mut w = base_world(8.0);
    // Truck centred so it pokes ~0.6 m into the ego lane, moving parallel.
    w.spawn(Actor::oversized(
        1,
        VehicleState::new(68.0, 4.1, 0.0, 6.0),
        Behavior::lane_keep(6.0),
    ));
    // Ordinary vehicle well ahead in the ego lane.
    w.spawn(Actor::vehicle(
        2,
        VehicleState::new(150.0, 1.75, 0.0, 8.0),
        Behavior::lane_keep(8.0),
    ));
    w
}

/// (c) Cluttered street with entering, exiting and badly parked actors.
fn cluttered_street() -> World {
    let mut w = base_world(8.0);
    // Actor behind the ego, exiting the drivable lane (angled away).
    w.spawn(Actor::vehicle(
        1,
        VehicleState::new(35.0, 0.6, -0.35, 3.0),
        Behavior::Idle,
    ));
    // Actor entering the lane just ahead (angled in from the roadside).
    w.spawn(Actor::vehicle(
        2,
        VehicleState::new(66.0, 0.8, 0.45, 3.0),
        Behavior::Idle,
    ));
    // Badly parked car partially blocking the ego lane.
    w.spawn(Actor::parked(3, VehicleState::new(76.0, 0.9, 0.1, 0.0)));
    // Slow traffic in the adjacent lane, pinning the left escape.
    w.spawn(Actor::vehicle(
        4,
        VehicleState::new(62.0, 5.25, 0.0, 5.0),
        Behavior::lane_keep(5.0),
    ));
    w
}

/// (d) An actor pulling out of a parking spot into the ego lane while two
/// vehicles occupy the adjacent lane.
fn actor_pulling_out() -> World {
    // A wider street (three lanes), as in the paper's scene (d): the ego
    // could in principle manoeuvre into the upper lanes.
    let mut w = base_world_lanes(8.0, 3);
    // Pulling out: angled into lane 0 ahead of the ego, accelerating.
    w.spawn(Actor::vehicle(
        1,
        VehicleState::new(70.0, 0.7, 0.35, 2.0),
        Behavior::PullOut {
            target_lane: iprism_map::LaneId(0),
            trigger_distance: 1e9,
            target_speed: 5.0,
            started: true,
        },
    ));
    // Two actors in the top lane the ego might otherwise use.
    w.spawn(Actor::vehicle(
        2,
        VehicleState::new(56.0, 5.25, 0.0, 5.0),
        Behavior::lane_keep(5.0),
    ));
    w.spawn(Actor::vehicle(
        3,
        VehicleState::new(68.0, 5.25, 0.0, 5.0),
        Behavior::lane_keep(5.0),
    ));
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenes_build() {
        for kind in CaseStudy::ALL {
            let w = case_study(kind);
            assert!(!w.actors().is_empty(), "{}", kind.name());
            // No initial collision with the ego anywhere.
            for a in w.actors() {
                assert!(
                    !a.footprint().intersects(&w.ego_footprint()),
                    "{}: initial overlap",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(CaseStudy::PedestrianCrossing.name(), "pedestrian crossing");
        assert_eq!(CaseStudy::ALL.len(), 4);
    }

    #[test]
    fn oversized_truck_encroaches_ego_lane() {
        let w = case_study(CaseStudy::OversizedActor);
        let truck = &w.actors()[0];
        let fp = truck.footprint();
        // The footprint dips below y = 3.5 (into lane 0).
        assert!(fp.aabb().min.y < 3.5);
        assert_eq!(truck.kind, ActorKind::Oversized);
    }

    #[test]
    fn scenes_step_without_panicking() {
        for kind in CaseStudy::ALL {
            let mut w = case_study(kind);
            for _ in 0..20 {
                w.step(iprism_dynamics::ControlInput::COAST);
            }
        }
    }
}
