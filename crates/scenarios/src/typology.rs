//! The scenario typologies of §IV-B1.

use serde::{Deserialize, Serialize};

/// An NHTSA pre-crash scenario typology (Fig. 3 of the paper), plus the
/// roundabout variant used in the RIP comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Typology {
    /// An actor approaches from behind in the adjacent lane and cuts in
    /// abruptly once it has caught up — threat from the side.
    GhostCutIn,
    /// An actor ahead in the adjacent lane cuts in as the ego approaches —
    /// threat from the front and side.
    LeadCutIn,
    /// An actor ahead in the same lane slows to a stop — threat from the
    /// front.
    LeadSlowdown,
    /// Two actors ahead collide in a merging conflict, leaving a wreck —
    /// threat from all directions.
    FrontAccident,
    /// An actor approaches from behind in the same lane and hits the ego —
    /// threat from the back.
    RearEnd,
    /// Ghost cut-in combined with the roundabout map (§V-C's additional
    /// RIP evaluation).
    RoundaboutGhostCutIn,
}

impl Typology {
    /// The five NHTSA typologies of Table I (excludes the roundabout
    /// variant).
    pub const NHTSA: [Typology; 5] = [
        Typology::GhostCutIn,
        Typology::LeadCutIn,
        Typology::LeadSlowdown,
        Typology::FrontAccident,
        Typology::RearEnd,
    ];

    /// Human-readable name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Typology::GhostCutIn => "Ghost Cut-in",
            Typology::LeadCutIn => "Lead Cut-in",
            Typology::LeadSlowdown => "Lead Slowdown",
            Typology::FrontAccident => "Front Accident",
            Typology::RearEnd => "Rear-end",
            Typology::RoundaboutGhostCutIn => "Roundabout Ghost Cut-in",
        }
    }

    /// The hyperparameter names of Table I, in sampling order.
    pub fn hyperparameters(self) -> &'static [&'static str] {
        match self {
            Typology::GhostCutIn => &[
                "distance_same_lane",
                "distance_lane_change",
                "speed_lane_change",
            ],
            Typology::LeadCutIn => &[
                "event_trigger_distance",
                "distance_lane_change",
                "speed_lane_change",
            ],
            Typology::LeadSlowdown => &[
                "npc_vehicle_location",
                "npc_vehicle_speed",
                "event_trigger_distance",
            ],
            Typology::FrontAccident => &[
                "distance_lane_change",
                "distance_same_lane",
                "event_trigger_distance",
            ],
            Typology::RearEnd => &[
                "npc_vehicle_1_speed",
                "npc_vehicle_2_speed",
                "npc_vehicle_1_location",
            ],
            Typology::RoundaboutGhostCutIn => &["npc_arc_offset", "npc_speed", "ego_speed"],
        }
    }

    /// The uniform sampling range of each hyperparameter, in the same order
    /// as [`Typology::hyperparameters`]. Ranges are calibrated so the LBC
    /// baseline's per-typology accident rates reproduce the *profile* of
    /// Table I (see DESIGN.md).
    pub fn hyperparameter_ranges(self) -> &'static [(f64, f64)] {
        match self {
            Typology::GhostCutIn => &[(8.0, 30.0), (5.0, 18.0), (8.6, 14.0)],
            Typology::LeadCutIn => &[(8.0, 28.0), (5.0, 15.0), (2.2, 6.5)],
            Typology::LeadSlowdown => &[(8.0, 28.0), (4.0, 8.0), (8.0, 30.0)],
            Typology::FrontAccident => &[(6.0, 16.0), (2.0, 42.0), (10.0, 40.0)],
            Typology::RearEnd => &[(8.2, 13.5), (6.0, 8.0), (30.0, 80.0)],
            Typology::RoundaboutGhostCutIn => &[(0.0, 4.5), (6.5, 11.0), (6.5, 10.0)],
        }
    }

    /// Scenario instances generated per typology in the paper (Table I).
    pub fn paper_instance_count(self) -> usize {
        match self {
            Typology::FrontAccident => 810,
            _ => 1000,
        }
    }
}

impl std::fmt::Display for Typology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_consistent() {
        for t in Typology::NHTSA {
            assert_eq!(t.hyperparameters().len(), 3, "{t}");
            assert_eq!(t.hyperparameter_ranges().len(), 3, "{t}");
            for (lo, hi) in t.hyperparameter_ranges() {
                assert!(lo < hi, "{t}");
            }
            assert!(!t.name().is_empty());
        }
    }

    #[test]
    fn paper_counts() {
        assert_eq!(Typology::FrontAccident.paper_instance_count(), 810);
        assert_eq!(Typology::GhostCutIn.paper_instance_count(), 1000);
        let total: usize = Typology::NHTSA
            .iter()
            .map(|t| t.paper_instance_count())
            .sum();
        assert_eq!(total, 4810); // the paper's 4810 scenarios
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(format!("{}", Typology::GhostCutIn), "Ghost Cut-in");
    }
}
