//! Hyperparameter sampling: typology → concrete scenario instances.

use iprism_sim::{EpisodeConfig, Goal, World};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::{builders, Typology};

/// A fully specified scenario instance: a typology plus concrete
/// hyperparameter values. Building the world is deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// The typology this instance belongs to.
    pub typology: Typology,
    /// Hyperparameter values, in [`Typology::hyperparameters`] order.
    pub params: Vec<f64>,
    /// Instance index within its sweep (stable identifier).
    pub index: usize,
}

impl ScenarioSpec {
    /// Creates a spec from explicit parameter values.
    ///
    /// # Panics
    ///
    /// Panics when the number of parameters does not match the typology.
    pub fn new(typology: Typology, params: Vec<f64>, index: usize) -> Self {
        assert_eq!(
            params.len(),
            typology.hyperparameters().len(),
            "wrong parameter count for {typology}"
        );
        ScenarioSpec {
            typology,
            params,
            index,
        }
    }

    /// Value of a named hyperparameter.
    ///
    /// # Panics
    ///
    /// Panics when the name is unknown for this typology.
    pub fn param(&self, name: &str) -> f64 {
        let i = self
            .typology
            .hyperparameters()
            .iter()
            .position(|&n| n == name)
            .unwrap_or_else(|| panic!("unknown hyperparameter {name} for {}", self.typology));
        self.params[i]
    }

    /// Constructs the simulation world for this instance.
    pub fn build_world(&self) -> World {
        builders::build_world(self)
    }

    /// The episode configuration used to run this instance.
    pub fn episode_config(&self) -> EpisodeConfig {
        match self.typology {
            // Goal: traverse the ring to the east point (the exit mouth).
            Typology::RoundaboutGhostCutIn => EpisodeConfig {
                max_time: 40.0,
                goal: Goal::Point {
                    x: 15.5,
                    y: 0.0,
                    radius: 4.0,
                },
                stop_on_collision: true,
            },
            _ => EpisodeConfig {
                max_time: 35.0,
                goal: Goal::XThreshold(crate::EGO_START_X + 200.0),
                stop_on_collision: true,
            },
        }
    }
}

/// Uniformly samples `count` scenario instances of a typology (Table I's
/// methodology: "we varied the hyperparameters uniformly for each
/// typology"). Deterministic under `base_seed`.
pub fn sample_instances(typology: Typology, count: usize, base_seed: u64) -> Vec<ScenarioSpec> {
    let ranges = typology.hyperparameter_ranges();
    let mut rng = ChaCha8Rng::seed_from_u64(base_seed ^ (typology as u64).wrapping_mul(0x9E3779B9));
    (0..count)
        .map(|index| {
            let params = ranges
                .iter()
                .map(|&(lo, hi)| rng.gen_range(lo..hi))
                .collect();
            ScenarioSpec {
                typology,
                params,
                index,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_in_range() {
        let a = sample_instances(Typology::GhostCutIn, 50, 7);
        let b = sample_instances(Typology::GhostCutIn, 50, 7);
        assert_eq!(a, b);
        let ranges = Typology::GhostCutIn.hyperparameter_ranges();
        for spec in &a {
            for (v, (lo, hi)) in spec.params.iter().zip(ranges) {
                assert!(v >= lo && v < hi);
            }
        }
        // different seed, different draws
        let c = sample_instances(Typology::GhostCutIn, 50, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn typologies_draw_distinct_streams() {
        let a = sample_instances(Typology::GhostCutIn, 5, 7);
        let b = sample_instances(Typology::LeadCutIn, 5, 7);
        assert_ne!(a[0].params, b[0].params);
    }

    #[test]
    fn param_lookup_by_name() {
        let spec = ScenarioSpec::new(Typology::GhostCutIn, vec![10.0, 8.0, 11.0], 0);
        assert_eq!(spec.param("distance_same_lane"), 10.0);
        assert_eq!(spec.param("speed_lane_change"), 11.0);
    }

    #[test]
    #[should_panic(expected = "unknown hyperparameter")]
    fn unknown_param_panics() {
        let spec = ScenarioSpec::new(Typology::GhostCutIn, vec![1.0, 2.0, 3.0], 0);
        let _ = spec.param("nope");
    }

    #[test]
    #[should_panic(expected = "wrong parameter count")]
    fn wrong_count_panics() {
        let _ = ScenarioSpec::new(Typology::GhostCutIn, vec![1.0], 0);
    }

    #[test]
    fn every_nhtsa_typology_builds() {
        for t in Typology::NHTSA {
            for spec in sample_instances(t, 3, 11) {
                let w = spec.build_world();
                assert!(!w.actors().is_empty(), "{t}");
                let _ = spec.episode_config();
            }
        }
    }

    #[test]
    fn roundabout_builds() {
        for spec in sample_instances(Typology::RoundaboutGhostCutIn, 3, 11) {
            let w = spec.build_world();
            assert!(!w.actors().is_empty());
        }
    }
}
