//! Safety-critical driving scenarios for the iPrism evaluation.
//!
//! §IV-B of the paper: five multi-actor *safety-critical scenario
//! typologies* selected from the NHTSA pre-crash typology report (together
//! ≈80% of US accidents), each instantiated 1000× by uniformly sampling its
//! hyperparameters (Table I), plus the roundabout × ghost-cut-in variant
//! used for the RIP comparison (§V-C).
//!
//! This crate also provides the real-world stand-in of §V-D: a benign
//! long-tailed traffic generator replacing the Argoverse dataset, and the
//! four hand-crafted Figure-7 case-study scenes.
//!
//! # Quick example
//!
//! ```
//! use iprism_scenarios::{sample_instances, Typology};
//!
//! let instances = sample_instances(Typology::GhostCutIn, 10, 2024);
//! assert_eq!(instances.len(), 10);
//! let world = instances[0].build_world();
//! assert_eq!(world.actors().len(), 2); // the cutter + lead traffic
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod argoverse;
mod builders;
mod case_studies;
mod sampling;
mod typology;

pub use argoverse::{generate_benign_episode, BenignTrafficConfig};
pub use case_studies::{case_study, CaseStudy};
pub use sampling::{sample_instances, ScenarioSpec};
pub use typology::Typology;

/// The ego start speed used across all straight-road typologies (m/s).
pub const EGO_START_SPEED: f64 = 8.0;
/// The ego start x-position on straight-road typologies (m).
pub const EGO_START_X: f64 = 60.0;
