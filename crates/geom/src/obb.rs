//! Oriented bounding boxes with separating-axis collision tests.
//!
//! Vehicle footprints throughout iPrism are modelled as oriented rectangles;
//! the separating-axis theorem (SAT) test here is the collision primitive of
//! both the simulator and the reach-tube computation.

use iprism_units::Meters;
use serde::{Deserialize, Serialize};

use crate::{Aabb, Pose, Segment, Vec2};

/// An oriented bounding box: a rectangle of given `length` × `width` centred
/// on a [`Pose`], with `length` along the pose's heading.
///
/// # Examples
///
/// ```
/// use iprism_geom::{Meters, Obb, Pose, Radians, Vec2};
///
/// let car = Obb::new(Pose::new(0.0, 0.0, Radians::new(0.0)), Meters::new(4.6), Meters::new(2.0));
/// assert!(car.contains(Vec2::new(2.2, 0.9)));
/// assert!(!car.contains(Vec2::new(2.4, 0.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Obb {
    /// Centre pose; `length` extends along `pose.theta`.
    pub pose: Pose,
    /// Extent along the heading (metres).
    pub length: f64,
    /// Extent perpendicular to the heading (metres).
    pub width: f64,
}

impl Obb {
    /// Creates an OBB centred at `pose`.
    ///
    /// # Panics
    ///
    /// Panics if `length` or `width` is negative or non-finite.
    pub fn new(pose: Pose, length: Meters, width: Meters) -> Self {
        let (length, width) = (length.get(), width.get());
        assert!(
            length >= 0.0 && width >= 0.0 && length.is_finite() && width.is_finite(),
            "OBB extents must be finite and non-negative (got {length} x {width})"
        );
        Obb {
            pose,
            length,
            width,
        }
    }

    /// The four corners in counter-clockwise order starting front-left.
    pub fn corners(&self) -> [Vec2; 4] {
        let (s, c) = self.pose.heading().sin_cos();
        self.corners_given_trig(s, c)
    }

    /// The four corners like [`Obb::corners`], with the heading's sine and
    /// cosine supplied by the caller. `sin_t`/`cos_t` must equal
    /// `self.pose.heading().sin_cos()` — hot paths that memoize that pair
    /// per distinct heading get bit-identical corners minus the trig call.
    // `sin_t`/`cos_t` are dimensionless trig ratios; `raw-f64-param` does
    // not flag them, so no waiver is needed.
    pub fn corners_given_trig(&self, sin_t: f64, cos_t: f64) -> [Vec2; 4] {
        // One sin/cos pair serves all four corners; the arithmetic per
        // corner is exactly `pose.to_world` (position + rotated offset), so
        // results are bit-identical to four independent transforms.
        let hl = self.length * 0.5;
        let hw = self.width * 0.5;
        let (s, c) = (sin_t, cos_t);
        let corner = |lx: f64, ly: f64| {
            Vec2::new(
                self.pose.x + (lx * c - ly * s),
                self.pose.y + (lx * s + ly * c),
            )
        };
        [
            corner(hl, hw),
            corner(-hl, hw),
            corner(-hl, -hw),
            corner(hl, -hw),
        ]
    }

    /// The four edges as segments, in corner order.
    pub fn edges(&self) -> [Segment; 4] {
        let c = self.corners();
        [
            Segment::new(c[0], c[1]),
            Segment::new(c[1], c[2]),
            Segment::new(c[2], c[3]),
            Segment::new(c[3], c[0]),
        ]
    }

    /// Rectangle area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.length * self.width
    }

    /// Centre position.
    #[inline]
    pub fn center(&self) -> Vec2 {
        self.pose.position()
    }

    /// The tight axis-aligned bounding box of the rectangle.
    pub fn aabb(&self) -> Aabb {
        // `corners()` is never empty, so the fallback is unreachable; it
        // exists to keep this path panic-free.
        Aabb::from_points(&self.corners())
            .unwrap_or_else(|| Aabb::new(self.center(), self.center()))
    }

    /// Returns the OBB uniformly inflated by `margin` on every side.
    pub fn inflated(&self, margin: Meters) -> Obb {
        Obb::new(
            self.pose,
            Meters::new(self.length) + margin * 2.0,
            Meters::new(self.width) + margin * 2.0,
        )
    }

    /// Returns `true` if the point is inside or on the boundary.
    pub fn contains(&self, p: Vec2) -> bool {
        let local = self.pose.to_local(p);
        local.x.abs() <= self.length * 0.5 + crate::EPSILON
            && local.y.abs() <= self.width * 0.5 + crate::EPSILON
    }

    /// Separating-axis overlap test with another OBB.
    ///
    /// Touching boxes count as intersecting. The test projects both boxes on
    /// the four face normals; for rectangles those are the only candidate
    /// separating axes.
    pub fn intersects(&self, other: &Obb) -> bool {
        // Corners are computed once and reused for both the cheap AABB
        // rejection and the SAT projections (`aabb()` is defined as the
        // bounding box of these same corners, so the outcome is identical).
        let ca = self.corners();
        let cb = other.corners();
        if let (Some(abb), Some(bbb)) = (Aabb::from_points(&ca), Aabb::from_points(&cb)) {
            if !abb.intersects(&bbb) {
                return false;
            }
        }
        let axes = [
            self.pose.forward(),
            self.pose.left(),
            other.pose.forward(),
            other.pose.left(),
        ];
        for axis in axes {
            let (amin, amax) = project(&ca, axis);
            let (bmin, bmax) = project(&cb, axis);
            if amax < bmin - crate::EPSILON || bmax < amin - crate::EPSILON {
                return false;
            }
        }
        true
    }

    /// Minimum distance between the boundaries/interiors of two OBBs.
    ///
    /// Returns `0.0` when the boxes overlap.
    pub fn distance(&self, other: &Obb) -> f64 {
        if self.intersects(other) {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for ea in self.edges() {
            for cb in other.corners() {
                best = best.min(ea.distance_to_point(cb));
            }
        }
        for eb in other.edges() {
            for ca in self.corners() {
                best = best.min(eb.distance_to_point(ca));
            }
        }
        best
    }
}

fn project(points: &[Vec2; 4], axis: Vec2) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for p in points {
        let d = p.dot(axis);
        min = min.min(d);
        max = max.max(d);
    }
    (min, max)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use iprism_units::Radians;
    use proptest::prelude::*;
    use std::f64::consts::FRAC_PI_4;

    fn car_at(x: f64, y: f64, theta: f64) -> Obb {
        Obb::new(
            Pose::new(x, y, Radians::new(theta)),
            Meters::new(4.6),
            Meters::new(2.0),
        )
    }

    #[test]
    fn corners_axis_aligned() {
        let o = Obb::new(
            Pose::new(0.0, 0.0, Radians::new(0.0)),
            Meters::new(4.0),
            Meters::new(2.0),
        );
        let c = o.corners();
        assert!(c[0].distance(Vec2::new(2.0, 1.0)) < 1e-12);
        assert!(c[1].distance(Vec2::new(-2.0, 1.0)) < 1e-12);
        assert!(c[2].distance(Vec2::new(-2.0, -1.0)) < 1e-12);
        assert!(c[3].distance(Vec2::new(2.0, -1.0)) < 1e-12);
    }

    #[test]
    fn overlap_and_separation() {
        let a = car_at(0.0, 0.0, 0.0);
        assert!(a.intersects(&car_at(4.0, 0.0, 0.0))); // bumper overlap
        assert!(!a.intersects(&car_at(10.0, 0.0, 0.0)));
        assert!(!a.intersects(&car_at(0.0, 2.5, 0.0))); // side by side, gap
        assert!(a.intersects(&car_at(0.0, 1.9, 0.0))); // side overlap
    }

    #[test]
    fn rotated_overlap() {
        let a = car_at(0.0, 0.0, 0.0);
        // Rotated box whose corner pokes into `a`.
        let b = car_at(3.5, 1.5, FRAC_PI_4);
        assert!(a.intersects(&b));
        // Same rotation, moved away.
        let c = car_at(6.0, 4.0, FRAC_PI_4);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn diagonal_gap_that_aabbs_miss() {
        // Two diagonal boxes whose AABBs overlap but which do not intersect.
        let a = Obb::new(
            Pose::new(0.0, 0.0, Radians::new(FRAC_PI_4)),
            Meters::new(4.0),
            Meters::new(0.5),
        );
        let b = Obb::new(
            Pose::new(2.5, -2.5, Radians::new(FRAC_PI_4)),
            Meters::new(4.0),
            Meters::new(0.5),
        );
        assert!(a.aabb().intersects(&b.aabb()));
        assert!(!a.intersects(&b));
    }

    #[test]
    fn containment() {
        let o = car_at(5.0, 5.0, FRAC_PI_4);
        assert!(o.contains(o.center()));
        assert!(!o.contains(Vec2::new(0.0, 0.0)));
    }

    #[test]
    fn distance_zero_when_overlapping() {
        let a = car_at(0.0, 0.0, 0.0);
        assert_eq!(a.distance(&car_at(1.0, 0.0, 0.0)), 0.0);
        let d = a.distance(&car_at(10.0, 0.0, 0.0));
        assert!((d - (10.0 - 4.6)).abs() < 1e-9);
    }

    #[test]
    fn inflation_grows_area() {
        let o = car_at(0.0, 0.0, 0.3).inflated(Meters::new(0.5));
        assert!((o.length - 5.6).abs() < 1e-12);
        assert!((o.width - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "OBB extents")]
    fn negative_extent_panics() {
        let _ = Obb::new(Pose::default(), Meters::new(-1.0), Meters::new(2.0));
    }

    fn obb_strategy() -> impl Strategy<Value = Obb> {
        (-30.0..30.0, -30.0..30.0, -3.2..3.2, 0.5..8.0, 0.5..4.0).prop_map(|(x, y, t, l, w)| {
            Obb::new(
                Pose::new(x, y, Radians::new(t)),
                Meters::new(l),
                Meters::new(w),
            )
        })
    }

    proptest! {
        #[test]
        fn prop_intersects_symmetric(a in obb_strategy(), b in obb_strategy()) {
            prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        }

        #[test]
        fn prop_self_intersects(a in obb_strategy()) {
            prop_assert!(a.intersects(&a));
            prop_assert!(a.contains(a.center()));
        }

        #[test]
        fn prop_corners_inside_aabb(a in obb_strategy()) {
            let bb = a.aabb().inflated(Meters::new(1e-9));
            for c in a.corners() {
                prop_assert!(bb.contains(c));
            }
        }

        #[test]
        fn prop_distance_positive_iff_disjoint(a in obb_strategy(), b in obb_strategy()) {
            let d = a.distance(&b);
            if a.intersects(&b) {
                prop_assert_eq!(d, 0.0);
            } else {
                prop_assert!(d > 0.0);
            }
        }

        #[test]
        fn prop_contained_corner_implies_intersection(a in obb_strategy(), b in obb_strategy()) {
            let corner_inside = b.corners().iter().any(|&c| a.contains(c));
            if corner_inside {
                prop_assert!(a.intersects(&b));
            }
        }
    }
}
