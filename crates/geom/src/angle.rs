//! Angle normalization helpers.

use std::f64::consts::PI;

/// Wraps an angle (radians) into `(-π, π]`.
///
/// # Examples
///
/// ```
/// use std::f64::consts::PI;
/// use iprism_geom::wrap_to_pi;
///
/// assert!((wrap_to_pi(3.0 * PI) - PI).abs() < 1e-12);
/// assert!((wrap_to_pi(-3.0 * PI) - PI).abs() < 1e-12);
/// ```
#[inline]
pub fn wrap_to_pi(angle: f64) -> f64 {
    let two_pi = 2.0 * PI;
    let mut a = angle % two_pi;
    if a <= -PI {
        a += two_pi;
    } else if a > PI {
        a -= two_pi;
    }
    a
}

/// Wraps an angle (radians) into `[0, 2π)`.
#[inline]
pub fn normalize_angle(angle: f64) -> f64 {
    let two_pi = 2.0 * PI;
    let a = angle % two_pi;
    if a < 0.0 {
        a + two_pi
    } else {
        a
    }
}

/// Convenience extension methods for angles expressed as `f64` radians.
pub trait AngleExt {
    /// Signed smallest difference `self − other`, wrapped into `(-π, π]`.
    fn angle_diff(self, other: f64) -> f64;
    /// Converts degrees to radians.
    fn deg_to_rad(self) -> f64;
    /// Converts radians to degrees.
    fn rad_to_deg(self) -> f64;
}

impl AngleExt for f64 {
    #[inline]
    fn angle_diff(self, other: f64) -> f64 {
        wrap_to_pi(self - other)
    }

    #[inline]
    fn deg_to_rad(self) -> f64 {
        self * PI / 180.0
    }

    #[inline]
    fn rad_to_deg(self) -> f64 {
        self * 180.0 / PI
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wrap_basic() {
        assert!((wrap_to_pi(0.0)).abs() < 1e-12);
        assert!((wrap_to_pi(2.0 * PI)).abs() < 1e-12);
        assert!((wrap_to_pi(PI) - PI).abs() < 1e-12);
        assert!((wrap_to_pi(-PI) - PI).abs() < 1e-12);
        assert!((wrap_to_pi(PI + 0.1) + PI - 0.1).abs() < 1e-9);
    }

    #[test]
    fn normalize_basic() {
        assert!((normalize_angle(-0.1) - (2.0 * PI - 0.1)).abs() < 1e-12);
        assert!((normalize_angle(2.0 * PI)).abs() < 1e-12);
        assert!((normalize_angle(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn diff_and_conversions() {
        assert!((0.1f64.angle_diff(2.0 * PI + 0.05) - 0.05).abs() < 1e-9);
        assert!((180.0f64.deg_to_rad() - PI).abs() < 1e-12);
        assert!((PI.rad_to_deg() - 180.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_wrap_in_range(a in -1e6..1e6f64) {
            let w = wrap_to_pi(a);
            prop_assert!(w > -PI - 1e-9 && w <= PI + 1e-9);
        }

        #[test]
        fn prop_normalize_in_range(a in -1e6..1e6f64) {
            let n = normalize_angle(a);
            prop_assert!((0.0..2.0 * PI + 1e-9).contains(&n));
        }

        #[test]
        fn prop_wrap_preserves_direction(a in -100.0..100.0f64) {
            // wrapped angle points the same way as the original
            let (s1, c1) = a.sin_cos();
            let (s2, c2) = wrap_to_pi(a).sin_cos();
            prop_assert!((s1 - s2).abs() < 1e-9 && (c1 - c2).abs() < 1e-9);
        }
    }
}
