//! Line segments and intersection predicates.

use serde::{Deserialize, Serialize};

use crate::Vec2;

/// A directed line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start point.
    pub a: Vec2,
    /// End point.
    pub b: Vec2,
}

impl Segment {
    /// Creates a segment from `a` to `b`.
    #[inline]
    pub const fn new(a: Vec2, b: Vec2) -> Self {
        Segment { a, b }
    }

    /// Length of the segment.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// The direction vector `b − a` (not normalized).
    #[inline]
    pub fn direction(&self) -> Vec2 {
        self.b - self.a
    }

    /// Point at parameter `t ∈ [0, 1]` along the segment.
    #[inline]
    pub fn point_at(&self, t: f64) -> Vec2 {
        self.a.lerp(self.b, t)
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Vec2 {
        self.point_at(0.5)
    }

    /// The closest point on the segment to `p`.
    pub fn closest_point(&self, p: Vec2) -> Vec2 {
        let d = self.direction();
        let len_sq = d.norm_sq();
        if len_sq <= crate::EPSILON {
            return self.a;
        }
        let t = ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0);
        self.point_at(t)
    }

    /// Distance from `p` to the segment.
    #[inline]
    pub fn distance_to_point(&self, p: Vec2) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// Returns `true` if this segment intersects `other` (including touching
    /// endpoints and collinear overlap).
    pub fn intersects(&self, other: &Segment) -> bool {
        self.intersection(other).is_some() || self.collinear_overlap(other)
    }

    /// Proper intersection point of two segments, if they cross at a single
    /// point. Returns `None` for parallel or non-crossing segments.
    pub fn intersection(&self, other: &Segment) -> Option<Vec2> {
        let r = self.direction();
        let s = other.direction();
        let denom = r.cross(s);
        if denom.abs() <= crate::EPSILON {
            return None;
        }
        let qp = other.a - self.a;
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        if (0.0..=1.0).contains(&t) && (0.0..=1.0).contains(&u) {
            Some(self.point_at(t))
        } else {
            None
        }
    }

    fn collinear_overlap(&self, other: &Segment) -> bool {
        let r = self.direction();
        let qp = other.a - self.a;
        if r.cross(other.direction()).abs() > crate::EPSILON || r.cross(qp).abs() > crate::EPSILON {
            return false;
        }
        // Collinear: project onto r and check 1-D interval overlap.
        let len_sq = r.norm_sq();
        if len_sq <= crate::EPSILON {
            return other.distance_to_point(self.a) <= crate::EPSILON;
        }
        let t0 = qp.dot(r) / len_sq;
        let t1 = (other.b - self.a).dot(r) / len_sq;
        let (lo, hi) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
        hi >= 0.0 && lo <= 1.0
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use proptest::prelude::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Vec2::new(ax, ay), Vec2::new(bx, by))
    }

    #[test]
    fn length_direction_midpoint() {
        let s = seg(0.0, 0.0, 3.0, 4.0);
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.direction(), Vec2::new(3.0, 4.0));
        assert_eq!(s.midpoint(), Vec2::new(1.5, 2.0));
    }

    #[test]
    fn crossing_segments_intersect() {
        let a = seg(0.0, 0.0, 2.0, 2.0);
        let b = seg(0.0, 2.0, 2.0, 0.0);
        let p = a.intersection(&b).unwrap();
        assert!(p.distance(Vec2::new(1.0, 1.0)) < 1e-12);
        assert!(a.intersects(&b));
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        let a = seg(0.0, 0.0, 1.0, 0.0);
        let b = seg(0.0, 1.0, 1.0, 1.0);
        assert!(a.intersection(&b).is_none());
        assert!(!a.intersects(&b));
    }

    #[test]
    fn collinear_overlapping_segments_intersect() {
        let a = seg(0.0, 0.0, 2.0, 0.0);
        let b = seg(1.0, 0.0, 3.0, 0.0);
        assert!(a.intersects(&b));
        let c = seg(3.0, 0.0, 4.0, 0.0);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn touching_endpoint_intersects() {
        let a = seg(0.0, 0.0, 1.0, 0.0);
        let b = seg(1.0, 0.0, 1.0, 1.0);
        assert!(a.intersects(&b));
    }

    #[test]
    fn closest_point_cases() {
        let s = seg(0.0, 0.0, 2.0, 0.0);
        assert_eq!(s.closest_point(Vec2::new(1.0, 1.0)), Vec2::new(1.0, 0.0));
        assert_eq!(s.closest_point(Vec2::new(-1.0, 1.0)), Vec2::new(0.0, 0.0));
        assert_eq!(s.closest_point(Vec2::new(5.0, -2.0)), Vec2::new(2.0, 0.0));
        assert_eq!(s.distance_to_point(Vec2::new(1.0, 2.0)), 2.0);
    }

    #[test]
    fn degenerate_segment() {
        let s = seg(1.0, 1.0, 1.0, 1.0);
        assert_eq!(s.closest_point(Vec2::new(5.0, 5.0)), Vec2::new(1.0, 1.0));
        assert_eq!(s.length(), 0.0);
    }

    proptest! {
        #[test]
        fn prop_intersection_symmetric(
            ax in -50.0..50.0, ay in -50.0..50.0, bx in -50.0..50.0, by in -50.0..50.0,
            cx in -50.0..50.0, cy in -50.0..50.0, dx in -50.0..50.0, dy in -50.0..50.0,
        ) {
            let s1 = seg(ax, ay, bx, by);
            let s2 = seg(cx, cy, dx, dy);
            prop_assert_eq!(s1.intersects(&s2), s2.intersects(&s1));
        }

        #[test]
        fn prop_closest_point_is_on_segment(
            ax in -50.0..50.0, ay in -50.0..50.0, bx in -50.0..50.0, by in -50.0..50.0,
            px in -100.0..100.0, py in -100.0..100.0,
        ) {
            let s = seg(ax, ay, bx, by);
            let c = s.closest_point(Vec2::new(px, py));
            // c must lie within the segment's bounding box (with tolerance)
            prop_assert!(c.x >= ax.min(bx) - 1e-9 && c.x <= ax.max(bx) + 1e-9);
            prop_assert!(c.y >= ay.min(by) - 1e-9 && c.y <= ay.max(by) + 1e-9);
        }

        #[test]
        fn prop_closest_point_minimizes(
            ax in -50.0..50.0, ay in -50.0..50.0, bx in -50.0..50.0, by in -50.0..50.0,
            px in -100.0..100.0, py in -100.0..100.0, t in 0.0..1.0,
        ) {
            let s = seg(ax, ay, bx, by);
            let p = Vec2::new(px, py);
            let best = s.distance_to_point(p);
            prop_assert!(best <= s.point_at(t).distance(p) + 1e-9);
        }
    }
}
