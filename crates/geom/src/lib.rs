//! 2-D geometry primitives for the iPrism AV-safety framework.
//!
//! This crate provides the geometric substrate used throughout the iPrism
//! reproduction: planar vectors and poses, oriented bounding boxes with
//! separating-axis collision tests, convex polygons, line segments, axis
//! aligned boxes, and a fixed-resolution occupancy grid used to measure
//! reach-tube volume (state-space occupancy).
//!
//! Everything is `f64`, allocation-light and deterministic: the same inputs
//! always produce the same outputs, which the experiment harness relies on
//! for bit-for-bit regenerable tables.
//!
//! # Quick example
//!
//! ```
//! use iprism_geom::{Meters, Obb, Pose, Radians, Vec2};
//!
//! let ego = Obb::new(Pose::new(0.0, 0.0, Radians::new(0.0)), Meters::new(4.6), Meters::new(2.0));
//! let npc = Obb::new(Pose::new(3.0, 0.5, Radians::new(0.2)), Meters::new(4.6), Meters::new(2.0));
//! assert!(ego.intersects(&npc));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod aabb;
mod grid;
mod obb;
mod polygon;
mod pose;
mod segment;
mod vec2;

pub use aabb::Aabb;
pub use grid::Grid2;
// The angle primitives live in `iprism-units` (the workspace's unit layer);
// they are re-exported here, together with the unit newtypes geometry APIs
// take, so downstream crates keep their historical `iprism_geom::` paths.
pub use iprism_units::{normalize_angle, wrap_to_pi, Meters, MetersPerSecond, Radians, Seconds};
pub use obb::Obb;
pub use polygon::Polygon;
pub use pose::Pose;
pub use segment::Segment;
pub use vec2::Vec2;

/// Tolerance used by approximate floating-point comparisons in this crate.
pub const EPSILON: f64 = 1e-9;

/// Returns `true` if `a` and `b` differ by at most [`EPSILON`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPSILON
}

/// Returns `true` if `a` and `b` differ by at most `tol`.
#[inline]
pub fn approx_eq_tol(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
    }

    #[test]
    fn approx_eq_tol_basic() {
        assert!(approx_eq_tol(1.0, 1.1, 0.2));
        assert!(!approx_eq_tol(1.0, 1.5, 0.2));
    }
}
