//! Planar rigid-body pose (position + heading).

use iprism_units::Radians;
use serde::{Deserialize, Serialize};

use crate::{wrap_to_pi, Vec2};

/// A planar pose: position `(x, y)` plus heading `theta` (radians,
/// counter-clockwise from the world x-axis).
///
/// Poses transform points between a body-local frame (x forward, y left)
/// and the world frame.
///
/// # Examples
///
/// ```
/// use std::f64::consts::FRAC_PI_2;
/// use iprism_geom::{Pose, Radians, Vec2};
///
/// let p = Pose::new(1.0, 2.0, Radians::new(FRAC_PI_2));
/// let w = p.to_world(Vec2::new(1.0, 0.0)); // 1 m "forward" points +y
/// assert!((w.x - 1.0).abs() < 1e-12 && (w.y - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Pose {
    /// World x-coordinate of the origin of the body frame (metres).
    pub x: f64,
    /// World y-coordinate of the origin of the body frame (metres).
    pub y: f64,
    /// Heading in radians, counter-clockwise from +x.
    pub theta: f64,
}

impl Pose {
    /// Creates a pose from position and heading.
    ///
    /// The heading is stored exactly as given (use [`Radians::raw`] for a
    /// deliberately unnormalized winding angle); [`Pose::wrapped`]
    /// renormalizes.
    #[inline]
    pub const fn new(x: f64, y: f64, theta: Radians) -> Self {
        Pose {
            x,
            y,
            theta: theta.get(),
        }
    }

    /// Creates a pose at `position` with heading `theta`.
    #[inline]
    pub fn from_position(position: Vec2, theta: Radians) -> Self {
        Pose::new(position.x, position.y, theta)
    }

    /// The position component as a [`Vec2`].
    #[inline]
    pub fn position(&self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// The heading as a typed angle.
    #[inline]
    pub fn heading(&self) -> Radians {
        Radians::raw(self.theta)
    }

    /// Unit vector pointing along the heading.
    #[inline]
    pub fn forward(&self) -> Vec2 {
        Vec2::from_angle(self.heading())
    }

    /// Unit vector pointing 90° left of the heading.
    #[inline]
    pub fn left(&self) -> Vec2 {
        self.forward().perp()
    }

    /// Transforms a point from the body frame to the world frame.
    #[inline]
    pub fn to_world(&self, local: Vec2) -> Vec2 {
        self.position() + local.rotated(self.heading())
    }

    /// Transforms a world point into the body frame.
    #[inline]
    pub fn to_local(&self, world: Vec2) -> Vec2 {
        (world - self.position()).rotated(-self.heading())
    }

    /// Returns the pose translated by `delta` (world frame).
    #[inline]
    pub fn translated(&self, delta: Vec2) -> Pose {
        Pose::new(self.x + delta.x, self.y + delta.y, self.heading())
    }

    /// Returns the pose with heading wrapped into `(-π, π]`.
    #[inline]
    pub fn wrapped(&self) -> Pose {
        Pose::new(self.x, self.y, Radians::raw(wrap_to_pi(self.theta)))
    }

    /// Euclidean distance between the positions of two poses.
    #[inline]
    pub fn distance(&self, other: &Pose) -> f64 {
        self.position().distance(other.position())
    }

    /// Returns `true` if all components are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.theta.is_finite()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn world_local_roundtrip() {
        let p = Pose::new(3.0, -2.0, Radians::new(0.7));
        let local = Vec2::new(1.5, -0.5);
        let back = p.to_local(p.to_world(local));
        assert!(back.distance(local) < 1e-12);
    }

    #[test]
    fn forward_left() {
        let p = Pose::new(0.0, 0.0, Radians::new(FRAC_PI_2));
        assert!(p.forward().distance(Vec2::UNIT_Y) < 1e-12);
        assert!(p.left().distance(-Vec2::UNIT_X) < 1e-12);
    }

    #[test]
    fn translate_and_wrap() {
        let p = Pose::new(0.0, 0.0, Radians::raw(3.0 * PI)).translated(Vec2::new(1.0, 1.0));
        assert_eq!(p.position(), Vec2::new(1.0, 1.0));
        let w = p.wrapped();
        assert!((w.theta - PI).abs() < 1e-9);
    }

    #[test]
    fn distance_between_poses() {
        let a = Pose::new(0.0, 0.0, Radians::new(0.0));
        let b = Pose::new(3.0, 4.0, Radians::new(1.0));
        assert_eq!(a.distance(&b), 5.0);
    }

    #[test]
    fn finiteness() {
        assert!(Pose::new(0.0, 0.0, Radians::new(0.0)).is_finite());
        assert!(!Pose::new(f64::NAN, 0.0, Radians::new(0.0)).is_finite());
    }

    fn pose_strategy() -> impl Strategy<Value = Pose> {
        (-1e3..1e3, -1e3..1e3, -10.0..10.0).prop_map(|(x, y, t)| Pose::new(x, y, Radians::new(t)))
    }

    proptest! {
        #[test]
        fn prop_roundtrip(p in pose_strategy(), lx in -50.0..50.0, ly in -50.0..50.0) {
            let local = Vec2::new(lx, ly);
            prop_assert!(p.to_local(p.to_world(local)).distance(local) < 1e-6);
        }

        #[test]
        fn prop_transform_preserves_distance(
            p in pose_strategy(),
            ax in -50.0..50.0, ay in -50.0..50.0,
            bx in -50.0..50.0, by in -50.0..50.0,
        ) {
            let a = Vec2::new(ax, ay);
            let b = Vec2::new(bx, by);
            let d_local = a.distance(b);
            let d_world = p.to_world(a).distance(p.to_world(b));
            prop_assert!((d_local - d_world).abs() < 1e-6);
        }
    }
}
