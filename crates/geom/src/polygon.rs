//! Simple polygons (used for drivable areas and map regions).

use serde::{Deserialize, Serialize};

use crate::{Aabb, Segment, Vec2};

/// A simple polygon given by its vertices in order (either winding).
///
/// Used for drivable-area regions in the map crate. Supports containment
/// (even-odd rule), signed area, and segment intersection tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Vec2>,
}

impl Polygon {
    /// Creates a polygon from vertices in order.
    ///
    /// # Panics
    ///
    /// Panics if fewer than three vertices are supplied.
    pub fn new(vertices: Vec<Vec2>) -> Self {
        assert!(
            vertices.len() >= 3,
            "polygon needs at least 3 vertices, got {}",
            vertices.len()
        );
        Polygon { vertices }
    }

    /// An axis-aligned rectangle polygon.
    pub fn rectangle(min: Vec2, max: Vec2) -> Self {
        Polygon::new(vec![
            min,
            Vec2::new(max.x, min.y),
            max,
            Vec2::new(min.x, max.y),
        ])
    }

    /// The polygon's vertices.
    #[inline]
    pub fn vertices(&self) -> &[Vec2] {
        &self.vertices
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always `false`: a polygon has at least three vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Edges in vertex order (closing edge included).
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Signed area: positive for counter-clockwise winding.
    pub fn signed_area(&self) -> f64 {
        let mut sum = 0.0;
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            sum += a.cross(b);
        }
        sum * 0.5
    }

    /// Absolute area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Centroid of the polygon (area-weighted).
    pub fn centroid(&self) -> Vec2 {
        let n = self.vertices.len();
        let mut acc = Vec2::ZERO;
        let mut area_sum = 0.0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            let c = a.cross(b);
            acc += (a + b) * c;
            area_sum += c;
        }
        if area_sum.abs() <= crate::EPSILON {
            // Degenerate: fall back to vertex average.
            let mut avg = Vec2::ZERO;
            for v in &self.vertices {
                avg += *v;
            }
            return avg / n as f64;
        }
        acc / (3.0 * area_sum)
    }

    /// Even-odd-rule containment test (boundary points may go either way).
    pub fn contains(&self, p: Vec2) -> bool {
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            if ((vi.y > p.y) != (vj.y > p.y))
                // The strict-inequality test above puts vi.y and vj.y on
                // opposite sides of p.y, so the denominator cannot be zero.
                // iprism-lint: allow(unguarded-float-div)
                && (p.x < (vj.x - vi.x) * (p.y - vi.y) / (vj.y - vi.y) + vi.x)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// Returns `true` if the segment crosses any polygon edge.
    pub fn intersects_segment(&self, s: &Segment) -> bool {
        self.edges().any(|e| e.intersects(s))
    }

    /// The polygon's axis-aligned bounding box.
    pub fn aabb(&self) -> Aabb {
        // The constructor rejects polygons with fewer than 3 vertices, so
        // the fallback is unreachable; it keeps this path panic-free.
        Aabb::from_points(&self.vertices).unwrap_or_else(|| Aabb::new(Vec2::ZERO, Vec2::ZERO))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use iprism_units::Meters;
    use proptest::prelude::*;

    fn unit_square() -> Polygon {
        Polygon::rectangle(Vec2::ZERO, Vec2::new(1.0, 1.0))
    }

    #[test]
    fn rectangle_area_and_centroid() {
        let p = Polygon::rectangle(Vec2::ZERO, Vec2::new(4.0, 2.0));
        assert!((p.area() - 8.0).abs() < 1e-12);
        assert!(p.centroid().distance(Vec2::new(2.0, 1.0)) < 1e-12);
    }

    #[test]
    fn winding_sign() {
        let ccw = unit_square();
        assert!(ccw.signed_area() > 0.0);
        let cw = Polygon::new(vec![
            Vec2::ZERO,
            Vec2::new(0.0, 1.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(1.0, 0.0),
        ]);
        assert!(cw.signed_area() < 0.0);
        assert_eq!(cw.area(), ccw.area());
    }

    #[test]
    fn containment() {
        let p = unit_square();
        assert!(p.contains(Vec2::new(0.5, 0.5)));
        assert!(!p.contains(Vec2::new(1.5, 0.5)));
        assert!(!p.contains(Vec2::new(-0.5, 0.5)));
    }

    #[test]
    fn concave_containment() {
        // L-shape
        let p = Polygon::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(2.0, 1.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(1.0, 2.0),
            Vec2::new(0.0, 2.0),
        ]);
        assert!(p.contains(Vec2::new(0.5, 1.5)));
        assert!(p.contains(Vec2::new(1.5, 0.5)));
        assert!(!p.contains(Vec2::new(1.5, 1.5))); // notch
    }

    #[test]
    fn segment_intersection() {
        let p = unit_square();
        let crossing = Segment::new(Vec2::new(-1.0, 0.5), Vec2::new(2.0, 0.5));
        let outside = Segment::new(Vec2::new(2.0, 2.0), Vec2::new(3.0, 3.0));
        let inside = Segment::new(Vec2::new(0.25, 0.25), Vec2::new(0.75, 0.75));
        assert!(p.intersects_segment(&crossing));
        assert!(!p.intersects_segment(&outside));
        assert!(!p.intersects_segment(&inside)); // fully inside: no edge crossing
    }

    #[test]
    fn edges_count_and_close() {
        let p = unit_square();
        let edges: Vec<_> = p.edges().collect();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[3].b, p.vertices()[0]);
    }

    #[test]
    #[should_panic(expected = "at least 3 vertices")]
    fn too_few_vertices_panics() {
        let _ = Polygon::new(vec![Vec2::ZERO, Vec2::UNIT_X]);
    }

    proptest! {
        #[test]
        fn prop_rect_contains_interior(
            x0 in -50.0..50.0, y0 in -50.0..50.0,
            w in 0.1..20.0, h in 0.1..20.0,
            fx in 0.01..0.99, fy in 0.01..0.99,
        ) {
            let p = Polygon::rectangle(Vec2::new(x0, y0), Vec2::new(x0 + w, y0 + h));
            let q = Vec2::new(x0 + w * fx, y0 + h * fy);
            prop_assert!(p.contains(q));
        }

        #[test]
        fn prop_rect_area(
            x0 in -50.0..50.0f64, y0 in -50.0..50.0f64,
            w in 0.1..20.0f64, h in 0.1..20.0f64,
        ) {
            let p = Polygon::rectangle(Vec2::new(x0, y0), Vec2::new(x0 + w, y0 + h));
            prop_assert!((p.area() - w * h).abs() < 1e-6);
        }

        #[test]
        fn prop_triangle_centroid_inside_aabb(
            xs in proptest::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 3)
        ) {
            // Triangles are always simple; their centroid lies inside the AABB.
            let p = Polygon::new(xs.into_iter().map(|(x, y)| Vec2::new(x, y)).collect());
            let c = p.centroid();
            let bb = p.aabb().inflated(Meters::new(1e-6));
            prop_assert!(bb.contains(c));
        }
    }
}
