//! Axis-aligned bounding boxes.

use iprism_units::Meters;
use serde::{Deserialize, Serialize};

use crate::Vec2;

/// An axis-aligned bounding box defined by its min and max corners.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Corner with smallest coordinates.
    pub min: Vec2,
    /// Corner with largest coordinates.
    pub max: Vec2,
}

impl Aabb {
    /// Creates an AABB from two corners; the corners are sorted, so any two
    /// opposite corners may be supplied.
    pub fn new(a: Vec2, b: Vec2) -> Self {
        Aabb {
            min: Vec2::new(a.x.min(b.x), a.y.min(b.y)),
            max: Vec2::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The smallest AABB containing all `points`.
    ///
    /// Returns `None` when `points` is empty.
    pub fn from_points(points: &[Vec2]) -> Option<Self> {
        let first = *points.first()?;
        let mut bb = Aabb::new(first, first);
        for p in &points[1..] {
            bb.expand_to(*p);
        }
        Some(bb)
    }

    /// Grows the box (in place) to contain `p`.
    pub fn expand_to(&mut self, p: Vec2) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Returns the box uniformly inflated by `margin` on every side.
    pub fn inflated(&self, margin: Meters) -> Aabb {
        let margin = margin.get();
        Aabb {
            min: self.min - Vec2::new(margin, margin),
            max: self.max + Vec2::new(margin, margin),
        }
    }

    /// Box width (x-extent).
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Box height (y-extent).
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Box area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Box centre.
    #[inline]
    pub fn center(&self) -> Vec2 {
        (self.min + self.max) * 0.5
    }

    /// Returns `true` if `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` if the boxes overlap (including touching edges).
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// The union of two boxes.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: Vec2::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Vec2::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn corners_sorted() {
        let bb = Aabb::new(Vec2::new(2.0, -1.0), Vec2::new(-1.0, 3.0));
        assert_eq!(bb.min, Vec2::new(-1.0, -1.0));
        assert_eq!(bb.max, Vec2::new(2.0, 3.0));
    }

    #[test]
    fn from_points() {
        assert!(Aabb::from_points(&[]).is_none());
        let bb = Aabb::from_points(&[
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 1.0),
            Vec2::new(-1.0, 5.0),
        ])
        .unwrap();
        assert_eq!(bb.min, Vec2::new(-1.0, 0.0));
        assert_eq!(bb.max, Vec2::new(2.0, 5.0));
    }

    #[test]
    fn geometry_queries() {
        let bb = Aabb::new(Vec2::ZERO, Vec2::new(4.0, 2.0));
        assert_eq!(bb.width(), 4.0);
        assert_eq!(bb.height(), 2.0);
        assert_eq!(bb.area(), 8.0);
        assert_eq!(bb.center(), Vec2::new(2.0, 1.0));
        assert!(bb.contains(Vec2::new(4.0, 2.0)));
        assert!(!bb.contains(Vec2::new(4.1, 2.0)));
    }

    #[test]
    fn intersect_and_union() {
        let a = Aabb::new(Vec2::ZERO, Vec2::new(2.0, 2.0));
        let b = Aabb::new(Vec2::new(1.0, 1.0), Vec2::new(3.0, 3.0));
        let c = Aabb::new(Vec2::new(5.0, 5.0), Vec2::new(6.0, 6.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let u = a.union(&c);
        assert_eq!(u.min, Vec2::ZERO);
        assert_eq!(u.max, Vec2::new(6.0, 6.0));
    }

    #[test]
    fn inflate() {
        let bb = Aabb::new(Vec2::ZERO, Vec2::new(1.0, 1.0)).inflated(Meters::new(0.5));
        assert_eq!(bb.min, Vec2::new(-0.5, -0.5));
        assert_eq!(bb.max, Vec2::new(1.5, 1.5));
    }

    proptest! {
        #[test]
        fn prop_intersects_symmetric(
            ax in -50.0..50.0, ay in -50.0..50.0, aw in 0.0..20.0, ah in 0.0..20.0,
            bx in -50.0..50.0, by in -50.0..50.0, bw in 0.0..20.0, bh in 0.0..20.0,
        ) {
            let a = Aabb::new(Vec2::new(ax, ay), Vec2::new(ax + aw, ay + ah));
            let b = Aabb::new(Vec2::new(bx, by), Vec2::new(bx + bw, by + bh));
            prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        }

        #[test]
        fn prop_union_contains_both(
            ax in -50.0..50.0, ay in -50.0..50.0, aw in 0.0..20.0, ah in 0.0..20.0,
            bx in -50.0..50.0, by in -50.0..50.0, bw in 0.0..20.0, bh in 0.0..20.0,
        ) {
            let a = Aabb::new(Vec2::new(ax, ay), Vec2::new(ax + aw, ay + ah));
            let b = Aabb::new(Vec2::new(bx, by), Vec2::new(bx + bw, by + bh));
            let u = a.union(&b);
            prop_assert!(u.contains(a.min) && u.contains(a.max));
            prop_assert!(u.contains(b.min) && u.contains(b.max));
        }
    }
}
