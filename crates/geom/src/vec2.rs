//! Planar vector type.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use iprism_units::Radians;
use serde::{Deserialize, Serialize};

/// A 2-D vector (or point) with `f64` components.
///
/// `Vec2` is used both for positions and for free vectors (velocities,
/// displacements). All operations are component-wise and allocation-free.
///
/// # Examples
///
/// ```
/// use iprism_geom::Vec2;
///
/// let a = Vec2::new(3.0, 4.0);
/// assert_eq!(a.norm(), 5.0);
/// assert_eq!(a + Vec2::new(1.0, -1.0), Vec2::new(4.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// Horizontal component (metres in world space).
    pub x: f64,
    /// Vertical component (metres in world space).
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };
    /// Unit vector along the x-axis.
    pub const UNIT_X: Vec2 = Vec2 { x: 1.0, y: 0.0 };
    /// Unit vector along the y-axis.
    pub const UNIT_Y: Vec2 = Vec2 { x: 0.0, y: 1.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Creates a unit vector pointing at `angle` from the x-axis.
    #[inline]
    pub fn from_angle(angle: Radians) -> Self {
        let (s, c) = angle.sin_cos();
        Vec2::new(c, s)
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (cheaper than [`Vec2::norm`]).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn distance_sq(self, other: Vec2) -> f64 {
        (self - other).norm_sq()
    }

    /// Returns the vector scaled to unit length, or `None` when its length
    /// is (numerically) zero.
    #[inline]
    pub fn try_normalize(self) -> Option<Vec2> {
        let n = self.norm();
        if n <= crate::EPSILON {
            None
        } else {
            Some(self / n)
        }
    }

    /// Returns the vector scaled to unit length, or [`Vec2::ZERO`] when its
    /// length is (numerically) zero.
    #[inline]
    pub fn normalize_or_zero(self) -> Vec2 {
        self.try_normalize().unwrap_or(Vec2::ZERO)
    }

    /// The angle of the vector, in `(-π, π]`.
    #[inline]
    pub fn angle(self) -> Radians {
        Radians::raw(self.y.atan2(self.x))
    }

    /// Rotates the vector counter-clockwise by `angle`.
    #[inline]
    pub fn rotated(self, angle: Radians) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// The vector rotated 90° counter-clockwise.
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// Projects `self` onto the (non-zero) direction `dir`.
    #[inline]
    pub fn project_onto(self, dir: Vec2) -> Vec2 {
        let d = dir.norm_sq();
        if d <= crate::EPSILON {
            Vec2::ZERO
        } else {
            dir * (self.dot(dir) / d)
        }
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Vec2 {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Vec2::new(x, y)
    }
}

impl From<Vec2> for (f64, f64) {
    #[inline]
    fn from(v: Vec2) -> Self {
        (v.x, v.y)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use crate::approx_eq;
    use proptest::prelude::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, Vec2::new(2.0, 4.0));
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn assign_ops() {
        let mut a = Vec2::new(1.0, 1.0);
        a += Vec2::new(1.0, 2.0);
        assert_eq!(a, Vec2::new(2.0, 3.0));
        a -= Vec2::new(2.0, 2.0);
        assert_eq!(a, Vec2::new(0.0, 1.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn norms_and_distance() {
        let a = Vec2::new(3.0, 4.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(Vec2::ZERO.distance(a), 5.0);
        assert_eq!(Vec2::ZERO.distance_sq(a), 25.0);
    }

    #[test]
    fn normalize() {
        assert!(Vec2::ZERO.try_normalize().is_none());
        assert_eq!(Vec2::ZERO.normalize_or_zero(), Vec2::ZERO);
        let n = Vec2::new(10.0, 0.0).try_normalize().unwrap();
        assert!(approx_eq(n.x, 1.0) && approx_eq(n.y, 0.0));
    }

    #[test]
    fn angles_and_rotation() {
        assert!(approx_eq(Vec2::UNIT_Y.angle().get(), FRAC_PI_2));
        let r = Vec2::UNIT_X.rotated(Radians::new(PI));
        assert!(approx_eq(r.x, -1.0) && approx_eq(r.y.abs(), 0.0));
        assert_eq!(Vec2::UNIT_X.perp(), Vec2::UNIT_Y);
    }

    #[test]
    fn from_angle_is_unit() {
        for i in 0..16 {
            let a = i as f64 * PI / 8.0;
            assert!(approx_eq(Vec2::from_angle(Radians::new(a)).norm(), 1.0));
        }
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn projection() {
        let v = Vec2::new(2.0, 2.0);
        let p = v.project_onto(Vec2::UNIT_X);
        assert_eq!(p, Vec2::new(2.0, 0.0));
        assert_eq!(v.project_onto(Vec2::ZERO), Vec2::ZERO);
    }

    #[test]
    fn conversions() {
        let v: Vec2 = (1.0, 2.0).into();
        assert_eq!(v, Vec2::new(1.0, 2.0));
        let t: (f64, f64) = v.into();
        assert_eq!(t, (1.0, 2.0));
    }

    #[test]
    fn finiteness() {
        assert!(Vec2::new(1.0, 2.0).is_finite());
        assert!(!Vec2::new(f64::NAN, 0.0).is_finite());
        assert!(!Vec2::new(0.0, f64::INFINITY).is_finite());
    }

    fn small_vec() -> impl Strategy<Value = Vec2> {
        (-1e3..1e3, -1e3..1e3).prop_map(|(x, y)| Vec2::new(x, y))
    }

    proptest! {
        #[test]
        fn prop_add_commutes(a in small_vec(), b in small_vec()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn prop_cross_antisymmetric(a in small_vec(), b in small_vec()) {
            prop_assert!((a.cross(b) + b.cross(a)).abs() < 1e-6);
        }

        #[test]
        fn prop_rotation_preserves_norm(a in small_vec(), ang in -10.0..10.0f64) {
            prop_assert!((a.rotated(Radians::new(ang)).norm() - a.norm()).abs() < 1e-6);
        }

        #[test]
        fn prop_normalized_is_unit(a in small_vec()) {
            if let Some(n) = a.try_normalize() {
                prop_assert!((n.norm() - 1.0).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_perp_is_orthogonal(a in small_vec()) {
            prop_assert!(a.dot(a.perp()).abs() < 1e-6);
        }

        #[test]
        fn prop_triangle_inequality(a in small_vec(), b in small_vec()) {
            prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
        }
    }
}
