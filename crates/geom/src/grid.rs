//! Fixed-resolution 2-D occupancy grid.
//!
//! The grid measures *state-space occupancy* of a reach-tube ([45] in the
//! paper): each cell marks whether any sampled ego state fell inside it, and
//! the tube volume `|T|` is the occupied-cell count (times cell area).

use iprism_units::Meters;
use serde::{Deserialize, Serialize};

use crate::{Aabb, Vec2};

/// A boolean occupancy grid over a rectangular world region.
///
/// Cells are square with side [`Grid2::resolution`]. Marking a point outside
/// the region is a no-op, which lets reach-tube code blindly mark every
/// propagated state.
///
/// # Examples
///
/// ```
/// use iprism_geom::{Aabb, Grid2, Meters, Vec2};
///
/// let mut g = Grid2::new(Aabb::new(Vec2::ZERO, Vec2::new(10.0, 10.0)), Meters::new(1.0));
/// g.mark(Vec2::new(0.5, 0.5));
/// g.mark(Vec2::new(0.6, 0.6)); // same cell
/// g.mark(Vec2::new(5.5, 5.5));
/// assert_eq!(g.occupied_cells(), 2);
/// assert!((g.occupied_area() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid2 {
    bounds: Aabb,
    resolution: f64,
    nx: usize,
    ny: usize,
    cells: Vec<bool>,
    occupied: usize,
}

impl Grid2 {
    /// Creates an empty grid covering `bounds` with square cells of side
    /// `resolution`.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is not strictly positive and finite, or if the
    /// bounds are degenerate.
    pub fn new(bounds: Aabb, resolution: Meters) -> Self {
        let resolution = resolution.get();
        assert!(
            resolution > 0.0 && resolution.is_finite(),
            "grid resolution must be positive and finite, got {resolution}"
        );
        let nx = (bounds.width() / resolution).ceil().max(1.0) as usize;
        let ny = (bounds.height() / resolution).ceil().max(1.0) as usize;
        Grid2 {
            bounds,
            resolution,
            nx,
            ny,
            cells: vec![false; nx * ny],
            occupied: 0,
        }
    }

    /// The covered world region.
    #[inline]
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Cell side length.
    #[inline]
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// Grid dimensions `(columns, rows)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if the grid has no cells (never: `new` guarantees ≥ 1).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Cell index for a world point, or `None` when outside the bounds.
    pub fn cell_index(&self, p: Vec2) -> Option<usize> {
        if !self.bounds.contains(p) {
            return None;
        }
        let ix = (((p.x - self.bounds.min.x) / self.resolution) as usize).min(self.nx - 1);
        let iy = (((p.y - self.bounds.min.y) / self.resolution) as usize).min(self.ny - 1);
        Some(iy * self.nx + ix)
    }

    /// World-space centre of the cell holding `p`, if inside the bounds.
    pub fn cell_center(&self, p: Vec2) -> Option<Vec2> {
        let idx = self.cell_index(p)?;
        let ix = idx % self.nx;
        let iy = idx / self.nx;
        Some(Vec2::new(
            self.bounds.min.x + (ix as f64 + 0.5) * self.resolution,
            self.bounds.min.y + (iy as f64 + 0.5) * self.resolution,
        ))
    }

    /// Marks the cell containing `p` occupied. Points outside the region are
    /// ignored. Returns `true` when a previously-free cell became occupied.
    pub fn mark(&mut self, p: Vec2) -> bool {
        match self.cell_index(p) {
            Some(i) if !self.cells[i] => {
                self.cells[i] = true;
                self.occupied += 1;
                true
            }
            _ => false,
        }
    }

    /// Marks every cell along the segment from `a` to `b` (sampled at half
    /// the cell resolution, endpoints included). Returns the number of cells
    /// that became newly occupied.
    pub fn mark_segment(&mut self, a: Vec2, b: Vec2) -> usize {
        let len = a.distance(b);
        let step = self.resolution * 0.5;
        let n = (len / step).ceil().max(1.0) as usize;
        let mut newly = 0;
        for i in 0..=n {
            let p = a.lerp(b, i as f64 / n as f64);
            if self.mark(p) {
                newly += 1;
            }
        }
        newly
    }

    /// Returns `true` if the cell containing `p` is occupied.
    pub fn is_marked(&self, p: Vec2) -> bool {
        self.cell_index(p).is_some_and(|i| self.cells[i])
    }

    /// Number of occupied cells.
    #[inline]
    pub fn occupied_cells(&self) -> usize {
        self.occupied
    }

    /// Occupied area in world units (cells × cell area).
    #[inline]
    pub fn occupied_area(&self) -> f64 {
        self.occupied as f64 * self.resolution * self.resolution
    }

    /// Fraction of cells occupied, in `[0, 1]`.
    #[inline]
    pub fn occupancy_ratio(&self) -> f64 {
        self.occupied as f64 / self.cells.len() as f64
    }

    /// Clears every cell.
    pub fn clear(&mut self) {
        self.cells.fill(false);
        self.occupied = 0;
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use proptest::prelude::*;

    fn grid10() -> Grid2 {
        Grid2::new(
            Aabb::new(Vec2::ZERO, Vec2::new(10.0, 10.0)),
            Meters::new(1.0),
        )
    }

    #[test]
    fn dims_and_len() {
        let g = grid10();
        assert_eq!(g.dims(), (10, 10));
        assert_eq!(g.len(), 100);
        assert!(!g.is_empty());
        assert_eq!(g.resolution(), 1.0);
    }

    #[test]
    fn non_integer_bounds_round_up() {
        let g = Grid2::new(
            Aabb::new(Vec2::ZERO, Vec2::new(10.5, 0.2)),
            Meters::new(1.0),
        );
        assert_eq!(g.dims(), (11, 1));
    }

    #[test]
    fn mark_dedups_same_cell() {
        let mut g = grid10();
        assert!(g.mark(Vec2::new(0.5, 0.5)));
        assert!(!g.mark(Vec2::new(0.9, 0.9)));
        assert_eq!(g.occupied_cells(), 1);
        assert!(g.is_marked(Vec2::new(0.1, 0.1)));
    }

    #[test]
    fn out_of_bounds_is_noop() {
        let mut g = grid10();
        assert!(!g.mark(Vec2::new(-1.0, 5.0)));
        assert!(!g.mark(Vec2::new(5.0, 11.0)));
        assert_eq!(g.occupied_cells(), 0);
        assert!(!g.is_marked(Vec2::new(-1.0, 5.0)));
        assert!(g.cell_index(Vec2::new(100.0, 0.0)).is_none());
    }

    #[test]
    fn boundary_point_maps_to_last_cell() {
        let g = grid10();
        let idx = g.cell_index(Vec2::new(10.0, 10.0)).unwrap();
        assert_eq!(idx, 99);
    }

    #[test]
    fn occupancy_metrics() {
        let mut g = grid10();
        g.mark(Vec2::new(0.5, 0.5));
        g.mark(Vec2::new(3.5, 3.5));
        assert_eq!(g.occupied_cells(), 2);
        assert!((g.occupied_area() - 2.0).abs() < 1e-12);
        assert!((g.occupancy_ratio() - 0.02).abs() < 1e-12);
        g.clear();
        assert_eq!(g.occupied_cells(), 0);
    }

    #[test]
    fn mark_segment_covers_line() {
        let mut g = grid10();
        let newly = g.mark_segment(Vec2::new(0.5, 0.5), Vec2::new(9.5, 0.5));
        assert_eq!(newly, 10); // one cell per column
        assert!(g.is_marked(Vec2::new(4.5, 0.5)));
        // re-marking adds nothing
        assert_eq!(g.mark_segment(Vec2::new(0.5, 0.5), Vec2::new(9.5, 0.5)), 0);
    }

    #[test]
    fn mark_segment_degenerate_point() {
        let mut g = grid10();
        assert_eq!(g.mark_segment(Vec2::new(1.5, 1.5), Vec2::new(1.5, 1.5)), 1);
    }

    #[test]
    fn cell_center() {
        let g = grid10();
        let c = g.cell_center(Vec2::new(2.3, 7.9)).unwrap();
        assert!(c.distance(Vec2::new(2.5, 7.5)) < 1e-12);
        assert!(g.cell_center(Vec2::new(-5.0, 0.0)).is_none());
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn zero_resolution_panics() {
        let _ = Grid2::new(Aabb::new(Vec2::ZERO, Vec2::new(1.0, 1.0)), Meters::new(0.0));
    }

    proptest! {
        #[test]
        fn prop_occupied_matches_marks(
            points in proptest::collection::vec((0.0..10.0f64, 0.0..10.0f64), 0..100)
        ) {
            let mut g = grid10();
            for (x, y) in &points {
                g.mark(Vec2::new(*x, *y));
            }
            // occupied count equals the number of distinct cell indices
            let mut idx: Vec<usize> = points
                .iter()
                .filter_map(|(x, y)| g.cell_index(Vec2::new(*x, *y)))
                .collect();
            idx.sort_unstable();
            idx.dedup();
            prop_assert_eq!(g.occupied_cells(), idx.len());
        }

        #[test]
        fn prop_cell_center_same_cell(x in 0.0..10.0f64, y in 0.0..10.0f64) {
            let g = grid10();
            let p = Vec2::new(x, y);
            let c = g.cell_center(p).unwrap();
            prop_assert_eq!(g.cell_index(p), g.cell_index(c));
        }

        #[test]
        fn prop_occupancy_ratio_bounded(
            points in proptest::collection::vec((-5.0..15.0f64, -5.0..15.0f64), 0..50)
        ) {
            let mut g = grid10();
            for (x, y) in points {
                g.mark(Vec2::new(x, y));
            }
            prop_assert!((0.0..=1.0).contains(&g.occupancy_ratio()));
        }
    }
}
