//! Optimizers: SGD and Adam.

use serde::{Deserialize, Serialize};

use crate::Mlp;

/// Plain stochastic gradient descent (optionally with momentum).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f64,
    velocity: Vec<f64>,
}

impl Sgd {
    /// Creates an SGD optimizer for a network with `param_count` parameters.
    pub fn new(param_count: usize, lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            momentum: 0.0,
            velocity: vec![0.0; param_count],
        }
    }

    /// Builder: sets the momentum coefficient.
    pub fn with_momentum(mut self, momentum: f64) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        self.momentum = momentum;
        self
    }

    /// Applies one update step using the gradients accumulated in `net`.
    ///
    /// Walks the parameters slice-by-slice so the elementwise update
    /// vectorizes; each parameter sees the same arithmetic in the same
    /// order as a per-scalar visit, so results are bit-identical.
    pub fn step(&mut self, net: &mut Mlp) {
        let mut off = 0;
        let lr = self.lr;
        let mu = self.momentum;
        let vel = &mut self.velocity;
        net.visit_param_slices(|ps, gs| {
            let v = &mut vel[off..off + ps.len()];
            off += ps.len();
            for ((p, &g), vi) in ps.iter_mut().zip(gs).zip(v) {
                *vi = mu * *vi + g;
                *p -= lr * *vi;
            }
        });
        assert_eq!(off, vel.len(), "parameter count changed");
    }
}

/// Adam (Kingma & Ba) — the optimizer used for D-DQN training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical stabilizer.
    pub eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates an Adam optimizer for a network with `param_count`
    /// parameters and standard betas (0.9, 0.999).
    pub fn new(param_count: usize, lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; param_count],
            v: vec![0.0; param_count],
        }
    }

    /// Applies one update step using the gradients accumulated in `net`.
    ///
    /// Walks the parameters slice-by-slice so the `sqrt`/`div` chain
    /// vectorizes instead of running at scalar latency; each parameter sees
    /// the same arithmetic in the same order as a per-scalar visit, so
    /// results are bit-identical.
    pub fn step(&mut self, net: &mut Mlp) {
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (m_all, v_all) = (&mut self.m, &mut self.v);
        let mut off = 0;
        net.visit_param_slices(|ps, gs| {
            let m = &mut m_all[off..off + ps.len()];
            let v = &mut v_all[off..off + ps.len()];
            off += ps.len();
            for (((p, &g), mi), vi) in ps.iter_mut().zip(gs).zip(m).zip(v) {
                *mi = b1 * *mi + (1.0 - b1) * g;
                *vi = b2 * *vi + (1.0 - b2) * g * g;
                let mh = *mi / b1t;
                let vh = *vi / b2t;
                *p -= lr * mh / (vh.sqrt() + eps);
            }
        });
        assert_eq!(off, m_all.len(), "parameter count changed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trains y = 2x − 1 on a tiny net; returns final loss.
    fn train(optimizer: &mut dyn FnMut(&mut Mlp), net: &mut Mlp, iters: usize) -> f64 {
        let data: Vec<(f64, f64)> = (0..8)
            .map(|i| {
                let x = i as f64 / 4.0 - 1.0;
                (x, 2.0 * x - 1.0)
            })
            .collect();
        let mut last = f64::INFINITY;
        for _ in 0..iters {
            net.zero_grad();
            last = 0.0;
            for &(x, y) in &data {
                let cache = net.forward_cached(&[x]);
                let err = cache.output()[0] - y;
                last += 0.5 * err * err;
                net.backward(&cache, &[err]);
            }
            optimizer(net);
        }
        last
    }

    #[test]
    fn sgd_converges_on_linear_fit() {
        let mut net = Mlp::new(&[1, 8, 1], 0);
        let mut opt = Sgd::new(net.param_count(), 0.01);
        let loss = train(&mut |n| opt.step(n), &mut net, 400);
        assert!(loss < 0.05, "loss {loss}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut net = Mlp::new(&[1, 8, 1], 0);
        let mut opt = Sgd::new(net.param_count(), 0.005).with_momentum(0.9);
        let loss = train(&mut |n| opt.step(n), &mut net, 400);
        assert!(loss < 0.05, "loss {loss}");
    }

    #[test]
    fn adam_converges_faster_than_sgd() {
        let mut net_a = Mlp::new(&[1, 8, 1], 0);
        let mut adam = Adam::new(net_a.param_count(), 0.01);
        let loss_a = train(&mut |n| adam.step(n), &mut net_a, 150);

        let mut net_s = Mlp::new(&[1, 8, 1], 0);
        let mut sgd = Sgd::new(net_s.param_count(), 0.01);
        let loss_s = train(&mut |n| sgd.step(n), &mut net_s, 150);
        assert!(loss_a < loss_s * 1.5, "adam {loss_a} vs sgd {loss_s}");
        assert!(loss_a < 0.05);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn bad_lr_panics() {
        let _ = Adam::new(10, 0.0);
    }

    /// Accumulates one backward pass worth of gradients on `net`.
    fn seed_grads(net: &mut Mlp) {
        net.zero_grad();
        let cache = net.forward_cached(&[0.3, -0.7]);
        net.backward(&cache, &[cache.output()[0] - 1.0, cache.output()[1] + 0.5]);
    }

    #[test]
    fn adam_slice_step_matches_scalar_reference() {
        let mut net = Mlp::new(&[2, 8, 2], 7);
        seed_grads(&mut net);
        let mut reference = net.clone();
        let mut opt = Adam::new(net.param_count(), 0.01);

        // Scalar replica of the documented Adam update, applied per param
        // through the per-scalar visitor.
        let mut t = 0u64;
        let mut m = vec![0.0; reference.param_count()];
        let mut v = vec![0.0; reference.param_count()];
        for _ in 0..3 {
            opt.step(&mut net);

            t += 1;
            let b1t = 1.0 - opt.beta1.powi(t as i32);
            let b2t = 1.0 - opt.beta2.powi(t as i32);
            let (lr, b1, b2, eps) = (opt.lr, opt.beta1, opt.beta2, opt.eps);
            let mut i = 0;
            reference.visit_params(|p, g| {
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                *p -= lr * (m[i] / b1t) / ((v[i] / b2t).sqrt() + eps);
                i += 1;
            });
        }

        let mut got = Vec::new();
        net.visit_params(|p, _| got.push(*p));
        let mut want = Vec::new();
        reference.visit_params(|p, _| want.push(*p));
        assert_eq!(got, want, "slice-based Adam drifted from scalar update");
    }

    #[test]
    fn sgd_slice_step_matches_scalar_reference() {
        let mut net = Mlp::new(&[2, 8, 2], 11);
        seed_grads(&mut net);
        let mut reference = net.clone();
        let mut opt = Sgd::new(net.param_count(), 0.05).with_momentum(0.9);

        let mut vel = vec![0.0; reference.param_count()];
        for _ in 0..3 {
            opt.step(&mut net);
            let mut i = 0;
            reference.visit_params(|p, g| {
                vel[i] = 0.9 * vel[i] + g;
                *p -= 0.05 * vel[i];
                i += 1;
            });
        }

        let mut got = Vec::new();
        net.visit_params(|p, _| got.push(*p));
        let mut want = Vec::new();
        reference.visit_params(|p, _| want.push(*p));
        assert_eq!(got, want, "slice-based SGD drifted from scalar update");
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn bad_momentum_panics() {
        let _ = Sgd::new(10, 0.1).with_momentum(1.5);
    }
}
