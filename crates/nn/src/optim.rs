//! Optimizers: SGD and Adam.

use serde::{Deserialize, Serialize};

use crate::Mlp;

/// Plain stochastic gradient descent (optionally with momentum).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f64,
    velocity: Vec<f64>,
}

impl Sgd {
    /// Creates an SGD optimizer for a network with `param_count` parameters.
    pub fn new(param_count: usize, lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            momentum: 0.0,
            velocity: vec![0.0; param_count],
        }
    }

    /// Builder: sets the momentum coefficient.
    pub fn with_momentum(mut self, momentum: f64) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        self.momentum = momentum;
        self
    }

    /// Applies one update step using the gradients accumulated in `net`.
    pub fn step(&mut self, net: &mut Mlp) {
        let mut i = 0;
        let lr = self.lr;
        let mu = self.momentum;
        let vel = &mut self.velocity;
        net.visit_params(|p, g| {
            vel[i] = mu * vel[i] + g;
            *p -= lr * vel[i];
            i += 1;
        });
        assert_eq!(i, vel.len(), "parameter count changed");
    }
}

/// Adam (Kingma & Ba) — the optimizer used for D-DQN training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical stabilizer.
    pub eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates an Adam optimizer for a network with `param_count`
    /// parameters and standard betas (0.9, 0.999).
    pub fn new(param_count: usize, lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; param_count],
            v: vec![0.0; param_count],
        }
    }

    /// Applies one update step using the gradients accumulated in `net`.
    pub fn step(&mut self, net: &mut Mlp) {
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (m, v) = (&mut self.m, &mut self.v);
        let mut i = 0;
        net.visit_params(|p, g| {
            m[i] = b1 * m[i] + (1.0 - b1) * g;
            v[i] = b2 * v[i] + (1.0 - b2) * g * g;
            let mh = m[i] / b1t;
            let vh = v[i] / b2t;
            *p -= lr * mh / (vh.sqrt() + eps);
            i += 1;
        });
        assert_eq!(i, m.len(), "parameter count changed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trains y = 2x − 1 on a tiny net; returns final loss.
    fn train(optimizer: &mut dyn FnMut(&mut Mlp), net: &mut Mlp, iters: usize) -> f64 {
        let data: Vec<(f64, f64)> = (0..8)
            .map(|i| {
                let x = i as f64 / 4.0 - 1.0;
                (x, 2.0 * x - 1.0)
            })
            .collect();
        let mut last = f64::INFINITY;
        for _ in 0..iters {
            net.zero_grad();
            last = 0.0;
            for &(x, y) in &data {
                let cache = net.forward_cached(&[x]);
                let err = cache.output()[0] - y;
                last += 0.5 * err * err;
                net.backward(&cache, &[err]);
            }
            optimizer(net);
        }
        last
    }

    #[test]
    fn sgd_converges_on_linear_fit() {
        let mut net = Mlp::new(&[1, 8, 1], 0);
        let mut opt = Sgd::new(net.param_count(), 0.01);
        let loss = train(&mut |n| opt.step(n), &mut net, 400);
        assert!(loss < 0.05, "loss {loss}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut net = Mlp::new(&[1, 8, 1], 0);
        let mut opt = Sgd::new(net.param_count(), 0.005).with_momentum(0.9);
        let loss = train(&mut |n| opt.step(n), &mut net, 400);
        assert!(loss < 0.05, "loss {loss}");
    }

    #[test]
    fn adam_converges_faster_than_sgd() {
        let mut net_a = Mlp::new(&[1, 8, 1], 0);
        let mut adam = Adam::new(net_a.param_count(), 0.01);
        let loss_a = train(&mut |n| adam.step(n), &mut net_a, 150);

        let mut net_s = Mlp::new(&[1, 8, 1], 0);
        let mut sgd = Sgd::new(net_s.param_count(), 0.01);
        let loss_s = train(&mut |n| sgd.step(n), &mut net_s, 150);
        assert!(loss_a < loss_s * 1.5, "adam {loss_a} vs sgd {loss_s}");
        assert!(loss_a < 0.05);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn bad_lr_panics() {
        let _ = Adam::new(10, 0.0);
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn bad_momentum_panics() {
        let _ = Sgd::new(10, 0.1).with_momentum(1.5);
    }
}
