//! Multi-layer perceptron with ReLU hidden activations.

use serde::{Deserialize, Serialize};

use crate::Linear;

/// An MLP: dense layers with ReLU between them and a linear output layer.
///
/// This is the Q-network of iPrism's SMC (the camera-CNN substitute; see
/// DESIGN.md). Deterministically initialized from a seed, serializable with
/// serde, trained with the optimizers in this crate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
}

/// Cached per-layer activations from [`Mlp::forward_cached`], consumed by
/// [`Mlp::backward`].
#[derive(Debug, Clone, PartialEq)]
pub struct MlpCache {
    /// `inputs[i]` is the input to layer `i`; the last entry is the output.
    inputs: Vec<Vec<f64>>,
}

impl MlpCache {
    /// The network output for the cached forward pass.
    pub fn output(&self) -> &[f64] {
        self.inputs.last().map_or(&[], Vec::as_slice)
    }
}

impl Mlp {
    /// Creates an MLP with the given layer sizes, e.g. `&[in, h1, h2, out]`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than two sizes are given or any size is zero.
    pub fn new(sizes: &[usize], seed: u64) -> Self {
        assert!(
            sizes.len() >= 2,
            "MLP needs at least input and output sizes"
        );
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(w[0], w[1], seed.wrapping_add(i as u64 * 7919)))
            .collect();
        Mlp { layers }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map_or(0, Linear::in_dim)
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, Linear::out_dim)
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Linear::param_count).sum()
    }

    /// Plain forward pass (no caching).
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let n = self.layers.len();
        let mut h = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if i + 1 < n {
                relu_inplace(&mut h);
            }
        }
        h
    }

    /// Forward pass retaining per-layer inputs for backprop.
    pub fn forward_cached(&self, x: &[f64]) -> MlpCache {
        let n = self.layers.len();
        let mut inputs = Vec::with_capacity(n + 1);
        let mut cur = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            let mut h = layer.forward(&cur);
            if i + 1 < n {
                relu_inplace(&mut h);
            }
            inputs.push(std::mem::replace(&mut cur, h));
        }
        inputs.push(cur);
        MlpCache { inputs }
    }

    /// Backpropagates `dloss_dout` through the cached pass, accumulating
    /// parameter gradients; returns `∂L/∂input`.
    pub fn backward(&mut self, cache: &MlpCache, dloss_dout: &[f64]) -> Vec<f64> {
        let n = self.layers.len();
        assert_eq!(cache.inputs.len(), n + 1, "cache does not match network");
        let mut grad = dloss_dout.to_vec();
        for i in (0..n).rev() {
            // The stored input of layer i+1 is layer i's *post-activation*
            // output; ReLU gradient masks where that output is zero.
            if i + 1 < n {
                let activated = &cache.inputs[i + 1];
                for (g, a) in grad.iter_mut().zip(activated) {
                    if *a <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            grad = self.layers[i].backward(&cache.inputs[i], &grad);
        }
        grad
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Visits every `(parameter, gradient)` pair in a stable order.
    pub fn visit_params(&mut self, mut f: impl FnMut(&mut f64, f64)) {
        for l in &mut self.layers {
            l.visit_params(&mut f);
        }
    }

    /// Copies the parameters of `other` into `self` (target-network sync).
    ///
    /// # Panics
    ///
    /// Panics when the architectures differ.
    pub fn copy_params_from(&mut self, other: &Mlp) {
        assert_eq!(
            self.layers.len(),
            other.layers.len(),
            "architecture mismatch"
        );
        for (dst, src) in self.layers.iter_mut().zip(&other.layers) {
            assert_eq!(dst.w.len(), src.w.len(), "architecture mismatch");
            dst.w.copy_from_slice(&src.w);
            dst.b.copy_from_slice(&src.b);
        }
    }
}

fn relu_inplace(v: &mut [f64]) {
    for x in v {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shapes() {
        let net = Mlp::new(&[4, 8, 3], 0);
        assert_eq!(net.in_dim(), 4);
        assert_eq!(net.out_dim(), 3);
        assert_eq!(net.param_count(), 4 * 8 + 8 + 8 * 3 + 3);
        assert_eq!(net.forward(&[0.1, 0.2, 0.3, 0.4]).len(), 3);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Mlp::new(&[3, 5, 2], 11);
        let b = Mlp::new(&[3, 5, 2], 11);
        assert_eq!(a.forward(&[1.0, 2.0, 3.0]), b.forward(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn forward_cached_matches_forward() {
        let net = Mlp::new(&[3, 6, 2], 4);
        let x = [0.3, -0.7, 1.1];
        assert_eq!(net.forward(&x), net.forward_cached(&x).output());
    }

    #[test]
    fn gradient_check_full_network() {
        let mut net = Mlp::new(&[3, 5, 2], 2);
        let x = [0.4, -0.2, 0.9];
        let dy = [0.7, -1.3];
        net.zero_grad();
        let cache = net.forward_cached(&x);
        let dx = net.backward(&cache, &dy);

        let loss = |net: &Mlp, x: &[f64]| -> f64 {
            net.forward(x).iter().zip(&dy).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-6;

        // input gradient
        for i in 0..3 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let num = (loss(&net, &xp) - loss(&net, &xm)) / (2.0 * eps);
            assert!((num - dx[i]).abs() < 1e-5, "dx[{i}]: {num} vs {}", dx[i]);
        }

        // parameter gradients: collect analytic grads, then perturb each
        let mut analytic = Vec::new();
        net.visit_params(|_, g| analytic.push(g));
        let mut net2 = net.clone();
        assert_eq!(analytic.len(), net2.param_count());
        for (idx, &expected) in analytic.iter().enumerate() {
            let mut j = 0;
            net2.visit_params(|p, _| {
                if j == idx {
                    *p += eps;
                }
                j += 1;
            });
            let plus = loss(&net2, &x);
            let mut j = 0;
            net2.visit_params(|p, _| {
                if j == idx {
                    *p -= 2.0 * eps;
                }
                j += 1;
            });
            let minus = loss(&net2, &x);
            let mut j = 0;
            net2.visit_params(|p, _| {
                if j == idx {
                    *p += eps;
                }
                j += 1;
            });
            let num = (plus - minus) / (2.0 * eps);
            assert!(
                (num - expected).abs() < 1e-5,
                "param {idx}: {num} vs {expected}"
            );
        }
    }

    #[test]
    fn target_sync_copies_params() {
        let src = Mlp::new(&[2, 4, 1], 1);
        let mut dst = Mlp::new(&[2, 4, 1], 99);
        assert_ne!(src.forward(&[1.0, 1.0]), dst.forward(&[1.0, 1.0]));
        dst.copy_params_from(&src);
        assert_eq!(src.forward(&[1.0, 1.0]), dst.forward(&[1.0, 1.0]));
    }

    #[test]
    #[should_panic(expected = "architecture mismatch")]
    fn sync_mismatch_panics() {
        let src = Mlp::new(&[2, 4, 1], 1);
        let mut dst = Mlp::new(&[2, 5, 1], 1);
        dst.copy_params_from(&src);
    }

    #[test]
    fn serde_roundtrip() {
        let net = Mlp::new(&[3, 4, 2], 9);
        let json = serde_json::to_string(&net).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        assert_eq!(
            net.forward(&[0.1, 0.2, 0.3]),
            back.forward(&[0.1, 0.2, 0.3])
        );
    }

    proptest! {
        #[test]
        fn prop_forward_finite(
            x in proptest::collection::vec(-10.0..10.0f64, 4)
        ) {
            let net = Mlp::new(&[4, 8, 8, 2], 3);
            for y in net.forward(&x) {
                prop_assert!(y.is_finite());
            }
        }
    }
}
