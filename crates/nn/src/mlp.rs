//! Multi-layer perceptron with ReLU hidden activations.

use serde::{Deserialize, Serialize};

use crate::Linear;

/// An MLP: dense layers with ReLU between them and a linear output layer.
///
/// This is the Q-network of iPrism's SMC (the camera-CNN substitute; see
/// DESIGN.md). Deterministically initialized from a seed, serializable with
/// serde, trained with the optimizers in this crate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
}

/// Cached per-layer activations from [`Mlp::forward_cached`], consumed by
/// [`Mlp::backward`].
#[derive(Debug, Clone, PartialEq)]
pub struct MlpCache {
    /// `inputs[i]` is the input to layer `i`; the last entry is the output.
    inputs: Vec<Vec<f64>>,
}

impl MlpCache {
    /// The network output for the cached forward pass.
    pub fn output(&self) -> &[f64] {
        self.inputs.last().map_or(&[], Vec::as_slice)
    }
}

/// Reusable activation/gradient buffers for the batched minibatch pass
/// ([`Mlp::forward_batch_cached`] / [`Mlp::backward_batch`]).
///
/// All buffers are contiguous row-major `[batch × dim]` slabs: sample `s`'s
/// feature `j` for layer `i` lives at `inputs[i][s * dim_i + j]`. The cache is
/// allocated lazily on first use and reused across minibatches, so a training
/// loop that keeps one `BatchCache` alive performs no per-update allocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchCache {
    /// `inputs[i]` is the row-major input batch of layer `i`; the last entry
    /// is the batched network output.
    inputs: Vec<Vec<f64>>,
    /// Upstream gradient flowing between layers during the backward pass;
    /// after [`Mlp::backward_batch`] it holds `∂L/∂input` for the batch.
    grad: Vec<f64>,
    /// Scratch buffer the layer-level backward kernel writes `∂L/∂x` into.
    grad_scratch: Vec<f64>,
    /// Transposed-weight scratch for the layer forward kernel
    /// ([`Linear::forward_batch_scratch`]), reused across layers and updates.
    wt_scratch: Vec<f64>,
    /// Number of samples in the cached pass.
    batch: usize,
}

impl BatchCache {
    /// An empty cache; buffers are sized on first use.
    #[must_use]
    pub fn new() -> Self {
        BatchCache::default()
    }

    /// Number of samples in the most recent cached forward pass.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The batched network output, row-major `[batch × out_dim]`.
    #[must_use]
    pub fn outputs(&self) -> &[f64] {
        self.inputs.last().map_or(&[], Vec::as_slice)
    }

    /// The output row of sample `s`.
    ///
    /// # Panics
    ///
    /// Panics when `s` is out of range for the cached batch.
    #[must_use]
    pub fn output(&self, s: usize) -> &[f64] {
        assert!(s < self.batch, "sample index out of range");
        let out = self.outputs();
        let dim = out.len() / self.batch;
        &out[s * dim..(s + 1) * dim]
    }

    /// `∂L/∂input` for the whole batch, row-major `[batch × in_dim]`; valid
    /// after [`Mlp::backward_batch`].
    #[must_use]
    pub fn input_grads(&self) -> &[f64] {
        &self.grad
    }
}

impl Mlp {
    /// Creates an MLP with the given layer sizes, e.g. `&[in, h1, h2, out]`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than two sizes are given or any size is zero.
    pub fn new(sizes: &[usize], seed: u64) -> Self {
        assert!(
            sizes.len() >= 2,
            "MLP needs at least input and output sizes"
        );
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(w[0], w[1], seed.wrapping_add(i as u64 * 7919)))
            .collect();
        Mlp { layers }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map_or(0, Linear::in_dim)
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, Linear::out_dim)
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Linear::param_count).sum()
    }

    /// Plain forward pass (no caching).
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let n = self.layers.len();
        let mut h = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if i + 1 < n {
                relu_inplace(&mut h);
            }
        }
        h
    }

    /// Forward pass retaining per-layer inputs for backprop.
    pub fn forward_cached(&self, x: &[f64]) -> MlpCache {
        let n = self.layers.len();
        let mut inputs = Vec::with_capacity(n + 1);
        let mut cur = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            let mut h = layer.forward(&cur);
            if i + 1 < n {
                relu_inplace(&mut h);
            }
            inputs.push(std::mem::replace(&mut cur, h));
        }
        inputs.push(cur);
        MlpCache { inputs }
    }

    /// Backpropagates `dloss_dout` through the cached pass, accumulating
    /// parameter gradients; returns `∂L/∂input`.
    pub fn backward(&mut self, cache: &MlpCache, dloss_dout: &[f64]) -> Vec<f64> {
        let n = self.layers.len();
        assert_eq!(cache.inputs.len(), n + 1, "cache does not match network");
        let mut grad = dloss_dout.to_vec();
        for i in (0..n).rev() {
            // The stored input of layer i+1 is layer i's *post-activation*
            // output; ReLU gradient masks where that output is zero.
            if i + 1 < n {
                let activated = &cache.inputs[i + 1];
                for (g, a) in grad.iter_mut().zip(activated) {
                    if *a <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            grad = self.layers[i].backward(&cache.inputs[i], &grad);
        }
        grad
    }

    /// Batched forward pass over a row-major `[batch × in_dim]` input slab,
    /// retaining every layer's input batch in `cache` for
    /// [`Mlp::backward_batch`].
    ///
    /// Bit-identical to calling [`Mlp::forward_cached`] once per sample: the
    /// layer kernel ([`Linear::forward_batch`]) reduces each output element's
    /// dot product in the same inner-loop order as the per-sample path, and
    /// the ReLU is elementwise, so batching only changes the *schedule*, never
    /// any floating-point reduction.
    ///
    /// # Panics
    ///
    /// Panics when `xs.len()` is not a multiple of the input dimension.
    // iprism: hot-path(no-alloc, deterministic)
    pub fn forward_batch_cached(&self, xs: &[f64], cache: &mut BatchCache) {
        let n_layers = self.layers.len();
        let in_dim = self.in_dim();
        assert!(xs.len().is_multiple_of(in_dim), "batch input size mismatch");
        cache.batch = xs.len() / in_dim;
        // The cache slabs grow once on first use and are reused verbatim on
        // every later minibatch (the whole point of `BatchCache`); at steady
        // state these calls touch length only, never the allocator.
        // iprism-lint: allow(hot-path-alloc)
        cache.inputs.resize_with(n_layers + 1, Vec::new);
        cache.inputs[0].clear();
        // iprism-lint: allow(hot-path-alloc)
        cache.inputs[0].extend_from_slice(xs);
        for i in 0..n_layers {
            // Split so layer i's input batch (index i) and output batch
            // (index i+1) can be borrowed simultaneously.
            let (head, tail) = cache.inputs.split_at_mut(i + 1);
            let out = &mut tail[0];
            self.layers[i].forward_batch_scratch(&head[i], out, &mut cache.wt_scratch);
            if i + 1 < n_layers {
                relu_inplace(out);
            }
        }
    }

    /// Batched backprop through the pass cached by
    /// [`Mlp::forward_batch_cached`], accumulating parameter gradients over
    /// the whole batch; afterwards [`BatchCache::input_grads`] holds
    /// `∂L/∂input`.
    ///
    /// Bit-identical to running [`Mlp::backward`] once per sample in batch
    /// order: every gradient accumulator (`grad_w[o,i]`, `grad_b[o]`, each
    /// `∂L/∂x` element) receives exactly the same contributions in exactly
    /// the same order — see [`Linear::backward_batch`].
    ///
    /// # Panics
    ///
    /// Panics when the cache does not match the network or `dloss_dout` is
    /// not `[batch × out_dim]`.
    pub fn backward_batch(&mut self, cache: &mut BatchCache, dloss_dout: &[f64]) {
        let n = self.layers.len();
        assert_eq!(cache.inputs.len(), n + 1, "cache does not match network");
        assert_eq!(
            dloss_dout.len(),
            cache.batch * self.out_dim(),
            "batch grad size mismatch"
        );
        cache.grad.clear();
        // Steady-state capacity: the gradient slab is reused per minibatch.
        // iprism-lint: allow(hot-path-alloc)
        cache.grad.extend_from_slice(dloss_dout);
        for i in (0..n).rev() {
            // The stored input of layer i+1 is layer i's *post-activation*
            // batch; ReLU gradient masks where that output is zero.
            if i + 1 < n {
                let activated = &cache.inputs[i + 1];
                for (g, a) in cache.grad.iter_mut().zip(activated) {
                    if *a <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            self.layers[i].backward_batch(&cache.inputs[i], &cache.grad, &mut cache.grad_scratch);
            std::mem::swap(&mut cache.grad, &mut cache.grad_scratch);
        }
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Visits every `(parameter, gradient)` pair in a stable order.
    pub fn visit_params(&mut self, mut f: impl FnMut(&mut f64, f64)) {
        for l in &mut self.layers {
            l.visit_params(&mut f);
        }
    }

    /// Visits every layer's `(parameters, gradients)` slice pair in the
    /// order [`Mlp::visit_params`] flattens them (per layer: weights
    /// row-major, then biases). Optimizers that update whole slices
    /// vectorize where the per-scalar visitor cannot.
    pub fn visit_param_slices(&mut self, mut f: impl FnMut(&mut [f64], &[f64])) {
        for l in &mut self.layers {
            l.visit_param_slices(&mut f);
        }
    }

    /// Copies the parameters of `other` into `self` (target-network sync).
    ///
    /// # Panics
    ///
    /// Panics when the architectures differ.
    pub fn copy_params_from(&mut self, other: &Mlp) {
        assert_eq!(
            self.layers.len(),
            other.layers.len(),
            "architecture mismatch"
        );
        for (dst, src) in self.layers.iter_mut().zip(&other.layers) {
            assert_eq!(dst.w.len(), src.w.len(), "architecture mismatch");
            dst.w.copy_from_slice(&src.w);
            dst.b.copy_from_slice(&src.b);
        }
    }
}

fn relu_inplace(v: &mut [f64]) {
    for x in v {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shapes() {
        let net = Mlp::new(&[4, 8, 3], 0);
        assert_eq!(net.in_dim(), 4);
        assert_eq!(net.out_dim(), 3);
        assert_eq!(net.param_count(), 4 * 8 + 8 + 8 * 3 + 3);
        assert_eq!(net.forward(&[0.1, 0.2, 0.3, 0.4]).len(), 3);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Mlp::new(&[3, 5, 2], 11);
        let b = Mlp::new(&[3, 5, 2], 11);
        assert_eq!(a.forward(&[1.0, 2.0, 3.0]), b.forward(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn forward_cached_matches_forward() {
        let net = Mlp::new(&[3, 6, 2], 4);
        let x = [0.3, -0.7, 1.1];
        assert_eq!(net.forward(&x), net.forward_cached(&x).output());
    }

    #[test]
    fn gradient_check_full_network() {
        let mut net = Mlp::new(&[3, 5, 2], 2);
        let x = [0.4, -0.2, 0.9];
        let dy = [0.7, -1.3];
        net.zero_grad();
        let cache = net.forward_cached(&x);
        let dx = net.backward(&cache, &dy);

        let loss = |net: &Mlp, x: &[f64]| -> f64 {
            net.forward(x).iter().zip(&dy).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-6;

        // input gradient
        for i in 0..3 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let num = (loss(&net, &xp) - loss(&net, &xm)) / (2.0 * eps);
            assert!((num - dx[i]).abs() < 1e-5, "dx[{i}]: {num} vs {}", dx[i]);
        }

        // parameter gradients: collect analytic grads, then perturb each
        let mut analytic = Vec::new();
        net.visit_params(|_, g| analytic.push(g));
        let mut net2 = net.clone();
        assert_eq!(analytic.len(), net2.param_count());
        for (idx, &expected) in analytic.iter().enumerate() {
            let mut j = 0;
            net2.visit_params(|p, _| {
                if j == idx {
                    *p += eps;
                }
                j += 1;
            });
            let plus = loss(&net2, &x);
            let mut j = 0;
            net2.visit_params(|p, _| {
                if j == idx {
                    *p -= 2.0 * eps;
                }
                j += 1;
            });
            let minus = loss(&net2, &x);
            let mut j = 0;
            net2.visit_params(|p, _| {
                if j == idx {
                    *p += eps;
                }
                j += 1;
            });
            let num = (plus - minus) / (2.0 * eps);
            assert!(
                (num - expected).abs() < 1e-5,
                "param {idx}: {num} vs {expected}"
            );
        }
    }

    #[test]
    fn target_sync_copies_params() {
        let src = Mlp::new(&[2, 4, 1], 1);
        let mut dst = Mlp::new(&[2, 4, 1], 99);
        assert_ne!(src.forward(&[1.0, 1.0]), dst.forward(&[1.0, 1.0]));
        dst.copy_params_from(&src);
        assert_eq!(src.forward(&[1.0, 1.0]), dst.forward(&[1.0, 1.0]));
    }

    #[test]
    #[should_panic(expected = "architecture mismatch")]
    fn sync_mismatch_panics() {
        let src = Mlp::new(&[2, 4, 1], 1);
        let mut dst = Mlp::new(&[2, 5, 1], 1);
        dst.copy_params_from(&src);
    }

    #[test]
    fn serde_roundtrip() {
        let net = Mlp::new(&[3, 4, 2], 9);
        let json = serde_json::to_string(&net).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        assert_eq!(
            net.forward(&[0.1, 0.2, 0.3]),
            back.forward(&[0.1, 0.2, 0.3])
        );
    }

    #[test]
    fn batch_cache_is_reusable_across_batch_sizes() {
        let net = Mlp::new(&[3, 5, 2], 8);
        let mut cache = BatchCache::new();
        for n in [4, 1, 7] {
            let xs: Vec<f64> = (0..n * 3).map(|k| k as f64 * 0.1 - 1.0).collect();
            net.forward_batch_cached(&xs, &mut cache);
            assert_eq!(cache.batch(), n);
            assert_eq!(cache.outputs().len(), n * 2);
            for s in 0..n {
                assert_eq!(cache.output(s), net.forward(&xs[s * 3..(s + 1) * 3]));
            }
        }
    }

    #[test]
    fn batched_finite_difference_gradients_at_batch_3() {
        // Finite-difference check of the *batched* backward at batch > 1:
        // loss = Σ_s Σ_o dy[s,o] · net(x_s)[o].
        let mut net = Mlp::new(&[3, 5, 2], 2);
        let xs = [0.4, -0.2, 0.9, -0.6, 0.3, 0.1, 1.2, -0.8, 0.5];
        let dys = [0.7, -1.3, 0.4, 0.9, -0.5, 0.2];
        net.zero_grad();
        let mut cache = BatchCache::new();
        net.forward_batch_cached(&xs, &mut cache);
        net.backward_batch(&mut cache, &dys);

        let loss = |net: &Mlp, xs: &[f64]| -> f64 {
            (0..3)
                .map(|s| {
                    net.forward(&xs[s * 3..(s + 1) * 3])
                        .iter()
                        .zip(&dys[s * 2..(s + 1) * 2])
                        .map(|(a, b)| a * b)
                        .sum::<f64>()
                })
                .sum()
        };
        let eps = 1e-6;

        // input gradients
        let dx = cache.input_grads().to_vec();
        assert_eq!(dx.len(), xs.len());
        for i in 0..xs.len() {
            let mut xp = xs;
            xp[i] += eps;
            let mut xm = xs;
            xm[i] -= eps;
            let num = (loss(&net, &xp) - loss(&net, &xm)) / (2.0 * eps);
            assert!((num - dx[i]).abs() < 1e-5, "dx[{i}]: {num} vs {}", dx[i]);
        }

        // parameter gradients
        let mut analytic = Vec::new();
        net.visit_params(|_, g| analytic.push(g));
        let mut net2 = net.clone();
        for (idx, &expected) in analytic.iter().enumerate() {
            let nudge = |net: &mut Mlp, delta: f64| {
                let mut j = 0;
                net.visit_params(|p, _| {
                    if j == idx {
                        *p += delta;
                    }
                    j += 1;
                });
            };
            nudge(&mut net2, eps);
            let plus = loss(&net2, &xs);
            nudge(&mut net2, -2.0 * eps);
            let minus = loss(&net2, &xs);
            nudge(&mut net2, eps);
            let num = (plus - minus) / (2.0 * eps);
            assert!(
                (num - expected).abs() < 1e-5,
                "param {idx}: {num} vs {expected}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_forward_finite(
            x in proptest::collection::vec(-10.0..10.0f64, 4)
        ) {
            let net = Mlp::new(&[4, 8, 8, 2], 3);
            for y in net.forward(&x) {
                prop_assert!(y.is_finite());
            }
        }

        /// Over random shapes, batch sizes and data, the batched forward is
        /// *exactly* (bit-for-bit) N independent per-sample forwards.
        #[test]
        fn prop_batched_forward_equals_per_sample(
            in_dim in 1usize..6,
            hidden in 1usize..9,
            out_dim in 1usize..5,
            n in 1usize..9,
            seed in 0u64..1000,
            raw in proptest::collection::vec(-5.0..5.0f64, 8 * 5)
        ) {
            let net = Mlp::new(&[in_dim, hidden, out_dim], seed);
            let xs: Vec<f64> = (0..n * in_dim).map(|k| raw[k % raw.len()]).collect();
            let mut cache = BatchCache::new();
            net.forward_batch_cached(&xs, &mut cache);
            for s in 0..n {
                let single = net.forward(&xs[s * in_dim..(s + 1) * in_dim]);
                prop_assert_eq!(cache.output(s), single.as_slice());
            }
        }

        /// Over random shapes, the batched backward accumulates *exactly*
        /// the gradients of N per-sample backward calls, and produces the
        /// same `∂L/∂input` rows.
        #[test]
        fn prop_batched_backward_equals_per_sample(
            in_dim in 1usize..6,
            hidden in 1usize..9,
            out_dim in 1usize..5,
            n in 1usize..9,
            seed in 0u64..1000,
            raw in proptest::collection::vec(-5.0..5.0f64, 8 * 5)
        ) {
            let xs: Vec<f64> = (0..n * in_dim).map(|k| raw[k % raw.len()]).collect();
            let dys: Vec<f64> = (0..n * out_dim)
                .map(|k| raw[(k + 11) % raw.len()])
                .collect();

            let mut reference = Mlp::new(&[in_dim, hidden, out_dim], seed);
            reference.zero_grad();
            let mut ref_dx = Vec::new();
            for s in 0..n {
                let cache = reference.forward_cached(&xs[s * in_dim..(s + 1) * in_dim]);
                ref_dx.extend(
                    reference.backward(&cache, &dys[s * out_dim..(s + 1) * out_dim]),
                );
            }
            let mut ref_grads = Vec::new();
            reference.visit_params(|_, g| ref_grads.push(g));

            let mut batched = Mlp::new(&[in_dim, hidden, out_dim], seed);
            batched.zero_grad();
            let mut cache = BatchCache::new();
            batched.forward_batch_cached(&xs, &mut cache);
            batched.backward_batch(&mut cache, &dys);
            let mut got_grads = Vec::new();
            batched.visit_params(|_, g| got_grads.push(g));

            prop_assert_eq!(got_grads, ref_grads);
            prop_assert_eq!(cache.input_grads(), ref_dx.as_slice());
        }
    }
}
