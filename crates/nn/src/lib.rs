//! A minimal neural-network library for iPrism's D-DQN controller.
//!
//! The paper's SMC approximates Q-values with a CNN over camera frames;
//! this reproduction feeds geometric scene features to an MLP instead (see
//! DESIGN.md for the substitution rationale). The library is deliberately
//! small: dense layers with ReLU, hand-written backprop, Adam/SGD, MSE and
//! Huber losses — everything the Double-DQN training loop needs, fully
//! deterministic under a seed, with serde-serializable weights.
//!
//! # Quick example
//!
//! ```
//! use iprism_nn::{Adam, Mlp};
//!
//! let mut net = Mlp::new(&[2, 16, 1], 42);
//! let mut opt = Adam::new(net.param_count(), 1e-2);
//! // learn y = x0 * x1 on a few points
//! for _ in 0..500 {
//!     net.zero_grad();
//!     let mut loss = 0.0;
//!     for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
//!         let target = a * b;
//!         let cache = net.forward_cached(&[a, b]);
//!         let err = cache.output()[0] - target;
//!         loss += 0.5 * err * err;
//!         net.backward(&cache, &[err]);
//!     }
//!     opt.step(&mut net);
//!     if loss < 1e-3 { break; }
//! }
//! let out = net.forward(&[1.0, 1.0]);
//! assert!((out[0] - 1.0).abs() < 0.2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod linear;
mod loss;
mod mlp;
mod optim;

pub use linear::Linear;
pub use loss::{huber, huber_grad, mse, mse_grad};
pub use mlp::{BatchCache, Mlp, MlpCache};
pub use optim::{Adam, Sgd};
