//! Dense (fully connected) layers.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A dense layer `y = W·x + b` with accumulated gradients.
///
/// Weights are stored row-major: `w[o * in_dim + i]` connects input `i` to
/// output `o`. Initialization is He-uniform, deterministic under a seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    in_dim: usize,
    out_dim: usize,
    /// Weights, row-major `[out_dim × in_dim]`.
    pub w: Vec<f64>,
    /// Biases, `[out_dim]`.
    pub b: Vec<f64>,
    /// Accumulated weight gradients (same layout as `w`).
    #[serde(skip)]
    pub grad_w: Vec<f64>,
    /// Accumulated bias gradients.
    #[serde(skip)]
    pub grad_b: Vec<f64>,
}

impl Linear {
    /// Creates a layer with He-uniform initial weights.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "layer dims must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let bound = (6.0 / in_dim as f64).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Linear {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            grad_w: vec![0.0; in_dim * out_dim],
            grad_b: vec![0.0; out_dim],
        }
    }

    /// Input dimension.
    #[inline]
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    #[inline]
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Number of parameters (weights + biases).
    #[inline]
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != in_dim`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "input size mismatch");
        let mut y = self.b.clone();
        for (o, yo) in y.iter_mut().enumerate() {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = 0.0;
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            *yo += acc;
        }
        y
    }

    /// Backward pass: accumulates `∂L/∂W` and `∂L/∂b` given the upstream
    /// gradient `dy` and the input `x` used in the forward pass; returns
    /// `∂L/∂x`.
    pub fn backward(&mut self, x: &[f64], dy: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "input size mismatch");
        assert_eq!(dy.len(), self.out_dim, "grad size mismatch");
        let mut dx = vec![0.0; self.in_dim];
        for (o, &g) in dy.iter().enumerate() {
            self.grad_b[o] += g;
            let row_start = o * self.in_dim;
            for i in 0..self.in_dim {
                self.grad_w[row_start + i] += g * x[i];
                dx[i] += g * self.w[row_start + i];
            }
        }
        dx
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        // serde(skip) leaves these empty after deserialization; restore.
        if self.grad_w.len() != self.w.len() {
            self.grad_w = vec![0.0; self.w.len()];
            self.grad_b = vec![0.0; self.b.len()];
        }
        self.grad_w.fill(0.0);
        self.grad_b.fill(0.0);
    }

    /// Visits every `(parameter, gradient)` pair in a fixed order (weights
    /// row-major, then biases). Optimizers rely on this order being stable.
    pub fn visit_params(&mut self, mut f: impl FnMut(&mut f64, f64)) {
        if self.grad_w.len() != self.w.len() {
            self.grad_w = vec![0.0; self.w.len()];
            self.grad_b = vec![0.0; self.b.len()];
        }
        for (p, g) in self.w.iter_mut().zip(&self.grad_w) {
            f(p, *g);
        }
        for (p, g) in self.b.iter_mut().zip(&self.grad_b) {
            f(p, *g);
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;

    #[test]
    fn forward_identity_weights() {
        let mut l = Linear::new(2, 2, 0);
        l.w = vec![1.0, 0.0, 0.0, 1.0];
        l.b = vec![0.5, -0.5];
        assert_eq!(l.forward(&[2.0, 3.0]), vec![2.5, 2.5]);
    }

    #[test]
    fn deterministic_init() {
        let a = Linear::new(4, 3, 7);
        let b = Linear::new(4, 3, 7);
        assert_eq!(a.w, b.w);
        let c = Linear::new(4, 3, 8);
        assert_ne!(a.w, c.w);
    }

    #[test]
    fn backward_gradients_match_finite_difference() {
        let mut l = Linear::new(3, 2, 1);
        let x = [0.5, -1.0, 2.0];
        let dy = [1.0, -0.5];
        l.zero_grad();
        let dx = l.backward(&x, &dy);

        // loss L = dy · y  (linear in y), so dL/dw numerically:
        let eps = 1e-6;
        for idx in 0..l.w.len() {
            let orig = l.w[idx];
            l.w[idx] = orig + eps;
            let yp: f64 = l.forward(&x).iter().zip(&dy).map(|(a, b)| a * b).sum();
            l.w[idx] = orig - eps;
            let ym: f64 = l.forward(&x).iter().zip(&dy).map(|(a, b)| a * b).sum();
            l.w[idx] = orig;
            let num = (yp - ym) / (2.0 * eps);
            assert!((num - l.grad_w[idx]).abs() < 1e-6, "w[{idx}]");
        }
        // dL/dx numerically:
        for i in 0..3 {
            let mut xp = x;
            xp[i] += eps;
            let yp: f64 = l.forward(&xp).iter().zip(&dy).map(|(a, b)| a * b).sum();
            let mut xm = x;
            xm[i] -= eps;
            let ym: f64 = l.forward(&xm).iter().zip(&dy).map(|(a, b)| a * b).sum();
            let num = (yp - ym) / (2.0 * eps);
            assert!((num - dx[i]).abs() < 1e-6, "x[{i}]");
        }
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut l = Linear::new(2, 1, 0);
        l.zero_grad();
        l.backward(&[1.0, 1.0], &[1.0]);
        l.backward(&[1.0, 1.0], &[1.0]);
        assert!((l.grad_b[0] - 2.0).abs() < 1e-12);
        l.zero_grad();
        assert_eq!(l.grad_b[0], 0.0);
    }

    #[test]
    fn visit_params_order_stable() {
        let mut l = Linear::new(2, 1, 3);
        l.zero_grad();
        let mut count = 0;
        l.visit_params(|_, _| count += 1);
        assert_eq!(count, l.param_count());
        assert_eq!(l.param_count(), 3);
    }

    #[test]
    fn serde_roundtrip_restores_grads_lazily() {
        let l = Linear::new(2, 2, 5);
        let json = serde_json::to_string(&l).unwrap();
        let mut back: Linear = serde_json::from_str(&json).unwrap();
        assert_eq!(back.w, l.w);
        // grads skipped: restored on zero_grad
        back.zero_grad();
        assert_eq!(back.grad_w.len(), back.w.len());
    }

    #[test]
    #[should_panic(expected = "input size mismatch")]
    fn wrong_input_panics() {
        let l = Linear::new(3, 1, 0);
        let _ = l.forward(&[1.0]);
    }
}
