//! Dense (fully connected) layers.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A dense layer `y = W·x + b` with accumulated gradients.
///
/// Weights are stored row-major: `w[o * in_dim + i]` connects input `i` to
/// output `o`. Initialization is He-uniform, deterministic under a seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    in_dim: usize,
    out_dim: usize,
    /// Weights, row-major `[out_dim × in_dim]`.
    pub w: Vec<f64>,
    /// Biases, `[out_dim]`.
    pub b: Vec<f64>,
    /// Accumulated weight gradients (same layout as `w`).
    #[serde(skip)]
    pub grad_w: Vec<f64>,
    /// Accumulated bias gradients.
    #[serde(skip)]
    pub grad_b: Vec<f64>,
}

impl Linear {
    /// Creates a layer with He-uniform initial weights.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "layer dims must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let bound = (6.0 / in_dim as f64).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Linear {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            grad_w: vec![0.0; in_dim * out_dim],
            grad_b: vec![0.0; out_dim],
        }
    }

    /// Input dimension.
    #[inline]
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    #[inline]
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Number of parameters (weights + biases).
    #[inline]
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != in_dim`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "input size mismatch");
        let mut y = self.b.clone();
        for (o, yo) in y.iter_mut().enumerate() {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = 0.0;
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            *yo += acc;
        }
        y
    }

    /// Batched forward pass over a contiguous row-major batch.
    ///
    /// Convenience wrapper around [`Linear::forward_batch_scratch`] that
    /// allocates the transposed-weight scratch per call; training loops
    /// should hold the scratch (e.g. via `BatchCache` in `Mlp`) and call
    /// the scratch variant directly.
    ///
    /// # Panics
    ///
    /// Panics when `xs.len()` is not a multiple of `in_dim`.
    pub fn forward_batch(&self, xs: &[f64], ys: &mut Vec<f64>) {
        let mut wt = Vec::new();
        self.forward_batch_scratch(xs, ys, &mut wt);
    }

    /// Batched forward pass with a caller-held transposed-weight scratch.
    ///
    /// `xs` holds `n` samples of `in_dim` values each (`xs[s * in_dim + i]`
    /// is input `i` of sample `s`); `ys` is cleared and filled with the
    /// matching `[n × out_dim]` layout. The kernel first transposes `w` into
    /// `wt` (`wt[i * out_dim + o] = w[o * in_dim + i]`) and then accumulates
    /// input-outer: for each sample, `y[o] += wt[i,o] · x[i]` sweeps every
    /// output `o` contiguously for one input `i` at a time. Each output
    /// accumulator therefore receives its `w[o,i]·x[i]` terms in the same
    /// `i`-ascending order as the per-sample dot product in
    /// [`Linear::forward`], and the final `b[o] + acc` add matches too —
    /// only *independent* accumulators are interleaved, never one reduction
    /// reordered — so the result is **bit-identical** to `n` per-sample
    /// calls. Unlike a dot-product inner loop (a single latency-bound
    /// reduction chain), the contiguous output sweep auto-vectorizes.
    ///
    /// # Panics
    ///
    /// Panics when `xs.len()` is not a multiple of `in_dim`.
    // iprism: hot-path(no-panic, no-alloc, deterministic)
    pub fn forward_batch_scratch(&self, xs: &[f64], ys: &mut Vec<f64>, wt: &mut Vec<f64>) {
        // The one deliberate panic: rejecting a ragged batch up front keeps
        // every chunking step below exact.
        // iprism-lint: allow(hot-path-panic)
        assert!(
            xs.len().is_multiple_of(self.in_dim),
            "batch input size mismatch"
        );
        let n = xs.len() / self.in_dim;
        ys.clear();
        // Both resizes reuse steady-state capacity: after the first
        // minibatch the buffers are already large enough and `resize` only
        // rewrites length + contents.
        // iprism-lint: allow(hot-path-alloc)
        ys.resize(n * self.out_dim, 0.0);
        wt.clear();
        // iprism-lint: allow(hot-path-alloc)
        wt.resize(self.w.len(), 0.0);
        // Transpose via a strided column iterator: `wt[i, o] = w[o, i]`.
        // Pure assignment to distinct cells, so sweeping `i` outer instead
        // of `o` outer changes nothing observable.
        for (i, wrow) in wt.chunks_exact_mut(self.out_dim).enumerate() {
            let col = self.w.iter().skip(i).step_by(self.in_dim);
            for (dst, &src) in wrow.iter_mut().zip(col) {
                *dst = src;
            }
        }
        for (x, y) in xs
            .chunks_exact(self.in_dim)
            .zip(ys.chunks_exact_mut(self.out_dim))
        {
            for (&xi, wrow) in x.iter().zip(wt.chunks_exact(self.out_dim)) {
                for (yo, &wo) in y.iter_mut().zip(wrow) {
                    *yo += wo * xi;
                }
            }
            // IEEE addition commutes bitwise, so `acc + b[o]` equals the
            // per-sample path's `b[o] + acc` exactly.
            for (yo, &bo) in y.iter_mut().zip(&self.b) {
                *yo += bo;
            }
        }
    }

    /// Batched backward pass: accumulates `∂L/∂W` and `∂L/∂b` over the whole
    /// batch and writes `∂L/∂xs` (same `[n × in_dim]` layout as `xs`) into
    /// `dxs`.
    ///
    /// The loop nest is weight-row-major (`o` outer, samples inner) so each
    /// `w`/`grad_w` row stays hot across the batch, yet every individual
    /// accumulator — `grad_b[o]`, `grad_w[o,i]`, `dx[s,i]` — receives its
    /// contributions in exactly the order the per-sample [`Linear::backward`]
    /// produces them (samples ascending, `o` ascending per sample), so the
    /// accumulated gradients are **bit-identical** to `n` sequential
    /// per-sample calls.
    ///
    /// # Panics
    ///
    /// Panics when the buffer sizes disagree with the layer dimensions.
    pub fn backward_batch(&mut self, xs: &[f64], dys: &[f64], dxs: &mut Vec<f64>) {
        assert!(
            xs.len().is_multiple_of(self.in_dim),
            "batch input size mismatch"
        );
        let n = xs.len() / self.in_dim;
        assert_eq!(dys.len(), n * self.out_dim, "batch grad size mismatch");
        dxs.clear();
        // Steady-state capacity: the caller-held scratch grows once.
        // iprism-lint: allow(hot-path-alloc)
        dxs.resize(n * self.in_dim, 0.0);
        for o in 0..self.out_dim {
            let row_start = o * self.in_dim;
            for s in 0..n {
                let g = dys[s * self.out_dim + o];
                self.grad_b[o] += g;
                let x = &xs[s * self.in_dim..(s + 1) * self.in_dim];
                let dx = &mut dxs[s * self.in_dim..(s + 1) * self.in_dim];
                // Two independent axpy sweeps (grad_w row and dx row); split
                // so each vectorizes cleanly. Per-accumulator order is
                // unchanged — each element still gets one contribution per
                // (o, s) in the same sequence as the fused loop.
                let gw = &mut self.grad_w[row_start..row_start + self.in_dim];
                for (gwi, &xi) in gw.iter_mut().zip(x) {
                    *gwi += g * xi;
                }
                let w = &self.w[row_start..row_start + self.in_dim];
                for (dxi, &wi) in dx.iter_mut().zip(w) {
                    *dxi += g * wi;
                }
            }
        }
    }

    /// Backward pass: accumulates `∂L/∂W` and `∂L/∂b` given the upstream
    /// gradient `dy` and the input `x` used in the forward pass; returns
    /// `∂L/∂x`.
    pub fn backward(&mut self, x: &[f64], dy: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "input size mismatch");
        assert_eq!(dy.len(), self.out_dim, "grad size mismatch");
        let mut dx = vec![0.0; self.in_dim];
        for (o, &g) in dy.iter().enumerate() {
            self.grad_b[o] += g;
            let row_start = o * self.in_dim;
            for i in 0..self.in_dim {
                self.grad_w[row_start + i] += g * x[i];
                dx[i] += g * self.w[row_start + i];
            }
        }
        dx
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        // serde(skip) leaves these empty after deserialization; restore.
        // Runs at most once per deserialized layer, never at steady state.
        if self.grad_w.len() != self.w.len() {
            self.grad_w = vec![0.0; self.w.len()]; // iprism-lint: allow(hot-path-alloc)
            self.grad_b = vec![0.0; self.b.len()]; // iprism-lint: allow(hot-path-alloc)
        }
        self.grad_w.fill(0.0);
        self.grad_b.fill(0.0);
    }

    /// Visits every `(parameter, gradient)` pair in a fixed order (weights
    /// row-major, then biases). Optimizers rely on this order being stable.
    pub fn visit_params(&mut self, mut f: impl FnMut(&mut f64, f64)) {
        if self.grad_w.len() != self.w.len() {
            self.grad_w = vec![0.0; self.w.len()];
            self.grad_b = vec![0.0; self.b.len()];
        }
        for (p, g) in self.w.iter_mut().zip(&self.grad_w) {
            f(p, *g);
        }
        for (p, g) in self.b.iter_mut().zip(&self.grad_b) {
            f(p, *g);
        }
    }

    /// Visits the `(parameters, gradients)` slice pairs in the same order as
    /// [`Linear::visit_params`] flattens them (weights row-major, then
    /// biases). Whole-slice access lets optimizers vectorize their
    /// elementwise updates; each parameter still sees exactly the arithmetic
    /// a per-scalar visit would apply.
    pub fn visit_param_slices(&mut self, f: &mut impl FnMut(&mut [f64], &[f64])) {
        // Cold serde-restore branch, as in `zero_grad`.
        if self.grad_w.len() != self.w.len() {
            self.grad_w = vec![0.0; self.w.len()]; // iprism-lint: allow(hot-path-alloc)
            self.grad_b = vec![0.0; self.b.len()]; // iprism-lint: allow(hot-path-alloc)
        }
        f(&mut self.w, &self.grad_w);
        f(&mut self.b, &self.grad_b);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;

    #[test]
    fn forward_identity_weights() {
        let mut l = Linear::new(2, 2, 0);
        l.w = vec![1.0, 0.0, 0.0, 1.0];
        l.b = vec![0.5, -0.5];
        assert_eq!(l.forward(&[2.0, 3.0]), vec![2.5, 2.5]);
    }

    #[test]
    fn deterministic_init() {
        let a = Linear::new(4, 3, 7);
        let b = Linear::new(4, 3, 7);
        assert_eq!(a.w, b.w);
        let c = Linear::new(4, 3, 8);
        assert_ne!(a.w, c.w);
    }

    #[test]
    fn backward_gradients_match_finite_difference() {
        let mut l = Linear::new(3, 2, 1);
        let x = [0.5, -1.0, 2.0];
        let dy = [1.0, -0.5];
        l.zero_grad();
        let dx = l.backward(&x, &dy);

        // loss L = dy · y  (linear in y), so dL/dw numerically:
        let eps = 1e-6;
        for idx in 0..l.w.len() {
            let orig = l.w[idx];
            l.w[idx] = orig + eps;
            let yp: f64 = l.forward(&x).iter().zip(&dy).map(|(a, b)| a * b).sum();
            l.w[idx] = orig - eps;
            let ym: f64 = l.forward(&x).iter().zip(&dy).map(|(a, b)| a * b).sum();
            l.w[idx] = orig;
            let num = (yp - ym) / (2.0 * eps);
            assert!((num - l.grad_w[idx]).abs() < 1e-6, "w[{idx}]");
        }
        // dL/dx numerically:
        for i in 0..3 {
            let mut xp = x;
            xp[i] += eps;
            let yp: f64 = l.forward(&xp).iter().zip(&dy).map(|(a, b)| a * b).sum();
            let mut xm = x;
            xm[i] -= eps;
            let ym: f64 = l.forward(&xm).iter().zip(&dy).map(|(a, b)| a * b).sum();
            let num = (yp - ym) / (2.0 * eps);
            assert!((num - dx[i]).abs() < 1e-6, "x[{i}]");
        }
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut l = Linear::new(2, 1, 0);
        l.zero_grad();
        l.backward(&[1.0, 1.0], &[1.0]);
        l.backward(&[1.0, 1.0], &[1.0]);
        assert!((l.grad_b[0] - 2.0).abs() < 1e-12);
        l.zero_grad();
        assert_eq!(l.grad_b[0], 0.0);
    }

    #[test]
    fn visit_params_order_stable() {
        let mut l = Linear::new(2, 1, 3);
        l.zero_grad();
        let mut count = 0;
        l.visit_params(|_, _| count += 1);
        assert_eq!(count, l.param_count());
        assert_eq!(l.param_count(), 3);
    }

    #[test]
    fn serde_roundtrip_restores_grads_lazily() {
        let l = Linear::new(2, 2, 5);
        let json = serde_json::to_string(&l).unwrap();
        let mut back: Linear = serde_json::from_str(&json).unwrap();
        assert_eq!(back.w, l.w);
        // grads skipped: restored on zero_grad
        back.zero_grad();
        assert_eq!(back.grad_w.len(), back.w.len());
    }

    #[test]
    #[should_panic(expected = "input size mismatch")]
    fn wrong_input_panics() {
        let l = Linear::new(3, 1, 0);
        let _ = l.forward(&[1.0]);
    }

    /// Deterministic pseudo-random batch data (no RNG dependency needed).
    fn batch_data(n: usize, dim: usize, salt: u64) -> Vec<f64> {
        (0..n * dim)
            .map(|k| {
                let h = (k as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(salt);
                (h % 2000) as f64 / 100.0 - 10.0
            })
            .collect()
    }

    #[test]
    fn forward_batch_bit_identical_to_per_sample() {
        for (in_dim, out_dim, n) in [(3, 2, 1), (5, 7, 4), (8, 3, 33), (2, 2, 65)] {
            let l = Linear::new(in_dim, out_dim, 11);
            let xs = batch_data(n, in_dim, 3);
            let mut ys = Vec::new();
            l.forward_batch(&xs, &mut ys);
            for s in 0..n {
                let single = l.forward(&xs[s * in_dim..(s + 1) * in_dim]);
                assert_eq!(
                    &ys[s * out_dim..(s + 1) * out_dim],
                    single.as_slice(),
                    "sample {s} of shape {in_dim}x{out_dim} batch {n}"
                );
            }
        }
    }

    #[test]
    fn backward_batch_bit_identical_to_per_sample() {
        for (in_dim, out_dim, n) in [(3, 2, 1), (5, 7, 4), (8, 3, 33)] {
            let xs = batch_data(n, in_dim, 5);
            let dys = batch_data(n, out_dim, 9);

            let mut reference = Linear::new(in_dim, out_dim, 2);
            reference.zero_grad();
            let mut ref_dxs = Vec::new();
            for s in 0..n {
                ref_dxs.extend(reference.backward(
                    &xs[s * in_dim..(s + 1) * in_dim],
                    &dys[s * out_dim..(s + 1) * out_dim],
                ));
            }

            let mut batched = Linear::new(in_dim, out_dim, 2);
            batched.zero_grad();
            let mut dxs = Vec::new();
            batched.backward_batch(&xs, &dys, &mut dxs);

            assert_eq!(batched.grad_w, reference.grad_w);
            assert_eq!(batched.grad_b, reference.grad_b);
            assert_eq!(dxs, ref_dxs);
        }
    }

    #[test]
    #[should_panic(expected = "batch input size mismatch")]
    fn forward_batch_ragged_input_panics() {
        let l = Linear::new(3, 1, 0);
        let mut ys = Vec::new();
        l.forward_batch(&[1.0, 2.0], &mut ys);
    }
}
