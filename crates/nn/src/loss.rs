//! Scalar loss functions and their gradients.

/// Mean-squared-error loss `0.5 (pred − target)²`.
#[inline]
pub fn mse(pred: f64, target: f64) -> f64 {
    0.5 * (pred - target).powi(2)
}

/// Gradient of [`mse`] w.r.t. `pred`.
#[inline]
pub fn mse_grad(pred: f64, target: f64) -> f64 {
    pred - target
}

/// Huber loss with threshold `delta` — quadratic near zero, linear in the
/// tails; the standard DQN loss (paper reference [49]).
#[inline]
pub fn huber(pred: f64, target: f64, delta: f64) -> f64 {
    let e = pred - target;
    if e.abs() <= delta {
        0.5 * e * e
    } else {
        delta * (e.abs() - 0.5 * delta)
    }
}

/// Gradient of [`huber`] w.r.t. `pred` (clipped to `±delta`).
#[inline]
pub fn huber_grad(pred: f64, target: f64, delta: f64) -> f64 {
    (pred - target).clamp(-delta, delta)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mse_basics() {
        assert_eq!(mse(3.0, 3.0), 0.0);
        assert_eq!(mse(4.0, 2.0), 2.0);
        assert_eq!(mse_grad(4.0, 2.0), 2.0);
        assert_eq!(mse_grad(1.0, 2.0), -1.0);
    }

    #[test]
    fn huber_quadratic_region_matches_mse() {
        assert!((huber(1.5, 1.0, 1.0) - mse(1.5, 1.0)).abs() < 1e-12);
        assert_eq!(huber_grad(1.5, 1.0, 1.0), 0.5);
    }

    #[test]
    fn huber_linear_region_clips_gradient() {
        assert_eq!(huber_grad(10.0, 0.0, 1.0), 1.0);
        assert_eq!(huber_grad(-10.0, 0.0, 1.0), -1.0);
        // linear tail: slope delta
        let l1 = huber(10.0, 0.0, 1.0);
        let l2 = huber(11.0, 0.0, 1.0);
        assert!((l2 - l1 - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_losses_nonnegative(p in -100.0..100.0f64, t in -100.0..100.0f64) {
            prop_assert!(mse(p, t) >= 0.0);
            prop_assert!(huber(p, t, 1.0) >= 0.0);
        }

        #[test]
        fn prop_huber_grad_is_derivative(p in -5.0..5.0f64, t in -5.0..5.0f64) {
            let eps = 1e-6;
            let num = (huber(p + eps, t, 1.0) - huber(p - eps, t, 1.0)) / (2.0 * eps);
            prop_assert!((num - huber_grad(p, t, 1.0)).abs() < 1e-5);
        }
    }
}
