//! Zero-cost physical-unit newtypes for the iPrism workspace.
//!
//! Unit bugs (degrees fed to `sin`, a speed used as a distance, a Δt in
//! milliseconds) are the classic silent killer in kinematic bicycle models:
//! nothing crashes, the reach tube is just wrong, and STI quietly loses its
//! meaning. This crate makes those bugs unrepresentable at API boundaries:
//!
//! * [`Meters`] — length / position components (m).
//! * [`Seconds`] — durations and timestamps (s).
//! * [`MetersPerSecond`] — speeds (m/s).
//! * [`MetersPerSecondSquared`] — accelerations (m/s²).
//! * [`Radians`] — angles and headings (rad), with normalization into
//!   `(-π, π]` that agrees with `iprism_contracts::check_heading_normalized`.
//!
//! Every type is a `#[repr(transparent)]` wrapper around one `f64`: the
//! newtypes vanish at codegen time, so the hot reach-tube loops pay nothing.
//! Dimensional arithmetic is implemented where it is meaningful —
//! `Meters / Seconds` is a [`MetersPerSecond`], `MetersPerSecond * Seconds`
//! is a [`Meters`] — and forbidden (fails to compile) everywhere else.
//!
//! The `cargo xtask lint --ast` rules `raw-f64-param` / `raw-f64-return` /
//! `angle-conv-outside-units` enforce that the public APIs of the
//! `dynamics`, `geom`, and `reach` crates use these types instead of raw
//! `f64` for physical quantities, and that `to_radians`/`to_degrees`
//! conversions appear only in this crate (see `docs/STATIC_ANALYSIS.md`).
//!
//! This crate sits at the bottom of the workspace (it depends only on the
//! serde shim), so every other crate can use it; the float-level angle
//! primitives [`wrap_to_pi`] and [`normalize_angle`] live here too and are
//! re-exported by `iprism-geom` for backwards compatibility.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::f64::consts::PI;

use serde::{Deserialize, Serialize};

/// Wraps an angle (radians) into `(-π, π]`.
///
/// This is the float-level primitive behind [`Radians::new`]; prefer the
/// newtype in API signatures.
///
/// # Examples
///
/// ```
/// use std::f64::consts::PI;
/// use iprism_units::wrap_to_pi;
///
/// assert!((wrap_to_pi(3.0 * PI) - PI).abs() < 1e-12);
/// assert!((wrap_to_pi(-3.0 * PI) - PI).abs() < 1e-12);
/// ```
#[inline]
#[must_use]
pub fn wrap_to_pi(angle: f64) -> f64 {
    let two_pi = 2.0 * PI;
    let mut a = angle % two_pi;
    if a <= -PI {
        a += two_pi;
    } else if a > PI {
        a -= two_pi;
    }
    a
}

/// Wraps an angle (radians) into `[0, 2π)`.
#[inline]
#[must_use]
pub fn normalize_angle(angle: f64) -> f64 {
    let two_pi = 2.0 * PI;
    let a = angle % two_pi;
    if a < 0.0 {
        a + two_pi
    } else {
        a
    }
}

/// Implements the unit-preserving operator set shared by every newtype:
/// addition/subtraction/negation within the unit, scaling by a bare `f64`,
/// and the dimensionless ratio of two like quantities.
macro_rules! unit_ops {
    ($name:ident) => {
        impl std::ops::Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }
        impl std::ops::Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }
        impl std::ops::Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }
        impl std::ops::Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }
        impl std::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }
        impl std::ops::Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }
        /// The ratio of two like quantities is dimensionless.
        impl std::ops::Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }
        impl std::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }
        impl std::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }
        impl From<$name> for f64 {
            #[inline]
            fn from(v: $name) -> f64 {
                v.0
            }
        }
    };
}

/// Implements the shared inherent helpers (`get`, `abs`, `min`/`max`/
/// `clamp`, finiteness, and a total order for sorting).
macro_rules! unit_helpers {
    ($name:ident, $symbol:literal) => {
        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// The wrapped `f64` value in the unit's canonical scale.
            #[inline]
            #[must_use]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            #[must_use]
            pub fn abs(self) -> $name {
                $name(self.0.abs())
            }

            /// The smaller of two quantities (NaN-propagating like `f64::min`).
            #[inline]
            #[must_use]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// The larger of two quantities.
            #[inline]
            #[must_use]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// Clamps into `[lo, hi]`.
            #[inline]
            #[must_use]
            pub fn clamp(self, lo: $name, hi: $name) -> $name {
                $name(self.0.clamp(lo.0, hi.0))
            }

            /// `true` when the value is neither NaN nor infinite.
            #[inline]
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Total order over the underlying bits (IEEE `totalOrder`);
            /// use for deterministic sorting instead of
            /// `partial_cmp(..).unwrap()`.
            #[inline]
            #[must_use]
            pub fn total_cmp(&self, other: &$name) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }
        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{} {}", self.0, $symbol)
            }
        }
    };
}

/// A length or position component in metres.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Meters(f64);

impl Meters {
    /// Creates a length from a value in metres.
    #[inline]
    #[must_use]
    pub const fn new(value: f64) -> Self {
        Meters(value)
    }
}

unit_ops!(Meters);
unit_helpers!(Meters, "m");

/// A duration or timestamp in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Seconds(f64);

impl Seconds {
    /// Creates a duration from a value in seconds.
    #[inline]
    #[must_use]
    pub const fn new(value: f64) -> Self {
        Seconds(value)
    }
}

unit_ops!(Seconds);
unit_helpers!(Seconds, "s");

/// A speed in metres per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[repr(transparent)]
pub struct MetersPerSecond(f64);

impl MetersPerSecond {
    /// Creates a speed from a value in metres per second.
    #[inline]
    #[must_use]
    pub const fn new(value: f64) -> Self {
        MetersPerSecond(value)
    }
}

unit_ops!(MetersPerSecond);
unit_helpers!(MetersPerSecond, "m/s");

/// An acceleration in metres per second squared.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[repr(transparent)]
pub struct MetersPerSecondSquared(f64);

impl MetersPerSecondSquared {
    /// Creates an acceleration from a value in metres per second squared.
    #[inline]
    #[must_use]
    pub const fn new(value: f64) -> Self {
        MetersPerSecondSquared(value)
    }
}

unit_ops!(MetersPerSecondSquared);
unit_helpers!(MetersPerSecondSquared, "m/s^2");

/// An angle in radians.
///
/// [`Radians::new`] normalizes into `(-π, π]` — the same interval
/// `iprism_contracts::check_heading_normalized` enforces — so a
/// `Radians`-typed heading built through `new` is always contract-clean.
/// Arithmetic (`+`, `-`, scaling) is performed on the raw values and may
/// leave the interval; call [`Radians::wrapped`] to renormalize, or
/// [`Radians::raw`] to build an intentionally unnormalized angle (e.g. a
/// cumulative winding angle).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Radians(f64);

impl Radians {
    /// Creates an angle from a value in radians, wrapped into `(-π, π]`.
    ///
    /// NaN and infinite inputs pass through unchanged (there is no
    /// meaningful normalization for them); finiteness stays the caller's
    /// contract, as with raw `f64` angles.
    #[inline]
    #[must_use]
    pub fn new(value: f64) -> Self {
        Radians(wrap_to_pi(value))
    }

    /// Creates an angle without normalizing — for cumulative angles that
    /// intentionally exceed one turn.
    #[inline]
    #[must_use]
    pub const fn raw(value: f64) -> Self {
        Radians(value)
    }

    /// Converts an angle in degrees (the only degree→radian conversion
    /// point in the workspace; `angle-conv-outside-units` enforces this).
    #[inline]
    #[must_use]
    pub fn from_degrees(degrees: f64) -> Self {
        Radians::new(degrees.to_radians())
    }

    /// The angle expressed in degrees.
    #[inline]
    #[must_use]
    pub fn to_degrees(self) -> f64 {
        self.0.to_degrees()
    }

    /// A copy wrapped into `(-π, π]`.
    #[inline]
    #[must_use]
    pub fn wrapped(self) -> Self {
        Radians(wrap_to_pi(self.0))
    }

    /// Signed smallest difference `self − other`, wrapped into `(-π, π]`.
    #[inline]
    #[must_use]
    pub fn angle_diff(self, other: Radians) -> Radians {
        Radians(wrap_to_pi(self.0 - other.0))
    }

    /// Sine of the angle.
    #[inline]
    #[must_use]
    pub fn sin(self) -> f64 {
        self.0.sin()
    }

    /// Cosine of the angle.
    #[inline]
    #[must_use]
    pub fn cos(self) -> f64 {
        self.0.cos()
    }

    /// Tangent of the angle.
    #[inline]
    #[must_use]
    pub fn tan(self) -> f64 {
        self.0.tan()
    }

    /// Simultaneous sine and cosine.
    #[inline]
    #[must_use]
    pub fn sin_cos(self) -> (f64, f64) {
        self.0.sin_cos()
    }
}

unit_ops!(Radians);
unit_helpers!(Radians, "rad");

/// Distance over duration is a speed.
impl std::ops::Div<Seconds> for Meters {
    type Output = MetersPerSecond;
    #[inline]
    fn div(self, rhs: Seconds) -> MetersPerSecond {
        MetersPerSecond(self.0 / rhs.0)
    }
}

/// Speed times duration is a distance.
impl std::ops::Mul<Seconds> for MetersPerSecond {
    type Output = Meters;
    #[inline]
    fn mul(self, rhs: Seconds) -> Meters {
        Meters(self.0 * rhs.0)
    }
}

/// Duration times speed is a distance.
impl std::ops::Mul<MetersPerSecond> for Seconds {
    type Output = Meters;
    #[inline]
    fn mul(self, rhs: MetersPerSecond) -> Meters {
        Meters(self.0 * rhs.0)
    }
}

/// Distance over speed is a duration.
impl std::ops::Div<MetersPerSecond> for Meters {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: MetersPerSecond) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

/// Speed change over duration is an acceleration.
impl std::ops::Div<Seconds> for MetersPerSecond {
    type Output = MetersPerSecondSquared;
    #[inline]
    fn div(self, rhs: Seconds) -> MetersPerSecondSquared {
        MetersPerSecondSquared(self.0 / rhs.0)
    }
}

/// Acceleration times duration is a speed change.
impl std::ops::Mul<Seconds> for MetersPerSecondSquared {
    type Output = MetersPerSecond;
    #[inline]
    fn mul(self, rhs: Seconds) -> MetersPerSecond {
        MetersPerSecond(self.0 * rhs.0)
    }
}

/// Duration times acceleration is a speed change.
impl std::ops::Mul<MetersPerSecondSquared> for Seconds {
    type Output = MetersPerSecond;
    #[inline]
    fn mul(self, rhs: MetersPerSecondSquared) -> MetersPerSecond {
        MetersPerSecond(self.0 * rhs.0)
    }
}

/// Speed change over acceleration is the duration it takes.
impl std::ops::Div<MetersPerSecondSquared> for MetersPerSecond {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: MetersPerSecondSquared) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(Meters::new(3.5).get(), 3.5);
        assert_eq!(Seconds::new(0.25).get(), 0.25);
        assert_eq!(MetersPerSecond::new(30.0).get(), 30.0);
        assert_eq!(Meters::ZERO.get(), 0.0);
        assert_eq!(f64::from(Meters::new(2.0)), 2.0);
    }

    #[test]
    fn unit_preserving_arithmetic() {
        let a = Meters::new(3.0);
        let b = Meters::new(4.0);
        assert_eq!((a + b).get(), 7.0);
        assert_eq!((b - a).get(), 1.0);
        assert_eq!((-a).get(), -3.0);
        assert_eq!((a * 2.0).get(), 6.0);
        assert_eq!((2.0 * a).get(), 6.0);
        assert_eq!((b / 2.0).get(), 2.0);
        assert_eq!(b / a, 4.0 / 3.0); // like/like ratio is dimensionless
        let mut c = a;
        c += b;
        c -= Meters::new(1.0);
        assert_eq!(c.get(), 6.0);
    }

    #[test]
    fn cross_unit_arithmetic() {
        let d = Meters::new(10.0);
        let t = Seconds::new(2.0);
        let v = d / t;
        assert_eq!(v, MetersPerSecond::new(5.0));
        assert_eq!(v * t, d);
        assert_eq!(t * v, d);
        assert_eq!(d / v, t);
    }

    #[test]
    fn acceleration_arithmetic() {
        let dv = MetersPerSecond::new(6.0);
        let t = Seconds::new(2.0);
        let a = dv / t;
        assert_eq!(a, MetersPerSecondSquared::new(3.0));
        // Round trips back through multiplication on both sides.
        assert_eq!(a * t, dv);
        assert_eq!(t * a, dv);
        assert_eq!(dv / a, t);
        assert_eq!(format!("{}", MetersPerSecondSquared::new(-4.0)), "-4 m/s^2");
    }

    #[test]
    fn helpers() {
        assert_eq!(Meters::new(-2.0).abs().get(), 2.0);
        assert_eq!(Meters::new(1.0).max(Meters::new(2.0)).get(), 2.0);
        assert_eq!(Meters::new(1.0).min(Meters::new(2.0)).get(), 1.0);
        assert_eq!(
            Seconds::new(9.0)
                .clamp(Seconds::ZERO, Seconds::new(5.0))
                .get(),
            5.0
        );
        assert!(Meters::new(1.0).is_finite());
        assert!(!Meters::new(f64::NAN).is_finite());
        assert_eq!(
            Meters::new(1.0).total_cmp(&Meters::new(2.0)),
            std::cmp::Ordering::Less
        );
        assert!(Meters::new(1.0) < Meters::new(2.0));
        assert_eq!(format!("{}", MetersPerSecond::new(5.0)), "5 m/s");
        assert_eq!(format!("{}", Radians::new(0.0)), "0 rad");
    }

    #[test]
    fn radians_normalization_boundaries() {
        use std::f64::consts::PI;
        // π maps to π (the interval is half-open at -π).
        assert_eq!(Radians::new(PI).get(), PI);
        assert!((Radians::new(-PI).get() - PI).abs() < 1e-12);
        assert!((Radians::new(3.0 * PI).get() - PI).abs() < 1e-12);
        assert!(Radians::new(2.0 * PI).get().abs() < 1e-12);
        // `raw` leaves the value alone; `wrapped` normalizes it.
        assert_eq!(Radians::raw(7.0).get(), 7.0);
        assert!((Radians::raw(7.0).wrapped().get() - wrap_to_pi(7.0)).abs() < 1e-15);
    }

    #[test]
    fn degree_conversions() {
        use std::f64::consts::{FRAC_PI_2, PI};
        assert!((Radians::from_degrees(180.0).get() - PI).abs() < 1e-12);
        assert!((Radians::from_degrees(90.0).get() - FRAC_PI_2).abs() < 1e-12);
        assert!((Radians::from_degrees(-90.0).get() + FRAC_PI_2).abs() < 1e-12);
        assert!((Radians::new(PI).to_degrees() - 180.0).abs() < 1e-12);
        // 360° wraps to 0.
        assert!(Radians::from_degrees(360.0).get().abs() < 1e-12);
    }

    #[test]
    fn radians_trig_and_diff() {
        use std::f64::consts::FRAC_PI_2;
        let r = Radians::new(FRAC_PI_2);
        assert!((r.sin() - 1.0).abs() < 1e-12);
        assert!(r.cos().abs() < 1e-12);
        let (s, c) = r.sin_cos();
        assert_eq!((s, c), (r.sin(), r.cos()));
        // Smallest signed difference goes through the wrap.
        let a = Radians::new(std::f64::consts::PI - 0.01);
        let b = Radians::new(-std::f64::consts::PI + 0.01);
        assert!((a.angle_diff(b).get() + 0.02).abs() < 1e-9);
    }

    #[test]
    fn radians_new_agrees_with_contracts() {
        // Satellite: Radians::new normalization must satisfy the same
        // invariant `contracts::check_heading_normalized` enforces, for a
        // deterministic sweep over many magnitudes.
        let mut x = -1e6;
        while x < 1e6 {
            iprism_contracts::check_heading_normalized("Radians::new sweep", Radians::new(x).get());
            x += 7919.377; // irrational-ish stride, hits no exact multiples
        }
        iprism_contracts::check_heading_normalized("π", Radians::new(std::f64::consts::PI).get());
        iprism_contracts::check_heading_normalized("-π", Radians::new(-std::f64::consts::PI).get());
    }

    #[test]
    fn serde_roundtrip_is_transparent() {
        // The serde shim serializes newtype structs transparently, so a
        // `Meters` looks exactly like its `f64` on the wire.
        let m = Meters::new(2.5);
        assert_eq!(m.to_value(), 2.5f64.to_value());
        let back = Meters::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    proptest! {
        #[test]
        fn prop_radians_new_in_interval(a in -1e6..1e6f64) {
            let r = Radians::new(a).get();
            prop_assert!(r > -std::f64::consts::PI - 1e-9);
            prop_assert!(r <= std::f64::consts::PI + 1e-9);
            iprism_contracts::check_heading_normalized("prop", r);
        }

        #[test]
        fn prop_wrap_preserves_direction(a in -100.0..100.0f64) {
            let (s1, c1) = a.sin_cos();
            let (s2, c2) = Radians::new(a).sin_cos();
            prop_assert!((s1 - s2).abs() < 1e-9 && (c1 - c2).abs() < 1e-9);
        }

        #[test]
        fn prop_speed_roundtrip(d in -1e3..1e3f64, t in 0.1..1e3f64) {
            let v = Meters::new(d) / Seconds::new(t);
            prop_assert!(((v * Seconds::new(t)).get() - d).abs() < 1e-9);
        }

        #[test]
        fn prop_accel_roundtrip(dv in -1e3..1e3f64, t in 0.1..1e3f64) {
            let a = MetersPerSecond::new(dv) / Seconds::new(t);
            prop_assert!(((a * Seconds::new(t)).get() - dv).abs() < 1e-9);
            prop_assert!(((MetersPerSecond::new(dv) / a).get() - t).abs() < 1e-9 || dv.abs() < 1e-12);
        }
    }
}
