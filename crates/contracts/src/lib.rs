//! Numeric-invariant contracts for the iPrism workspace.
//!
//! iPrism is a *safety* metric: its outputs are only meaningful while a
//! small set of numeric invariants hold (see `docs/INVARIANTS.md` for the
//! full catalogue):
//!
//! * **STI bounds** — every STI value lies in `[0, 1]` (Eq. 4–5).
//! * **Reach-tube monotonicity** — removing obstacles never shrinks the
//!   escape-route volume: `|T| ≤ |T^{/i}| ≤ |T^∅|`, up to the documented
//!   ε-dedup tolerance (DESIGN.md §8).
//! * **Finite kinematics** — no state component is NaN or infinite.
//! * **Heading normalization** — headings stay wrapped in `(-π, π]`.
//!
//! Checks are compiled in under the default-on `validate` cargo feature
//! with `debug_assert!` semantics: active in debug builds (so `cargo test`
//! exercises them), compiled out entirely in `--release` builds and in
//! `--no-default-features` builds. Violations panic with a message naming
//! the boundary that was crossed.
//!
//! This crate sits below every other iPrism crate so the checks can run at
//! the public boundaries of `reach`, `risk`, `dynamics`, and `sim`;
//! `iprism-core` re-exports it as `iprism_core::invariants`.

/// `true` when contract checking is compiled in and active.
#[inline]
#[must_use]
pub const fn validation_enabled() -> bool {
    cfg!(all(feature = "validate", debug_assertions))
}

/// Relative slack for reach-tube monotonicity comparisons.
///
/// The ε-dedup optimization makes tube volumes *approximately* monotone in
/// the obstacle set: pruning a candidate can change which duplicate becomes
/// a cell's representative, moving the measured volume by a bounded amount
/// (DESIGN.md §8). The seed test-suite bounds this noise at 5% + 1 m² and
/// the contract uses the same envelope.
pub const TUBE_MONOTONE_REL_TOL: f64 = 0.05;

/// Absolute slack (m²) for reach-tube monotonicity comparisons.
pub const TUBE_MONOTONE_ABS_TOL: f64 = 1.0;

#[cold]
#[inline(never)]
fn contract_violated(message: &str) -> ! {
    // This crate IS the enforcement layer; a contract violation must abort
    // loudly in validating builds. (`no-panic-in-lib` does not apply here —
    // contracts sits outside the panic-banned crate set — so no waiver.)
    panic!("iPrism invariant violated: {message}");
}

macro_rules! ensure {
    ($cond:expr, $($fmt:tt)*) => {
        // `!cond` rather than the inverted operator: a NaN operand must
        // fail the contract, not pass it vacuously.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if validation_enabled() && !$cond {
            contract_violated(&format!($($fmt)*));
        }
    };
}

/// Checks an STI value is finite and inside `[0, 1]`.
///
/// `context` names the boundary, e.g. `"StiEvaluator::evaluate combined"`.
///
/// # Panics
///
/// Panics in validating builds when the invariant is violated.
#[inline]
pub fn check_sti(context: &str, sti: f64) {
    ensure!(
        sti.is_finite() && (0.0..=1.0).contains(&sti),
        "{context}: STI must be in [0, 1], got {sti}"
    );
}

/// Checks the counterfactual volume ordering `|T| ≤ |T^{/i}| ≤ |T^∅|`
/// behind Eq. (4)–(5), with the documented ε-dedup tolerance.
///
/// Pass the factual volume (`all` obstacles present), one counterfactual
/// volume (`minus_i`, actor *i* removed), and the empty-world volume.
///
/// # Panics
///
/// Panics in validating builds when a volume is negative/non-finite or the
/// ordering is violated beyond tolerance.
#[inline]
pub fn check_tube_monotone(context: &str, all: f64, minus_i: f64, empty: f64) {
    ensure!(
        all.is_finite() && minus_i.is_finite() && empty.is_finite(),
        "{context}: tube volumes must be finite, got |T|={all}, |T^/i|={minus_i}, |T^∅|={empty}"
    );
    ensure!(
        all >= 0.0 && minus_i >= 0.0 && empty >= 0.0,
        "{context}: tube volumes must be non-negative, got |T|={all}, |T^/i|={minus_i}, |T^∅|={empty}"
    );
    let bound = |smaller: f64| smaller * (1.0 + TUBE_MONOTONE_REL_TOL) + TUBE_MONOTONE_ABS_TOL;
    ensure!(
        all <= bound(minus_i),
        "{context}: removing an actor shrank the tube: |T|={all} > |T^/i|={minus_i} (+tol)"
    );
    ensure!(
        minus_i <= bound(empty),
        "{context}: counterfactual tube exceeds empty-world tube: |T^/i|={minus_i} > |T^∅|={empty} (+tol)"
    );
}

/// Checks every component of a kinematic state vector is finite.
///
/// Components are passed as a slice so this crate does not depend on the
/// dynamics crate's `VehicleState` type; callers pass `[x, y, θ, v]`.
///
/// # Panics
///
/// Panics in validating builds when any component is NaN or infinite.
#[inline]
pub fn check_finite_state(context: &str, components: &[f64]) {
    ensure!(
        components.iter().all(|c| c.is_finite()),
        "{context}: non-finite state component in {components:?}"
    );
}

/// Checks a heading is wrapped into `(-π, π]` (with a 1 ULP-scale margin
/// for the wrapping arithmetic itself).
///
/// # Panics
///
/// Panics in validating builds when the heading is outside the interval.
#[inline]
pub fn check_heading_normalized(context: &str, theta: f64) {
    const PI_MARGIN: f64 = core::f64::consts::PI + 1e-12;
    ensure!(
        theta.is_finite() && theta > -PI_MARGIN && theta <= PI_MARGIN,
        "{context}: heading must be wrapped to (-π, π], got {theta}"
    );
}

/// Checks a time sweep is monotone: `t` must not run backwards past the
/// previously observed time `last`.
///
/// Used by monotone-access fast paths (e.g. `TrajectoryCursor`) whose
/// amortized-O(1) guarantee is only sound for non-decreasing queries.
/// `last` may be `NEG_INFINITY` for the first query; a NaN `t` fails.
///
/// # Panics
///
/// Panics in validating builds when `t < last` or `t` is NaN.
#[inline]
pub fn check_monotone_time(context: &str, last: f64, t: f64) {
    ensure!(
        t >= last,
        "{context}: time sweep ran backwards ({t} after {last})"
    );
}

/// Checks a trajectory queried for interpolation actually has samples.
///
/// An empty trajectory inside an `Obstacle` would silently interpolate to a
/// default (origin) state and prune nothing; constructors reject it, so an
/// empty one reaching a query means the struct was corrupted through its
/// public fields.
///
/// # Panics
///
/// Panics in validating builds when `is_empty` is `true`.
#[inline]
pub fn check_nonempty_trajectory(context: &str, is_empty: bool) {
    ensure!(
        !is_empty,
        "{context}: trajectory has no samples; interpolation would fall back \
         to a zero-size footprint that prunes nothing"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_checks_are_silent() {
        check_sti("test", 0.0);
        check_sti("test", 1.0);
        check_sti("test", 0.37);
        check_tube_monotone("test", 10.0, 12.0, 20.0);
        // Within the documented dedup tolerance.
        check_tube_monotone("test", 12.4, 12.0, 12.1);
        check_finite_state("test", &[0.0, -5.0, 3.1, 22.0]);
        check_heading_normalized("test", core::f64::consts::PI);
        check_heading_normalized("test", -core::f64::consts::PI + 0.001);
        check_heading_normalized("test", 0.0);
    }

    #[test]
    #[should_panic(expected = "STI must be in [0, 1]")]
    fn sti_above_one_panics() {
        check_sti("test", 1.2);
    }

    #[test]
    #[should_panic(expected = "STI must be in [0, 1]")]
    fn sti_nan_panics() {
        check_sti("test", f64::NAN);
    }

    #[test]
    #[should_panic(expected = "exceeds empty-world tube")]
    fn tube_monotonicity_violation_panics() {
        check_tube_monotone("test", 5.0, 50.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "removing an actor shrank the tube")]
    fn tube_factual_above_counterfactual_panics() {
        check_tube_monotone("test", 50.0, 10.0, 60.0);
    }

    #[test]
    #[should_panic(expected = "non-finite state component")]
    fn non_finite_state_panics() {
        check_finite_state("test", &[0.0, f64::NAN, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "heading must be wrapped")]
    fn unwrapped_heading_panics() {
        check_heading_normalized("test", 7.0);
    }

    #[test]
    fn enabled_in_debug_tests() {
        // This test suite runs under the debug profile with the default
        // feature set, so validation must be active here.
        assert!(validation_enabled());
    }
}
