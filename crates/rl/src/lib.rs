//! Double-DQN reinforcement learning (paper reference [47]) for iPrism's
//! safety-hazard mitigation controller.
//!
//! The crate is simulator-agnostic: anything implementing [`Environment`]
//! can be trained. It provides the pieces Fig. 2 of the paper wires
//! together: an experience [`ReplayBuffer`], an ε-greedy
//! [`EpsilonSchedule`] (random exploration shifting to exploitation), and a
//! [`DdqnAgent`] holding online + target Q-networks updated with the
//! double-Q target `r + γ · Q_target(s′, argmax_a Q_online(s′, a))`.
//!
//! # Quick example
//!
//! ```
//! use iprism_rl::{train, DdqnConfig, Environment, StepOutcome};
//!
//! // A 1-D walk: reach +3 for reward.
//! struct Walk { pos: i32 }
//! impl Environment for Walk {
//!     fn state_dim(&self) -> usize { 1 }
//!     fn num_actions(&self) -> usize { 2 }
//!     fn reset(&mut self) -> Vec<f64> { self.pos = 0; vec![0.0] }
//!     fn step(&mut self, action: usize) -> StepOutcome {
//!         self.pos += if action == 1 { 1 } else { -1 };
//!         let done = self.pos.abs() >= 3;
//!         let reward = if self.pos >= 3 { 1.0 } else { 0.0 };
//!         StepOutcome { state: vec![self.pos as f64 / 3.0], reward, done }
//!     }
//! }
//!
//! let mut env = Walk { pos: 0 };
//! let report = train(&mut env, &DdqnConfig::small_test(), 60);
//! let last: f64 = report.episode_returns.iter().rev().take(10).sum::<f64>() / 10.0;
//! assert!(last > 0.5, "agent should learn to walk right, got {last}");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ddqn;
mod env;
mod replay;
mod schedule;

pub use ddqn::{train, DdqnAgent, DdqnConfig, TrainedAgent};
pub use env::{Environment, StepOutcome};
pub use replay::{ReplayBuffer, Transition};
pub use schedule::EpsilonSchedule;
