//! The Double-DQN agent and training loop (paper reference [47]).

use iprism_nn::{huber_grad, Adam, BatchCache, Mlp};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::{Environment, EpsilonSchedule, ReplayBuffer, Transition};

/// Hyperparameters of the D-DQN trainer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DdqnConfig {
    /// Hidden layer sizes of the Q-network.
    pub hidden: Vec<usize>,
    /// Discount factor γ.
    pub gamma: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// Minibatch size per update.
    pub batch_size: usize,
    /// Replay buffer capacity.
    pub buffer_capacity: usize,
    /// Environment steps between target-network syncs.
    pub target_sync_interval: u64,
    /// Environment steps before learning starts.
    pub learn_start: usize,
    /// Gradient updates per environment step.
    pub updates_per_step: usize,
    /// Exploration schedule.
    pub epsilon: EpsilonSchedule,
    /// Huber loss threshold.
    pub huber_delta: f64,
    /// Use the double-Q target (`Q_target(s', argmax_a Q_online(s', a))`,
    /// paper reference [47]). `false` falls back to vanilla DQN
    /// (`max_a Q_target(s', a)`) — kept as an ablation of the paper's
    /// algorithm choice.
    pub double_q: bool,
    /// RNG seed (network init, exploration, replay sampling).
    pub seed: u64,
    /// Hard cap on steps per episode (0 = unlimited).
    pub max_steps_per_episode: usize,
    /// Route gradient updates through the original per-sample engine instead
    /// of the batched kernels. Only exists in test builds and behind the
    /// `per-sample-reference` feature; the golden bit-identity tests flip it
    /// to prove both engines produce byte-identical weights.
    #[cfg(any(test, feature = "per-sample-reference"))]
    #[serde(skip)]
    pub reference_engine: bool,
}

impl Default for DdqnConfig {
    fn default() -> Self {
        DdqnConfig {
            hidden: vec![64, 64],
            gamma: 0.97,
            lr: 5e-4,
            batch_size: 32,
            buffer_capacity: 20_000,
            target_sync_interval: 250,
            learn_start: 200,
            updates_per_step: 1,
            epsilon: EpsilonSchedule::default(),
            huber_delta: 1.0,
            double_q: true,
            seed: 0,
            max_steps_per_episode: 500,
            #[cfg(any(test, feature = "per-sample-reference"))]
            reference_engine: false,
        }
    }
}

impl DdqnConfig {
    /// A tiny configuration for fast unit tests and doctests.
    pub fn small_test() -> Self {
        DdqnConfig {
            hidden: vec![32],
            gamma: 0.95,
            lr: 2e-3,
            batch_size: 16,
            buffer_capacity: 2_000,
            target_sync_interval: 50,
            learn_start: 32,
            updates_per_step: 1,
            epsilon: EpsilonSchedule::new(1.0, 0.05, 400),
            huber_delta: 1.0,
            double_q: true,
            seed: 7,
            max_steps_per_episode: 50,
            #[cfg(any(test, feature = "per-sample-reference"))]
            reference_engine: false,
        }
    }
}

/// Reusable buffers for the batched minibatch update: sampled indices,
/// contiguous row-major state slabs, the Huber-gradient rows, and one
/// [`BatchCache`] per batched network pass. Living on the agent, they make
/// steady-state updates allocation-free.
#[derive(Debug, Clone, Default)]
struct BatchArena {
    /// Replay indices of the current minibatch.
    indices: Vec<usize>,
    /// Row-major `[batch × state_dim]` slab of sampled states.
    states: Vec<f64>,
    /// Row-major `[batch × state_dim]` slab of sampled next states.
    next_states: Vec<f64>,
    /// Row-major `[batch × num_actions]` Huber gradient of the TD loss.
    grads: Vec<f64>,
    /// Online-network pass over `states` (kept for the backward pass).
    q_cache: BatchCache,
    /// Online-network pass over `next_states` (double-Q action selection).
    next_online: BatchCache,
    /// Target-network pass over `next_states` (TD target evaluation).
    next_target: BatchCache,
}

/// A Double-DQN agent: online + target Q-networks (Eq. 9 of the paper) and
/// the machinery to improve them from replayed experience.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DdqnAgent {
    online: Mlp,
    target: Mlp,
    #[serde(skip)]
    optimizer: Option<Adam>,
    config: DdqnConfig,
    buffer: ReplayBuffer,
    steps: u64,
    #[serde(skip, default = "default_rng")]
    rng: ChaCha8Rng,
    #[serde(skip)]
    arena: BatchArena,
}

fn default_rng() -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0)
}

impl DdqnAgent {
    /// Creates an agent for `state_dim` observations and `num_actions`
    /// discrete actions.
    pub fn new(state_dim: usize, num_actions: usize, config: DdqnConfig) -> Self {
        let mut sizes = vec![state_dim];
        sizes.extend_from_slice(&config.hidden);
        sizes.push(num_actions);
        let online = Mlp::new(&sizes, config.seed);
        let mut target = Mlp::new(&sizes, config.seed.wrapping_add(1));
        target.copy_params_from(&online);
        let optimizer = Some(Adam::new(online.param_count(), config.lr));
        let rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(2));
        let buffer = ReplayBuffer::new(config.buffer_capacity.max(config.batch_size));
        DdqnAgent {
            online,
            target,
            optimizer,
            config,
            buffer,
            steps: 0,
            rng,
            arena: BatchArena::default(),
        }
    }

    /// Q-values of every action in `state` (Eq. 9: `V_θ(S_t)` as a vector).
    pub fn q_values(&self, state: &[f64]) -> Vec<f64> {
        self.online.forward(state)
    }

    /// The greedy action `argmax_a Q(s, a)` (Eq. 10).
    pub fn act_greedy(&self, state: &[f64]) -> usize {
        argmax(&self.q_values(state))
    }

    /// ε-greedy action at the agent's current exploration step.
    pub fn act_epsilon(&mut self, state: &[f64]) -> usize {
        let eps = self.config.epsilon.value(self.steps);
        if self.rng.gen_range(0.0..1.0) < eps {
            self.rng.gen_range(0..self.online.out_dim())
        } else {
            self.act_greedy(state)
        }
    }

    /// Records a transition and runs the configured number of gradient
    /// updates. Call once per environment step.
    pub fn observe(&mut self, t: Transition) {
        self.buffer.push(t);
        self.steps += 1;
        if self.buffer.len() >= self.config.learn_start.max(self.config.batch_size) {
            for _ in 0..self.config.updates_per_step {
                self.learn_batch();
            }
        }
        if self.steps.is_multiple_of(self.config.target_sync_interval) {
            self.target.copy_params_from(&self.online);
        }
    }

    /// Total environment steps observed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The trained online network (e.g. for saving weights).
    pub fn network(&self) -> &Mlp {
        &self.online
    }

    /// Replaces the online and target networks (e.g. after loading weights).
    pub fn load_network(&mut self, net: Mlp) {
        self.target.copy_params_from(&net);
        self.online = net;
        self.optimizer = Some(Adam::new(self.online.param_count(), self.config.lr));
    }

    /// One minibatch double-Q update:
    /// `y = r + γ (1 − done) · Q_target(s′, argmax_a Q_online(s′, a))`.
    ///
    /// The minibatch is packed into the reusable [`BatchArena`] and run as
    /// three batched network passes — target-Q(s′), online-Q(s′) for the
    /// double-Q argmax, and online-Q(s) — instead of ~3·batch per-sample
    /// forwards, with gradient accumulation done once over the whole batch.
    /// Bit-identical to [`DdqnAgent::learn_batch_reference`]: the index
    /// sampling consumes the same RNG draws, the batched kernels reduce every
    /// dot product in the per-sample order, and the gradient rows carry the
    /// same dense zero entries the reference backpropagated.
    // iprism: hot-path(no-alloc, deterministic)
    fn learn_batch(&mut self) {
        #[cfg(any(test, feature = "per-sample-reference"))]
        if self.config.reference_engine {
            self.learn_batch_reference();
            return;
        }

        let arena = &mut self.arena;
        self.buffer
            .sample_indices(&mut self.rng, self.config.batch_size, &mut arena.indices);
        let n = arena.indices.len();

        arena.states.clear();
        arena.next_states.clear();
        for &i in &arena.indices {
            let t = self.buffer.get(i);
            // Steady-state capacity: the arena slabs are cleared and
            // refilled, growing only on the very first minibatch.
            // iprism-lint: allow(hot-path-alloc)
            arena.states.extend_from_slice(&t.state);
            // iprism-lint: allow(hot-path-alloc)
            arena.next_states.extend_from_slice(&t.next_state);
        }

        // Batched passes. Terminal transitions get their rows computed too
        // (unlike the reference, which skips them); the values are simply
        // never read, so the update is unaffected.
        self.target
            .forward_batch_cached(&arena.next_states, &mut arena.next_target);
        if self.config.double_q {
            self.online
                .forward_batch_cached(&arena.next_states, &mut arena.next_online);
        }
        self.online
            .forward_batch_cached(&arena.states, &mut arena.q_cache);

        let out_dim = self.online.out_dim();
        let scale = 1.0 / n as f64;
        arena.grads.clear();
        // iprism-lint: allow(hot-path-alloc) — arena slab, steady-state capacity
        arena.grads.resize(n * out_dim, 0.0);
        for (s, &i) in arena.indices.iter().enumerate() {
            let t = self.buffer.get(i);
            let target_y = if t.done {
                t.reward
            } else {
                let target_q = arena.next_target.output(s);
                let q_next = if self.config.double_q {
                    // Double-DQN: online net selects, target net evaluates.
                    target_q[argmax(arena.next_online.output(s))]
                } else {
                    // Vanilla DQN ablation: target net does both.
                    target_q[argmax(target_q)]
                };
                t.reward + self.config.gamma * q_next
            };
            let q = arena.q_cache.output(s)[t.action];
            arena.grads[s * out_dim + t.action] =
                huber_grad(q, target_y, self.config.huber_delta) * scale;
        }

        self.online.zero_grad();
        self.online.backward_batch(&mut arena.q_cache, &arena.grads);
        self.optimizer
            // `Adam::new` allocates its moment vectors, but this closure only
            // runs when the optimizer was dropped by serde — once per loaded
            // agent, never in the training loop.
            // iprism-lint: allow(hot-path-alloc)
            .get_or_insert_with(|| Adam::new(self.online.param_count(), self.config.lr))
            .step(&mut self.online);
    }

    /// The original per-sample update path, kept verbatim as the golden
    /// reference the batched engine is tested against (enable with
    /// [`DdqnConfig::reference_engine`]).
    #[cfg(any(test, feature = "per-sample-reference"))]
    fn learn_batch_reference(&mut self) {
        let batch: Vec<Transition> = self
            .buffer
            .sample(&mut self.rng, self.config.batch_size)
            .into_iter()
            .cloned()
            .collect();
        self.online.zero_grad();
        let scale = 1.0 / batch.len() as f64;
        for t in &batch {
            let target_y = if t.done {
                t.reward
            } else {
                let target_q = self.target.forward(&t.next_state);
                let q_next = if self.config.double_q {
                    // Double-DQN: online net selects, target net evaluates.
                    target_q[argmax(&self.online.forward(&t.next_state))]
                } else {
                    // Vanilla DQN ablation: target net does both.
                    target_q[argmax(&target_q)]
                };
                t.reward + self.config.gamma * q_next
            };
            let cache = self.online.forward_cached(&t.state);
            let q = cache.output()[t.action];
            let mut grad = vec![0.0; self.online.out_dim()];
            grad[t.action] = huber_grad(q, target_y, self.config.huber_delta) * scale;
            self.online.backward(&cache, &grad);
        }
        self.optimizer
            .get_or_insert_with(|| Adam::new(self.online.param_count(), self.config.lr))
            .step(&mut self.online);
    }
}

fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for i in 1..v.len() {
        if v[i] > v[best] {
            best = i;
        }
    }
    best
}

/// Trains a fresh agent on `env` for `episodes` episodes and returns it
/// with a per-episode report. Fully deterministic under `config.seed`.
pub fn train<E: Environment>(env: &mut E, config: &DdqnConfig, episodes: usize) -> TrainedAgent {
    let mut agent = DdqnAgent::new(env.state_dim(), env.num_actions(), config.clone());
    let mut returns = Vec::with_capacity(episodes);
    let mut lengths = Vec::with_capacity(episodes);
    for _ in 0..episodes {
        let mut state = env.reset();
        let mut ret = 0.0;
        let mut len = 0;
        loop {
            let action = agent.act_epsilon(&state);
            let out = env.step(action);
            ret += out.reward;
            len += 1;
            let done = out.done
                || (config.max_steps_per_episode > 0 && len >= config.max_steps_per_episode);
            agent.observe(Transition {
                state: state.clone(),
                action,
                reward: out.reward,
                next_state: out.state.clone(),
                done: out.done,
            });
            state = out.state;
            if done {
                break;
            }
        }
        returns.push(ret);
        lengths.push(len);
    }
    TrainedAgent {
        agent,
        episode_returns: returns,
        episode_lengths: lengths,
    }
}

/// A trained agent plus its training history.
#[derive(Debug, Clone)]
pub struct TrainedAgent {
    /// The trained agent.
    pub agent: DdqnAgent,
    /// Undiscounted return of each training episode.
    pub episode_returns: Vec<f64>,
    /// Steps taken in each episode.
    pub episode_lengths: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StepOutcome;

    /// Deterministic chain: start at 0, goal at +4; stepping right earns
    /// the goal, stepping left ends the episode with nothing.
    struct Chain {
        pos: i32,
    }

    impl Environment for Chain {
        fn state_dim(&self) -> usize {
            1
        }
        fn num_actions(&self) -> usize {
            2
        }
        fn reset(&mut self) -> Vec<f64> {
            self.pos = 0;
            vec![0.0]
        }
        fn step(&mut self, action: usize) -> StepOutcome {
            assert!(action < 2);
            self.pos += if action == 1 { 1 } else { -1 };
            let done = self.pos >= 4 || self.pos <= -2;
            let reward = if self.pos >= 4 { 1.0 } else { -0.01 };
            StepOutcome {
                state: vec![self.pos as f64 / 4.0],
                reward,
                done,
            }
        }
    }

    #[test]
    fn agent_construction() {
        let a = DdqnAgent::new(3, 4, DdqnConfig::small_test());
        assert_eq!(a.q_values(&[0.0, 0.0, 0.0]).len(), 4);
        assert_eq!(a.steps(), 0);
    }

    #[test]
    fn greedy_action_is_argmax() {
        let a = DdqnAgent::new(2, 3, DdqnConfig::small_test());
        let q = a.q_values(&[0.5, -0.5]);
        assert_eq!(a.act_greedy(&[0.5, -0.5]), argmax(&q));
    }

    #[test]
    fn learns_chain_task() {
        let mut env = Chain { pos: 0 };
        let trained = train(&mut env, &DdqnConfig::small_test(), 120);
        let early: f64 = trained.episode_returns[..20].iter().sum::<f64>() / 20.0;
        let late: f64 = trained.episode_returns.iter().rev().take(20).sum::<f64>() / 20.0;
        assert!(
            late > early && late > 0.5,
            "no learning: early {early}, late {late}"
        );
        // greedy policy reaches the goal
        let mut state = env.reset();
        let mut ret = 0.0;
        for _ in 0..20 {
            let out = env.step(trained.agent.act_greedy(&state));
            ret += out.reward;
            state = out.state;
            if out.done {
                break;
            }
        }
        assert!(ret > 0.5, "greedy return {ret}");
    }

    #[test]
    fn vanilla_dqn_ablation_also_learns_but_differs() {
        let mut cfg = DdqnConfig::small_test();
        cfg.double_q = false;
        let mut env = Chain { pos: 0 };
        let vanilla = train(&mut env, &cfg, 120);
        let late: f64 = vanilla.episode_returns.iter().rev().take(20).sum::<f64>() / 20.0;
        assert!(
            late > 0.5,
            "vanilla DQN should still solve the chain: {late}"
        );
        // The two targets genuinely change the trajectory of learning.
        let mut env = Chain { pos: 0 };
        let double = train(&mut env, &DdqnConfig::small_test(), 120);
        assert_ne!(vanilla.episode_returns, double.episode_returns);
    }

    #[test]
    fn training_is_deterministic() {
        let run = || {
            let mut env = Chain { pos: 0 };
            train(&mut env, &DdqnConfig::small_test(), 30).episode_returns
        };
        assert_eq!(run(), run());
    }

    /// The batched GEMM engine must reproduce the per-sample reference
    /// byte for byte: identical weights (serialized form compares every f64
    /// bit-exactly) and identical episode returns over a full training run.
    #[test]
    fn batched_engine_matches_per_sample_reference_exactly() {
        let run = |reference: bool| {
            let mut cfg = DdqnConfig::small_test();
            cfg.reference_engine = reference;
            let mut env = Chain { pos: 0 };
            let trained = train(&mut env, &cfg, 60);
            let weights = serde_json::to_string(trained.agent.network()).unwrap();
            (weights, trained.episode_returns)
        };
        let (batched_weights, batched_returns) = run(false);
        let (reference_weights, reference_returns) = run(true);
        assert_eq!(batched_returns, reference_returns);
        assert_eq!(batched_weights, reference_weights);
    }

    /// Same check for the vanilla-DQN ablation target (different Q(s′) path
    /// through the batched engine).
    #[test]
    fn batched_engine_matches_reference_for_vanilla_dqn() {
        let run = |reference: bool| {
            let mut cfg = DdqnConfig::small_test();
            cfg.double_q = false;
            cfg.reference_engine = reference;
            let mut env = Chain { pos: 0 };
            let trained = train(&mut env, &cfg, 40);
            serde_json::to_string(trained.agent.network()).unwrap()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn target_sync_interval_respected() {
        // after exactly `target_sync_interval` observes, target == online
        let mut cfg = DdqnConfig::small_test();
        cfg.target_sync_interval = 5;
        cfg.learn_start = 1_000_000; // never learn: params frozen
        let mut a = DdqnAgent::new(1, 2, cfg);
        for i in 0..5 {
            a.observe(Transition {
                state: vec![i as f64],
                action: 0,
                reward: 0.0,
                next_state: vec![i as f64 + 1.0],
                done: false,
            });
        }
        let s = [0.3];
        assert_eq!(a.online.forward(&s), a.target.forward(&s));
    }

    #[test]
    fn serde_roundtrip_preserves_policy() {
        let mut env = Chain { pos: 0 };
        let trained = train(&mut env, &DdqnConfig::small_test(), 40);
        let json = serde_json::to_string(&trained.agent).unwrap();
        let back: DdqnAgent = serde_json::from_str(&json).unwrap();
        for p in [-0.5, 0.0, 0.5, 0.75] {
            assert_eq!(back.act_greedy(&[p]), trained.agent.act_greedy(&[p]));
        }
    }
}
