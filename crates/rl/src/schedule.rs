//! Exploration schedules.

use serde::{Deserialize, Serialize};

/// A linearly decaying ε-greedy schedule: exploration probability starts at
/// `start`, reaches `end` after `decay_steps` environment steps, and stays
/// there — the paper's "random exploration, followed by a shift towards
/// exploitation".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpsilonSchedule {
    /// Initial exploration probability.
    pub start: f64,
    /// Final exploration probability.
    pub end: f64,
    /// Steps over which ε decays linearly.
    pub decay_steps: u64,
}

impl EpsilonSchedule {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ end ≤ start ≤ 1`.
    pub fn new(start: f64, end: f64, decay_steps: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&start) && (0.0..=1.0).contains(&end) && end <= start,
            "need 0 <= end <= start <= 1, got start={start} end={end}"
        );
        EpsilonSchedule {
            start,
            end,
            decay_steps,
        }
    }

    /// ε at environment step `step`.
    pub fn value(&self, step: u64) -> f64 {
        if self.decay_steps == 0 || step >= self.decay_steps {
            return self.end;
        }
        let f = step as f64 / self.decay_steps as f64;
        self.start + (self.end - self.start) * f
    }
}

impl Default for EpsilonSchedule {
    /// 1.0 → 0.05 over 5000 steps.
    fn default() -> Self {
        EpsilonSchedule::new(1.0, 0.05, 5000)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn endpoints() {
        let s = EpsilonSchedule::new(1.0, 0.1, 100);
        assert_eq!(s.value(0), 1.0);
        assert_eq!(s.value(100), 0.1);
        assert_eq!(s.value(1_000_000), 0.1);
        assert!((s.value(50) - 0.55).abs() < 1e-12);
    }

    #[test]
    fn zero_decay_is_constant_end() {
        let s = EpsilonSchedule::new(1.0, 0.2, 0);
        assert_eq!(s.value(0), 0.2);
    }

    #[test]
    #[should_panic(expected = "start")]
    fn invalid_bounds_panic() {
        let _ = EpsilonSchedule::new(0.1, 0.5, 10);
    }

    proptest! {
        #[test]
        fn prop_monotone_nonincreasing(a in 0u64..1000, b in 0u64..1000) {
            let s = EpsilonSchedule::default();
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(s.value(lo) >= s.value(hi) - 1e-12);
        }

        #[test]
        fn prop_bounded(step in 0u64..100_000) {
            let s = EpsilonSchedule::default();
            let v = s.value(step);
            prop_assert!(v >= s.end - 1e-12 && v <= s.start + 1e-12);
        }
    }
}
