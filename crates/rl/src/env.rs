//! The environment abstraction the trainer drives.

/// Result of one environment step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome {
    /// Observation after the step.
    pub state: Vec<f64>,
    /// Immediate reward.
    pub reward: f64,
    /// `true` when the episode ended (collision, goal, or timeout).
    pub done: bool,
}

/// An episodic RL environment with a fixed-size observation vector and a
/// discrete action set.
pub trait Environment {
    /// Observation dimensionality.
    fn state_dim(&self) -> usize;
    /// Number of discrete actions.
    fn num_actions(&self) -> usize;
    /// Starts a new episode and returns the initial observation.
    fn reset(&mut self) -> Vec<f64>;
    /// Applies an action.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `action >= num_actions()`.
    fn step(&mut self, action: usize) -> StepOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        n: u32,
    }

    impl Environment for Counter {
        fn state_dim(&self) -> usize {
            1
        }
        fn num_actions(&self) -> usize {
            2
        }
        fn reset(&mut self) -> Vec<f64> {
            self.n = 0;
            vec![0.0]
        }
        fn step(&mut self, action: usize) -> StepOutcome {
            if action == 1 {
                self.n += 1;
            }
            StepOutcome {
                state: vec![self.n as f64],
                reward: action as f64,
                done: self.n >= 3,
            }
        }
    }

    #[test]
    fn trait_object_usable() {
        let mut env: Box<dyn Environment> = Box::new(Counter { n: 0 });
        assert_eq!(env.reset(), vec![0.0]);
        let mut steps = 0;
        loop {
            let out = env.step(1);
            steps += 1;
            if out.done {
                break;
            }
        }
        assert_eq!(steps, 3);
    }
}
