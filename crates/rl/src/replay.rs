//! Experience replay.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// One experienced transition `(s, a, r, s′, done)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// State before the action.
    pub state: Vec<f64>,
    /// Action index taken.
    pub action: usize,
    /// Immediate reward.
    pub reward: f64,
    /// State after the action.
    pub next_state: Vec<f64>,
    /// Whether the episode ended at `next_state`.
    pub done: bool,
}

/// A fixed-capacity ring buffer of transitions with uniform sampling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayBuffer {
    capacity: usize,
    data: Vec<Transition>,
    head: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        ReplayBuffer {
            capacity,
            data: Vec::with_capacity(capacity.min(4096)),
            head: 0,
        }
    }

    /// Number of stored transitions.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Maximum capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Stores a transition, evicting the oldest when full.
    pub fn push(&mut self, t: Transition) {
        if self.data.len() < self.capacity {
            self.data.push(t);
        } else {
            self.data[self.head] = t;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Samples `batch` transitions uniformly at random (with replacement).
    ///
    /// # Panics
    ///
    /// Panics when the buffer is empty.
    pub fn sample<'a, R: Rng>(&'a self, rng: &mut R, batch: usize) -> Vec<&'a Transition> {
        assert!(!self.data.is_empty(), "cannot sample from empty buffer");
        (0..batch)
            .map(|_| &self.data[rng.gen_range(0..self.data.len())])
            .collect()
    }

    /// Draws `batch` uniform indices with replacement into `out`, consuming
    /// *exactly* the RNG sequence of [`ReplayBuffer::sample`] (one
    /// `gen_range(0..len)` per item, in order) — the batched training path
    /// relies on this to stay bit-identical to the per-sample reference.
    ///
    /// # Panics
    ///
    /// Panics when the buffer is empty.
    pub fn sample_indices<R: Rng>(&self, rng: &mut R, batch: usize, out: &mut Vec<usize>) {
        assert!(!self.data.is_empty(), "cannot sample from empty buffer");
        out.clear();
        // `out` is the caller's reusable arena buffer; after the first call
        // the extend refills existing capacity without allocating.
        // iprism-lint: allow(hot-path-alloc)
        out.extend((0..batch).map(|_| rng.gen_range(0..self.data.len())));
    }

    /// The transition at `index` (as produced by
    /// [`ReplayBuffer::sample_indices`]).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    #[inline]
    pub fn get(&self, index: usize) -> &Transition {
        &self.data[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn t(r: f64) -> Transition {
        Transition {
            state: vec![r],
            action: 0,
            reward: r,
            next_state: vec![r + 1.0],
            done: false,
        }
    }

    #[test]
    fn push_until_capacity_then_evict() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..5 {
            b.push(t(i as f64));
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.capacity(), 3);
        // Oldest (0 and 1) evicted: rewards are {2,3,4} in some order.
        let mut rewards: Vec<f64> = b.data.iter().map(|x| x.reward).collect();
        rewards.sort_by(f64::total_cmp);
        assert_eq!(rewards, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let mut b = ReplayBuffer::new(10);
        for i in 0..10 {
            b.push(t(i as f64));
        }
        let mut r1 = ChaCha8Rng::seed_from_u64(5);
        let mut r2 = ChaCha8Rng::seed_from_u64(5);
        let s1: Vec<f64> = b.sample(&mut r1, 4).iter().map(|t| t.reward).collect();
        let s2: Vec<f64> = b.sample(&mut r2, 4).iter().map(|t| t.reward).collect();
        assert_eq!(s1, s2);
    }

    #[test]
    fn sample_indices_consumes_same_rng_sequence_as_sample() {
        let mut b = ReplayBuffer::new(10);
        for i in 0..10 {
            b.push(t(i as f64));
        }
        let mut r1 = ChaCha8Rng::seed_from_u64(5);
        let mut r2 = ChaCha8Rng::seed_from_u64(5);
        let by_ref: Vec<f64> = b.sample(&mut r1, 6).iter().map(|t| t.reward).collect();
        let mut indices = Vec::new();
        b.sample_indices(&mut r2, 6, &mut indices);
        let by_idx: Vec<f64> = indices.iter().map(|&i| b.get(i).reward).collect();
        assert_eq!(by_ref, by_idx);
        // Both consumed identically many draws: the RNGs stay in lockstep.
        assert_eq!(r1.gen_range(0..1_000_000), r2.gen_range(0..1_000_000));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn sampling_empty_panics() {
        let b = ReplayBuffer::new(4);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _ = b.sample(&mut rng, 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = ReplayBuffer::new(0);
    }

    proptest! {
        #[test]
        fn prop_len_never_exceeds_capacity(pushes in 0usize..100, cap in 1usize..20) {
            let mut b = ReplayBuffer::new(cap);
            for i in 0..pushes {
                b.push(t(i as f64));
            }
            prop_assert!(b.len() <= cap);
            prop_assert_eq!(b.len(), pushes.min(cap));
            prop_assert_eq!(b.is_empty(), pushes == 0);
        }

        #[test]
        fn prop_eviction_keeps_newest(cap in 1usize..10, extra in 1usize..10) {
            let mut b = ReplayBuffer::new(cap);
            let total = cap + extra;
            for i in 0..total {
                b.push(t(i as f64));
            }
            // every retained reward is among the newest `cap` pushes
            for tr in &b.data {
                prop_assert!(tr.reward >= (total - cap) as f64);
            }
        }
    }
}
