//! Fixture and golden tests for the dataflow pass (`lint --flow`).
//!
//! Convention mirrors `ast_rules.rs`: every flow rule gets a firing, a
//! silent and a suppressed fixture, exercised through the public
//! `flow_lint_source` entry point. The golden tests at the bottom run the
//! full pass over the actual workspace tree (which must certify clean) and
//! pin the exact `--flow --json` report for a seeded fixture pair — a
//! mixed-unit addition and an order-sensitive parallel float reduction, the
//! two defect classes the layer exists to catch.

use xtask::{flow_lint_source, flow_lint_source_counted, run_flow_lint, AstRule, FlowReport};

/// Reach-tube math: units flow through raw `f64` hot loops here.
const REACH_PATH: &str = "crates/reach/src/fixture.rs";
/// Risk aggregation: the parallel fan-out lives here.
const RISK_PATH: &str = "crates/risk/src/fixture.rs";
/// Integration tests are outside the lint scope entirely.
const TEST_PATH: &str = "crates/reach/tests/fixture.rs";

fn fired(path: &str, source: &str) -> Vec<AstRule> {
    flow_lint_source(path, source)
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

// ---------------------------------------------------------------- unit-mixed-dim

#[test]
fn mixed_dim_fires_on_distance_plus_accel_times_time() {
    // a·dt is a speed (m/s² · s), and a speed must not be added to a length.
    let bad = "pub fn f(d: Meters, a: MetersPerSecondSquared, dt: Seconds) -> f64 {\n\
               d.get() + a.get() * dt.get()\n}\n";
    assert_eq!(fired(REACH_PATH, bad), vec![AstRule::UnitMixedDim]);
}

#[test]
fn mixed_dim_silent_on_euler_velocity_update() {
    // v + a·dt is the bicycle model's velocity update: speed + speed.
    let good = "pub fn f(v: MetersPerSecond, a: MetersPerSecondSquared, dt: Seconds) -> f64 {\n\
                v.get() + a.get() * dt.get()\n}\n";
    assert!(fired(REACH_PATH, good).is_empty());
}

#[test]
fn mixed_dim_suppressed_by_allow() {
    let waived = "pub fn f(d: Meters, t: Seconds) -> f64 {\n\
                  // iprism-lint: allow(unit-mixed-dim) — intentional in fixture\n\
                  d.get() + t.get()\n}\n";
    assert!(fired(REACH_PATH, waived).is_empty());
}

// ---------------------------------------------------------------- unit-raw-reentry

#[test]
fn raw_reentry_fires_when_a_length_becomes_a_speed() {
    let bad = "pub fn f(d: Meters) -> MetersPerSecond { MetersPerSecond::new(d.get()) }\n";
    assert_eq!(fired(REACH_PATH, bad), vec![AstRule::UnitRawReentry]);
}

#[test]
fn raw_reentry_silent_on_matching_dimension() {
    let good = "pub fn f(v: MetersPerSecond) -> MetersPerSecond {\n\
                MetersPerSecond::new(v.get() * 0.5)\n}\n";
    assert!(fired(REACH_PATH, good).is_empty());
}

#[test]
fn raw_reentry_suppressed_by_allow() {
    let waived = "pub fn f(d: Meters) -> MetersPerSecond {\n\
                  // iprism-lint: allow(unit-raw-reentry) — deliberate reinterpretation\n\
                  MetersPerSecond::new(d.get())\n}\n";
    assert!(fired(REACH_PATH, waived).is_empty());
}

// ---------------------------------------------------------------- unit-angle-raw

#[test]
fn angle_raw_fires_on_trig_over_degrees() {
    // The `_deg` suffix marks the literal as degrees; sin() wants radians.
    let bad = "pub fn f() -> f64 { let bearing_deg = 30.0; bearing_deg.cos() }\n";
    assert_eq!(fired(REACH_PATH, bad), vec![AstRule::UnitAngleRaw]);
}

#[test]
fn angle_raw_silent_on_trig_over_radians() {
    let good = "pub fn f(heading: Radians) -> f64 { heading.get().sin() }\n";
    assert!(fired(REACH_PATH, good).is_empty());
}

#[test]
fn angle_raw_suppressed_by_allow() {
    let waived = "pub fn f() -> f64 {\n\
                  let bearing_deg = 30.0;\n\
                  // iprism-lint: allow(unit-angle-raw) — fixture exercises the bad path\n\
                  bearing_deg.cos()\n}\n";
    assert!(fired(REACH_PATH, waived).is_empty());
}

// ---------------------------------------------------------------- par-float-accum

#[test]
fn par_accum_fires_on_parallel_sum() {
    let bad = "pub fn f(xs: &[f64]) -> f64 { xs.par_iter().map(|x| x * 2.0).sum() }\n";
    assert_eq!(fired(RISK_PATH, bad), vec![AstRule::ParFloatAccum]);
}

#[test]
fn par_accum_fires_on_captured_accumulator() {
    let bad = "pub fn f(xs: &[f64]) -> f64 {\n\
               let mut total = 0.0;\n\
               parallel_map(xs, |x| { total += x; });\n\
               total\n}\n";
    assert_eq!(fired(RISK_PATH, bad), vec![AstRule::ParFloatAccum]);
}

#[test]
fn par_accum_silent_on_ordered_collect() {
    // The sanctioned shape: map in parallel, fan in by index, reduce after.
    let good = "pub fn f(xs: &[f64]) -> Vec<f64> {\n\
                xs.par_iter().map(|x| x * 2.0).collect()\n}\n";
    assert!(fired(RISK_PATH, good).is_empty());
}

#[test]
fn par_accum_suppressed_by_allow() {
    let waived = "pub fn f(xs: &[f64]) -> f64 {\n\
                  // iprism-lint: allow(par-float-accum) — tolerance-tested downstream\n\
                  xs.par_iter().map(|x| x * 2.0).sum()\n}\n";
    assert!(fired(RISK_PATH, waived).is_empty());
}

// ---------------------------------------------------------------- par-shared-mut

#[test]
fn shared_mut_fires_on_lock_inside_parallel_closure() {
    let bad = "pub fn f(xs: &[f64]) {\n\
               parallel_map(xs, |x| { shared.lock().unwrap().push(*x); });\n}\n";
    assert_eq!(fired(RISK_PATH, bad), vec![AstRule::ParSharedMut]);
}

#[test]
fn shared_mut_silent_outside_parallel_regions() {
    // Sequential lock use is fine; only parallel closures are constrained.
    let good = "pub fn f(m: &Mutex<Vec<f64>>) { m.lock().unwrap().push(1.0); }\n";
    assert!(fired(RISK_PATH, good).is_empty());
}

#[test]
fn shared_mut_suppressed_by_allow() {
    let waived = "pub fn f(xs: &[f64]) {\n\
                  // iprism-lint: allow(par-shared-mut) — counters only, order-free\n\
                  parallel_map(xs, |x| { shared.lock().unwrap().push(*x); });\n}\n";
    assert!(fired(RISK_PATH, waived).is_empty());
}

// ---------------------------------------------------------------- unordered-reduce

#[test]
fn unordered_reduce_fires_on_hash_map_values_sum() {
    let bad = "pub fn f(m: &HashMap<u32, f64>) -> f64 { m.values().sum() }\n";
    let rules = fired(RISK_PATH, bad);
    // The HashMap itself also trips the AST-layer determinism rule; the
    // flow finding is the iteration-order one.
    assert!(rules.contains(&AstRule::UnorderedReduce), "got {rules:?}");
}

#[test]
fn unordered_reduce_silent_on_btree_map() {
    let good = "pub fn f(m: &BTreeMap<u32, f64>) -> f64 { m.values().sum() }\n";
    assert!(fired(RISK_PATH, good).is_empty());
}

#[test]
fn unordered_reduce_suppressed_by_allow() {
    let waived = "pub fn f(m: &HashMap<u32, f64>) -> f64 {\n\
                  // iprism-lint: allow(unordered-reduce) — sum is order-insensitive enough here\n\
                  m.values().sum()\n}\n";
    let rules = fired(RISK_PATH, waived);
    assert!(!rules.contains(&AstRule::UnorderedReduce), "got {rules:?}");
}

// ---------------------------------------------------------------- dead-waiver

#[test]
fn dead_flow_waiver_fires() {
    let dead = "pub fn f(a: f64) -> f64 {\n\
                // iprism-lint: allow(par-float-accum)\n\
                a * 2.0\n}\n";
    assert_eq!(fired(REACH_PATH, dead), vec![AstRule::DeadWaiver]);
}

#[test]
fn live_flow_waiver_is_not_dead() {
    let live = "pub fn f(d: Meters, t: Seconds) -> f64 {\n\
                // iprism-lint: allow(unit-mixed-dim)\n\
                d.get() + t.get()\n}\n";
    assert!(fired(REACH_PATH, live).is_empty());
}

#[test]
fn mixed_directive_is_left_to_the_other_passes() {
    // A directive naming both a flow rule and a text/AST rule is not
    // audited by the flow pass even when the flow rule suppresses nothing:
    // the other pass owns the other name.
    let mixed = "pub fn f(a: f64) -> f64 {\n\
                 // iprism-lint: allow(unit-mixed-dim, no-float-eq)\n\
                 a * 2.0\n}\n";
    assert!(fired(REACH_PATH, mixed).is_empty());
}

// ---------------------------------------------------------------- scope & counting

#[test]
fn test_code_is_outside_the_flow_scope() {
    let bad = "pub fn f(d: Meters, t: Seconds) -> f64 { d.get() + t.get() }\n";
    let (functions, diagnostics) = flow_lint_source_counted(TEST_PATH, bad);
    assert_eq!(functions, 0);
    assert!(diagnostics.is_empty());
}

#[test]
fn nested_functions_are_counted_as_their_own_units() {
    let src = "pub fn outer() -> f64 {\n\
               fn inner(x: f64) -> f64 { x }\n\
               inner(1.0)\n}\n";
    let (functions, diagnostics) = flow_lint_source_counted(REACH_PATH, src);
    assert_eq!(functions, 2);
    assert!(diagnostics.is_empty());
}

// ---------------------------------------------------------------- golden tests

fn workspace_root() -> std::path::PathBuf {
    // xtask sits one level below the workspace root.
    let mut root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    root.pop();
    root
}

#[test]
fn workspace_flow_certifies_clean() {
    let report = run_flow_lint(&workspace_root()).expect("workspace walk");
    assert!(
        report.diagnostics.is_empty(),
        "lint --flow must pass on the workspace:\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files > 100,
        "expected the whole workspace, got {} files",
        report.files
    );
    assert!(
        report.functions > 500,
        "expected hundreds of analysed functions, got {}",
        report.functions
    );
}

/// A seeded mixed-unit addition: metres plus seconds.
const SEEDED_UNITS: &str = "\
pub fn seeded_mixed(d: Meters, t: Seconds) -> f64 {
    d.get() + t.get()
}
";

/// A seeded order-sensitive parallel float reduction.
const SEEDED_REDUCE: &str = "\
pub fn seeded_reduce(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * 2.0).sum()
}
";

#[test]
fn golden_seeded_fixtures_produce_the_pinned_flow_report() {
    let (f1, d1) = flow_lint_source_counted(REACH_PATH, SEEDED_UNITS);
    let (f2, d2) = flow_lint_source_counted(RISK_PATH, SEEDED_REDUCE);
    let report = FlowReport {
        files: 2,
        functions: f1 + f2,
        diagnostics: d1.into_iter().chain(d2).collect(),
    };
    assert_eq!(
        report.to_json(),
        r#"{"schema_version":3,"files_checked":2,"functions":2,"violations":[{"path":"crates/reach/src/fixture.rs","line":2,"col":13,"rule":"unit-mixed-dim","message":"mixed-dimension arithmetic: length (m) + time (s); convert through the iprism-units newtypes first"},{"path":"crates/risk/src/fixture.rs","line":2,"col":36,"rule":"par-float-accum","message":"`.sum()` merges parallel results in nondeterministic order; collect() in index order first, then reduce sequentially"}]}"#
    );
}
