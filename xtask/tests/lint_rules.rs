//! Fixture tests: every lint rule must fire on a bad fixture and stay
//! silent on the corresponding good fixture, and the `iprism-lint:
//! allow(...)` escape hatch must suppress findings.

use xtask::{classify, lint_source, Rule};

const LIB_PATH: &str = "crates/risk/src/fixture.rs";
const SIM_PATH: &str = "crates/sim/src/fixture.rs";
const SHIM_PATH: &str = "shims/rand/src/fixture.rs";

fn rules_fired(path: &str, source: &str) -> Vec<Rule> {
    lint_source(path, source)
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

#[test]
fn no_panic_fires_on_unwrap_expect_and_panic_macros() {
    let bad = r#"
pub mod m {
    fn f(x: Option<u32>) -> u32 { x.unwrap() }
    fn g(x: Option<u32>) -> u32 { x.expect("present") }
    fn h() { panic!("boom"); }
    fn i() { unreachable!(); }
}
"#;
    let fired = rules_fired(LIB_PATH, bad);
    assert_eq!(
        fired.iter().filter(|r| **r == Rule::NoPanicInLib).count(),
        4,
        "got {fired:?}"
    );
    let lines: Vec<usize> = lint_source(LIB_PATH, bad).iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![3, 4, 5, 6]);
}

#[test]
fn no_panic_ignores_tests_relatives_and_non_core_crates() {
    let good = r#"
fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }
fn g(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 1) }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1u32).unwrap(); panic!("fine in tests"); }
}
"#;
    assert!(rules_fired(LIB_PATH, good).is_empty());

    // Same unwrap is fine outside the numeric core crates.
    let bad_elsewhere = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert!(!rules_fired(LIB_PATH, bad_elsewhere).is_empty());
    assert!(rules_fired(SHIM_PATH, bad_elsewhere).is_empty());
}

#[test]
fn no_panic_ignores_strings_and_comments() {
    let good = r#"
fn f() -> &'static str {
    // calling .unwrap() here would panic!(...)
    "contains .unwrap() and panic!(text)"
}
"#;
    assert!(rules_fired(LIB_PATH, good).is_empty());
}

#[test]
fn float_eq_fires_on_literal_and_suffix_comparisons() {
    let bad = r#"
fn f(x: f64) -> bool { x == 0.0 }
fn g(x: f64) -> bool { x != 1.5 }
fn h(x: f64, y: f64) -> bool { x as f64 == y }
"#;
    let fired = rules_fired(SHIM_PATH, bad);
    assert_eq!(
        fired.iter().filter(|r| **r == Rule::NoFloatEq).count(),
        3,
        "got {:?}",
        lint_source(SHIM_PATH, bad)
    );
}

#[test]
fn float_eq_ignores_ints_ranges_tuple_fields_and_tests() {
    let good = r#"
fn f(x: u32) -> bool { x == 0 }
fn g(x: usize) -> bool { x != 15 }
fn h(pair: (u32, u32)) -> bool { pair.0 == pair.1 }
fn i(x: u32) -> bool { (0..=10).contains(&x) }
fn j(a: &str) -> bool { a == "0.5" }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { assert!(0.5 == 0.5); }
}
"#;
    assert!(
        rules_fired(SHIM_PATH, good).is_empty(),
        "got {:?}",
        lint_source(SHIM_PATH, good)
    );
}

#[test]
fn wallclock_fires_only_in_sim_code() {
    let bad = r#"
fn now() -> std::time::Instant { std::time::Instant::now() }
fn stamp() -> std::time::SystemTime { std::time::SystemTime::now() }
"#;
    let fired = rules_fired(SIM_PATH, bad);
    assert!(
        fired
            .iter()
            .filter(|r| **r == Rule::NoWallclockInSim)
            .count()
            >= 2,
        "got {fired:?}"
    );
    // The identical code is allowed outside sim/scenario crates.
    assert!(rules_fired(LIB_PATH, bad)
        .iter()
        .all(|r| *r != Rule::NoWallclockInSim));
}

#[test]
fn wallclock_fires_on_entropy_rngs() {
    let bad = "fn f() { let _r = rand::thread_rng(); }\n";
    assert_eq!(rules_fired(SIM_PATH, bad), vec![Rule::NoWallclockInSim]);
    let good = "fn f(seed: u64) { let _r = SmallRng::seed_from_u64(seed); }\n";
    assert!(rules_fired(SIM_PATH, good).is_empty());
}

#[test]
fn pub_fn_docs_fires_on_undocumented_public_fns() {
    let bad = "pub fn naked() {}\n";
    assert_eq!(rules_fired(SHIM_PATH, bad), vec![Rule::PubFnDocs]);

    let bad_with_attr = "#[inline]\npub fn naked() {}\n";
    assert_eq!(rules_fired(SHIM_PATH, bad_with_attr), vec![Rule::PubFnDocs]);
}

#[test]
fn pub_fn_docs_accepts_documented_restricted_and_test_fns() {
    let good = r#"
/// Documented.
pub fn documented() {}

/// Documented, with attributes between doc and fn.
#[inline]
#[must_use]
pub const fn documented_const() -> u32 { 0 }

pub(crate) fn crate_private() {}

fn private() {}

#[cfg(test)]
mod tests {
    pub fn helper_inside_tests() {}
}
"#;
    assert!(
        rules_fired(SHIM_PATH, good).is_empty(),
        "got {:?}",
        lint_source(SHIM_PATH, good)
    );
}

#[test]
fn allow_directive_suppresses_on_same_and_next_line() {
    let same_line =
        "fn f(x: Option<u32>) -> u32 { x.unwrap() } // iprism-lint: allow(no-panic-in-lib)\n";
    assert!(rules_fired(LIB_PATH, same_line).is_empty());

    let line_above = r#"
// Justification for the waiver.
// iprism-lint: allow(no-panic-in-lib)
fn f(x: Option<u32>) -> u32 { x.unwrap() }
"#;
    assert!(rules_fired(LIB_PATH, line_above).is_empty());

    // The waiver names a different rule: the finding stands.
    let wrong_rule = r#"
// iprism-lint: allow(no-float-eq)
fn f(x: Option<u32>) -> u32 { x.unwrap() }
"#;
    assert_eq!(rules_fired(LIB_PATH, wrong_rule), vec![Rule::NoPanicInLib]);

    // And it does not leak past the next code line.
    let too_far = r#"
// iprism-lint: allow(no-panic-in-lib)
fn ok() {}
fn f(x: Option<u32>) -> u32 { x.unwrap() }
"#;
    assert_eq!(rules_fired(LIB_PATH, too_far), vec![Rule::NoPanicInLib]);
}

#[test]
fn diagnostics_carry_path_line_and_rule_name() {
    let bad = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let diags = lint_source(LIB_PATH, bad);
    assert_eq!(diags.len(), 1);
    let rendered = diags[0].to_string();
    assert!(rendered.starts_with("crates/risk/src/fixture.rs:2: [no-panic-in-lib]"));
}

#[test]
fn test_and_bench_files_are_skipped_entirely() {
    assert!(classify("tests/end_to_end.rs").is_none());
    assert!(classify("crates/bench/benches/sti.rs").is_none());
    assert!(classify("xtask/tests/lint_rules.rs").is_none());
    assert!(classify("crates/risk/src/sti.rs").is_some());
    let class = classify("crates/sim/src/world.rs").unwrap();
    assert!(class.panic_banned && class.wallclock_banned);
    let class = classify("shims/rand/src/lib.rs").unwrap();
    assert!(!class.panic_banned && !class.wallclock_banned);
}
