//! Fixture tests for the AST-level lint rules: every rule must fire on a
//! bad fixture, stay silent on the corresponding good fixture, and be
//! suppressed by an `iprism-lint: allow(<rule>)` directive.
//!
//! Paths select the rule families that apply (see `classify_ast`):
//! determinism rules run in sim/scenarios/reach/risk, the units-API rules
//! in dynamics/geom/reach, the NaN-hygiene rules in the numeric hot paths.

use xtask::{ast_lint_source, classify_ast, AstRule, ALL_AST_RULES};

/// Determinism-critical, not a hot path, no units-API rules.
const SIM_PATH: &str = "crates/sim/src/fixture.rs";
/// Hot path + units params (but not the return rule).
const GEOM_PATH: &str = "crates/geom/src/fixture.rs";
/// Units params *and* returns + hot path.
const DYN_PATH: &str = "crates/dynamics/src/fixture.rs";
/// In the workspace but outside every AST rule family except the
/// unconditional NaN-panic rule.
const SHIM_PATH: &str = "shims/rand/src/fixture.rs";
/// The units layer itself: angle conversions are allowed here.
const UNITS_PATH: &str = "crates/units/src/fixture.rs";

fn fired(path: &str, source: &str) -> Vec<AstRule> {
    ast_lint_source(path, source)
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

// ---------------------------------------------------------------- determinism

#[test]
fn hash_collections_fire_in_determinism_crates() {
    let bad = "use std::collections::HashMap;\nfn f() { let s: HashSet<u32> = HashSet::new(); }\n";
    let rules = fired(SIM_PATH, bad);
    assert_eq!(
        rules
            .iter()
            .filter(|r| **r == AstRule::NoHashCollections)
            .count(),
        3,
        "got {rules:?}"
    );
}

#[test]
fn hash_collections_silent_on_btree_and_outside_scope() {
    let good =
        "use std::collections::BTreeMap;\nfn f() { let s: BTreeSet<u32> = BTreeSet::new(); }\n";
    assert!(fired(SIM_PATH, good).is_empty());
    // The same HashMap is fine outside the determinism-critical crates.
    let bad_elsewhere = "use std::collections::HashMap;\n";
    assert!(fired(SHIM_PATH, bad_elsewhere).is_empty());
    // ... and inside a #[cfg(test)] module of a determinism crate.
    let in_tests = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
    assert!(fired(SIM_PATH, in_tests).is_empty());
}

#[test]
fn hash_collections_suppressed_by_allow() {
    let waived = "// iprism-lint: allow(no-hash-collections)\nuse std::collections::HashMap;\n";
    assert!(fired(SIM_PATH, waived).is_empty());
}

#[test]
fn unseeded_rng_fires_in_determinism_crates() {
    let bad = "fn f() { let mut rng = rand::thread_rng(); let r = SmallRng::from_entropy(); }\n";
    let rules = fired(SIM_PATH, bad);
    assert_eq!(
        rules
            .iter()
            .filter(|r| **r == AstRule::NoUnseededRng)
            .count(),
        2,
        "got {rules:?}"
    );
}

#[test]
fn unseeded_rng_silent_on_seeded_and_outside_scope() {
    let good = "fn f(seed: u64) { let mut rng = SmallRng::seed_from_u64(seed); }\n";
    assert!(fired(SIM_PATH, good).is_empty());
    let bad_elsewhere = "fn f() { let mut rng = rand::thread_rng(); }\n";
    assert!(fired(SHIM_PATH, bad_elsewhere).is_empty());
}

#[test]
fn unseeded_rng_suppressed_by_allow() {
    let waived =
        "fn f() { let mut rng = rand::thread_rng(); } // iprism-lint: allow(no-unseeded-rng)\n";
    assert!(fired(SIM_PATH, waived).is_empty());
}

// ------------------------------------------------------------- units: params

#[test]
fn raw_f64_param_fires_on_dimensioned_names() {
    let bad = "pub fn step(dt: f64, heading: f64) {}\n";
    let rules = fired(DYN_PATH, bad);
    assert_eq!(
        rules.iter().filter(|r| **r == AstRule::RawF64Param).count(),
        2,
        "got {rules:?}"
    );
    // The message names the newtype to use.
    let diags = ast_lint_source(DYN_PATH, bad);
    assert!(diags[0].message.contains("Seconds"), "{}", diags[0].message);
    assert!(diags[1].message.contains("Radians"), "{}", diags[1].message);
}

#[test]
fn raw_f64_param_silent_on_newtypes_quotients_and_private_fns() {
    // Already a newtype: nothing to flag.
    assert!(fired(DYN_PATH, "pub fn step(dt: Seconds) {}\n").is_empty());
    // Unit quotients (yaw_rate, time_scale) are exempt by design.
    assert!(fired(DYN_PATH, "pub fn turn(yaw_rate: f64, time_scale: f64) {}\n").is_empty());
    // Dimensionless raw f64s are fine.
    assert!(fired(DYN_PATH, "pub fn mix(alpha: f64, weight: f64) {}\n").is_empty());
    // Private and crate-private fns are not public API.
    assert!(fired(DYN_PATH, "fn step(dt: f64) {}\n").is_empty());
    assert!(fired(DYN_PATH, "pub(crate) fn step(dt: f64) {}\n").is_empty());
    // The rule only runs in the units-API crates.
    assert!(fired(SHIM_PATH, "pub fn step(dt: f64) {}\n").is_empty());
}

#[test]
fn raw_f64_param_suppressed_by_allow() {
    let waived = "/// Documented storage-layer constructor.\n// iprism-lint: allow(raw-f64-param)\npub fn raw(dt: f64) {}\n";
    assert!(fired(DYN_PATH, waived).is_empty());
}

// ------------------------------------------------------------ units: returns

#[test]
fn raw_f64_return_fires_on_dimension_promising_names() {
    let bad = "pub fn distance(&self) -> f64 { 0.0 }\n";
    assert_eq!(fired(DYN_PATH, bad), vec![AstRule::RawF64Return]);
}

#[test]
fn raw_f64_return_silent_on_newtypes_neutral_names_and_other_crates() {
    // Returning the newtype satisfies the rule.
    assert!(fired(
        DYN_PATH,
        "pub fn distance(&self) -> Meters { Meters::new(0.0) }\n"
    )
    .is_empty());
    // A name outside the return vocabulary makes no dimensional promise.
    assert!(fired(DYN_PATH, "pub fn scale(&self) -> f64 { 1.0 }\n").is_empty());
    // geom is a param-rule crate but not a return-rule crate.
    assert!(fired(GEOM_PATH, "pub fn distance(&self) -> f64 { 0.0 }\n").is_empty());
}

#[test]
fn raw_f64_return_suppressed_by_allow() {
    let waived = "// iprism-lint: allow(raw-f64-return)\npub fn distance(&self) -> f64 { 0.0 }\n";
    assert!(fired(DYN_PATH, waived).is_empty());
}

// ---------------------------------------------------------- angle conversion

#[test]
fn angle_conv_fires_outside_units_crate() {
    let bad =
        "fn f(deg: f64) -> f64 { deg.to_radians() }\nfn g(rad: f64) -> f64 { rad.to_degrees() }\n";
    let rules = fired(GEOM_PATH, bad);
    assert_eq!(
        rules
            .iter()
            .filter(|r| **r == AstRule::AngleConvOutsideUnits)
            .count(),
        2,
        "got {rules:?}"
    );
}

#[test]
fn angle_conv_silent_inside_units_crate() {
    let conv = "pub fn from_degrees(deg: f64) -> Radians { Radians::new(deg.to_radians()) }\n";
    assert!(fired(UNITS_PATH, conv).is_empty());
}

#[test]
fn angle_conv_suppressed_by_allow() {
    let waived = "fn f(deg: f64) -> f64 { deg.to_radians() } // iprism-lint: allow(angle-conv-outside-units)\n";
    assert!(fired(GEOM_PATH, waived).is_empty());
}

// ---------------------------------------------------------------- NaN panics

#[test]
fn partial_cmp_unwrap_fires_everywhere() {
    let bad = "fn best(xs: &[f64]) -> f64 {\n    *xs.iter().max_by(|a, b| a.partial_cmp(b).unwrap()).unwrap()\n}\n";
    // Fires even in crates outside every other rule family...
    assert!(fired(SHIM_PATH, bad).contains(&AstRule::PartialCmpUnwrap));
    // ... and `.expect(..)` is just as much of a NaN panic.
    let bad_expect = "fn f(a: f64, b: f64) { a.partial_cmp(&b).expect(\"nan\"); }\n";
    assert!(fired(SHIM_PATH, bad_expect).contains(&AstRule::PartialCmpUnwrap));
}

#[test]
fn partial_cmp_silent_on_total_cmp_and_handled_none() {
    let good =
        "fn best(xs: &[f64]) -> Option<f64> {\n    xs.iter().copied().max_by(f64::total_cmp)\n}\n";
    assert!(fired(SHIM_PATH, good).is_empty());
    let handled =
        "fn f(a: f64, b: f64) -> bool { a.partial_cmp(&b) == Some(std::cmp::Ordering::Less) }\n";
    assert!(fired(SHIM_PATH, handled).is_empty());
}

#[test]
fn partial_cmp_suppressed_by_allow() {
    let waived = "// iprism-lint: allow(partial-cmp-unwrap)\nfn f(a: f64, b: f64) { a.partial_cmp(&b).unwrap(); }\n";
    assert!(fired(SHIM_PATH, waived).is_empty());
}

// ------------------------------------------------------------- float division

#[test]
fn unguarded_float_div_fires_on_parenthesized_difference() {
    let bad = "fn slope(x0: f64, x1: f64, y0: f64, y1: f64) -> f64 { (y1 - y0) / (x1 - x0) }\n";
    assert_eq!(fired(GEOM_PATH, bad), vec![AstRule::UnguardedFloatDiv]);
}

#[test]
fn unguarded_float_div_silent_when_guarded_or_not_a_difference() {
    // A `.max(eps)` guard inside the divisor group.
    let guarded = "fn slope(dy: f64, x0: f64, x1: f64) -> f64 { dy / ((x1 - x0).max(1e-9)) }\n";
    assert!(fired(GEOM_PATH, guarded).is_empty());
    // Sums cannot cancel to ~0 the way differences do.
    let sum = "fn f(a: f64, b: f64, c: f64) -> f64 { a / (b + c) }\n";
    assert!(fired(GEOM_PATH, sum).is_empty());
    // Unary minus is not a difference.
    let neg = "fn f(a: f64, b: f64) -> f64 { a / (-b) }\n";
    assert!(fired(GEOM_PATH, neg).is_empty());
    // The rule only runs in the hot-path crates.
    let bad_elsewhere = "fn f(a: f64, b: f64, c: f64) -> f64 { a / (b - c) }\n";
    assert!(fired(SHIM_PATH, bad_elsewhere).is_empty());
}

#[test]
fn unguarded_float_div_suppressed_by_allow() {
    let waived = "// The denominator is proven nonzero by the caller.\n// iprism-lint: allow(unguarded-float-div)\nfn f(a: f64, b: f64, c: f64) -> f64 { a / (b - c) }\n";
    assert!(fired(GEOM_PATH, waived).is_empty());
}

// --------------------------------------------------------------- float casts

#[test]
fn float_int_cast_fires_on_unrounded_values() {
    // A float literal cast straight to int.
    let lit = "fn f() -> usize { 3.7 as usize }\n";
    assert_eq!(fired(GEOM_PATH, lit), vec![AstRule::FloatIntCast]);
    // A method that definitely produces an un-rounded float.
    let sqrt = "fn f(x: f64) -> usize { (x.sqrt()) as usize }\n";
    assert_eq!(fired(GEOM_PATH, sqrt), vec![AstRule::FloatIntCast]);
    // Float arithmetic inside the parenthesized operand.
    let arith = "fn f(x: f64) -> usize { (x * 0.5) as usize }\n";
    assert_eq!(fired(GEOM_PATH, arith), vec![AstRule::FloatIntCast]);
}

#[test]
fn float_int_cast_silent_on_rounded_ints_and_cold_crates() {
    // Explicit rounding first: the truncation is intentional and exact.
    assert!(fired(
        GEOM_PATH,
        "fn f(x: f64) -> usize { (x.floor()) as usize }\n"
    )
    .is_empty());
    assert!(fired(GEOM_PATH, "fn f(x: f64) -> i64 { (x.round()) as i64 }\n").is_empty());
    // Integer-to-integer casts are not this rule's business.
    assert!(fired(GEOM_PATH, "fn f(n: u32) -> usize { n as usize }\n").is_empty());
    assert!(fired(
        GEOM_PATH,
        "fn f(a: u32, b: u32) -> usize { (a + b) as usize }\n"
    )
    .is_empty());
    // Int→float widening is always fine.
    assert!(fired(GEOM_PATH, "fn f(n: usize) -> f64 { n as f64 }\n").is_empty());
    // The rule only runs in the hot-path crates.
    assert!(fired(SHIM_PATH, "fn f() -> usize { 3.7 as usize }\n").is_empty());
}

#[test]
fn float_int_cast_suppressed_by_allow() {
    let waived =
        "// iprism-lint: allow(float-int-cast)\nfn f(x: f64) -> usize { (x * 0.5) as usize }\n";
    assert!(fired(GEOM_PATH, waived).is_empty());
}

// ------------------------------------------------------------ episode engine

/// Outside every other rule family; the world-step rule still applies.
const EVAL_PATH: &str = "crates/eval/src/fixture.rs";

#[test]
fn world_step_fires_outside_sim() {
    let bad = "fn f(world: &mut World) { while !done { world.step(control); } }\n";
    assert_eq!(fired(EVAL_PATH, bad), vec![AstRule::WorldStepOutsideSim]);
    // Derived bindings like `final_world` count as World receivers too.
    let derived = "fn f(final_world: &mut World) { final_world.step(control); }\n";
    assert_eq!(
        fired(EVAL_PATH, derived),
        vec![AstRule::WorldStepOutsideSim]
    );
    // The message points at the episode engine.
    let diags = ast_lint_source(EVAL_PATH, bad);
    assert!(diags[0].message.contains("Episode"), "{}", diags[0].message);
}

#[test]
fn world_step_silent_inside_sim_and_on_engine_stepping() {
    // The one legitimate home of the stepping loop: the sim crate itself.
    let in_sim = "fn f(world: &mut World) { world.step(control); }\n";
    assert!(fired(SIM_PATH, in_sim).is_empty());
    // Stepping through the engine (world passed as an argument) is the
    // sanctioned pattern everywhere.
    let engine = "fn f(e: &mut Episode, world: &mut World) { e.step(world, control); }\n";
    assert!(fired(EVAL_PATH, engine).is_empty());
    // Other receivers named `step` are unrelated.
    let other = "fn f(iter: &mut Stepper) { iter.step(3); }\n";
    assert!(fired(EVAL_PATH, other).is_empty());
}

#[test]
fn world_step_suppressed_by_allow() {
    let waived = "// iprism-lint: allow(world-step-outside-sim)\nfn f(world: &mut World) { world.step(control); }\n";
    assert!(fired(EVAL_PATH, waived).is_empty());
}

// ----------------------------------------------------------------- machinery

#[test]
fn rules_never_fire_inside_strings_or_comments() {
    let good = r#"
fn f() -> &'static str {
    // HashMap, thread_rng() and 3.7 as usize in a comment are fine
    "HashMap thread_rng to_radians partial_cmp(x).unwrap()"
}
"#;
    assert!(fired(SIM_PATH, good).is_empty());
    assert!(fired(GEOM_PATH, good).is_empty());
}

#[test]
fn allow_all_suppresses_every_rule() {
    let waived = "// iprism-lint: allow(all)\nuse std::collections::HashMap;\n";
    assert!(fired(SIM_PATH, waived).is_empty());
}

#[test]
fn allow_does_not_leak_past_the_next_code_line() {
    let too_far =
        "// iprism-lint: allow(no-hash-collections)\nfn ok() {}\nuse std::collections::HashMap;\n";
    // The use on line 3 still fires — and the directive, binding only to
    // line 2 where nothing can fire, is reported dead by the audit.
    assert_eq!(
        fired(SIM_PATH, too_far),
        vec![AstRule::DeadWaiver, AstRule::NoHashCollections]
    );
}

#[test]
fn diagnostics_carry_line_col_and_rule_name() {
    let bad = "fn f() {\n    let m: HashMap<u32, u32> = HashMap::new();\n}\n";
    let diags = ast_lint_source(SIM_PATH, bad);
    assert_eq!(diags.len(), 2);
    assert_eq!((diags[0].line, diags[0].col), (2, 12));
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("crates/sim/src/fixture.rs:2:12: [no-hash-collections]"),
        "{rendered}"
    );
}

#[test]
fn json_report_is_well_formed() {
    let bad = "use std::collections::HashMap;\n";
    let diags = ast_lint_source(SIM_PATH, bad);
    let json = xtask::ast::report_json(1, &diags);
    assert!(json.starts_with(r#"{"schema_version":3,"files_checked":1,"violations":[{"#));
    assert!(json.contains(r#""rule":"no-hash-collections""#));
    assert!(json.contains(r#""line":1"#));
    let empty = xtask::ast::report_json(42, &[]);
    assert_eq!(
        empty,
        r#"{"schema_version":3,"files_checked":42,"violations":[]}"#
    );
}

/// Exact golden snapshot of one report: field order, escaping, sorting and
/// the schema version are all pinned; any byte-level drift in the CI
/// contract fails here first.
#[test]
fn json_report_snapshot() {
    let bad = "use std::collections::HashMap;\n";
    let diags = ast_lint_source(SIM_PATH, bad);
    assert_eq!(
        diags.len(),
        1,
        "fixture must produce exactly one diagnostic"
    );
    let json = xtask::ast::report_json(1, &diags);
    assert_eq!(
        json,
        r#"{"schema_version":3,"files_checked":1,"violations":[{"path":"crates/sim/src/fixture.rs","line":1,"col":23,"rule":"no-hash-collections","message":"`HashMap` in determinism-critical code: iteration order varies between runs; use `BTreeMap` (ordered) instead"}]}"#
    );
}

/// Every lint layer — text, `--ast`, `--graph`, `--flow` — must emit the
/// same envelope (`schema_version` + `files_checked` + optional headline
/// counts + sorted `violations`) and the same per-violation object shape.
/// This pins one finding from three different layers byte-for-byte.
#[test]
fn all_layers_share_one_json_envelope() {
    // Text layer: rendered through the shared emitter with col 1.
    let text = xtask::lint_source(SIM_PATH, "fn step() {\n    let t = Instant::now();\n}\n");
    let items: Vec<String> = text
        .iter()
        .map(|d| xtask::ast::diagnostic_json(&d.path, d.line, 1, d.rule.name(), &d.message))
        .collect();
    let text_json = xtask::ast::render_report(1, &[], &items);
    assert_eq!(
        text_json,
        r#"{"schema_version":3,"files_checked":1,"violations":[{"path":"crates/sim/src/fixture.rs","line":2,"col":1,"rule":"no-wallclock-in-sim","message":"`Instant` in simulation code; sims must be deterministic — use the step counter and seeded RNGs"}]}"#
    );

    // AST layer.
    let ast = ast_lint_source(SIM_PATH, "use std::collections::HashMap;\n");
    let ast_json = xtask::ast::report_json(1, &ast);
    assert_eq!(
        ast_json,
        r#"{"schema_version":3,"files_checked":1,"violations":[{"path":"crates/sim/src/fixture.rs","line":1,"col":23,"rule":"no-hash-collections","message":"`HashMap` in determinism-critical code: iteration order varies between runs; use `BTreeMap` (ordered) instead"}]}"#
    );

    // Flow layer: the report carries its headline `functions` count inside
    // the same envelope.
    let flow = xtask::flow_lint_source(
        "crates/reach/src/fixture.rs",
        "pub fn f(d: Meters, t: Seconds) -> f64 { d.get() + t.get() }\n",
    );
    let report = xtask::FlowReport {
        files: 1,
        functions: 1,
        diagnostics: flow,
    };
    assert_eq!(
        report.to_json(),
        r#"{"schema_version":3,"files_checked":1,"functions":1,"violations":[{"path":"crates/reach/src/fixture.rs","line":1,"col":50,"rule":"unit-mixed-dim","message":"mixed-dimension arithmetic: length (m) + time (s); convert through the iprism-units newtypes first"}]}"#
    );
}

#[test]
fn json_report_sorts_diagnostics_by_position() {
    // Two violations emitted out of positional order across the file; the
    // report must serialize them (line 1, then line 2) regardless.
    let bad = "use std::collections::HashMap;\nuse std::collections::HashSet;\n";
    let diags = ast_lint_source(SIM_PATH, bad);
    let json = xtask::ast::report_json(1, &diags);
    let first = json.find(r#""line":1"#).expect("line-1 diagnostic present");
    let second = json.find(r#""line":2"#).expect("line-2 diagnostic present");
    assert!(first < second, "diagnostics must be sorted by position");
}

// ---------------------------------------------------------------- dead-waiver

#[test]
fn dead_waiver_fires_when_the_named_rule_cannot_fire() {
    let src = "// iprism-lint: allow(no-hash-collections)\nfn f() -> u32 {\n    1\n}\n";
    assert_eq!(fired(SIM_PATH, src), vec![AstRule::DeadWaiver]);
}

#[test]
fn live_ast_waiver_is_silent() {
    let src = "// iprism-lint: allow(no-hash-collections)\nuse std::collections::HashMap;\n";
    assert!(fired(SIM_PATH, src).is_empty());
}

#[test]
fn waiver_of_a_live_text_rule_is_not_dead() {
    // `no-panic-in-lib` is a text-pass rule; the audit must consult the
    // text rules too before declaring a directive dead.
    let src = "fn f() {\n    // iprism-lint: allow(no-panic-in-lib)\n    panic!(\"boom\");\n}\n";
    assert!(fired(SIM_PATH, src).is_empty());
}

#[test]
fn dead_waiver_is_suppressed_by_its_own_allow() {
    let src =
        "// iprism-lint: allow(no-hash-collections, dead-waiver)\nfn f() -> u32 {\n    1\n}\n";
    assert!(fired(SIM_PATH, src).is_empty());
}

#[test]
fn prose_mentioning_allow_is_not_audited() {
    // Doc comments and placeholder syntax (`<rule>`) are prose, not
    // directives; neither may produce a dead-waiver diagnostic.
    let src = "/// Suppress with `iprism-lint: allow(no-float-eq)`.\n\
               // e.g. write `iprism-lint: allow(<rule>)` above the line\n\
               fn f() -> u32 {\n    1\n}\n";
    assert!(fired(SIM_PATH, src).is_empty());
}

#[test]
fn classification_matches_the_crate_map() {
    // Test/bench files are skipped entirely.
    assert!(classify_ast("crates/sim/tests/determinism.rs").is_none());
    assert!(classify_ast("xtask/tests/ast_rules.rs").is_none());

    let sim = classify_ast("crates/sim/src/world.rs").unwrap();
    assert!(sim.determinism && !sim.hot_path && !sim.units_param_api);
    assert!(!sim.world_step, "sim owns the stepping loop");

    let eval = classify_ast("crates/eval/src/mitigation.rs").unwrap();
    assert!(eval.world_step && !eval.determinism);

    let geom = classify_ast("crates/geom/src/vec2.rs").unwrap();
    assert!(geom.hot_path && geom.units_param_api && !geom.units_return_api);

    let dynamics = classify_ast("crates/dynamics/src/bicycle.rs").unwrap();
    assert!(dynamics.units_param_api && dynamics.units_return_api && dynamics.hot_path);

    let reach = classify_ast("crates/reach/src/compute.rs").unwrap();
    assert!(reach.determinism && reach.units_param_api && reach.units_return_api);

    let units = classify_ast("crates/units/src/lib.rs").unwrap();
    assert!(units.units_crate);

    let every_rule_name_roundtrips = ALL_AST_RULES
        .iter()
        .all(|r| AstRule::from_name(r.name()) == Some(*r));
    assert!(every_rule_name_roundtrips);
}
