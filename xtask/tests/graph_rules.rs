//! Fixture and golden tests for the call-graph pass (`lint --graph`).
//!
//! Convention mirrors `ast_rules.rs`: every graph rule gets a firing, a
//! silent and a suppressed fixture. Fixtures are multi-file so each taint
//! is proven through a real (≥ 2-edge) cross-file call chain, and the
//! golden tests run the extractor over the actual workspace tree.

use xtask::ast::extract::{extract_file, CallTarget, FnDef};
use xtask::ast::graph::graph_lint_sources;
use xtask::{build_workspace_graph, run_graph_lint, AstRule};

/// Rules fired by a fixture set, in reporting order.
fn fired(sources: &[(&str, &str)]) -> Vec<AstRule> {
    graph_lint_sources(sources)
        .diagnostics
        .iter()
        .map(|d| d.rule)
        .collect()
}

fn first_message(sources: &[(&str, &str)]) -> String {
    graph_lint_sources(sources)
        .diagnostics
        .first()
        .map(|d| d.message.clone())
        .unwrap_or_default()
}

// ---------------------------------------------------------------- hot-path-alloc

const ALLOC_ROOT: &str = "\
// iprism: hot-path(no-alloc)
pub fn root() -> usize {
    middle()
}

fn middle() -> usize {
    leaf()
}
";

#[test]
fn alloc_taint_fires_through_a_two_edge_chain() {
    let leaf =
        "pub fn leaf() -> usize {\n    let mut v = Vec::new();\n    v.push(1);\n    v.len()\n}\n";
    let sources = [
        ("crates/a/src/lib.rs", ALLOC_ROOT),
        ("crates/b/src/lib.rs", leaf),
    ];
    assert_eq!(fired(&sources), vec![AstRule::HotPathAlloc]);
    let msg = first_message(&sources);
    assert!(msg.contains("root → middle → leaf"), "chain missing: {msg}");
    assert!(msg.contains("alloc via"), "source missing: {msg}");
    assert!(
        msg.contains("crates/b/src/lib.rs:"),
        "location missing: {msg}"
    );
}

#[test]
fn alloc_taint_is_silent_without_a_source() {
    let leaf = "pub fn leaf() -> usize {\n    40 + 2\n}\n";
    assert!(fired(&[
        ("crates/a/src/lib.rs", ALLOC_ROOT),
        ("crates/b/src/lib.rs", leaf)
    ])
    .is_empty());
}

#[test]
fn alloc_taint_is_suppressed_by_a_source_waiver() {
    let leaf = "pub fn leaf() -> usize {\n    let mut v = Vec::new(); // iprism-lint: allow(hot-path-alloc) — test scratch\n    v.push(1); // iprism-lint: allow(hot-path-alloc) — test scratch\n    v.len()\n}\n";
    assert!(fired(&[
        ("crates/a/src/lib.rs", ALLOC_ROOT),
        ("crates/b/src/lib.rs", leaf)
    ])
    .is_empty());
}

#[test]
fn alloc_taint_is_suppressed_by_an_edge_waiver() {
    let root = "\
// iprism: hot-path(no-alloc)
pub fn root() -> usize {
    // iprism-lint: allow(hot-path-alloc) — cold init edge
    middle()
}

fn middle() -> usize {
    leaf()
}
";
    let leaf =
        "pub fn leaf() -> usize {\n    let mut v = Vec::new();\n    v.push(1);\n    v.len()\n}\n";
    assert!(fired(&[("crates/a/src/lib.rs", root), ("crates/b/src/lib.rs", leaf)]).is_empty());
}

// ---------------------------------------------------------------- hot-path-panic

const PANIC_ROOT: &str = "\
// iprism: hot-path(no-panic)
pub fn root(xs: &[f64]) -> f64 {
    middle(xs)
}

fn middle(xs: &[f64]) -> f64 {
    leaf(xs)
}
";

#[test]
fn panic_taint_fires_through_a_two_edge_chain() {
    let leaf = "pub fn leaf(xs: &[f64]) -> f64 {\n    xs.first().copied().unwrap()\n}\n";
    let sources = [
        ("crates/a/src/lib.rs", PANIC_ROOT),
        ("crates/b/src/lib.rs", leaf),
    ];
    assert_eq!(fired(&sources), vec![AstRule::HotPathPanic]);
    let msg = first_message(&sources);
    assert!(msg.contains("root → middle → leaf"), "chain missing: {msg}");
    assert!(
        msg.contains("panic via `.unwrap(..)`"),
        "source missing: {msg}"
    );
}

#[test]
fn indexing_counts_as_a_panic_source() {
    let leaf = "pub fn leaf(xs: &[f64]) -> f64 {\n    xs[0]\n}\n";
    let sources = [
        ("crates/a/src/lib.rs", PANIC_ROOT),
        ("crates/b/src/lib.rs", leaf),
    ];
    assert_eq!(fired(&sources), vec![AstRule::HotPathPanic]);
    assert!(first_message(&sources).contains("indexing"));
}

#[test]
fn panic_taint_is_silent_on_iterator_style_code() {
    let leaf = "pub fn leaf(xs: &[f64]) -> f64 {\n    xs.iter().copied().fold(0.0, f64::max)\n}\n";
    assert!(fired(&[
        ("crates/a/src/lib.rs", PANIC_ROOT),
        ("crates/b/src/lib.rs", leaf)
    ])
    .is_empty());
}

#[test]
fn panic_taint_is_suppressed_by_a_source_waiver() {
    let leaf = "pub fn leaf(xs: &[f64]) -> f64 {\n    // iprism-lint: allow(hot-path-panic) — precondition gate\n    xs.first().copied().unwrap()\n}\n";
    assert!(fired(&[
        ("crates/a/src/lib.rs", PANIC_ROOT),
        ("crates/b/src/lib.rs", leaf)
    ])
    .is_empty());
}

// ---------------------------------------------------------------- hot-path-nondet

const NONDET_ROOT: &str = "\
// iprism: hot-path(deterministic)
pub fn root() -> f64 {
    middle()
}

fn middle() -> f64 {
    leaf()
}
";

#[test]
fn nondet_taint_fires_through_a_two_edge_chain() {
    let leaf = "pub fn leaf() -> f64 {\n    let mut rng = thread_rng();\n    rng.gen()\n}\n";
    let sources = [
        ("crates/a/src/lib.rs", NONDET_ROOT),
        ("crates/b/src/lib.rs", leaf),
    ];
    assert_eq!(fired(&sources), vec![AstRule::HotPathNondet]);
    let msg = first_message(&sources);
    assert!(msg.contains("root → middle → leaf"), "chain missing: {msg}");
    assert!(
        msg.contains("nondeterminism via `thread_rng`"),
        "source missing: {msg}"
    );
}

#[test]
fn nondet_taint_is_silent_on_seeded_code() {
    let leaf = "pub fn leaf() -> f64 {\n    let mut rng = ChaCha8Rng::seed_from_u64(7);\n    rng.gen()\n}\n";
    assert!(fired(&[
        ("crates/a/src/lib.rs", NONDET_ROOT),
        ("crates/b/src/lib.rs", leaf)
    ])
    .is_empty());
}

#[test]
fn nondet_taint_is_suppressed_by_a_waiver() {
    let leaf = "pub fn leaf() -> f64 {\n    let t = Instant::now(); // iprism-lint: allow(hot-path-nondet) — test only\n    t.elapsed().as_secs_f64()\n}\n";
    assert!(fired(&[
        ("crates/a/src/lib.rs", NONDET_ROOT),
        ("crates/b/src/lib.rs", leaf)
    ])
    .is_empty());
}

// ---------------------------------------------------------------- hot-path-marker

#[test]
fn marker_with_unknown_property_fires() {
    let src = "// iprism: hot-path(no-panics)\npub fn f() -> usize {\n    1\n}\n";
    assert_eq!(
        fired(&[("crates/a/src/lib.rs", src)]),
        vec![AstRule::HotPathMarker]
    );
}

#[test]
fn dangling_marker_fires() {
    let src = "// iprism: hot-path(no-alloc)\n\npub struct S;\n";
    assert_eq!(
        fired(&[("crates/a/src/lib.rs", src)]),
        vec![AstRule::HotPathMarker]
    );
}

#[test]
fn well_formed_marker_is_silent_and_counted() {
    let src =
        "// iprism: hot-path(no-panic, no-alloc, deterministic)\npub fn f() -> usize {\n    1\n}\n";
    let report = graph_lint_sources(&[("crates/a/src/lib.rs", src)]);
    assert!(report.diagnostics.is_empty());
    assert_eq!(report.stats.markers, 1);
}

#[test]
fn marker_error_is_suppressed_by_a_waiver() {
    let src = "// iprism-lint: allow(hot-path-marker)\n// iprism: hot-path(no-panics)\npub fn f() -> usize {\n    1\n}\n";
    // The allow sits in the comment run above the fn line the marker binds
    // to; marker errors report at the marker line, which the directive run
    // covers.
    assert!(fired(&[("crates/a/src/lib.rs", src)]).is_empty());
}

// ---------------------------------------------------------------- dead-waiver (graph side)

#[test]
fn dead_hot_path_waiver_fires() {
    let src = "pub fn f() -> usize {\n    // iprism-lint: allow(hot-path-alloc)\n    1 + 1\n}\n";
    assert_eq!(
        fired(&[("crates/a/src/lib.rs", src)]),
        vec![AstRule::DeadWaiver]
    );
}

#[test]
fn live_hot_path_waiver_is_silent() {
    let src = "pub fn f() -> Vec<usize> {\n    // iprism-lint: allow(hot-path-alloc)\n    Vec::new()\n}\n";
    assert!(fired(&[("crates/a/src/lib.rs", src)]).is_empty());
}

#[test]
fn edge_waiver_to_a_tainted_callee_is_live() {
    let root = "\
// iprism: hot-path(no-alloc)
pub fn root() -> usize {
    // iprism-lint: allow(hot-path-alloc) — cold edge
    leaf()
}
";
    let leaf =
        "pub fn leaf() -> usize {\n    let mut v = Vec::new();\n    v.push(1);\n    v.len()\n}\n";
    assert!(fired(&[("crates/a/src/lib.rs", root), ("crates/b/src/lib.rs", leaf)]).is_empty());
}

// ---------------------------------------------------------------- extraction details

#[test]
fn extractor_models_impls_methods_and_qualified_calls() {
    let src = "\
pub struct Engine {
    state: f64,
}

impl Engine {
    pub fn new() -> Engine {
        Engine { state: 0.0 }
    }

    fn helper(&self) -> f64 {
        self.state
    }

    pub fn run(&self) -> f64 {
        self.helper()
    }
}

pub fn boot() -> f64 {
    let e = Engine::new();
    e.run()
}
";
    let ex = extract_file("crates/a/src/lib.rs", src);
    let names: Vec<String> = ex.fns.iter().map(FnDef::display).collect();
    assert_eq!(
        names,
        vec!["Engine::new", "Engine::helper", "Engine::run", "boot"]
    );
    assert!(ex.fns[0].is_pub && !ex.fns[0].has_self);
    assert!(!ex.fns[1].is_pub && ex.fns[1].has_self);
    assert!(ex
        .calls
        .iter()
        .any(|c| c.target == CallTarget::SelfMethod("helper".to_string())));
    assert!(ex
        .calls
        .iter()
        .any(|c| c.target == CallTarget::Typed("Engine".to_string(), "new".to_string())));
    assert!(ex
        .calls
        .iter()
        .any(|c| c.target == CallTarget::Method("run".to_string())));
}

#[test]
fn test_code_is_excluded_from_the_graph() {
    let src = "\
pub fn lib_fn() -> usize {
    1
}

#[cfg(test)]
mod tests {
    fn helper() -> usize {
        panic!(\"only in tests\")
    }

    #[test]
    fn t() {
        assert_eq!(super::lib_fn(), helper());
    }
}
";
    let ex = extract_file("crates/a/src/lib.rs", src);
    assert_eq!(ex.fns.len(), 1, "test fns must not be extracted");
    assert!(
        ex.sources.is_empty(),
        "test-only panics must not seed taint"
    );
}

#[test]
fn unresolved_calls_are_counted_not_dropped() {
    let src = "pub fn f() -> usize {\n    no_such_function_anywhere()\n}\n";
    let report = graph_lint_sources(&[("crates/a/src/lib.rs", src)]);
    assert_eq!(report.stats.unresolved, 1);
}

// ---------------------------------------------------------------- golden workspace tests

// Not inside a #[test] fn, so clippy.toml's allow-expect-in-tests misses it.
#[allow(clippy::expect_used)]
fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits one level below the workspace root")
        .to_path_buf()
}

#[test]
fn golden_training_chain_resolves_end_to_end() {
    let graph = build_workspace_graph(&workspace_root()).expect("workspace walk");
    let path = graph
        .find_path("train_smc", "DdqnAgent::learn_batch")
        .expect("train_smc must reach learn_batch");
    assert_eq!(path.first().map(String::as_str), Some("train_smc"));
    assert_eq!(
        path.last().map(String::as_str),
        Some("DdqnAgent::learn_batch")
    );
    assert!(path.len() >= 3, "expected a multi-hop chain, got {path:?}");

    let tail = graph
        .find_path("DdqnAgent::learn_batch", "Mlp::forward_batch_cached")
        .expect("learn_batch must reach the batched forward pass");
    assert_eq!(
        tail.len(),
        2,
        "learn_batch calls forward_batch_cached directly: {tail:?}"
    );

    assert!(
        graph
            .find_path("Mlp::forward_batch_cached", "Linear::forward_batch_scratch")
            .is_some(),
        "the batched forward pass must reach the per-layer kernel"
    );
}

#[test]
fn golden_sti_chain_resolves_into_the_reach_kernel() {
    let graph = build_workspace_graph(&workspace_root()).expect("workspace walk");
    assert!(
        graph
            .find_path("StiEvaluator::evaluate", "compute_reach_tube_cached")
            .is_some(),
        "STI scoring must reach the cached tube kernel"
    );
}

#[test]
fn workspace_graph_has_plausible_shape() {
    let graph = build_workspace_graph(&workspace_root()).expect("workspace walk");
    let stats = graph.stats();
    assert!(
        stats.functions > 300,
        "expected hundreds of fns, got {}",
        stats.functions
    );
    assert!(stats.edges > stats.functions, "graph should be edge-dense");
    assert!(
        stats.unresolved > 0,
        "std calls must surface as unresolved, not vanish"
    );
}

#[test]
fn workspace_certifies_clean() {
    let report = run_graph_lint(&workspace_root()).expect("workspace walk");
    assert!(
        report.diagnostics.is_empty(),
        "lint --graph must pass on the workspace:\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.stats.markers >= 4,
        "the four seeded hot paths must stay marked (got {})",
        report.stats.markers
    );
}
