//! AST-level static analysis: determinism, dimensional safety, NaN hygiene.
//!
//! `cargo xtask lint --ast` runs these checks over every workspace `.rs`
//! file. Unlike the line-oriented text rules in [`crate::rules`], these
//! operate on a real token stream (see [`lexer`]) and parse function
//! signatures, call chains and cast expressions, so they can reason about
//! *structure*: which parameters of a `pub fn` are raw `f64`, whether a
//! `partial_cmp` result is unwrapped, whether a float→int cast was rounded
//! first.
//!
//! The rule catalogue, per-crate scoping, message format and the JSON
//! output schema are documented in `docs/STATIC_ANALYSIS.md`. Findings are
//! waived exactly like text-rule findings, with a justifying
//! `// iprism-lint: allow(<rule>)` comment on or directly above the line.

pub mod cfg;
pub mod extract;
pub mod flow;
pub mod graph;
pub mod lexer;
pub mod rules;

use std::path::Path;

use crate::mask::{self, MaskedFile};

/// Version stamp embedded in every JSON lint report so CI consumers can
/// detect format changes. Bump whenever the report shape changes.
///
/// v3: all four passes (text, `--ast`, `--graph`, `--flow`) share one
/// emitter and one diagnostic object shape; the flow rules joined the
/// rule namespace.
pub const SCHEMA_VERSION: u32 = 3;

/// The AST-level lint rules enforced by `cargo xtask lint --ast`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstRule {
    /// No `HashMap`/`HashSet` in determinism-critical crates: iteration
    /// order varies run to run.
    NoHashCollections,
    /// No OS-entropy RNGs (`thread_rng`, `from_entropy`, `OsRng`) in
    /// determinism-critical crates.
    NoUnseededRng,
    /// Public fns in the units-API crates must not take raw `f64` for
    /// physically-dimensioned parameters; use `iprism-units` newtypes.
    RawF64Param,
    /// Public fns in dynamics/reach whose names promise a dimensioned
    /// quantity must not return raw `f64`.
    RawF64Return,
    /// `to_radians`/`to_degrees` only inside `crates/units`.
    AngleConvOutsideUnits,
    /// `partial_cmp(..).unwrap()` panics on NaN; use `total_cmp`.
    PartialCmpUnwrap,
    /// Division by an unguarded parenthesized difference (`a / (b - c)`).
    UnguardedFloatDiv,
    /// Float→int `as` cast without an explicit rounding step.
    FloatIntCast,
    /// Manual `world.step(...)` calls outside `crates/sim`: stepping a
    /// `World` by hand bypasses the episode engine (outcome detection,
    /// tracing, observers); drive episodes through `iprism_sim::Episode`
    /// or `run_episode` instead.
    WorldStepOutsideSim,
    /// A fn marked `hot-path(no-panic)` transitively reaches a panic
    /// (`panic!`, `.unwrap()`, `assert!`, slice indexing). Graph rule:
    /// reported by `cargo xtask lint --graph`.
    HotPathPanic,
    /// A fn marked `hot-path(no-alloc)` transitively reaches a heap
    /// allocation (`Vec::push`, `collect`, `format!`, ...). Graph rule.
    HotPathAlloc,
    /// A fn marked `hot-path(deterministic)` transitively reaches a
    /// nondeterminism source (wallclock, unseeded RNG, hash iteration).
    /// Graph rule.
    HotPathNondet,
    /// A malformed or dangling `// iprism: hot-path(...)` marker. Graph
    /// rule.
    HotPathMarker,
    /// Add/sub of two locals whose inferred physical dimensions differ
    /// (meters + seconds, radians + degrees, ...). Flow rule: reported by
    /// `cargo xtask lint --flow`.
    UnitMixedDim,
    /// A raw `f64` that escaped one unit newtype (`.get()`/`.0`) re-enters
    /// a constructor of a *different* dimension unconverted. Flow rule.
    UnitRawReentry,
    /// Trigonometry on a value whose inferred dimension is not an angle in
    /// radians (degrees, or a non-angle quantity). Flow rule.
    UnitAngleRaw,
    /// Order-sensitive float accumulation in a parallel context: `+=` on
    /// captured state inside a parallel closure, or a reduction chained
    /// straight off a `par_iter` without an ordered collect. Flow rule.
    ParFloatAccum,
    /// Shared-mutable access (`.lock()`, `.borrow_mut()`, atomic writes)
    /// inside a closure handed to a parallel entry point. Flow rule.
    ParSharedMut,
    /// Iteration over an unordered hash collection feeding a reduction or
    /// collect. Flow rule.
    UnorderedReduce,
    /// An `iprism-lint: allow(...)` directive that suppresses nothing.
    DeadWaiver,
}

/// All AST rules, in reporting order.
pub const ALL_AST_RULES: [AstRule; 20] = [
    AstRule::NoHashCollections,
    AstRule::NoUnseededRng,
    AstRule::RawF64Param,
    AstRule::RawF64Return,
    AstRule::AngleConvOutsideUnits,
    AstRule::PartialCmpUnwrap,
    AstRule::UnguardedFloatDiv,
    AstRule::FloatIntCast,
    AstRule::WorldStepOutsideSim,
    AstRule::HotPathPanic,
    AstRule::HotPathAlloc,
    AstRule::HotPathNondet,
    AstRule::HotPathMarker,
    AstRule::UnitMixedDim,
    AstRule::UnitRawReentry,
    AstRule::UnitAngleRaw,
    AstRule::ParFloatAccum,
    AstRule::ParSharedMut,
    AstRule::UnorderedReduce,
    AstRule::DeadWaiver,
];

/// The rules evaluated by the call-graph pass (`lint --graph`), not the
/// per-file pass; the per-file dead-waiver audit must leave their
/// directives alone.
pub const GRAPH_RULES: [AstRule; 4] = [
    AstRule::HotPathPanic,
    AstRule::HotPathAlloc,
    AstRule::HotPathNondet,
    AstRule::HotPathMarker,
];

/// The rules evaluated by the dataflow pass (`lint --flow`), not the
/// per-file pass; the per-file dead-waiver audit must leave their
/// directives alone (the flow pass runs its own audit over them).
pub const FLOW_RULES: [AstRule; 6] = [
    AstRule::UnitMixedDim,
    AstRule::UnitRawReentry,
    AstRule::UnitAngleRaw,
    AstRule::ParFloatAccum,
    AstRule::ParSharedMut,
    AstRule::UnorderedReduce,
];

impl AstRule {
    /// The kebab-case name used in diagnostics and `allow(...)` directives.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AstRule::NoHashCollections => "no-hash-collections",
            AstRule::NoUnseededRng => "no-unseeded-rng",
            AstRule::RawF64Param => "raw-f64-param",
            AstRule::RawF64Return => "raw-f64-return",
            AstRule::AngleConvOutsideUnits => "angle-conv-outside-units",
            AstRule::PartialCmpUnwrap => "partial-cmp-unwrap",
            AstRule::UnguardedFloatDiv => "unguarded-float-div",
            AstRule::FloatIntCast => "float-int-cast",
            AstRule::WorldStepOutsideSim => "world-step-outside-sim",
            AstRule::HotPathPanic => "hot-path-panic",
            AstRule::HotPathAlloc => "hot-path-alloc",
            AstRule::HotPathNondet => "hot-path-nondet",
            AstRule::HotPathMarker => "hot-path-marker",
            AstRule::UnitMixedDim => "unit-mixed-dim",
            AstRule::UnitRawReentry => "unit-raw-reentry",
            AstRule::UnitAngleRaw => "unit-angle-raw",
            AstRule::ParFloatAccum => "par-float-accum",
            AstRule::ParSharedMut => "par-shared-mut",
            AstRule::UnorderedReduce => "unordered-reduce",
            AstRule::DeadWaiver => "dead-waiver",
        }
    }

    /// Parses a rule name as written inside `allow(...)`.
    #[must_use]
    pub fn from_name(name: &str) -> Option<AstRule> {
        ALL_AST_RULES.iter().copied().find(|r| r.name() == name)
    }
}

/// A single AST-lint finding, with full line *and column* position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AstDiagnostic {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based character column.
    pub col: usize,
    /// The rule that fired.
    pub rule: AstRule,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for AstDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path,
            self.line,
            self.col,
            self.rule.name(),
            self.message
        )
    }
}

impl AstDiagnostic {
    /// Renders the diagnostic as a JSON object (hand-rolled: xtask has no
    /// dependencies).
    #[must_use]
    pub fn to_json(&self) -> String {
        diagnostic_json(
            &self.path,
            self.line,
            self.col,
            self.rule.name(),
            &self.message,
        )
    }
}

/// Renders one finding as a JSON object. Every lint layer — text, `--ast`,
/// `--graph`, `--flow` — emits this exact shape, so CI consumers parse one
/// schema regardless of which pass produced the report.
#[must_use]
pub fn diagnostic_json(path: &str, line: usize, col: usize, rule: &str, message: &str) -> String {
    format!(
        r#"{{"path":{},"line":{},"col":{},"rule":{},"message":{}}}"#,
        json_string(path),
        line,
        col,
        json_string(rule),
        json_string(message)
    )
}

/// Assembles the shared report envelope: `schema_version`, `files_checked`,
/// any layer-specific headline counts (`extra`, emitted in order between
/// `files_checked` and `violations`), then the pre-rendered violation
/// objects. This is the *only* place the schema version is stamped.
#[must_use]
pub fn render_report(checked: usize, extra: &[(&str, usize)], items: &[String]) -> String {
    let mut out = format!(r#"{{"schema_version":{SCHEMA_VERSION},"files_checked":{checked}"#);
    for (key, value) in extra {
        out.push_str(&format!(r#","{key}":{value}"#));
    }
    out.push_str(&format!(r#","violations":[{}]}}"#, items.join(",")));
    out
}

/// Renders a full AST-lint report as a JSON document for CI consumption.
/// The report is deterministic: diagnostics are serialized in
/// `(path, line, col, rule)` order regardless of input order.
#[must_use]
pub fn report_json(checked: usize, diagnostics: &[AstDiagnostic]) -> String {
    report_json_with(checked, &[], diagnostics)
}

/// Like [`report_json`] but with layer-specific headline counts (the graph
/// pass's function/edge totals, the flow pass's function count).
#[must_use]
pub fn report_json_with(
    checked: usize,
    extra: &[(&str, usize)],
    diagnostics: &[AstDiagnostic],
) -> String {
    let mut sorted: Vec<&AstDiagnostic> = diagnostics.iter().collect();
    sorted.sort_by_key(|d| (&d.path, d.line, d.col, d.rule.name()));
    let items: Vec<String> = sorted.iter().map(|d| d.to_json()).collect();
    render_report(checked, extra, &items)
}

/// Quotes and escapes `s` as a JSON string literal.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Which AST rule families apply to a file (decided from its path).
#[derive(Debug, Clone, Copy, Default)]
pub struct AstFileClass {
    /// Determinism-critical: reach/risk math and everything the simulator
    /// replays must be bit-reproducible across runs.
    pub determinism: bool,
    /// Public fns must take unit newtypes for physical parameters.
    pub units_param_api: bool,
    /// Public fns with dimension-promising names must return unit newtypes.
    pub units_return_api: bool,
    /// Hot numeric paths: NaN-hygiene rules (division, casts) apply.
    pub hot_path: bool,
    /// The units layer itself (angle conversions are allowed here).
    pub units_crate: bool,
    /// Outside `crates/sim`: episodes must be stepped through the episode
    /// engine, never via manual `world.step(...)` loops.
    pub world_step: bool,
}

/// Crates whose iteration order and entropy sources must be deterministic.
const DETERMINISM_CRATES: [&str; 4] = [
    "crates/sim/",
    "crates/scenarios/",
    "crates/reach/",
    "crates/risk/",
];

/// Crates whose public fn *parameters* must use unit newtypes.
const UNITS_PARAM_CRATES: [&str; 3] = ["crates/dynamics/", "crates/geom/", "crates/reach/"];

/// Crates whose public fn *returns* must use unit newtypes.
const UNITS_RETURN_CRATES: [&str; 2] = ["crates/dynamics/", "crates/reach/"];

/// Hot numeric paths where the NaN-hygiene rules apply.
const HOT_PATH_CRATES: [&str; 4] = [
    "crates/geom/",
    "crates/dynamics/",
    "crates/reach/",
    "crates/risk/",
];

/// Decides which AST rule families apply to `rel_path`; `None` means the
/// file is skipped entirely (same skip set as the text lints: tests,
/// benches, examples, fixtures, build scripts).
#[must_use]
pub fn classify_ast(rel_path: &str) -> Option<AstFileClass> {
    crate::classify(rel_path)?;
    let starts = |prefixes: &[&str]| prefixes.iter().any(|p| rel_path.starts_with(p));
    Some(AstFileClass {
        determinism: starts(&DETERMINISM_CRATES),
        units_param_api: starts(&UNITS_PARAM_CRATES),
        units_return_api: starts(&UNITS_RETURN_CRATES),
        hot_path: starts(&HOT_PATH_CRATES),
        units_crate: rel_path.starts_with("crates/units/"),
        world_step: !rel_path.starts_with("crates/sim/"),
    })
}

/// AST-lints a single source string as if it lived at `rel_path`. This is
/// the entry point the fixture tests use; [`run_ast_lint`] maps it over the
/// real tree.
#[must_use]
pub fn ast_lint_source(rel_path: &str, source: &str) -> Vec<AstDiagnostic> {
    let Some(class) = classify_ast(rel_path) else {
        return Vec::new();
    };
    let masked = mask::mask(source);
    let tokens = lexer::lex(source);
    let allows = allow_lines(&masked);
    let skip = |line: usize| {
        let idx = line - 1;
        masked.test.get(idx).copied().unwrap_or(false)
            || masked.macro_body.get(idx).copied().unwrap_or(false)
    };
    // Collect every finding first (pre-waiver), so the dead-waiver audit
    // can tell whether a directive suppresses anything at all.
    let mut raw = Vec::new();
    let mut push = |t: &lexer::Token, rule: AstRule, message: String| {
        raw.push(AstDiagnostic {
            path: rel_path.to_string(),
            line: t.line,
            col: t.col,
            rule,
            message,
        });
    };
    rules::check_tokens(&tokens, class, &skip, &mut push);
    raw.sort_by_key(|d| (d.line, d.col));
    raw.dedup();
    let mut out: Vec<AstDiagnostic> = raw
        .iter()
        .filter(|d| !allowed(&allows, &masked, d.line - 1, d.rule))
        .cloned()
        .collect();
    dead_waiver_audit(rel_path, &masked, &allows, &raw, &skip, &mut out);
    out.sort_by(|a, b| (a.line, a.col, a.rule.name()).cmp(&(b.line, b.col, b.rule.name())));
    out.dedup();
    out
}

/// Flags `iprism-lint: allow(...)` directives that suppress nothing.
///
/// A directive is *live* when at least one rule it names fires (pre-waiver)
/// on a line it covers — its own line, or the next code line below its
/// comment-only run. Directives naming a graph rule (`hot-path-*`) or a
/// flow rule (`unit-*`, `par-*`, `unordered-reduce`) are skipped here: only
/// the `lint --graph` / `lint --flow` passes can see what they suppress,
/// and each pass runs its own dead-waiver audit.
fn dead_waiver_audit(
    rel_path: &str,
    masked: &MaskedFile,
    allows: &[Vec<AstRule>],
    raw_ast: &[AstDiagnostic],
    skip: &dyn Fn(usize) -> bool,
    out: &mut Vec<AstDiagnostic>,
) {
    // Text-rule findings, unfiltered: a directive waiving only e.g.
    // `no-panic-in-lib` is live if the text rule would fire there.
    let raw_text = crate::classify(rel_path)
        .map(|class| crate::rules::lint_masked_raw(rel_path, masked, class))
        .unwrap_or_default();
    for (idx, comment) in masked.comments.iter().enumerate() {
        if skip(idx + 1) {
            continue;
        }
        let Some((col0, names)) = parse_allow_names(comment) else {
            continue;
        };
        if names.iter().any(|n| {
            GRAPH_RULES.iter().any(|r| r.name() == n) || FLOW_RULES.iter().any(|r| r.name() == n)
        }) {
            continue;
        }
        // Prose like `allow(...)` or `allow(<rule>)` in a plain comment is
        // not a directive; real args are kebab-case rule names (a typo'd
        // name still has directive syntax and is rightly flagged).
        let rule_syntax = |n: &str| {
            !n.is_empty()
                && n.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        };
        if !names.iter().any(|n| rule_syntax(n)) {
            continue;
        }
        let covered = extract::waiver_coverage(masked, idx);
        let hits = |line0: usize| {
            let matches = |rule_name: &str| names.iter().any(|n| n == "all" || n == rule_name);
            raw_ast
                .iter()
                .any(|d| d.line == line0 + 1 && matches(d.rule.name()))
                || raw_text
                    .iter()
                    .any(|d| d.line == line0 + 1 && matches(d.rule.name()))
        };
        let live = covered.is_some_and(hits);
        if !live && !allowed(allows, masked, idx, AstRule::DeadWaiver) {
            out.push(AstDiagnostic {
                path: rel_path.to_string(),
                line: idx + 1,
                col: col0 + 1,
                rule: AstRule::DeadWaiver,
                message: format!(
                    "waiver `allow({})` suppresses nothing here; remove it or fix the rule list",
                    names.join(", ")
                ),
            });
        }
    }
}

/// Per-line sets of AST rules suppressed via `iprism-lint: allow(...)`.
pub(crate) fn allow_lines(file: &MaskedFile) -> Vec<Vec<AstRule>> {
    file.comments.iter().map(|c| parse_allow(c)).collect()
}

/// Parses an `iprism-lint: allow(...)` directive out of a comment line,
/// returning its 0-based column and the raw names it lists (including
/// `all` and names that match no rule — the dead-waiver audit needs both).
pub(crate) fn parse_allow_names(comment: &str) -> Option<(usize, Vec<String>)> {
    if is_doc_comment(comment) {
        // Doc comments describe the directive syntax; only plain comments
        // carry live directives.
        return None;
    }
    let pos = comment.find("iprism-lint:")?;
    let rest = &comment[pos + "iprism-lint:".len()..];
    let open = rest.find("allow(")?;
    let args = &rest[open + "allow(".len()..];
    let close = args.find(')')?;
    let names: Vec<String> = args[..close]
        .split(',')
        .map(str::trim)
        .filter(|n| !n.is_empty())
        .map(str::to_string)
        .collect();
    Some((pos, names))
}

/// Is this comment channel line a doc comment (`///`, `//!`, `/**`,
/// `/*!`)? Directives and markers in docs are prose, not policy.
pub(crate) fn is_doc_comment(comment: &str) -> bool {
    let t = comment.trim_start();
    t.starts_with("///") || t.starts_with("//!") || t.starts_with("/**") || t.starts_with("/*!")
}

fn parse_allow(comment: &str) -> Vec<AstRule> {
    let Some((_, names)) = parse_allow_names(comment) else {
        return Vec::new();
    };
    let mut rules = Vec::new();
    for name in names {
        if name == "all" {
            return ALL_AST_RULES.to_vec();
        }
        if let Some(rule) = AstRule::from_name(&name) {
            rules.push(rule);
        }
    }
    rules
}

/// A rule is suppressed on 0-based line `idx` if an allow directive sits on
/// the line itself or on a contiguous run of comment-only lines directly
/// above (mirrors the text-lint escape hatch exactly).
pub(crate) fn allowed(
    allows: &[Vec<AstRule>],
    file: &MaskedFile,
    idx: usize,
    rule: AstRule,
) -> bool {
    if allows.get(idx).is_some_and(|a| a.contains(&rule)) {
        return true;
    }
    let mut l = idx;
    while l > 0 {
        l -= 1;
        let comment_only = file.code[l].trim().is_empty() && !file.comments[l].trim().is_empty();
        if !comment_only {
            return false;
        }
        if allows[l].contains(&rule) {
            return true;
        }
    }
    false
}

/// AST-lints every workspace `.rs` file under `workspace_root`.
///
/// Returns `(files_checked, diagnostics)`.
///
/// # Errors
///
/// Returns any I/O error from walking or reading the tree.
pub fn run_ast_lint(workspace_root: &Path) -> std::io::Result<(usize, Vec<AstDiagnostic>)> {
    let mut checked = 0usize;
    let mut diagnostics = Vec::new();
    for path in crate::collect_rust_files(workspace_root)? {
        let rel = path
            .strip_prefix(workspace_root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if classify_ast(&rel).is_none() {
            continue;
        }
        let source = std::fs::read_to_string(&path)?;
        checked += 1;
        diagnostics.extend(ast_lint_source(&rel, &source));
    }
    diagnostics.sort_by(|a, b| {
        (&a.path, a.line, a.col, a.rule.name()).cmp(&(&b.path, b.line, b.col, b.rule.name()))
    });
    Ok((checked, diagnostics))
}
