//! AST-level static analysis: determinism, dimensional safety, NaN hygiene.
//!
//! `cargo xtask lint --ast` runs these checks over every workspace `.rs`
//! file. Unlike the line-oriented text rules in [`crate::rules`], these
//! operate on a real token stream (see [`lexer`]) and parse function
//! signatures, call chains and cast expressions, so they can reason about
//! *structure*: which parameters of a `pub fn` are raw `f64`, whether a
//! `partial_cmp` result is unwrapped, whether a float→int cast was rounded
//! first.
//!
//! The rule catalogue, per-crate scoping, message format and the JSON
//! output schema are documented in `docs/STATIC_ANALYSIS.md`. Findings are
//! waived exactly like text-rule findings, with a justifying
//! `// iprism-lint: allow(<rule>)` comment on or directly above the line.

pub mod lexer;
pub mod rules;

use std::path::Path;

use crate::mask::{self, MaskedFile};

/// The AST-level lint rules enforced by `cargo xtask lint --ast`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstRule {
    /// No `HashMap`/`HashSet` in determinism-critical crates: iteration
    /// order varies run to run.
    NoHashCollections,
    /// No OS-entropy RNGs (`thread_rng`, `from_entropy`, `OsRng`) in
    /// determinism-critical crates.
    NoUnseededRng,
    /// Public fns in the units-API crates must not take raw `f64` for
    /// physically-dimensioned parameters; use `iprism-units` newtypes.
    RawF64Param,
    /// Public fns in dynamics/reach whose names promise a dimensioned
    /// quantity must not return raw `f64`.
    RawF64Return,
    /// `to_radians`/`to_degrees` only inside `crates/units`.
    AngleConvOutsideUnits,
    /// `partial_cmp(..).unwrap()` panics on NaN; use `total_cmp`.
    PartialCmpUnwrap,
    /// Division by an unguarded parenthesized difference (`a / (b - c)`).
    UnguardedFloatDiv,
    /// Float→int `as` cast without an explicit rounding step.
    FloatIntCast,
    /// Manual `world.step(...)` calls outside `crates/sim`: stepping a
    /// `World` by hand bypasses the episode engine (outcome detection,
    /// tracing, observers); drive episodes through `iprism_sim::Episode`
    /// or `run_episode` instead.
    WorldStepOutsideSim,
}

/// All AST rules, in reporting order.
pub const ALL_AST_RULES: [AstRule; 9] = [
    AstRule::NoHashCollections,
    AstRule::NoUnseededRng,
    AstRule::RawF64Param,
    AstRule::RawF64Return,
    AstRule::AngleConvOutsideUnits,
    AstRule::PartialCmpUnwrap,
    AstRule::UnguardedFloatDiv,
    AstRule::FloatIntCast,
    AstRule::WorldStepOutsideSim,
];

impl AstRule {
    /// The kebab-case name used in diagnostics and `allow(...)` directives.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AstRule::NoHashCollections => "no-hash-collections",
            AstRule::NoUnseededRng => "no-unseeded-rng",
            AstRule::RawF64Param => "raw-f64-param",
            AstRule::RawF64Return => "raw-f64-return",
            AstRule::AngleConvOutsideUnits => "angle-conv-outside-units",
            AstRule::PartialCmpUnwrap => "partial-cmp-unwrap",
            AstRule::UnguardedFloatDiv => "unguarded-float-div",
            AstRule::FloatIntCast => "float-int-cast",
            AstRule::WorldStepOutsideSim => "world-step-outside-sim",
        }
    }

    /// Parses a rule name as written inside `allow(...)`.
    #[must_use]
    pub fn from_name(name: &str) -> Option<AstRule> {
        ALL_AST_RULES.iter().copied().find(|r| r.name() == name)
    }
}

/// A single AST-lint finding, with full line *and column* position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AstDiagnostic {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based character column.
    pub col: usize,
    /// The rule that fired.
    pub rule: AstRule,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for AstDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path,
            self.line,
            self.col,
            self.rule.name(),
            self.message
        )
    }
}

impl AstDiagnostic {
    /// Renders the diagnostic as a JSON object (hand-rolled: xtask has no
    /// dependencies).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"path":{},"line":{},"col":{},"rule":{},"message":{}}}"#,
            json_string(&self.path),
            self.line,
            self.col,
            json_string(self.rule.name()),
            json_string(&self.message)
        )
    }
}

/// Renders a full AST-lint report as a JSON document for CI consumption.
#[must_use]
pub fn report_json(checked: usize, diagnostics: &[AstDiagnostic]) -> String {
    let items: Vec<String> = diagnostics.iter().map(AstDiagnostic::to_json).collect();
    format!(
        r#"{{"files_checked":{},"violations":[{}]}}"#,
        checked,
        items.join(",")
    )
}

/// Quotes and escapes `s` as a JSON string literal.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Which AST rule families apply to a file (decided from its path).
#[derive(Debug, Clone, Copy, Default)]
pub struct AstFileClass {
    /// Determinism-critical: reach/risk math and everything the simulator
    /// replays must be bit-reproducible across runs.
    pub determinism: bool,
    /// Public fns must take unit newtypes for physical parameters.
    pub units_param_api: bool,
    /// Public fns with dimension-promising names must return unit newtypes.
    pub units_return_api: bool,
    /// Hot numeric paths: NaN-hygiene rules (division, casts) apply.
    pub hot_path: bool,
    /// The units layer itself (angle conversions are allowed here).
    pub units_crate: bool,
    /// Outside `crates/sim`: episodes must be stepped through the episode
    /// engine, never via manual `world.step(...)` loops.
    pub world_step: bool,
}

/// Crates whose iteration order and entropy sources must be deterministic.
const DETERMINISM_CRATES: [&str; 4] = [
    "crates/sim/",
    "crates/scenarios/",
    "crates/reach/",
    "crates/risk/",
];

/// Crates whose public fn *parameters* must use unit newtypes.
const UNITS_PARAM_CRATES: [&str; 3] = ["crates/dynamics/", "crates/geom/", "crates/reach/"];

/// Crates whose public fn *returns* must use unit newtypes.
const UNITS_RETURN_CRATES: [&str; 2] = ["crates/dynamics/", "crates/reach/"];

/// Hot numeric paths where the NaN-hygiene rules apply.
const HOT_PATH_CRATES: [&str; 4] = [
    "crates/geom/",
    "crates/dynamics/",
    "crates/reach/",
    "crates/risk/",
];

/// Decides which AST rule families apply to `rel_path`; `None` means the
/// file is skipped entirely (same skip set as the text lints: tests,
/// benches, examples, fixtures, build scripts).
#[must_use]
pub fn classify_ast(rel_path: &str) -> Option<AstFileClass> {
    crate::classify(rel_path)?;
    let starts = |prefixes: &[&str]| prefixes.iter().any(|p| rel_path.starts_with(p));
    Some(AstFileClass {
        determinism: starts(&DETERMINISM_CRATES),
        units_param_api: starts(&UNITS_PARAM_CRATES),
        units_return_api: starts(&UNITS_RETURN_CRATES),
        hot_path: starts(&HOT_PATH_CRATES),
        units_crate: rel_path.starts_with("crates/units/"),
        world_step: !rel_path.starts_with("crates/sim/"),
    })
}

/// AST-lints a single source string as if it lived at `rel_path`. This is
/// the entry point the fixture tests use; [`run_ast_lint`] maps it over the
/// real tree.
#[must_use]
pub fn ast_lint_source(rel_path: &str, source: &str) -> Vec<AstDiagnostic> {
    let Some(class) = classify_ast(rel_path) else {
        return Vec::new();
    };
    let masked = mask::mask(source);
    let tokens = lexer::lex(source);
    let allows = allow_lines(&masked);
    let skip = |line: usize| {
        let idx = line - 1;
        masked.test.get(idx).copied().unwrap_or(false)
            || masked.macro_body.get(idx).copied().unwrap_or(false)
    };
    let mut out = Vec::new();
    let mut push = |t: &lexer::Token, rule: AstRule, message: String| {
        if !allowed(&allows, &masked, t.line - 1, rule) {
            out.push(AstDiagnostic {
                path: rel_path.to_string(),
                line: t.line,
                col: t.col,
                rule,
                message,
            });
        }
    };
    rules::check_tokens(&tokens, class, &skip, &mut push);
    out.sort_by_key(|d| (d.line, d.col));
    out.dedup();
    out
}

/// Per-line sets of AST rules suppressed via `iprism-lint: allow(...)`.
fn allow_lines(file: &MaskedFile) -> Vec<Vec<AstRule>> {
    file.comments.iter().map(|c| parse_allow(c)).collect()
}

fn parse_allow(comment: &str) -> Vec<AstRule> {
    let Some(pos) = comment.find("iprism-lint:") else {
        return Vec::new();
    };
    let rest = &comment[pos + "iprism-lint:".len()..];
    let Some(open) = rest.find("allow(") else {
        return Vec::new();
    };
    let args = &rest[open + "allow(".len()..];
    let Some(close) = args.find(')') else {
        return Vec::new();
    };
    let mut rules = Vec::new();
    for name in args[..close].split(',') {
        let name = name.trim();
        if name == "all" {
            return ALL_AST_RULES.to_vec();
        }
        if let Some(rule) = AstRule::from_name(name) {
            rules.push(rule);
        }
    }
    rules
}

/// A rule is suppressed on 0-based line `idx` if an allow directive sits on
/// the line itself or on a contiguous run of comment-only lines directly
/// above (mirrors the text-lint escape hatch exactly).
fn allowed(allows: &[Vec<AstRule>], file: &MaskedFile, idx: usize, rule: AstRule) -> bool {
    if allows.get(idx).is_some_and(|a| a.contains(&rule)) {
        return true;
    }
    let mut l = idx;
    while l > 0 {
        l -= 1;
        let comment_only = file.code[l].trim().is_empty() && !file.comments[l].trim().is_empty();
        if !comment_only {
            return false;
        }
        if allows[l].contains(&rule) {
            return true;
        }
    }
    false
}

/// AST-lints every workspace `.rs` file under `workspace_root`.
///
/// Returns `(files_checked, diagnostics)`.
///
/// # Errors
///
/// Returns any I/O error from walking or reading the tree.
pub fn run_ast_lint(workspace_root: &Path) -> std::io::Result<(usize, Vec<AstDiagnostic>)> {
    let mut checked = 0usize;
    let mut diagnostics = Vec::new();
    for path in crate::collect_rust_files(workspace_root)? {
        let rel = path
            .strip_prefix(workspace_root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if classify_ast(&rel).is_none() {
            continue;
        }
        let source = std::fs::read_to_string(&path)?;
        checked += 1;
        diagnostics.extend(ast_lint_source(&rel, &source));
    }
    diagnostics.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    Ok((checked, diagnostics))
}
