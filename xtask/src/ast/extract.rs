//! Function/call extraction for the workspace call-graph pass.
//!
//! `cargo xtask lint --graph` needs more than per-file token checks: it has
//! to know which `fn` items a file defines (name, receiver type, visibility)
//! and which calls each body makes, so the graph layer in [`super::graph`]
//! can resolve edges across crates and propagate taint. This module walks
//! the existing lexer's token stream once per file and produces that model,
//! plus the two pieces of per-file policy the graph pass consumes: hot-path
//! certification markers (`// iprism: hot-path(no-panic, no-alloc,
//! deterministic)`) and per-line `iprism-lint: allow(hot-path-*)` waivers.
//!
//! The extraction is deliberately best-effort — no type inference, no macro
//! expansion — and errs on the side of recording a call, leaving precision
//! to the resolution step (receiver-type and dependency-closure narrowing).

use super::lexer::{self, Kind, Token};
use super::rules::{matching_close, skip_generics};
use super::{allow_lines, allowed, parse_allow_names, AstDiagnostic, AstRule};
use crate::mask::{self, MaskedFile};

/// The three properties a hot-path marker can demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HotProp {
    /// No reachable `panic!`/`unwrap`/`expect`/`assert!` or slice indexing.
    NoPanic,
    /// No reachable heap allocation (`Vec::push`, `collect`, `format!`, ...).
    NoAlloc,
    /// No reachable wallclock, entropy or hash-iteration nondeterminism.
    Deterministic,
}

/// All properties, in reporting order.
pub const ALL_PROPS: [HotProp; 3] = [HotProp::NoPanic, HotProp::NoAlloc, HotProp::Deterministic];

impl HotProp {
    /// The spelling used inside a `hot-path(...)` marker.
    #[must_use]
    pub fn marker_name(self) -> &'static str {
        match self {
            HotProp::NoPanic => "no-panic",
            HotProp::NoAlloc => "no-alloc",
            HotProp::Deterministic => "deterministic",
        }
    }

    /// The lint rule that reports a violation of this property.
    #[must_use]
    pub fn rule(self) -> AstRule {
        match self {
            HotProp::NoPanic => AstRule::HotPathPanic,
            HotProp::NoAlloc => AstRule::HotPathAlloc,
            HotProp::Deterministic => AstRule::HotPathNondet,
        }
    }

    /// Short noun used in taint-chain diagnostics (`... : alloc via ...`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            HotProp::NoPanic => "panic",
            HotProp::NoAlloc => "alloc",
            HotProp::Deterministic => "nondeterminism",
        }
    }

    /// Parses a marker property name.
    #[must_use]
    pub fn from_marker_name(name: &str) -> Option<HotProp> {
        ALL_PROPS.iter().copied().find(|p| p.marker_name() == name)
    }

    /// Index into per-line waiver arrays.
    #[must_use]
    pub fn idx(self) -> usize {
        match self {
            HotProp::NoPanic => 0,
            HotProp::NoAlloc => 1,
            HotProp::Deterministic => 2,
        }
    }
}

/// One `fn` item extracted from a file.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type or `trait` name, when inside one.
    pub impl_type: Option<String>,
    /// `true` when defined inside a `trait { ... }` block (default methods
    /// and bodyless declarations).
    pub in_trait: bool,
    /// `true` when the first parameter is a `self` receiver.
    pub has_self: bool,
    /// `true` for bare `pub` items (not `pub(crate)`).
    pub is_pub: bool,
    /// 1-based line/column of the function name token.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Properties demanded by an attached `hot-path(...)` marker.
    pub props: Vec<HotProp>,
}

impl FnDef {
    /// `Type::name` when the fn lives in an impl/trait, else `name`.
    #[must_use]
    pub fn display(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// How a call site names its target; resolution narrows candidates
/// accordingly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// `foo(..)` or `module::foo(..)` — a free function.
    Bare(String),
    /// `recv.foo(..)` — a method on some receiver.
    Method(String),
    /// `self.foo(..)` / `Self::foo(..)` — narrowed to the enclosing impl.
    SelfMethod(String),
    /// `Type::foo(..)` — narrowed to impls of `Type`.
    Typed(String, String),
}

impl CallTarget {
    /// The bare callee name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            CallTarget::Bare(n) | CallTarget::Method(n) | CallTarget::SelfMethod(n) => n,
            CallTarget::Typed(_, n) => n,
        }
    }
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Index into [`FileExtract::fns`] of the enclosing function.
    pub from_fn: usize,
    /// Target naming shape.
    pub target: CallTarget,
    /// 1-based call-site position.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// One direct taint source inside a function body.
#[derive(Debug, Clone)]
pub struct SourceHit {
    /// Index into [`FileExtract::fns`] of the enclosing function.
    pub from_fn: usize,
    /// Which property the source violates.
    pub prop: HotProp,
    /// Human-readable description (`` `.push(..)` ``, `` `vec![..]` ``).
    pub what: String,
    /// 1-based source position.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// An `allow(hot-path-*)` directive, kept for the dead-waiver audit that
/// runs with full graph context.
#[derive(Debug, Clone)]
pub struct HotWaiver {
    /// 1-based directive line.
    pub line: usize,
    /// 1-based directive column.
    pub col: usize,
    /// The hot-path properties the directive names.
    pub props: Vec<HotProp>,
    /// 1-based code lines the directive binds to (own line, or the next
    /// code line below a comment-only run).
    pub covered: Vec<usize>,
}

/// Everything the graph layer needs to know about one file.
#[derive(Debug, Clone)]
pub struct FileExtract {
    /// Workspace-relative path.
    pub path: String,
    /// Extracted `fn` items.
    pub fns: Vec<FnDef>,
    /// Call expressions, in token order.
    pub calls: Vec<Call>,
    /// Direct taint sources, in token order.
    pub sources: Vec<SourceHit>,
    /// Per 0-based line, which properties are waived there.
    pub waived: Vec<[bool; 3]>,
    /// Hot-path waiver directives, for the dead-waiver audit.
    pub hot_waivers: Vec<HotWaiver>,
    /// Malformed or unattached `hot-path(...)` markers.
    pub errors: Vec<AstDiagnostic>,
}

/// Macro names that abort when invoked (`debug_assert*` is excluded: it
/// compiles out of release builds, which is what hot paths run).
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Macro names that allocate.
const ALLOC_MACROS: [&str; 2] = ["format", "vec"];

/// Method names that allocate (or may reallocate) on their receiver.
const ALLOC_METHODS: [&str; 15] = [
    "push",
    "push_str",
    "collect",
    "to_vec",
    "to_string",
    "to_owned",
    "reserve",
    "reserve_exact",
    "resize",
    "resize_with",
    "extend",
    "extend_from_slice",
    "insert",
    "append",
    "with_capacity",
];

/// Owner types whose constructors count as allocation sources.
const ALLOC_TYPES: [&str; 9] = [
    "Vec",
    "VecDeque",
    "String",
    "Box",
    "Rc",
    "Arc",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
];

/// Constructor names that count as allocation on an [`ALLOC_TYPES`] owner.
const ALLOC_CTORS: [&str; 4] = ["new", "with_capacity", "from", "from_iter"];

/// Identifiers whose mere presence in a body is a nondeterminism source
/// (mirrors the per-file `no-unseeded-rng` / `no-wallclock-in-sim` lists,
/// plus hash collections whose iteration order varies run to run).
const NONDET_IDENTS: [&str; 8] = [
    "thread_rng",
    "from_entropy",
    "OsRng",
    "ThreadRng",
    "Instant",
    "SystemTime",
    "HashMap",
    "HashSet",
];

/// Keywords that can never be a call or an indexed expression head.
const KEYWORDS: [&str; 36] = [
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where",
];

fn is_keyword(word: &str) -> bool {
    KEYWORDS.contains(&word) || word == "while" || word == "union" || word == "yield"
}

fn lowercase_start(name: &str) -> bool {
    name.chars()
        .next()
        .is_some_and(|c| c.is_lowercase() || c == '_')
}

/// One brace frame; remembers what to restore when it closes.
enum Frame {
    Fn(Option<usize>),
    Impl(Option<(String, bool)>),
    Other,
}

/// Extracts the call-graph model from one source file.
#[must_use]
pub fn extract_file(rel_path: &str, source: &str) -> FileExtract {
    let masked = mask::mask(source);
    let tokens = lexer::lex(source);
    let skip = |line: usize| {
        let idx = line - 1;
        masked.test.get(idx).copied().unwrap_or(false)
            || masked.macro_body.get(idx).copied().unwrap_or(false)
    };

    let mut out = FileExtract {
        path: rel_path.to_string(),
        fns: Vec::new(),
        calls: Vec::new(),
        sources: Vec::new(),
        waived: Vec::new(),
        hot_waivers: Vec::new(),
        errors: Vec::new(),
    };

    let mut stack: Vec<Frame> = Vec::new();
    let mut cur_fn: Option<usize> = None;
    let mut cur_impl: Option<(String, bool)> = None;
    let mut pending_fn: Option<usize> = None;
    let mut pending_impl: Option<(String, bool)> = None;

    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];

        // Skip attributes wholesale: `#[...]` / `#![...]`.
        if t.is_punct('#') {
            let open = if tokens.get(i + 1).is_some_and(|n| n.is_punct('[')) {
                Some(i + 1)
            } else if tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
                && tokens.get(i + 2).is_some_and(|n| n.is_punct('['))
            {
                Some(i + 2)
            } else {
                None
            };
            if let Some(open) = open {
                let mut depth = 0i32;
                let mut j = open;
                while j < tokens.len() {
                    if tokens[j].is_punct('[') {
                        depth += 1;
                    } else if tokens[j].is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
        }

        if t.is_punct('{') {
            if let Some(f) = pending_fn.take() {
                // A spurious `-> impl Trait` in the signature must not leak.
                pending_impl = None;
                stack.push(Frame::Fn(cur_fn));
                cur_fn = Some(f);
            } else if let Some(ti) = pending_impl.take() {
                stack.push(Frame::Impl(cur_impl.take()));
                cur_impl = Some(ti);
            } else {
                stack.push(Frame::Other);
            }
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            match stack.pop() {
                Some(Frame::Fn(prev)) => cur_fn = prev,
                Some(Frame::Impl(prev)) => cur_impl = prev,
                _ => {}
            }
            i += 1;
            continue;
        }
        if t.is_punct(';') {
            // A `;` before the body means a bodyless trait declaration.
            pending_fn = None;
            i += 1;
            continue;
        }

        if t.is_ident("impl") && pending_fn.is_none() {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|n| n.is_punct('<')) {
                j = skip_generics(&tokens, j).unwrap_or(j + 1);
            }
            let (first, after) = parse_type_path(&tokens, j);
            let ty = if tokens.get(after).is_some_and(|n| n.is_ident("for")) {
                parse_type_path(&tokens, after + 1).0
            } else {
                first
            };
            if let Some(ty) = ty {
                pending_impl = Some((ty, false));
            }
            i += 1;
            continue;
        }

        if t.is_ident("trait") && pending_fn.is_none() {
            if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == Kind::Ident) {
                pending_impl = Some((name.text.clone(), true));
            }
            i += 1;
            continue;
        }

        if t.is_ident("fn") && tokens.get(i + 1).is_some_and(|n| n.kind == Kind::Ident) {
            let name_tok = &tokens[i + 1];
            if !skip(name_tok.line) {
                let idx = out.fns.len();
                out.fns.push(FnDef {
                    name: name_tok.text.clone(),
                    impl_type: cur_impl.as_ref().map(|(ty, _)| ty.clone()),
                    in_trait: cur_impl.as_ref().is_some_and(|&(_, t)| t),
                    has_self: fn_has_self(&tokens, i + 2),
                    is_pub: fn_is_pub(&tokens, i),
                    line: name_tok.line,
                    col: name_tok.col,
                    props: Vec::new(),
                });
                pending_fn = Some(idx);
            }
            i += 2;
            continue;
        }

        // Call and source detection: only inside a fn body, outside the
        // signature region and outside test/macro lines.
        let scanning = cur_fn.is_some() && pending_fn.is_none() && !skip(t.line);
        if !scanning {
            i += 1;
            continue;
        }
        let f = cur_fn.unwrap_or_default();

        if t.is_punct('[') {
            if let Some(prev) = i.checked_sub(1).map(|p| &tokens[p]) {
                let indexes = (prev.kind == Kind::Ident && !is_keyword(&prev.text))
                    || prev.is_punct(')')
                    || prev.is_punct(']');
                if indexes {
                    let head = if prev.kind == Kind::Ident {
                        prev.text.as_str()
                    } else {
                        "(..)"
                    };
                    out.sources.push(SourceHit {
                        from_fn: f,
                        prop: HotProp::NoPanic,
                        what: format!("`{head}[..]` indexing"),
                        line: t.line,
                        col: t.col,
                    });
                }
            }
            i += 1;
            continue;
        }

        if t.kind == Kind::Ident {
            scan_ident(&tokens, i, f, &mut out, cur_impl.as_ref());
        }
        i += 1;
    }

    // Per-line hot-path waivers (shared allow machinery) and the directive
    // list the graph-side dead-waiver audit consumes.
    let allows = allow_lines(&masked);
    out.waived = (0..masked.code.len())
        .map(|idx| {
            let mut w = [false; 3];
            for p in ALL_PROPS {
                w[p.idx()] = allowed(&allows, &masked, idx, p.rule());
            }
            w
        })
        .collect();
    for (idx, comment) in masked.comments.iter().enumerate() {
        if skip(idx + 1) {
            continue;
        }
        let Some((col0, names)) = parse_allow_names(comment) else {
            continue;
        };
        let props: Vec<HotProp> = ALL_PROPS
            .iter()
            .copied()
            .filter(|p| names.iter().any(|n| n == p.rule().name()))
            .collect();
        if props.is_empty() {
            continue;
        }
        out.hot_waivers.push(HotWaiver {
            line: idx + 1,
            col: col0 + 1,
            props,
            covered: waiver_coverage(&masked, idx)
                .map(|l| l + 1)
                .into_iter()
                .collect(),
        });
    }

    attach_markers(&masked, &skip, &mut out);
    // Marker errors honour the standard waiver mechanism like every other
    // rule: `allow(hot-path-marker)` on or above the marker line silences.
    out.errors
        .retain(|e| !allowed(&allows, &masked, e.line - 1, e.rule));
    out
}

/// The 0-based code line an allow/marker directive on line `idx` binds to:
/// its own line when it carries code, else the first code line below the
/// contiguous comment-only run (mirrors the upward walk in `allowed`).
pub(crate) fn waiver_coverage(file: &MaskedFile, idx: usize) -> Option<usize> {
    if !file.code[idx].trim().is_empty() {
        return Some(idx);
    }
    let mut l = idx + 1;
    while l < file.code.len() {
        let comment_only = file.code[l].trim().is_empty() && !file.comments[l].trim().is_empty();
        if !comment_only {
            break;
        }
        l += 1;
    }
    (l < file.code.len() && !file.code[l].trim().is_empty()).then_some(l)
}

/// Walks a type path (`a::b::Type<Args>`), returning its final type name
/// and the index where the walk stopped (`for`, `where`, `{` or `;`).
fn parse_type_path(tokens: &[Token], mut j: usize) -> (Option<String>, usize) {
    let mut name = None;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('{') || t.is_punct(';') || t.is_ident("for") || t.is_ident("where") {
            break;
        }
        if t.is_punct('<') {
            j = skip_generics(tokens, j).unwrap_or(j + 1);
            continue;
        }
        if t.kind == Kind::Ident && !t.is_ident("dyn") {
            name = Some(t.text.clone());
        }
        j += 1;
    }
    (name, j)
}

/// Does the parameter list starting at or after `k` open with a `self`
/// receiver? `k` points just past the fn name (possibly at generics).
fn fn_has_self(tokens: &[Token], mut k: usize) -> bool {
    if tokens.get(k).is_some_and(|t| t.is_punct('<')) {
        match skip_generics(tokens, k) {
            Some(after) => k = after,
            None => return false,
        }
    }
    if !tokens.get(k).is_some_and(|t| t.is_punct('(')) {
        return false;
    }
    let Some(close) = matching_close(tokens, k) else {
        return false;
    };
    tokens[k + 1..close]
        .iter()
        .find(|t| t.kind == Kind::Ident && !t.is_ident("mut"))
        .is_some_and(|t| t.is_ident("self"))
}

/// Is the `fn` at token index `f` a bare-`pub` item? Walks back over
/// qualifier keywords and an optional ABI string.
fn fn_is_pub(tokens: &[Token], f: usize) -> bool {
    let mut k = f;
    while k > 0 {
        k -= 1;
        let t = &tokens[k];
        let qualifier = t.is_ident("const")
            || t.is_ident("async")
            || t.is_ident("unsafe")
            || t.is_ident("extern")
            || t.kind == Kind::Str;
        if qualifier {
            continue;
        }
        return t.is_ident("pub");
    }
    false
}

/// Is `tokens[i]` followed by call syntax (`(`, optionally after a
/// `::<...>` turbofish)?
fn call_open(tokens: &[Token], i: usize) -> bool {
    match tokens.get(i + 1) {
        Some(t) if t.is_punct('(') => true,
        Some(t)
            if t.is_punct(':')
                && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
                && tokens.get(i + 3).is_some_and(|n| n.is_punct('<')) =>
        {
            skip_generics(tokens, i + 3)
                .is_some_and(|after| tokens.get(after).is_some_and(|n| n.is_punct('(')))
        }
        _ => false,
    }
}

/// Classifies one identifier token inside a fn body: macro sources, method
/// calls/sources, qualified and bare calls, and plain nondeterminism idents.
fn scan_ident(
    tokens: &[Token],
    i: usize,
    f: usize,
    out: &mut FileExtract,
    cur_impl: Option<&(String, bool)>,
) {
    let t = &tokens[i];
    let name = t.text.as_str();
    let push_source = |out: &mut FileExtract, prop: HotProp, what: String| {
        out.sources.push(SourceHit {
            from_fn: f,
            prop,
            what,
            line: t.line,
            col: t.col,
        });
    };

    // Macro invocation: `name!` followed by a delimiter.
    let is_macro = tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
        && tokens
            .get(i + 2)
            .is_some_and(|n| n.is_punct('(') || n.is_punct('[') || n.is_punct('{'));
    if is_macro {
        if PANIC_MACROS.contains(&name) {
            push_source(out, HotProp::NoPanic, format!("`{name}!`"));
        } else if ALLOC_MACROS.contains(&name) {
            push_source(out, HotProp::NoAlloc, format!("`{name}![..]`"));
        }
        return;
    }

    let prev_dot =
        i >= 1 && tokens[i - 1].is_punct('.') && !(i >= 2 && tokens[i - 2].is_punct('.'));
    let prev_path = i >= 2 && tokens[i - 1].is_punct(':') && tokens[i - 2].is_punct(':');

    if prev_dot {
        if (name == "unwrap" || name == "expect") && call_open(tokens, i) {
            push_source(out, HotProp::NoPanic, format!("`.{name}(..)`"));
        }
        if ALLOC_METHODS.contains(&name) && call_open(tokens, i) {
            push_source(out, HotProp::NoAlloc, format!("`.{name}(..)`"));
        }
        if lowercase_start(name) && !is_keyword(name) && call_open(tokens, i) {
            let target = if i >= 2 && tokens[i - 2].is_ident("self") {
                CallTarget::SelfMethod(name.to_string())
            } else {
                CallTarget::Method(name.to_string())
            };
            out.calls.push(Call {
                from_fn: f,
                target,
                line: t.line,
                col: t.col,
            });
        }
    } else if prev_path {
        if lowercase_start(name) && !is_keyword(name) && call_open(tokens, i) {
            if let Some(target) = qualified_target(tokens, i, name, cur_impl) {
                if let CallTarget::Typed(ty, ctor) = &target {
                    if ALLOC_TYPES.contains(&ty.as_str()) && ALLOC_CTORS.contains(&ctor.as_str()) {
                        push_source(out, HotProp::NoAlloc, format!("`{ty}::{ctor}(..)`"));
                    }
                }
                out.calls.push(Call {
                    from_fn: f,
                    target,
                    line: t.line,
                    col: t.col,
                });
            }
        }
    } else if lowercase_start(name)
        && !is_keyword(name)
        && call_open(tokens, i)
        && !(i >= 1 && tokens[i - 1].is_ident("fn"))
    {
        out.calls.push(Call {
            from_fn: f,
            target: CallTarget::Bare(name.to_string()),
            line: t.line,
            col: t.col,
        });
    }

    if NONDET_IDENTS.contains(&name) {
        push_source(out, HotProp::Deterministic, format!("`{name}`"));
    }
}

/// Resolves the qualifier of a `Qual::name(..)` call into a target shape.
fn qualified_target(
    tokens: &[Token],
    i: usize,
    name: &str,
    cur_impl: Option<&(String, bool)>,
) -> Option<CallTarget> {
    let qual = qualifier_ident(tokens, i)?;
    if qual == "Self" {
        return Some(CallTarget::SelfMethod(name.to_string()));
    }
    if lowercase_start(&qual) {
        // `module::free_fn(..)` — modules are lowercase by convention.
        return Some(CallTarget::Bare(name.to_string()));
    }
    // `cur_impl` is unused today but kept in the signature so trait-context
    // narrowing can grow here without touching call sites.
    let _ = cur_impl;
    Some(CallTarget::Typed(qual, name.to_string()))
}

/// The identifier naming the path segment before `::name` at `i`; walks
/// back over `::<...>` generic arguments (`Vec::<f64>::new`).
fn qualifier_ident(tokens: &[Token], i: usize) -> Option<String> {
    let mut k = i.checked_sub(3)?;
    if tokens[k].is_punct('>') {
        let mut depth = 0i32;
        loop {
            let t = &tokens[k];
            if t.is_punct('>') {
                depth += 1;
            } else if t.is_punct('<') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k = k.checked_sub(1)?;
        }
        k = k.checked_sub(1)?;
        if tokens[k].is_punct(':') {
            k = k.checked_sub(2)?;
        }
    }
    (tokens[k].kind == Kind::Ident).then(|| tokens[k].text.clone())
}

/// A parsed marker comment: its 0-based column plus the parse outcome.
type ParsedMarker = (usize, Result<Vec<HotProp>, String>);

/// Binds `// iprism: hot-path(...)` markers to the fn below them and
/// reports malformed or dangling markers.
fn attach_markers(masked: &MaskedFile, skip: &dyn Fn(usize) -> bool, out: &mut FileExtract) {
    let mut markers: Vec<Option<ParsedMarker>> =
        masked.comments.iter().map(|c| parse_marker(c)).collect();

    // Sort by line so the upward walk below sees fns in file order.
    let mut order: Vec<usize> = (0..out.fns.len()).collect();
    order.sort_by_key(|&fi| out.fns[fi].line);
    for fi in order {
        let fn_line = out.fns[fi].line;
        let bind = |marker: &mut Option<ParsedMarker>,
                    line: usize,
                    fns: &mut [FnDef],
                    errors: &mut Vec<AstDiagnostic>| {
            if let Some((col0, parsed)) = marker.take() {
                match parsed {
                    Ok(props) => fns[fi].props = props,
                    Err(err) => errors.push(marker_error(&out.path, line, col0 + 1, &err)),
                }
            }
        };
        // Same line first (trailing marker), then the comment/attr run above.
        if let Some(m) = markers.get_mut(fn_line - 1) {
            if m.is_some() {
                bind(m, fn_line, &mut out.fns, &mut out.errors);
                continue;
            }
        }
        let mut l = fn_line - 1; // 0-based line above the fn
        while l > 0 {
            l -= 1;
            let comment_only =
                masked.code[l].trim().is_empty() && !masked.comments[l].trim().is_empty();
            let attr_line = masked.code[l].trim_start().starts_with('#');
            if !comment_only && !attr_line {
                break;
            }
            if markers.get(l).is_some_and(Option::is_some) {
                let m = &mut markers[l];
                bind(m, l + 1, &mut out.fns, &mut out.errors);
                break;
            }
        }
    }

    for (idx, marker) in markers.iter().enumerate() {
        let Some((col0, parsed)) = marker else {
            continue;
        };
        if skip(idx + 1) {
            continue;
        }
        match parsed {
            Ok(_) => out.errors.push(marker_error(
                &out.path,
                idx + 1,
                col0 + 1,
                "marker is not attached to a function item",
            )),
            Err(err) => out
                .errors
                .push(marker_error(&out.path, idx + 1, col0 + 1, err)),
        }
    }
}

fn marker_error(path: &str, line: usize, col: usize, err: &str) -> AstDiagnostic {
    AstDiagnostic {
        path: path.to_string(),
        line,
        col,
        rule: AstRule::HotPathMarker,
        message: format!(
            "bad hot-path marker: {err} (expected `// iprism: hot-path(no-panic, no-alloc, \
             deterministic)` directly above a fn)"
        ),
    }
}

/// Parses a `hot-path(...)` marker out of one comment line. Returns the
/// 0-based column of the directive and the parsed properties or an error.
fn parse_marker(comment: &str) -> Option<(usize, Result<Vec<HotProp>, String>)> {
    if super::is_doc_comment(comment) {
        return None;
    }
    let pos = comment.find("iprism:")?;
    let rest = &comment[pos + "iprism:".len()..];
    let hp = rest.find("hot-path")?;
    let after = &rest[hp + "hot-path".len()..];
    let parsed = parse_marker_props(after);
    Some((pos, parsed))
}

fn parse_marker_props(after: &str) -> Result<Vec<HotProp>, String> {
    let after = after.trim_start();
    let Some(args) = after.strip_prefix('(') else {
        return Err("missing `(...)` property list".to_string());
    };
    let Some(close) = args.find(')') else {
        return Err("unterminated property list".to_string());
    };
    let mut props = Vec::new();
    for raw in args[..close].split(',') {
        let name = raw.trim();
        if name.is_empty() {
            continue;
        }
        match HotProp::from_marker_name(name) {
            Some(p) => {
                if !props.contains(&p) {
                    props.push(p);
                }
            }
            None => return Err(format!("unknown property `{name}`")),
        }
    }
    if props.is_empty() {
        return Err("empty property list".to_string());
    }
    Ok(props)
}
