//! A self-contained Rust lexer producing position-tagged tokens.
//!
//! The build environment is offline, so `proc-macro2`/`syn` are unavailable;
//! this lexer understands exactly the lexical grammar the AST rules need:
//! comments (skipped), string/raw-string/byte-string literals, char literals
//! vs lifetimes, numeric literals with a float/int distinction, identifiers
//! and single-character punctuation. Multi-character operators come out as
//! adjacent punctuation tokens (`->` is `-` then `>`), which the rule
//! matchers handle explicitly where it matters.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `pub`, `f64`, `partial_cmp`, ...).
    Ident,
    /// Lifetime tick plus name (`'a`, `'static`).
    Lifetime,
    /// Integer literal (including hex/octal/binary and int-suffixed forms).
    Int,
    /// Floating-point literal (`1.5`, `1e-3`, `2f64`).
    Float,
    /// String, raw-string or byte-string literal (content not retained).
    Str,
    /// Char or byte-char literal (content not retained).
    Char,
    /// A single punctuation character.
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: Kind,
    /// Token text (empty for `Str`/`Char`, whose content is irrelevant
    /// to the rules and must never trigger them).
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based character column.
    pub col: usize,
}

impl Token {
    /// Returns `true` when the token is the identifier `word`.
    #[must_use]
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == Kind::Ident && self.text == word
    }

    /// Returns `true` when the token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens, skipping whitespace and comments.
#[must_use]
pub fn lex(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: usize,
    col: usize,
    out: Vec<Token>,
}

impl Lexer {
    fn new(source: &str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Advances one char, maintaining the line/col counters.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consumes chars while `pred` holds, appending them to `text`.
    fn bump_while(&mut self, text: &mut String, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek(0) {
            if !pred(c) {
                break;
            }
            self.bump();
            text.push(c);
        }
    }

    fn push(&mut self, kind: Kind, text: String, line: usize, col: usize) {
        self.out.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                while self.peek(0).is_some_and(|c| c != '\n') {
                    self.bump();
                }
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if let Some((prefix, hashes)) = self.raw_string_lookahead() {
                self.raw_string(prefix, hashes);
                self.push(Kind::Str, String::new(), line, col);
            } else if c == '"' || (c == 'b' && self.peek(1) == Some('"')) {
                if c == 'b' {
                    self.bump();
                }
                self.string_literal();
                self.push(Kind::Str, String::new(), line, col);
            } else if c == 'b' && self.peek(1) == Some('\'') {
                self.bump();
                self.char_literal();
                self.push(Kind::Char, String::new(), line, col);
            } else if c == '\'' {
                self.tick(line, col);
            } else if is_ident_start(c) {
                let mut text = String::new();
                self.bump_while(&mut text, is_ident_continue);
                self.push(Kind::Ident, text, line, col);
            } else if c.is_ascii_digit() {
                self.number(line, col);
            } else {
                self.bump();
                self.push(Kind::Punct, c.to_string(), line, col);
            }
        }
        self.out
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => return,
            }
        }
    }

    /// Detects `r"`/`r#"`/`br#"` at the cursor; returns `(prefix_len, hashes)`.
    fn raw_string_lookahead(&self) -> Option<(usize, u32)> {
        let mut j = 0usize;
        if self.peek(j) == Some('b') {
            j += 1;
        }
        if self.peek(j) != Some('r') {
            return None;
        }
        j += 1;
        let mut hashes = 0u32;
        while self.peek(j) == Some('#') {
            hashes += 1;
            j += 1;
        }
        (self.peek(j) == Some('"')).then_some((j + 1, hashes))
    }

    fn raw_string(&mut self, prefix: usize, hashes: u32) {
        for _ in 0..prefix {
            self.bump();
        }
        loop {
            match self.peek(0) {
                Some('"') if (1..=hashes as usize).all(|k| self.peek(k) == Some('#')) => {
                    for _ in 0..=hashes as usize {
                        self.bump();
                    }
                    return;
                }
                Some(_) => {
                    self.bump();
                }
                None => return,
            }
        }
    }

    fn string_literal(&mut self) {
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                Some('\\') => {
                    self.bump();
                    self.bump();
                }
                Some('"') => {
                    self.bump();
                    return;
                }
                Some(_) => {
                    self.bump();
                }
                None => return,
            }
        }
    }

    fn char_literal(&mut self) {
        self.bump(); // opening tick
        if self.peek(0) == Some('\\') {
            self.bump();
            self.bump();
        } else {
            self.bump();
        }
        if self.peek(0) == Some('\'') {
            self.bump();
        }
    }

    /// A tick is either a char literal or a lifetime; disambiguate with the
    /// same lookahead rustc uses: `'X'` closes within two chars (or is an
    /// escape) → char literal, otherwise lifetime.
    fn tick(&mut self, line: usize, col: usize) {
        if self.peek(1) == Some('\\') || self.peek(2) == Some('\'') {
            self.char_literal();
            self.push(Kind::Char, String::new(), line, col);
        } else {
            self.bump();
            let mut text = String::from("'");
            self.bump_while(&mut text, is_ident_continue);
            self.push(Kind::Lifetime, text, line, col);
        }
    }

    fn number(&mut self, line: usize, col: usize) {
        let mut text = String::new();
        let mut is_float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            // Radix literal: never a float; suffix chars are hex digits too,
            // so just consume the alphanumeric run.
            self.bump_while(&mut text, is_ident_continue);
            self.push(Kind::Int, text, line, col);
            return;
        }
        self.bump_while(&mut text, |c| c.is_ascii_digit() || c == '_');
        // Fractional part: `1.5` or trailing `1.`; but not `1..2` (range) and
        // not `1.method()`.
        if self.peek(0) == Some('.')
            && self.peek(1) != Some('.')
            && !self.peek(1).is_some_and(is_ident_start)
        {
            is_float = true;
            if let Some(c) = self.bump() {
                text.push(c);
            }
            self.bump_while(&mut text, |c| c.is_ascii_digit() || c == '_');
        }
        // Exponent.
        if matches!(self.peek(0), Some('e' | 'E')) {
            let sign = usize::from(matches!(self.peek(1), Some('+' | '-')));
            if self.peek(1 + sign).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                for _ in 0..=sign {
                    if let Some(c) = self.bump() {
                        text.push(c);
                    }
                }
                self.bump_while(&mut text, |c| c.is_ascii_digit() || c == '_');
            }
        }
        // Type suffix (`1f64`, `10usize`).
        let suffix_start = text.len();
        self.bump_while(&mut text, is_ident_continue);
        if text[suffix_start..].starts_with('f') {
            is_float = true;
        }
        let kind = if is_float { Kind::Float } else { Kind::Int };
        self.push(kind, text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_positions() {
        let toks = lex("fn f(x: f64) {}");
        assert_eq!(
            toks[0],
            Token {
                kind: Kind::Ident,
                text: "fn".into(),
                line: 1,
                col: 1
            }
        );
        assert_eq!(toks[1].text, "f");
        assert!(toks[2].is_punct('('));
        assert_eq!(toks[5].text, "f64");
        let last = toks.last().unwrap();
        assert_eq!((last.line, last.col), (1, 15));
    }

    #[test]
    fn line_tracking_across_newlines() {
        let toks = lex("a\n  b\nc");
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!((toks[2].line, toks[2].col), (3, 1));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // HashMap in a comment\nb /* thread_rng /* nested */ */ c"),
            vec![
                (Kind::Ident, "a".into()),
                (Kind::Ident, "b".into()),
                (Kind::Ident, "c".into()),
            ]
        );
    }

    #[test]
    fn strings_raw_strings_and_chars_drop_content() {
        let toks = kinds(r##"let s = "HashMap"; let r = r#"thread_rng "q" "#; let c = 'x';"##);
        assert!(toks
            .iter()
            .all(|(_, t)| t != "HashMap" && t != "thread_rng"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Str).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Char).count(), 1);
    }

    #[test]
    fn byte_literals() {
        let toks = kinds(r##"let a = b'"'; let s = b"bytes"; let r = br#"raw"#;"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Char).count(), 1);
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Str).count(), 2);
        // The quote inside b'"' must not have opened a string: the trailing
        // semicolons survive as punctuation.
        assert_eq!(toks.iter().filter(|(_, t)| t == ";").count(), 3);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'y'; let e = '\\n'; }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Char).count(), 2);
    }

    #[test]
    fn numeric_literals() {
        assert_eq!(
            kinds("1 1.5 1e-3 2f64 10usize 0xFF 1..2"),
            vec![
                (Kind::Int, "1".into()),
                (Kind::Float, "1.5".into()),
                (Kind::Float, "1e-3".into()),
                (Kind::Float, "2f64".into()),
                (Kind::Int, "10usize".into()),
                (Kind::Int, "0xFF".into()),
                (Kind::Int, "1".into()),
                (Kind::Punct, ".".into()),
                (Kind::Punct, ".".into()),
                (Kind::Int, "2".into()),
            ]
        );
    }

    #[test]
    fn tuple_field_access_is_not_a_float() {
        assert_eq!(
            kinds("pair.0.abs()"),
            vec![
                (Kind::Ident, "pair".into()),
                (Kind::Punct, ".".into()),
                (Kind::Int, "0".into()),
                (Kind::Punct, ".".into()),
                (Kind::Ident, "abs".into()),
                (Kind::Punct, "(".into()),
                (Kind::Punct, ")".into()),
            ]
        );
    }
}
